//! The service wire protocol: request/response shapes and their JSON
//! codecs, built on the hand-rolled [`unity_mc::json`] core.
//!
//! Three endpoints:
//!
//! - `POST /verify` — body [`VerifyRequest`], reply [`VerifyResponse`]
//!   (sequence number, spec hash, per-artifact [`CacheState`], full
//!   [`Report`]).
//! - `GET /status` — reply [`StatusResponse`].
//! - `GET /history?spec=<hash>` — reply: JSON array of
//!   [`HistoryEntry`] (all specs when the query is omitted).
//!
//! Errors travel as `{"error": "..."}` bodies with a non-200 status.
//! Every decoder is strict — unknown engines, missing fields, or
//! malformed JSON are rejected, never defaulted silently (the one
//! deliberate exception: *omitted* optional fields in
//! [`VerifyRequest`] take documented defaults).

use unity_mc::json::{write_string, Json};
use unity_mc::prelude::{Engine, Report, Universe};

/// Looks up an optional object field (absent is `None`, not an error).
fn opt<'a>(root: &'a Json, key: &str) -> Option<&'a Json> {
    match root {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn engine_str(e: Engine) -> &'static str {
    match e {
        Engine::Reference => "reference",
        Engine::Compiled => "compiled",
        Engine::Symbolic => "symbolic",
    }
}

fn engine_from(s: &str) -> Result<Engine, String> {
    match s {
        "reference" => Ok(Engine::Reference),
        "compiled" | "explicit" => Ok(Engine::Compiled),
        "symbolic" => Ok(Engine::Symbolic),
        other => Err(format!("unknown engine `{other}`")),
    }
}

fn universe_str(u: Universe) -> &'static str {
    match u {
        Universe::Reachable => "reachable",
        Universe::AllStates => "all",
    }
}

fn universe_from(s: &str) -> Result<Universe, String> {
    match s {
        "reachable" => Ok(Universe::Reachable),
        "all" => Ok(Universe::AllStates),
        other => Err(format!("unknown universe `{other}`")),
    }
}

/// A `POST /verify` submission: the spec source plus session options.
#[derive(Debug, Clone)]
pub struct VerifyRequest {
    /// Full `.unity` file text (programs + spec blocks).
    pub spec: String,
    /// Evaluation engine (default: `compiled`).
    pub engine: Engine,
    /// Universe for `leadsto` checks (default: `reachable`).
    pub universe: Universe,
    /// Verify compositionally (assume-guarantee discharge per
    /// component, certificate-cached, product space only for the
    /// residue) instead of on the flat product. Default: `false`.
    pub compositional: bool,
    /// Per-request timeout override in milliseconds (`None` uses the
    /// daemon's `--timeout-ms`; `0` disables the timeout).
    pub timeout_ms: Option<u64>,
    /// Client-chosen idempotency key. A retried submission carries the
    /// same id; the server answers the duplicate from its reply cache
    /// instead of verifying (and journaling) twice. Optional — requests
    /// without one are never deduplicated.
    pub request_id: Option<String>,
}

impl VerifyRequest {
    /// A request with default options.
    pub fn new(spec: impl Into<String>) -> Self {
        VerifyRequest {
            spec: spec.into(),
            engine: Engine::Compiled,
            universe: Universe::Reachable,
            compositional: false,
            timeout_ms: None,
            request_id: None,
        }
    }

    /// Serializes to the wire form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.spec.len() + 96);
        out.push_str("{\"spec\":");
        write_string(&mut out, &self.spec);
        out.push_str(",\"engine\":");
        write_string(&mut out, engine_str(self.engine));
        out.push_str(",\"universe\":");
        write_string(&mut out, universe_str(self.universe));
        // Additive field: emitted only when set, so requests from this
        // client parse on daemons that predate compositional mode.
        if self.compositional {
            out.push_str(",\"compositional\":true");
        }
        if let Some(ms) = self.timeout_ms {
            out.push_str(&format!(",\"timeout_ms\":{ms}"));
        }
        if let Some(id) = &self.request_id {
            out.push_str(",\"request_id\":");
            write_string(&mut out, id);
        }
        out.push('}');
        out
    }

    /// Parses the wire form. `spec` is required; the option fields
    /// default as documented on the struct.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let root = Json::parse(src)?;
        let spec = root.field("spec")?.as_str()?.to_string();
        let engine = match opt(&root, "engine") {
            Some(j) => engine_from(j.as_str()?)?,
            None => Engine::Compiled,
        };
        let universe = match opt(&root, "universe") {
            Some(j) => universe_from(j.as_str()?)?,
            None => Universe::Reachable,
        };
        let compositional = match opt(&root, "compositional") {
            Some(j) => j.as_bool()?,
            None => false,
        };
        let timeout_ms = match opt(&root, "timeout_ms") {
            Some(j) => Some(u64::try_from(j.as_int()?).map_err(|_| "negative timeout_ms")?),
            None => None,
        };
        let request_id = match opt(&root, "request_id") {
            Some(j) => Some(j.as_str()?.to_string()),
            None => None,
        };
        Ok(VerifyRequest {
            spec,
            engine,
            universe,
            compositional,
            timeout_ms,
            request_id,
        })
    }
}

/// Where one artifact of a verification came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Served from the store (no rebuild).
    Hit,
    /// Computed by this submission and persisted.
    Miss,
    /// Not needed by this submission's checks/engine.
    Unused,
}

impl CacheState {
    fn as_str(self) -> &'static str {
        match self {
            CacheState::Hit => "hit",
            CacheState::Miss => "miss",
            CacheState::Unused => "unused",
        }
    }

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "hit" => Ok(CacheState::Hit),
            "miss" => Ok(CacheState::Miss),
            "unused" => Ok(CacheState::Unused),
            other => Err(format!("unknown cache state `{other}`")),
        }
    }
}

/// Per-artifact cache outcome of one `POST /verify`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheInfo {
    /// Reachable-universe transition system.
    pub ts_reachable: CacheState,
    /// All-states-universe transition system.
    pub ts_all_states: CacheState,
    /// Reachable-universe predecessor index.
    pub pred_reachable: CacheState,
    /// All-states-universe predecessor index.
    pub pred_all_states: CacheState,
    /// Tuned BDD field order for the symbolic engine.
    pub field_order: CacheState,
    /// Component-certificate cache hits (compositional submissions;
    /// always `0` for flat ones).
    pub cert_hits: u64,
    /// Component-certificate cache misses — component or slice checks
    /// that actually ran (compositional submissions; `0` for flat).
    pub cert_misses: u64,
}

impl CacheInfo {
    /// All five artifacts unused (nothing built, nothing loaded), no
    /// certificate traffic.
    pub fn unused() -> Self {
        CacheInfo {
            ts_reachable: CacheState::Unused,
            ts_all_states: CacheState::Unused,
            pred_reachable: CacheState::Unused,
            pred_all_states: CacheState::Unused,
            field_order: CacheState::Unused,
            cert_hits: 0,
            cert_misses: 0,
        }
    }

    fn fields(&self) -> [(&'static str, CacheState); 5] {
        [
            ("ts_reachable", self.ts_reachable),
            ("ts_all_states", self.ts_all_states),
            ("pred_reachable", self.pred_reachable),
            ("pred_all_states", self.pred_all_states),
            ("field_order", self.field_order),
        ]
    }

    fn write(&self, out: &mut String) {
        out.push('{');
        for (k, (name, state)) in self.fields().into_iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            write_string(out, name);
            out.push(':');
            write_string(out, state.as_str());
        }
        // Absence-tolerant additions: always written, defaulted to 0 by
        // readers that meet a pre-certificate reply.
        out.push_str(&format!(
            ",\"cert_hits\":{},\"cert_misses\":{}",
            self.cert_hits, self.cert_misses
        ));
        out.push('}');
    }

    fn from_value(j: &Json) -> Result<Self, String> {
        let get = |name: &str| CacheState::from_str(j.field(name)?.as_str()?);
        let get_count = |name: &str| -> Result<u64, String> {
            match opt(j, name) {
                Some(v) => u64::try_from(v.as_int()?).map_err(|_| format!("negative {name}")),
                None => Ok(0),
            }
        };
        Ok(CacheInfo {
            ts_reachable: get("ts_reachable")?,
            ts_all_states: get("ts_all_states")?,
            pred_reachable: get("pred_reachable")?,
            pred_all_states: get("pred_all_states")?,
            field_order: get("field_order")?,
            cert_hits: get_count("cert_hits")?,
            cert_misses: get_count("cert_misses")?,
        })
    }
}

/// The `POST /verify` reply: journal position, content hash, cache
/// outcomes, and the complete report.
#[derive(Debug, Clone)]
pub struct VerifyResponse {
    /// This verdict's journal sequence number.
    pub seq: u64,
    /// Content hash of the submitted spec (the store key).
    pub spec_hash: String,
    /// Per-artifact cache outcome.
    pub cache: CacheInfo,
    /// The verification report (same schema as `unity-check --json`).
    pub report: Report,
}

impl VerifyResponse {
    /// Serializes to the wire form.
    pub fn to_json(&self) -> String {
        let report = self.report.to_json();
        let mut out = String::with_capacity(report.len() + 160);
        out.push_str(&format!("{{\"seq\":{},\"spec\":", self.seq));
        write_string(&mut out, &self.spec_hash);
        out.push_str(",\"cache\":");
        self.cache.write(&mut out);
        out.push_str(",\"report\":");
        out.push_str(&report);
        out.push('}');
        out
    }

    /// Parses the wire form.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let root = Json::parse(src)?;
        Ok(VerifyResponse {
            seq: u64::try_from(root.field("seq")?.as_int()?).map_err(|_| "negative seq")?,
            spec_hash: root.field("spec")?.as_str()?.to_string(),
            cache: CacheInfo::from_value(root.field("cache")?)?,
            report: Report::from_value(root.field("report")?)?,
        })
    }
}

/// The `GET /status` reply.
///
/// The operational fields added after the first release (`last_seq`,
/// `queue_depth`, `degraded`, `degraded_reason`) follow the project's
/// absence-tolerant convention: writers always emit them, readers
/// default them when absent, so a new client interrogating an old
/// daemon (or vice versa) keeps working.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusResponse {
    /// Distinct specs with persisted artifacts in the store.
    pub specs: u64,
    /// Verdicts in the journal (history length).
    pub verdicts: u64,
    /// Worker-pool size.
    pub workers: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Highest journal sequence number handed out so far (0 = none).
    pub last_seq: u64,
    /// Verifications accepted but not yet started by a worker.
    pub queue_depth: u64,
    /// Whether persistence has been disabled after a disk error
    /// (verdicts are still served, nothing is durable).
    pub degraded: bool,
    /// The first disk error that triggered degraded mode.
    pub degraded_reason: Option<String>,
    /// Component-certificate cache hits since startup (compositional
    /// submissions only).
    pub cert_hits: u64,
    /// Component-certificate cache misses since startup.
    pub cert_misses: u64,
}

impl StatusResponse {
    /// Serializes to the wire form.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"specs\":{},\"verdicts\":{},\"workers\":{},\"uptime_ms\":{},\"last_seq\":{},\"queue_depth\":{},\"cert_hits\":{},\"cert_misses\":{},\"degraded\":{}",
            self.specs,
            self.verdicts,
            self.workers,
            self.uptime_ms,
            self.last_seq,
            self.queue_depth,
            self.cert_hits,
            self.cert_misses,
            self.degraded
        );
        if let Some(reason) = &self.degraded_reason {
            out.push_str(",\"degraded_reason\":");
            write_string(&mut out, reason);
        }
        out.push('}');
        out
    }

    /// Parses the wire form. The post-v1 fields default when absent.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let root = Json::parse(src)?;
        let get = |name: &str| -> Result<u64, String> {
            u64::try_from(root.field(name)?.as_int()?).map_err(|_| format!("negative {name}"))
        };
        let get_opt = |name: &str| -> Result<u64, String> {
            match opt(&root, name) {
                Some(j) => u64::try_from(j.as_int()?).map_err(|_| format!("negative {name}")),
                None => Ok(0),
            }
        };
        Ok(StatusResponse {
            specs: get("specs")?,
            verdicts: get("verdicts")?,
            workers: get("workers")?,
            uptime_ms: get("uptime_ms")?,
            last_seq: get_opt("last_seq")?,
            queue_depth: get_opt("queue_depth")?,
            cert_hits: get_opt("cert_hits")?,
            cert_misses: get_opt("cert_misses")?,
            degraded: match opt(&root, "degraded") {
                Some(j) => j.as_bool()?,
                None => false,
            },
            degraded_reason: match opt(&root, "degraded_reason") {
                Some(j) => Some(j.as_str()?.to_string()),
                None => None,
            },
        })
    }
}

/// One journal record summary, as returned by `GET /history`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Journal sequence number.
    pub seq: u64,
    /// Content hash of the verified spec.
    pub spec_hash: String,
    /// Program name from the report.
    pub program: String,
    /// Whether every check passed.
    pub passed: bool,
    /// Number of checks in the report.
    pub checks: u64,
}

impl HistoryEntry {
    fn write(&self, out: &mut String) {
        out.push_str(&format!("{{\"seq\":{},\"spec\":", self.seq));
        write_string(out, &self.spec_hash);
        out.push_str(",\"program\":");
        write_string(out, &self.program);
        out.push_str(&format!(
            ",\"passed\":{},\"checks\":{}}}",
            self.passed, self.checks
        ));
    }

    fn from_value(j: &Json) -> Result<Self, String> {
        Ok(HistoryEntry {
            seq: u64::try_from(j.field("seq")?.as_int()?).map_err(|_| "negative seq")?,
            spec_hash: j.field("spec")?.as_str()?.to_string(),
            program: j.field("program")?.as_str()?.to_string(),
            passed: j.field("passed")?.as_bool()?,
            checks: u64::try_from(j.field("checks")?.as_int()?).map_err(|_| "negative checks")?,
        })
    }
}

/// Serializes a history listing as a JSON array.
pub fn history_to_json(entries: &[HistoryEntry]) -> String {
    let mut out = String::with_capacity(32 + entries.len() * 96);
    out.push('[');
    for (k, e) in entries.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        e.write(&mut out);
    }
    out.push(']');
    out
}

/// Parses a history listing.
pub fn history_from_json(src: &str) -> Result<Vec<HistoryEntry>, String> {
    let root = Json::parse(src)?;
    root.as_arr()?
        .iter()
        .map(HistoryEntry::from_value)
        .collect()
}

/// An `{"error": msg}` body (the shape of every non-200 reply).
pub fn error_body(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len() + 12);
    out.push_str("{\"error\":");
    write_string(&mut out, msg);
    out.push('}');
    out
}

/// Extracts the message from an error body, if `src` is one.
pub fn error_message(src: &str) -> Option<String> {
    let root = Json::parse(src).ok()?;
    Some(root.field("error").ok()?.as_str().ok()?.to_string())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn verify_request_round_trips_and_defaults() {
        let mut req = VerifyRequest::new("program P\nend");
        req.engine = Engine::Symbolic;
        req.universe = Universe::AllStates;
        req.compositional = true;
        req.timeout_ms = Some(1234);
        req.request_id = Some("abcd-42".into());
        let back = VerifyRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back.spec, req.spec);
        assert_eq!(back.engine, Engine::Symbolic);
        assert_eq!(back.universe, Universe::AllStates);
        assert!(back.compositional);
        assert_eq!(back.timeout_ms, Some(1234));
        assert_eq!(back.request_id.as_deref(), Some("abcd-42"));

        let minimal = VerifyRequest::from_json("{\"spec\":\"x\"}").unwrap();
        assert_eq!(minimal.engine, Engine::Compiled);
        assert_eq!(minimal.universe, Universe::Reachable);
        assert!(!minimal.compositional);
        assert_eq!(minimal.timeout_ms, None);
        assert_eq!(minimal.request_id, None);
        // Flat requests stay byte-compatible with pre-compositional
        // daemons: the flag is only on the wire when set.
        assert!(!VerifyRequest::new("x").to_json().contains("compositional"));

        assert!(VerifyRequest::from_json("{}").is_err(), "spec is required");
        assert!(VerifyRequest::from_json("{\"spec\":\"x\",\"engine\":\"warp\"}").is_err());
        assert!(VerifyRequest::from_json("{\"spec\":\"x\",\"timeout_ms\":-1}").is_err());
    }

    #[test]
    fn status_and_history_round_trip() {
        let status = StatusResponse {
            specs: 3,
            verdicts: 17,
            workers: 2,
            uptime_ms: 99,
            last_seq: 17,
            queue_depth: 4,
            degraded: true,
            degraded_reason: Some("journal fsync: No space left on device".into()),
            cert_hits: 12,
            cert_misses: 5,
        };
        assert_eq!(
            StatusResponse::from_json(&status.to_json()).unwrap(),
            status
        );

        // Absence tolerance: a pre-operational-fields reply (written by
        // an older daemon) still parses, with documented defaults.
        let old =
            StatusResponse::from_json("{\"specs\":1,\"verdicts\":2,\"workers\":3,\"uptime_ms\":4}")
                .unwrap();
        assert_eq!(old.last_seq, 0);
        assert_eq!(old.queue_depth, 0);
        assert!(!old.degraded);
        assert_eq!(old.degraded_reason, None);
        assert_eq!((old.cert_hits, old.cert_misses), (0, 0));

        let entries = vec![
            HistoryEntry {
                seq: 1,
                spec_hash: "ab".repeat(16),
                program: "P ∥ Q".into(),
                passed: true,
                checks: 4,
            },
            HistoryEntry {
                seq: 2,
                spec_hash: "cd".repeat(16),
                program: "R".into(),
                passed: false,
                checks: 1,
            },
        ];
        assert_eq!(
            history_from_json(&history_to_json(&entries)).unwrap(),
            entries
        );
        assert_eq!(history_from_json("[]").unwrap(), Vec::new());
    }

    #[test]
    fn error_bodies_round_trip() {
        let body = error_body("spec: line 3: no such variable `zz`");
        assert_eq!(
            error_message(&body).as_deref(),
            Some("spec: line 3: no such variable `zz`")
        );
        assert_eq!(error_message("{\"ok\":true}"), None);
        assert_eq!(error_message("not json"), None);
    }
}
