//! The TCP front end: accept loop, connection threads, routing.
//!
//! Thread-per-connection over [`std::net::TcpListener`], capped at
//! [`MAX_CONNECTIONS`] concurrent connections (excess submissions get
//! an immediate `503` rather than an unbounded thread pile-up; actual
//! verification concurrency is further bounded by the service's worker
//! pool and its admission limit). One request per connection,
//! `Connection: close`.
//!
//! Connection discipline ([`ServerOptions`]): every socket gets
//! per-read/per-write timeouts plus a whole-request deadline, so a
//! slowloris peer — one byte per read-timeout, forever — is cut off at
//! the deadline instead of pinning a connection slot. Shed load
//! (connection cap, service admission control) answers `503` with a
//! `Retry-After` hint, which the `unity-check --serve` retry loop
//! honors.
//!
//! Routes:
//!
//! | method & path    | handler                                  |
//! |------------------|------------------------------------------|
//! | `POST /verify`   | [`Service::verify`]                      |
//! | `GET /status`    | [`Service::status`]                      |
//! | `GET /history`   | [`Service::history`] (`?spec=` filters)  |
//!
//! [`Server::shutdown`] stops the accept loop deterministically (flag +
//! self-connect) and joins it; in-flight connection threads finish
//! their one response on their own. Graceful drain for SIGTERM lives in
//! the binary: stop accepting ([`Server::shutdown`]), then
//! [`Service::drain`], then exit.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::http::{read_request_within, write_response, write_response_with, Request};
use crate::proto::{error_body, history_to_json, VerifyRequest};
use crate::service::{Service, ServiceError};

/// Maximum concurrent connections before the server answers `503`.
pub const MAX_CONNECTIONS: usize = 64;

/// Per-connection socket policy.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Socket read timeout (each `read` syscall).
    pub read_timeout: Duration,
    /// Socket write timeout (each `write` syscall).
    pub write_timeout: Duration,
    /// Whole-request deadline: headers + body must arrive within this,
    /// regardless of how many tiny reads the peer spreads them over.
    pub request_deadline: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
        }
    }
}

/// A running server: accept loop on its own thread.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
/// serving `service` under the default socket policy.
pub fn start(service: Arc<Service>, addr: &str) -> Result<Server, String> {
    start_with(service, addr, ServerOptions::default())
}

/// [`start`] with an explicit socket policy (tests tighten the
/// deadlines to keep slowloris scenarios fast).
pub fn start_with(
    service: Arc<Service>,
    addr: &str,
    opts: ServerOptions,
) -> Result<Server, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("unity-serve-accept".into())
        .spawn(move || accept_loop(&listener, &service, &stop2, opts))
        .map_err(|e| format!("spawn accept loop: {e}"))?;
    Ok(Server {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
    })
}

impl Server {
    /// The bound address (the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    stop: &AtomicBool,
    opts: ServerOptions,
) {
    let live = Arc::new(AtomicUsize::new(0));
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if live.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
            let _ = write_response_with(
                &stream,
                503,
                Some(1),
                &error_body("connection limit reached"),
            );
            continue;
        }
        live.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(service);
        let live_in_conn = Arc::clone(&live);
        let spawned = std::thread::Builder::new()
            .name("unity-serve-conn".into())
            .spawn(move || {
                handle_connection(&stream, &service, opts);
                live_in_conn.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            live.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn handle_connection(stream: &TcpStream, service: &Service, opts: ServerOptions) {
    let _ = stream.set_read_timeout(Some(opts.read_timeout));
    let _ = stream.set_write_timeout(Some(opts.write_timeout));
    match read_request_within(stream, opts.request_deadline) {
        Ok(req) => {
            let (status, retry_after, body) = route(service, &req);
            let _ = write_response_with(stream, status, retry_after, &body);
        }
        Err(e) => {
            // Malformed, oversized, or too-slow request: one clean 4xx
            // (best-effort — the peer may already be gone) and close.
            let status = if e.contains("deadline") { 408 } else { 400 };
            let _ = write_response(stream, status, &error_body(&e));
        }
    }
}

/// Dispatches one parsed request to the service. The middle element is
/// an optional `Retry-After` value for shed load.
fn route(service: &Service, req: &Request) -> (u16, Option<u64>, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/verify") => {
            let Ok(body) = std::str::from_utf8(&req.body) else {
                return (400, None, error_body("body is not UTF-8"));
            };
            let vreq = match VerifyRequest::from_json(body) {
                Ok(r) => r,
                Err(e) => return (400, None, error_body(&format!("request: {e}"))),
            };
            match service.verify(vreq) {
                Ok(resp) => (200, None, resp.to_json()),
                Err(e @ ServiceError::BadRequest(_)) => (400, None, error_body(&e.to_string())),
                Err(e @ ServiceError::Timeout(_)) => (504, None, error_body(&e.to_string())),
                Err(e @ ServiceError::Internal(_)) => (500, None, error_body(&e.to_string())),
                Err(ServiceError::Overloaded(secs)) => (
                    503,
                    Some(secs),
                    error_body(&ServiceError::Overloaded(secs).to_string()),
                ),
            }
        }
        ("GET", "/status") => (200, None, service.status().to_json()),
        ("GET", "/history") => (
            200,
            None,
            history_to_json(&service.history(req.query_value("spec"))),
        ),
        (_, "/verify" | "/status" | "/history") => (405, None, error_body("method not allowed")),
        _ => (404, None, error_body("no such endpoint")),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::http::request;
    use crate::proto::{history_from_json, StatusResponse, VerifyResponse};
    use crate::service::ServiceConfig;
    use std::io::Write as _;

    const SPEC: &str = "program P\n  var x : bool\n  init !x\n  fair cmd go: !x -> x := true\nend\nspec S\n  goal: true leadsto x\nend";

    fn start_tmp(name: &str) -> (Server, Arc<Service>) {
        let dir =
            std::env::temp_dir().join(format!("unity_serve_server_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            Service::open(ServiceConfig {
                data_dir: dir,
                workers: 2,
                default_timeout: Some(Duration::from_secs(60)),
                queue_limit: 8,
            })
            .unwrap(),
        );
        let server = start(Arc::clone(&service), "127.0.0.1:0").unwrap();
        (server, service)
    }

    #[test]
    fn the_three_endpoints_answer_over_http() {
        let (server, _service) = start_tmp("endpoints");
        let addr = server.local_addr().to_string();

        let req = VerifyRequest::new(SPEC).to_json();
        let (status, body) = request(&addr, "POST", "/verify", Some(&req)).unwrap();
        assert_eq!(status, 200, "{body}");
        let resp = VerifyResponse::from_json(&body).unwrap();
        assert_eq!(resp.seq, 1);
        assert!(resp.report.all_passed());

        let (status, body) = request(&addr, "GET", "/status", None).unwrap();
        assert_eq!(status, 200);
        let st = StatusResponse::from_json(&body).unwrap();
        assert_eq!((st.specs, st.verdicts, st.workers), (1, 1, 2));
        assert_eq!(st.last_seq, 1);
        assert!(!st.degraded);

        let path = format!("/history?spec={}", resp.spec_hash);
        let (status, body) = request(&addr, "GET", &path, None).unwrap();
        assert_eq!(status, 200);
        let entries = history_from_json(&body).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].spec_hash, resp.spec_hash);

        server.shutdown();
    }

    #[test]
    fn protocol_errors_map_to_http_statuses() {
        let (server, _service) = start_tmp("errors");
        let addr = server.local_addr().to_string();

        let (status, body) = request(&addr, "POST", "/verify", Some("not json")).unwrap();
        assert_eq!(status, 400, "{body}");
        let (status, _) = request(&addr, "POST", "/verify", Some("{\"spec\":\"banana\"}")).unwrap();
        assert_eq!(status, 400);
        let (status, _) = request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = request(&addr, "DELETE", "/verify", None).unwrap();
        assert_eq!(status, 405);

        server.shutdown();
    }

    #[test]
    fn a_slowloris_peer_is_cut_off_at_the_request_deadline() {
        let dir = std::env::temp_dir().join(format!(
            "unity_serve_server_{}_slowloris",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            Service::open(ServiceConfig {
                data_dir: dir,
                workers: 1,
                default_timeout: None,
                queue_limit: 4,
            })
            .unwrap(),
        );
        let server = start_with(
            Arc::clone(&service),
            "127.0.0.1:0",
            ServerOptions {
                read_timeout: Duration::from_millis(50),
                write_timeout: Duration::from_secs(5),
                request_deadline: Duration::from_millis(200),
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // Trickle one byte at a time, never completing the request.
        let mut sock = TcpStream::connect(addr).unwrap();
        let t0 = std::time::Instant::now();
        for b in b"POST /verify" {
            if sock.write_all(&[*b]).is_err() {
                break; // server closed us: exactly the point
            }
            std::thread::sleep(Duration::from_millis(40));
            if t0.elapsed() > Duration::from_secs(3) {
                panic!("server tolerated the trickle too long");
            }
        }
        drop(sock);

        // The server survives and still answers honest clients.
        let (status, _) = request(&addr.to_string(), "GET", "/status", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    // 503 + Retry-After shedding under a saturated admission queue is
    // covered deterministically (via a `pool.job` delay failpoint) in
    // `tests/fault_injection.rs`, which runs in its own process.
}
