//! `unity-serve` — the verification daemon.
//!
//! ```text
//! unity-serve --data-dir DIR [--addr 127.0.0.1:7407] [--workers N]
//!             [--timeout-ms MS] [--queue-limit N] [--version]
//! ```
//!
//! Binds the address (`:0` picks an ephemeral port), prints one
//! `listening on http://HOST:PORT` line to stdout, and serves until
//! killed. Artifacts and the verdict journal live under `--data-dir`;
//! restart with the same directory and the full history replays.
//!
//! Exit code 2 on usage errors — including `--workers 0`, an invalid
//! `UNITY_BUILD_THREADS` override (the same validation `unity-check`
//! applies to `--threads`), and a malformed `UNITY_FAILPOINTS`
//! schedule (a typo'd fault plan must not silently test nothing).
//!
//! **Shutdown contract**: `SIGTERM`/`SIGINT` trigger a graceful drain —
//! stop accepting, let in-flight verifications finish (bounded), then
//! exit 0. `kill -9` is the crash case the journal's fsync discipline
//! exists for: restart and replay.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use unity_mc::prelude::validate_build_threads_env;
use unity_serve::{Service, ServiceConfig};

const USAGE: &str = "usage: unity-serve --data-dir DIR [--addr 127.0.0.1:7407] \
                     [--workers N] [--timeout-ms MS] [--queue-limit N] [--version]";

/// How long a graceful drain waits for in-flight verifications before
/// giving up and exiting anyway (the journal is synced per-append, so
/// nothing durable is at risk — only the abandoned clients' responses).
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// Signal plumbing: the handler only sets a flag (the one operation
/// that is async-signal-safe *and* race-free); the main loop polls it.
/// Raw `signal(2)` FFI keeps the workspace dependency-free — this is
/// the binary's single unsafe block, and the library remains
/// `#![forbid(unsafe_code)]`.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
            signal(SIGINT, on_term as extern "C" fn(i32) as usize);
        }
    }

    pub fn termed() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn termed() -> bool {
        false
    }
}

struct Options {
    data_dir: std::path::PathBuf,
    addr: String,
    workers: usize,
    timeout_ms: u64,
    queue_limit: Option<usize>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut data_dir = None;
    let mut addr = "127.0.0.1:7407".to_string();
    let mut workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    let mut timeout_ms = 300_000u64;
    let mut queue_limit = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--data-dir" => {
                data_dir =
                    Some(std::path::PathBuf::from(it.next().ok_or_else(|| {
                        format!("--data-dir needs a path; {USAGE}")
                    })?));
            }
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("--addr needs host:port; {USAGE}"))?;
            }
            "--workers" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--workers needs a count; {USAGE}"))?;
                if n == 0 {
                    return Err(format!("--workers must be at least 1; {USAGE}"));
                }
                workers = n;
            }
            "--timeout-ms" => {
                timeout_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--timeout-ms needs a number; {USAGE}"))?;
            }
            "--queue-limit" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--queue-limit needs a count; {USAGE}"))?;
                if n == 0 {
                    return Err(format!("--queue-limit must be at least 1; {USAGE}"));
                }
                queue_limit = Some(n);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--version" | "-V" => {
                println!("unity-serve {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`; {USAGE}")),
        }
    }
    Ok(Options {
        data_dir: data_dir.ok_or_else(|| format!("--data-dir is required; {USAGE}"))?,
        addr,
        workers,
        timeout_ms,
        queue_limit,
    })
}

fn main() -> ExitCode {
    if let Err(msg) = validate_build_threads_env() {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    // Fault schedule (no-op unless built with the `failpoints` feature
    // AND `UNITY_FAILPOINTS` is set). Malformed schedules are a usage
    // error: a typo must not silently run an un-faulted daemon.
    match unity_fault::setup_from_env() {
        Ok(0) => {}
        Ok(n) => {
            // Stderr, deliberately: clients parse the first stdout line
            // for the listening address.
            eprintln!(
                "unity-serve: {n} failpoint(s) armed: {}",
                unity_fault::active().join(", ")
            );
        }
        Err(msg) => {
            eprintln!("UNITY_FAILPOINTS: {msg}");
            return ExitCode::from(2);
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let service = match Service::open(ServiceConfig {
        data_dir: opts.data_dir.clone(),
        workers: opts.workers,
        default_timeout: (opts.timeout_ms > 0).then(|| Duration::from_millis(opts.timeout_ms)),
        queue_limit: opts
            .queue_limit
            .unwrap_or_else(|| ServiceConfig::default_queue_limit(opts.workers)),
    }) {
        Ok(s) => Arc::new(s),
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let replayed = service.status().verdicts;
    let server = match unity_serve::start(Arc::clone(&service), &opts.addr) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    sig::install();
    println!(
        "unity-serve listening on http://{} (data dir {}, {} worker(s), {} verdict(s) replayed)",
        server.local_addr(),
        opts.data_dir.display(),
        opts.workers,
        replayed
    );
    // The port line must be visible before clients try to parse it.
    let _ = std::io::stdout().flush();
    // Serve until signalled; the accept loop runs on its own thread.
    while !sig::termed() {
        std::thread::sleep(Duration::from_millis(100));
    }
    // Graceful drain: stop accepting, finish what was admitted, leave.
    // Every journaled verdict was fsync'd when it was acked, so exiting
    // after the drain (even an incomplete one) loses nothing durable.
    eprintln!("unity-serve: signal received, draining...");
    server.shutdown();
    let drained = service.drain(DRAIN_TIMEOUT);
    if !drained {
        eprintln!(
            "unity-serve: drain timed out after {}s with {} submission(s) in flight",
            DRAIN_TIMEOUT.as_secs(),
            service.in_flight()
        );
    }
    // One breath for connection threads to flush their final response
    // bytes (drain covers the verification, not the socket write).
    std::thread::sleep(Duration::from_millis(50));
    eprintln!("unity-serve: drained, exiting");
    ExitCode::SUCCESS
}
