//! `unity-serve` — the verification daemon.
//!
//! ```text
//! unity-serve --data-dir DIR [--addr 127.0.0.1:7407] [--workers N]
//!             [--timeout-ms MS] [--version]
//! ```
//!
//! Binds the address (`:0` picks an ephemeral port), prints one
//! `listening on http://HOST:PORT` line to stdout, and serves until
//! killed. Artifacts and the verdict journal live under `--data-dir`;
//! restart with the same directory and the full history replays.
//!
//! Exit code 2 on usage errors — including `--workers 0` and an
//! invalid `UNITY_BUILD_THREADS` override, the same validation
//! `unity-check` applies to `--threads`.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use unity_mc::prelude::validate_build_threads_env;
use unity_serve::{Service, ServiceConfig};

const USAGE: &str = "usage: unity-serve --data-dir DIR [--addr 127.0.0.1:7407] \
                     [--workers N] [--timeout-ms MS] [--version]";

struct Options {
    data_dir: std::path::PathBuf,
    addr: String,
    workers: usize,
    timeout_ms: u64,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut data_dir = None;
    let mut addr = "127.0.0.1:7407".to_string();
    let mut workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    let mut timeout_ms = 300_000u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--data-dir" => {
                data_dir =
                    Some(std::path::PathBuf::from(it.next().ok_or_else(|| {
                        format!("--data-dir needs a path; {USAGE}")
                    })?));
            }
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("--addr needs host:port; {USAGE}"))?;
            }
            "--workers" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--workers needs a count; {USAGE}"))?;
                if n == 0 {
                    return Err(format!("--workers must be at least 1; {USAGE}"));
                }
                workers = n;
            }
            "--timeout-ms" => {
                timeout_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--timeout-ms needs a number; {USAGE}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--version" | "-V" => {
                println!("unity-serve {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`; {USAGE}")),
        }
    }
    Ok(Options {
        data_dir: data_dir.ok_or_else(|| format!("--data-dir is required; {USAGE}"))?,
        addr,
        workers,
        timeout_ms,
    })
}

fn main() -> ExitCode {
    if let Err(msg) = validate_build_threads_env() {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let service = match Service::open(ServiceConfig {
        data_dir: opts.data_dir.clone(),
        workers: opts.workers,
        default_timeout: (opts.timeout_ms > 0).then(|| Duration::from_millis(opts.timeout_ms)),
    }) {
        Ok(s) => Arc::new(s),
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let replayed = service.status().verdicts;
    let server = match unity_serve::start(Arc::clone(&service), &opts.addr) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    println!(
        "unity-serve listening on http://{} (data dir {}, {} worker(s), {} verdict(s) replayed)",
        server.local_addr(),
        opts.data_dir.display(),
        opts.workers,
        replayed
    );
    // The port line must be visible before clients try to parse it.
    let _ = std::io::stdout().flush();
    // Serve until killed; the accept loop runs on its own thread.
    loop {
        std::thread::park();
    }
}
