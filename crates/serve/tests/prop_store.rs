//! Differential tests of the artifact store: a verdict computed through
//! a **cold** store (nothing persisted — every artifact built from the
//! spec) must equal one computed through a **warm** store (artifacts
//! decoded from segment files or the memory layer) witness-for-witness,
//! across engines × universes — plus the kill-and-restart journal
//! replay guarantee.
//!
//! This is the service's core soundness obligation: caching may only
//! change *latency*, never a verdict, a counterexample, or history.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use proptest::prelude::*;
use unity_mc::prelude::{Engine, Universe};
use unity_serve::{CacheState, Service, ServiceConfig, VerifyRequest};

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "unity_serve_prop_{}_{tag}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path) -> Service {
    Service::open(ServiceConfig {
        data_dir: dir.to_path_buf(),
        workers: 1,
        default_timeout: Some(Duration::from_secs(120)),
        queue_limit: 8,
    })
    .unwrap()
}

/// A small two-counter spec family, parameterized so different cases
/// hash (and verify) differently: counter bounds, a shared cap, and a
/// possibly-false invariant threshold (exercising counterexample
/// witnesses through the store).
fn spec_source(xmax: i64, ymax: i64, inv_cap: i64) -> String {
    format!(
        "program Left\n  var x : int 0..{xmax} local\n  var total : int 0..{}\n  init x == 0 && total == 0\n  fair cmd lx: x < {xmax} -> x := x + 1, total := total + 1\nend\n\
         program Right\n  var y : int 0..{ymax} local\n  var total : int 0..{}\n  init y == 0 && total == 0\n  fair cmd ry: y < {ymax} -> y := y + 1, total := total + 1\nend\n\
         spec Pair\n  conserve: invariant total == sum(x, y)\n  bounded: invariant total <= {inv_cap}\n  done: true leadsto total == {}\nend",
        xmax + ymax,
        xmax + ymax,
        xmax + ymax
    )
}

/// One check's identity-relevant content: name plus the full outcome
/// (witness states included via the derived `PartialEq`).
fn signatures(report: &unity_mc::prelude::Report) -> Vec<(String, String)> {
    report
        .checks
        .iter()
        .map(|c| (c.name.clone(), format!("{:?}", c.verdict.outcome)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cold store ≡ warm-memory store ≡ warm-disk store ≡
    /// restarted-process store, witness-for-witness, for every engine ×
    /// universe combination.
    #[test]
    fn cold_and_warm_stores_agree_witness_for_witness(
        xmax in 1i64..=3,
        ymax in 1i64..=3,
        tighten in any::<bool>(),
        engine_pick in 0usize..3,
        universe_pick in 0usize..2,
    ) {
        let engine = [Engine::Compiled, Engine::Reference, Engine::Symbolic][engine_pick];
        let universe = [Universe::Reachable, Universe::AllStates][universe_pick];
        // `tighten` makes the `bounded` invariant false, so witnesses
        // (not just passes) flow through the warm path.
        let inv_cap = if tighten { xmax + ymax - 1 } else { xmax + ymax };
        let src = spec_source(xmax, ymax, inv_cap);
        let request = || {
            let mut r = VerifyRequest::new(src.clone());
            r.engine = engine;
            r.universe = universe;
            r
        };

        let dir = fresh_dir("diff");
        let service = open(&dir);
        let cold = service.verify(request()).unwrap();
        // Over the reachable universe the battery passes iff the cap is
        // not tightened; over all states verdicts may differ (that is
        // fine — the differential property below is what matters).
        if universe == Universe::Reachable {
            prop_assert_eq!(cold.report.all_passed(), !tighten);
        }

        let warm_memory = service.verify(request()).unwrap();
        service.drop_memory_cache();
        let warm_disk = service.verify(request()).unwrap();
        drop(service);
        let restarted = open(&dir);
        let warm_restart = restarted.verify(request()).unwrap();

        let expected = signatures(&cold.report);
        for (tag, resp) in [
            ("memory", &warm_memory),
            ("disk", &warm_disk),
            ("restart", &warm_restart),
        ] {
            prop_assert_eq!(
                &signatures(&resp.report),
                &expected,
                "{} diverged from cold ({:?}/{:?})",
                tag,
                engine,
                universe
            );
            prop_assert_eq!(&resp.spec_hash, &cold.spec_hash);
        }

        // The compiled engine's expensive artifacts must actually come
        // from the store on the warm runs (for reference/symbolic the
        // store may legitimately have nothing packable to offer).
        if engine == Engine::Compiled {
            let slot = match universe {
                Universe::Reachable => warm_restart.cache.ts_reachable,
                Universe::AllStates => warm_restart.cache.ts_all_states,
            };
            prop_assert_eq!(slot, CacheState::Hit, "restart should hit the disk store");
        }

        // Restart replayed the journal: the history covers all four
        // submissions of this spec with contiguous sequence numbers.
        let history = restarted.history(Some(&cold.spec_hash));
        prop_assert_eq!(history.len(), 4);
        prop_assert_eq!(
            history.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (1..=4).collect::<Vec<_>>()
        );
        let cold_passed = cold.report.all_passed();
        prop_assert!(history.iter().all(|e| e.passed == cold_passed));
    }
}

/// Kill-and-restart: a journal torn mid-append (the `kill -9`
/// signature) replays every acknowledged verdict and drops only the
/// unacknowledged tail.
#[test]
fn journal_replay_survives_a_torn_tail() {
    let dir = fresh_dir("torn");
    let src_a = spec_source(2, 2, 4);
    let src_b = spec_source(3, 1, 4);
    let (hash_a, hash_b);
    {
        let service = open(&dir);
        hash_a = service
            .verify(VerifyRequest::new(src_a.clone()))
            .unwrap()
            .spec_hash;
        hash_b = service.verify(VerifyRequest::new(src_b)).unwrap().spec_hash;
    }
    // Tear the journal the way an interrupted append would: a record
    // prefix with no newline.
    let journal = dir.join("journal.log");
    let mut bytes = std::fs::read(&journal).unwrap();
    let keep = bytes.len();
    bytes.extend_from_slice(b"{\"seq\":3,\"spec\":\"dead");
    std::fs::write(&journal, &bytes).unwrap();

    let service = open(&dir);
    let history = service.history(None);
    assert_eq!(history.len(), 2, "both acknowledged verdicts replayed");
    assert_eq!(history[0].spec_hash, hash_a);
    assert_eq!(history[1].spec_hash, hash_b);
    assert_eq!(service.status().verdicts, 2);

    // The sequence resumes where the acknowledged history ended.
    let again = service.verify(VerifyRequest::new(src_a)).unwrap();
    assert_eq!(again.seq, 3);
    assert_eq!(again.spec_hash, hash_a);

    // Sanity: the tear really was in the file (we did not re-read a
    // rewritten journal).
    assert!(std::fs::metadata(&journal).unwrap().len() > keep as u64);
}
