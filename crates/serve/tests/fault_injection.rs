//! Deterministic fault injection against the in-process service: the
//! degraded-mode and load-shedding behavior that unit tests cannot
//! exercise without racing each other.
//!
//! The failpoint registry is **process-global**, so every test here
//! serializes on one mutex and tears the registry down before arming
//! its own schedule — this integration binary is its own process,
//! isolated from the library's unit tests.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use unity_fault::FailGuard;
use unity_serve::{Service, ServiceConfig, ServiceError, VerifyRequest};

const SPEC: &str = "program P\n  var a : int 0..3\n  var b : int 0..3\n  init a == 0 && b == 0\n  fair cmd right: a < 3 -> a := a + 1\n  fair cmd up: b < 3 -> b := b + 1\nend\nspec S\n  cap: invariant a <= 3\n  done: true leadsto a == 3 && b == 3\nend";

static SERIAL: Mutex<()> = Mutex::new(());

/// Serializes the test and clears any schedule a predecessor armed.
fn serial() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    unity_fault::teardown();
    guard
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "unity_serve_fault_{}_{tag}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path, queue_limit: usize) -> Service {
    Service::open(ServiceConfig {
        data_dir: dir.to_path_buf(),
        workers: 1,
        default_timeout: Some(Duration::from_secs(60)),
        queue_limit,
    })
    .unwrap()
}

#[test]
fn a_dead_artifact_disk_degrades_the_service_instead_of_failing_requests() {
    let _serial = serial();
    let dir = fresh_dir("store");
    let service = open(&dir, 8);
    let _fp = FailGuard::new("store.save.dir", "return(disk full: injected)").unwrap();

    // The verdict still comes back — persistence failed, answering
    // did not.
    let first = service.verify(VerifyRequest::new(SPEC)).unwrap();
    assert_eq!(first.seq, 1);
    assert!(first.report.all_passed());
    let status = service.status();
    assert!(status.degraded, "persist failure must flip degraded mode");
    assert!(
        status
            .degraded_reason
            .as_deref()
            .unwrap()
            .contains("disk full"),
        "reason names the fault: {:?}",
        status.degraded_reason
    );

    // Degraded is sticky; later submissions answer with reserved
    // (unjournaled) sequence numbers and skip persistence entirely.
    let second = service.verify(VerifyRequest::new(SPEC)).unwrap();
    assert_eq!(second.seq, 2);
    assert!(second.report.all_passed());
    assert_eq!(service.status().verdicts, 2);

    // A restart with a healthy disk clears the mode. Nothing served
    // while degraded was journaled, so the history honestly restarts.
    drop(service);
    drop(_fp);
    let restarted = open(&dir, 8);
    let status = restarted.status();
    assert!(!status.degraded);
    assert_eq!(status.verdicts, 0, "degraded verdicts were never durable");
    let again = restarted.verify(VerifyRequest::new(SPEC)).unwrap();
    assert_eq!(again.seq, 1);
    assert!(!restarted.status().degraded);
}

#[test]
fn a_failing_journal_append_degrades_but_still_answers() {
    let _serial = serial();
    let dir = fresh_dir("journal");
    let service = open(&dir, 8);
    // `journal.append.write` fails *before* any bytes reach the file:
    // the verdict is computed and returned, but nothing is durable.
    let _fp = FailGuard::new("journal.append.write", "return(injected write error)").unwrap();

    let resp = service.verify(VerifyRequest::new(SPEC)).unwrap();
    assert_eq!(resp.seq, 1);
    assert!(resp.report.all_passed());
    let status = service.status();
    assert!(status.degraded);
    assert!(
        status
            .degraded_reason
            .as_deref()
            .unwrap()
            .contains("injected"),
        "{:?}",
        status.degraded_reason
    );

    drop(service);
    drop(_fp);
    let restarted = open(&dir, 8);
    assert!(!restarted.status().degraded);
    assert_eq!(restarted.status().verdicts, 0);
    // The journal file is intact (or absent) — appends work again.
    let again = restarted.verify(VerifyRequest::new(SPEC)).unwrap();
    assert_eq!(again.seq, 1);
    assert_eq!(restarted.history(None).len(), 1);
}

#[test]
fn admission_control_sheds_load_with_a_retry_hint() {
    let _serial = serial();
    let dir = fresh_dir("shed");
    let service = Arc::new(open(&dir, 1));
    // Hold the single admission slot deterministically: the first job
    // sleeps 400 ms inside the worker before verifying.
    let _fp = FailGuard::new("pool.job", "1*delay(400)").unwrap();

    let slow = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || service.verify(VerifyRequest::new(SPEC)))
    };
    // Let the slow submission charge the admission gauge first.
    while service.in_flight() == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    let shed = service.verify(VerifyRequest::new(SPEC)).unwrap_err();
    match shed {
        ServiceError::Overloaded(secs) => {
            assert!((1..=30).contains(&secs), "retry hint out of range: {secs}");
        }
        other => panic!("expected Overloaded, got: {other}"),
    }

    // The admitted submission finishes untouched, and capacity frees.
    let first = slow.join().unwrap().unwrap();
    assert_eq!(first.seq, 1);
    assert!(first.report.all_passed());
    assert_eq!(service.in_flight(), 0);
    let second = service.verify(VerifyRequest::new(SPEC)).unwrap();
    assert_eq!(second.seq, 2);
}

#[test]
fn shed_load_surfaces_as_http_503_with_retry_after() {
    let _serial = serial();
    let dir = fresh_dir("http503");
    let service = Arc::new(open(&dir, 1));
    let server = unity_serve::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let _fp = FailGuard::new("pool.job", "1*delay(400)").unwrap();

    let payload = VerifyRequest::new(SPEC).to_json();
    let slow = {
        let (addr, payload) = (addr.clone(), payload.clone());
        std::thread::spawn(move || {
            unity_serve::http::request(&addr, "POST", "/verify", Some(&payload))
        })
    };
    while service.in_flight() == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    let reply = unity_serve::http::request_with(
        &addr,
        "POST",
        "/verify",
        Some(&payload),
        &unity_serve::http::ClientOptions::default(),
    )
    .unwrap();
    assert_eq!(reply.status, 503, "{}", reply.body);
    let secs = reply.retry_after.expect("503 carries Retry-After");
    assert!((1..=30).contains(&secs));
    assert!(
        unity_serve::proto::error_message(&reply.body)
            .unwrap()
            .contains("capacity"),
        "{}",
        reply.body
    );

    let (status, _) = slow.join().unwrap().unwrap();
    assert_eq!(status, 200, "the admitted submission still completes");
    server.shutdown();
}

#[test]
fn a_torn_journal_write_is_recovered_on_replay() {
    let _serial = serial();
    let dir = fresh_dir("torn");
    // First, two healthy acked verdicts.
    let hash;
    {
        let service = open(&dir, 8);
        hash = service.verify(VerifyRequest::new(SPEC)).unwrap().spec_hash;
        let other = SPEC.replace("a == 3 && b == 3", "a == 3");
        service.verify(VerifyRequest::new(other)).unwrap();
    }
    // Then tear the journal exactly as `fail_torn_write!` would: append
    // a record prefix with no newline (a crash mid-`write(2)`).
    let journal = dir.join("journal.log");
    let mut bytes = std::fs::read(&journal).unwrap();
    bytes.extend_from_slice(b"{\"seq\":3,\"spec\":\"dead");
    std::fs::write(&journal, &bytes).unwrap();

    let service = open(&dir, 8);
    assert_eq!(service.status().verdicts, 2, "acked verdicts all replay");
    assert!(!service.status().degraded);
    let next = service.verify(VerifyRequest::new(SPEC)).unwrap();
    assert_eq!(next.seq, 3, "sequence resumes after the dropped tail");
    assert_eq!(next.spec_hash, hash);
}
