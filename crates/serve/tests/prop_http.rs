//! Property tests of the HTTP front end's parsing discipline: whatever
//! bytes arrive — random garbage, mutated request lines, truncated
//! uploads, lying `content-length` headers — the server must answer
//! with a `4xx` (or close the connection cleanly) and **stay alive**.
//! It must never panic, hang, or produce a non-HTTP reply.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;
use unity_serve::{Service, ServiceConfig};

/// One server for the whole test process (leaked, never shut down —
/// the point is that no input kills it).
fn server_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("unity_prop_http_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            Service::open(ServiceConfig {
                data_dir: dir,
                workers: 1,
                default_timeout: Some(Duration::from_secs(30)),
                queue_limit: 4,
            })
            .unwrap(),
        );
        let server = unity_serve::start(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        Box::leak(Box::new(server));
        addr
    })
}

/// Writes `raw` to a fresh connection, half-closes, and drains the
/// reply. Returns the reply bytes (possibly empty — a clean close).
fn exchange(raw: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    // The peer may reject mid-upload (e.g. an oversized
    // content-length); a write error then is the server being prompt,
    // not a failure.
    let _ = stream.write_all(raw);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    reply
}

/// The liveness oracle: after any exchange, a well-formed `GET
/// /status` must still answer 200.
fn assert_server_alive() {
    let (status, body) = unity_serve::http::request(server_addr(), "GET", "/status", None).unwrap();
    assert_eq!(status, 200, "server wedged: {body}");
}

/// Every reply must be either empty (clean close) or a valid-looking
/// HTTP/1.1 status line; anything request-shaped enough to route still
/// only yields an HTTP answer.
fn assert_http_or_clean_close(raw: &[u8], reply: &[u8]) {
    if reply.is_empty() {
        return;
    }
    let text = String::from_utf8_lossy(reply);
    assert!(
        text.starts_with("HTTP/1.1 "),
        "non-HTTP reply to {:?}: {:?}",
        String::from_utf8_lossy(raw),
        text
    );
}

/// A plausible-but-mutated request: method and target drawn from small
/// pools (valid and invalid mixed), body length possibly disagreeing
/// with the header.
fn structured() -> impl Strategy<Value = Vec<u8>> {
    let method = prop_oneof![
        Just("GET"),
        Just("POST"),
        Just("PUT"),
        Just("get"),
        Just("BANANA"),
        Just(""),
    ];
    let target = prop_oneof![
        Just("/verify"),
        Just("/status"),
        Just("/history"),
        Just("/"),
        Just(""),
        Just("/verify?spec="),
        Just("/../../etc/passwd"),
        Just("/status extra"),
    ];
    let version = prop_oneof![
        Just("HTTP/1.1"),
        Just("HTTP/1.0"),
        Just("HTTP/9.9"),
        Just("SPDY/3"),
        Just(""),
    ];
    (method, target, version, vec(0u8..=255, 0..128), -64i64..256).prop_map(
        |(m, t, v, body, skew)| {
            let claimed = (body.len() as i64 + skew).max(-1);
            let mut raw = format!("{m} {t} {v}\r\ncontent-length: {claimed}\r\n\r\n").into_bytes();
            raw.extend_from_slice(&body);
            raw
        },
    )
}

/// A valid request truncated at an arbitrary byte — the client that
/// died mid-upload.
fn truncated() -> impl Strategy<Value = Vec<u8>> {
    (vec(0u8..=255, 0..200), 0usize..260).prop_map(|(body, cut)| {
        let mut raw = format!(
            "POST /verify HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        raw.truncate(cut.min(raw.len()));
        raw
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_bytes_never_kill_the_server(raw in vec(0u8..=255, 0..512)) {
        let reply = exchange(&raw);
        assert_http_or_clean_close(&raw, &reply);
        assert_server_alive();
    }

    #[test]
    fn mutated_requests_get_http_answers_or_clean_closes(raw in structured()) {
        let reply = exchange(&raw);
        assert_http_or_clean_close(&raw, &reply);
        assert_server_alive();
    }

    #[test]
    fn truncated_uploads_are_rejected_not_fatal(raw in truncated()) {
        let reply = exchange(&raw);
        assert_http_or_clean_close(&raw, &reply);
        // A complete-enough prefix may parse; a cut one must be 4xx or
        // a clean close — never 2xx (the body digest can't match) and
        // never silence-then-panic.
        assert_server_alive();
    }
}

#[test]
fn oversized_inputs_are_bounded_rejections() {
    // A header line far past the 16 KiB cap.
    let mut raw = b"GET /status HTTP/1.1\r\nx-padding: ".to_vec();
    raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
    raw.extend_from_slice(b"\r\n\r\n");
    let reply = exchange(&raw);
    assert_http_or_clean_close(&raw, &reply);

    // A content-length past the 8 MiB body cap: rejected up front, not
    // buffered.
    let raw = b"POST /verify HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n".to_vec();
    let reply = exchange(&raw);
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.starts_with("HTTP/1.1 400") || reply.is_empty(),
        "oversized body accepted: {text}"
    );
    assert_server_alive();
}
