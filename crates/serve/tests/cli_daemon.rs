//! End-to-end tests of the `unity-serve` binary: argument validation,
//! and the headline durability story — `kill -9` the daemon, restart it
//! over the same data dir, and watch the full verdict history replay.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use unity_serve::http::request;
use unity_serve::proto::history_from_json;
use unity_serve::{VerifyRequest, VerifyResponse};

const SPEC: &str = "program P\n  var x : bool\n  init !x\n  fair cmd go: !x -> x := true\nend\n\
                    spec S\n  goal: true leadsto x\nend";

fn unity_serve() -> Command {
    Command::new(env!("CARGO_BIN_EXE_unity-serve"))
}

/// A daemon child that is killed (SIGKILL) when dropped, so a failing
/// assertion cannot leak a listener process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Starts the daemon on an ephemeral port and parses the bound
    /// address from its one startup line.
    fn start(data_dir: &std::path::Path) -> Daemon {
        let mut child = unity_serve()
            .args([
                "--data-dir",
                data_dir.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).unwrap();
        let addr = line
            .split_once("http://")
            .and_then(|(_, rest)| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in startup line: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn verify(&self, spec: &str) -> VerifyResponse {
        let body = VerifyRequest::new(spec).to_json();
        let (status, body) = request(&self.addr, "POST", "/verify", Some(&body)).unwrap();
        assert_eq!(status, 200, "{body}");
        VerifyResponse::from_json(&body).unwrap()
    }

    /// `kill -9`: no shutdown handler runs, which is exactly the point.
    fn kill(mut self) {
        self.child.kill().unwrap();
        self.child.wait().unwrap();
        std::mem::forget(self); // Drop would double-kill
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("unity_serve_daemon_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_and_restart_preserves_the_verdict_history() {
    let dir = fresh_dir("restart");

    let daemon = Daemon::start(&dir);
    let first = daemon.verify(SPEC);
    assert_eq!(first.seq, 1);
    assert!(first.report.all_passed());
    let second = daemon.verify(SPEC);
    assert_eq!(second.seq, 2);
    daemon.kill();

    // Restart over the same data dir: history replays from the journal.
    let daemon = Daemon::start(&dir);
    let (status, body) = request(&daemon.addr, "GET", "/history", None).unwrap();
    assert_eq!(status, 200);
    let entries = history_from_json(&body).unwrap();
    assert_eq!(entries.len(), 2, "both verdicts survived the kill");
    assert_eq!(
        entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![1, 2]
    );
    assert!(entries.iter().all(|e| e.spec_hash == first.spec_hash));

    // And the artifact store survived too: the re-submission after the
    // restart is answered from disk.
    let third = daemon.verify(SPEC);
    assert_eq!(third.seq, 3);
    assert_eq!(
        format!("{:?}", third.cache.ts_reachable),
        "Hit",
        "restarted daemon should reuse the persisted transition system"
    );
    daemon.kill();
}

#[test]
fn zero_workers_is_a_usage_error() {
    let out = unity_serve()
        .args(["--data-dir", "/tmp/unused", "--workers", "0"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("--workers must be at least 1"), "{stderr}");
}

#[test]
fn missing_data_dir_is_a_usage_error() {
    let out = unity_serve().output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("--data-dir is required"), "{stderr}");
}

#[test]
fn invalid_build_threads_env_is_rejected_before_startup() {
    for bad in ["0", "three"] {
        let out = unity_serve()
            .args(["--data-dir", "/tmp/unused"])
            .env("UNITY_BUILD_THREADS", bad)
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "`{bad}`: {stderr}");
        assert!(stderr.contains("UNITY_BUILD_THREADS"), "{stderr}");
    }
}
