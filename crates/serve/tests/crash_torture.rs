//! Crash-consistency torture: kill the **real daemon binary** at every
//! persistence crashpoint and prove the journal/store invariants hold
//! across restart.
//!
//! The contract under test, for every crash schedule:
//!
//! 1. **No acked verdict is lost** — a sequence number a client saw
//!    before the crash is still in the history after restart.
//! 2. **No wrong answer** — re-verifying any spec after restart yields
//!    the same verdict the healthy daemon gave (a torn artifact segment
//!    may cost a rebuild, never a different answer).
//! 3. **Clean recovery** — the restarted daemon is healthy (not
//!    degraded) and the sequence numbering stays contiguous.
//!
//! The daemon is spawned via `CARGO_BIN_EXE_unity-serve`, which the
//! self-dev-dependency builds with the `failpoints` feature, so
//! `UNITY_FAILPOINTS=<point>=1*abort` (or `1*truncate(k)` for torn
//! writes) crashes it at exactly the chosen syscall boundary.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use unity_serve::proto::history_from_json;
use unity_serve::{spec_hash, StatusResponse, VerifyRequest, VerifyResponse};

const SPEC_A: &str = "program P\n  var a : int 0..3\n  var b : int 0..3\n  init a == 0 && b == 0\n  fair cmd right: a < 3 -> a := a + 1\n  fair cmd up: b < 3 -> b := b + 1\nend\nspec S\n  cap: invariant a <= 3\n  done: true leadsto a == 3 && b == 3\nend";

/// A different *program* (artifacts key by program content, so `b`'s
/// wider domain forces a fresh store directory whose segment writes the
/// store crashpoints can hit), and a deliberately *failing* check — so
/// "same verdict after the crash" is tested for FAIL too, not just PASS.
const SPEC_B: &str = "program P\n  var a : int 0..3\n  var b : int 0..4\n  init a == 0 && b == 0\n  fair cmd right: a < 3 -> a := a + 1\n  fair cmd up: b < 3 -> b := b + 1\nend\nspec S\n  cap: invariant a <= 2\n  done: true leadsto a == 3\nend";

/// Every crashpoint the daemon carries at a persistence boundary, with
/// the schedule that kills it there on the first hit.
const CRASH_SCHEDULES: &[&str] = &[
    // Journal: before any bytes, torn mid-write, before fsync, after
    // fsync (durable but unacked — the one case a record may survive).
    "journal.append.write=1*abort",
    "journal.append.write=1*truncate(25)",
    "journal.append.pre_fsync=1*abort",
    "journal.append.post_fsync=1*abort",
    // Artifact store: torn segment file, crash between segments.
    "store.save.torn=1*truncate(64)",
    "store.save.segment=1*abort",
    // Verdict computed and persisted, journal never reached.
    "service.verify.pre_journal=1*abort",
];

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "unity_torture_{}_{tag}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `unity-serve` over `dir`, optionally with a fault
    /// schedule, and parses the listening address off the first stdout
    /// line (the daemon's one stdout guarantee).
    fn spawn(dir: &Path, failpoints: Option<&str>) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_unity-serve"));
        cmd.args([
            "--data-dir",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .env_remove("UNITY_FAILPOINTS");
        if let Some(schedule) = failpoints {
            cmd.env("UNITY_FAILPOINTS", schedule);
        }
        let mut child = cmd.spawn().expect("daemon spawns");
        let stdout = child.stdout.take().unwrap();
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).unwrap();
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no listening address in {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn verify(&self, spec: &str) -> Result<VerifyResponse, String> {
        let (status, body) = unity_serve::http::request(
            &self.addr,
            "POST",
            "/verify",
            Some(&VerifyRequest::new(spec).to_json()),
        )?;
        if status != 200 {
            return Err(format!("HTTP {status}: {body}"));
        }
        VerifyResponse::from_json(&body)
    }

    fn status(&self) -> StatusResponse {
        let (status, body) =
            unity_serve::http::request(&self.addr, "GET", "/status", None).unwrap();
        assert_eq!(status, 200, "{body}");
        StatusResponse::from_json(&body).unwrap()
    }

    fn history(&self) -> Vec<unity_serve::proto::HistoryEntry> {
        let (status, body) =
            unity_serve::http::request(&self.addr, "GET", "/history", None).unwrap();
        assert_eq!(status, 200, "{body}");
        history_from_json(&body).unwrap()
    }

    /// Waits for the armed failpoint to have killed the process; a
    /// daemon that outlives its crash schedule is a test failure (the
    /// point never fired — a typo'd name would otherwise pass silently).
    fn wait_for_crash(mut self, schedule: &str) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().unwrap() {
                Some(status) => {
                    assert!(
                        !status.success(),
                        "{schedule}: daemon exited cleanly instead of crashing"
                    );
                    return;
                }
                None if Instant::now() >= deadline => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    panic!("{schedule}: daemon survived its crash schedule");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// The `kill -9` ending — no drain, no warning.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn every_crashpoint_preserves_acked_verdicts_and_answers() {
    let hash_a = spec_hash(SPEC_A);
    let hash_b = spec_hash(SPEC_B);

    for schedule in CRASH_SCHEDULES {
        let dir = fresh_dir("point");

        // Phase 1 — healthy daemon: one acked verdict for spec A, then
        // kill -9 (the baseline crash the journal always handled).
        let daemon = Daemon::spawn(&dir, None);
        let acked = daemon
            .verify(SPEC_A)
            .unwrap_or_else(|e| panic!("{schedule}: baseline: {e}"));
        assert_eq!(acked.seq, 1, "{schedule}");
        assert!(acked.report.all_passed(), "{schedule}");
        daemon.kill();

        // Phase 2 — armed daemon: submitting spec B trips the
        // crashpoint. The client must NOT get an acked verdict (the
        // crash fires before the response is written).
        let armed = Daemon::spawn(&dir, Some(schedule));
        let reply = armed.verify(SPEC_B);
        assert!(
            reply.is_err(),
            "{schedule}: client got an ack from a crashing daemon: {reply:?}"
        );
        armed.wait_for_crash(schedule);

        // Phase 3 — restart over the same data dir and audit.
        let recovered = Daemon::spawn(&dir, None);
        let status = recovered.status();
        assert!(!status.degraded, "{schedule}: recovery must be clean");

        let history = recovered.history();
        assert!(
            !history.is_empty() && history[0].seq == 1 && history[0].spec_hash == hash_a,
            "{schedule}: acked verdict lost: {history:?}"
        );
        assert!(history[0].passed, "{schedule}: acked verdict rewritten");
        // The unacked submission may have become durable only at the
        // post-fsync crashpoint; anywhere else it must be absent.
        assert!(history.len() <= 2, "{schedule}: {history:?}");
        if let Some(extra) = history.get(1) {
            assert_eq!(
                (extra.seq, extra.spec_hash.as_str(), extra.passed),
                (2, hash_b.as_str(), false),
                "{schedule}: unexpected replayed record"
            );
        }
        assert_eq!(status.last_seq, history.len() as u64, "{schedule}");

        // No wrong answers: both specs re-verify to their known
        // verdicts (a torn segment may force a rebuild — never a
        // different outcome), and sequence numbering stays contiguous.
        let next_seq = history.len() as u64 + 1;
        let again_a = recovered.verify(SPEC_A).unwrap();
        assert_eq!(again_a.spec_hash, hash_a, "{schedule}");
        assert!(again_a.report.all_passed(), "{schedule}: verdict flipped");
        assert_eq!(again_a.seq, next_seq, "{schedule}");
        let again_b = recovered.verify(SPEC_B).unwrap();
        assert_eq!(again_b.spec_hash, hash_b, "{schedule}");
        assert!(
            !again_b.report.all_passed(),
            "{schedule}: failing spec must keep failing"
        );
        assert_eq!(again_b.seq, next_seq + 1, "{schedule}");

        recovered.kill();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let dir = fresh_dir("drain");
    let daemon = Daemon::spawn(&dir, None);
    let acked = daemon.verify(SPEC_A).unwrap();
    assert_eq!(acked.seq, 1);

    // SIGTERM via `kill(1)` — the daemon must drain and exit 0.
    let pid = daemon.child.id();
    let status = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success());
    let mut child = daemon.child;
    let deadline = Instant::now() + Duration::from_secs(35);
    let exit = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(exit.success(), "graceful drain must exit 0, got {exit:?}");

    // And the drained daemon's data dir replays cleanly.
    let restarted = Daemon::spawn(&dir, None);
    assert_eq!(restarted.status().verdicts, 1);
    restarted.kill();
    let _ = std::fs::remove_dir_all(&dir);
}
