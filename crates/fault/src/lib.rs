//! Deterministic fault injection: named failpoints.
//!
//! The service layer claims graceful degradation — torn-tail journal
//! replay, corrupt-segment rebuild, panic-contained workers. Claims are
//! cheap; this crate makes every such path *drivable* from a test or
//! from the environment, so adverse interleavings are enumerated, not
//! hoped about — the same discipline the source paper applies to
//! program composition.
//!
//! A **failpoint** is a named hook compiled into production code:
//!
//! ```ignore
//! unity_fault::fail_point!("journal.append.pre_fsync", |msg| Err(msg));
//! ```
//!
//! With the `failpoints` cargo feature **off** (the default, and the
//! release configuration) every `fail_point!` expansion is empty — zero
//! instructions, zero data, nothing to misfire in production. With the
//! feature **on** the point consults a global registry and can:
//!
//! | action        | effect at the callsite                            |
//! |---------------|---------------------------------------------------|
//! | `off`         | nothing (explicitly disables the point)           |
//! | `return`      | evaluate the caller's recovery arm with a message |
//! | `delay(ms)`   | sleep for `ms` milliseconds, then continue        |
//! | `panic`       | panic (exercises `catch_unwind` containment)      |
//! | `abort`       | `std::process::abort()` — a crash, like `kill -9` |
//! | `truncate(n)` | at a write point: write `n` bytes, then abort     |
//!
//! Rules prefix actions with modifiers: `3*return` fires three times
//! then falls through, `50%delay(10)` fires with probability 0.5
//! (deterministic, seeded via `UNITY_FAILPOINTS_SEED`). Chains evaluate
//! left to right: `1*panic->return` panics once, then injects errors.
//!
//! Configuration is per-test ([`cfg()`]/[`FailGuard`]) or inherited from
//! the `UNITY_FAILPOINTS` environment variable
//! (`point=rules;point=rules`), which binaries apply at startup via
//! [`setup_from_env`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

/// Injects a failpoint.
///
/// `fail_point!("name")` can delay, panic, or abort. The two-argument
/// form `fail_point!("name", |msg: String| expr)` additionally honors
/// `return` rules by evaluating `expr` (typically an `Err`) and
/// returning it from the enclosing function.
///
/// Expands to nothing unless the **calling** crate has a `failpoints`
/// cargo feature enabled (which must forward to `unity-fault/failpoints`).
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            let _ = $crate::hit($name);
        }
    }};
    ($name:expr, $recover:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            if let Some(__fault_msg) = $crate::hit($name) {
                return ($recover)(__fault_msg);
            }
        }
    }};
}

/// Injects a torn write: if the named point has a `truncate(n)` rule,
/// writes the first `n` bytes of `$bytes` to `$writer`, flushes, and
/// aborts the process — a short write is only observable through a
/// crash, so the two are injected as one event.
///
/// Expands to nothing unless the calling crate enables `failpoints`.
#[macro_export]
macro_rules! fail_torn_write {
    ($name:expr, $writer:expr, $bytes:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            if let Some(__fault_n) = $crate::truncate_len($name, $bytes.len()) {
                use std::io::Write as _;
                let _ = $writer.write_all(&$bytes[..__fault_n]);
                let _ = $writer.flush();
                std::process::abort();
            }
        }
    }};
}

#[cfg(feature = "failpoints")]
mod registry {
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// What a fired rule does at the callsite.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Action {
        /// Explicitly nothing; terminates rule evaluation.
        Off,
        /// Hand the message to the caller's recovery arm.
        Return(Option<String>),
        /// Sleep this many milliseconds, then continue normally.
        Delay(u64),
        /// Panic with the message.
        Panic(Option<String>),
        /// `std::process::abort()` — the `kill -9` of failpoints.
        Abort,
        /// At a write point: write only this many bytes, then abort.
        Truncate(usize),
    }

    /// One `[count*][prob%]action` clause.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Rule {
        /// Remaining firings (`None` = unlimited).
        pub count: Option<u64>,
        /// Firing probability in percent (`None` = always).
        pub prob: Option<u8>,
        /// The action once the rule fires.
        pub action: Action,
    }

    struct Registry {
        points: HashMap<String, Vec<Rule>>,
        rng: u64,
    }

    fn registry() -> MutexGuard<'static, Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY
            .get_or_init(|| {
                let seed = std::env::var("UNITY_FAILPOINTS_SEED")
                    .ok()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(0x9e37_79b9_7f4a_7c15);
                Mutex::new(Registry {
                    points: HashMap::new(),
                    rng: seed | 1,
                })
            })
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn parse_action(s: &str) -> Result<Action, String> {
        let (head, arg) = match s.find('(') {
            Some(k) => {
                let inner = s[k..]
                    .strip_prefix('(')
                    .and_then(|r| r.strip_suffix(')'))
                    .ok_or_else(|| format!("unbalanced parentheses in `{s}`"))?;
                (&s[..k], Some(inner))
            }
            None => (s, None),
        };
        match (head, arg) {
            ("off", None) => Ok(Action::Off),
            ("return", msg) => Ok(Action::Return(msg.map(str::to_string))),
            ("delay", Some(ms)) => Ok(Action::Delay(
                ms.parse().map_err(|_| format!("bad delay `{ms}`"))?,
            )),
            ("panic", msg) => Ok(Action::Panic(msg.map(str::to_string))),
            ("abort", None) => Ok(Action::Abort),
            ("truncate", Some(n)) => Ok(Action::Truncate(
                n.parse()
                    .map_err(|_| format!("bad truncate length `{n}`"))?,
            )),
            _ => Err(format!("unknown failpoint action `{s}`")),
        }
    }

    fn parse_rule(s: &str) -> Result<Rule, String> {
        let s = s.trim();
        let (count, rest) = match s.split_once('*') {
            Some((n, rest)) => (
                Some(n.parse::<u64>().map_err(|_| format!("bad count `{n}`"))?),
                rest,
            ),
            None => (None, s),
        };
        let (prob, rest) = match rest.split_once('%') {
            Some((p, rest)) => {
                let p: u8 = p.parse().map_err(|_| format!("bad probability `{p}`"))?;
                if p > 100 {
                    return Err(format!("probability {p}% exceeds 100"));
                }
                (Some(p), rest)
            }
            None => (None, rest),
        };
        Ok(Rule {
            count,
            prob,
            action: parse_action(rest)?,
        })
    }

    /// Parses a rule chain: `rule[->rule...]`.
    pub fn parse_rules(s: &str) -> Result<Vec<Rule>, String> {
        s.split("->").map(parse_rule).collect()
    }

    /// Installs (replacing) the rule chain for `name`.
    pub fn cfg(name: &str, rules: &str) -> Result<(), String> {
        let parsed = parse_rules(rules).map_err(|e| format!("failpoint `{name}`: {e}"))?;
        registry().points.insert(name.to_string(), parsed);
        Ok(())
    }

    /// Removes the configuration for `name` (the point goes inert).
    pub fn remove(name: &str) {
        registry().points.remove(name);
    }

    /// Clears every configured point.
    pub fn teardown() {
        registry().points.clear();
    }

    /// Applies `UNITY_FAILPOINTS` (`point=rules;point=rules`). Returns
    /// the number of points configured; malformed syntax is an error so
    /// a typo'd schedule cannot silently test nothing.
    pub fn setup_from_env() -> Result<usize, String> {
        let Ok(val) = std::env::var("UNITY_FAILPOINTS") else {
            return Ok(0);
        };
        let mut n = 0;
        for clause in val.split(';').filter(|c| !c.trim().is_empty()) {
            let (name, rules) = clause
                .split_once('=')
                .ok_or_else(|| format!("UNITY_FAILPOINTS: missing `=` in `{clause}`"))?;
            cfg(name.trim(), rules)?;
            n += 1;
        }
        Ok(n)
    }

    /// The configured points, for startup logging.
    pub fn active() -> Vec<String> {
        let mut names: Vec<String> = registry().points.keys().cloned().collect();
        names.sort();
        names
    }

    /// One step of the xorshift64* stream: a deterministic percentage
    /// roll under the seed.
    fn roll(reg: &mut Registry) -> u64 {
        let mut x = reg.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        reg.rng = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) % 100
    }

    /// Picks the first applicable rule for `name` and consumes one
    /// firing from its count. Deterministic given the seed.
    fn fire(name: &str) -> Option<Action> {
        let mut reg = registry();
        let rolled = roll(&mut reg);
        let rules = reg.points.get_mut(name)?;
        for rule in rules.iter_mut() {
            if rule.count == Some(0) {
                continue; // exhausted: fall through to the next rule
            }
            if let Some(p) = rule.prob {
                if rolled >= u64::from(p) {
                    return None; // declined this call; retry next call
                }
            }
            if let Some(c) = &mut rule.count {
                *c -= 1;
            }
            return Some(rule.action.clone());
        }
        None
    }

    /// The engine behind [`fail_point!`]: executes side-effect actions
    /// (delay, panic, abort) and returns `Some(message)` for `return`
    /// rules. `truncate` rules are ignored here — they only make sense
    /// at a write point ([`truncate_len`]).
    pub fn hit(name: &str) -> Option<String> {
        match fire(name)? {
            Action::Off | Action::Truncate(_) => None,
            Action::Return(msg) => {
                Some(msg.unwrap_or_else(|| format!("injected by failpoint `{name}`")))
            }
            Action::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            Action::Panic(msg) => {
                let msg = msg.unwrap_or_else(|| "injected panic".into());
                panic!("failpoint `{name}`: {msg}");
            }
            Action::Abort => std::process::abort(),
        }
    }

    /// The engine behind [`fail_torn_write!`]: `Some(n)` when a
    /// `truncate(n)` rule fires (clamped to `full`). Any other
    /// applicable action is left **unconsumed** — a write boundary
    /// pairs this probe with a `fail_point!` under the same name, and
    /// only one of the two may spend a counted rule's firing.
    pub fn truncate_len(name: &str, full: usize) -> Option<usize> {
        let mut reg = registry();
        let rolled = roll(&mut reg);
        let rules = reg.points.get_mut(name)?;
        for rule in rules.iter_mut() {
            if rule.count == Some(0) {
                continue; // exhausted: fall through to the next rule
            }
            let Action::Truncate(n) = rule.action else {
                return None; // not a torn write; the paired fail_point! decides
            };
            if let Some(p) = rule.prob {
                if rolled >= u64::from(p) {
                    return None; // declined this call; retry next call
                }
            }
            if let Some(c) = &mut rule.count {
                *c -= 1;
            }
            return Some(n.min(full));
        }
        None
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{active, cfg, hit, parse_rules, remove, setup_from_env, teardown, truncate_len};

#[cfg(feature = "failpoints")]
pub use registry::{Action, Rule};

/// Scoped failpoint configuration: installs on construction, removes on
/// drop, so a panicking test cannot leak its faults into the next one.
#[must_use = "the failpoint is removed when the guard drops"]
pub struct FailGuard {
    #[cfg(feature = "failpoints")]
    name: String,
}

impl FailGuard {
    /// Configures `name` with `rules` for the guard's lifetime.
    #[cfg(feature = "failpoints")]
    pub fn new(name: &str, rules: &str) -> Result<FailGuard, String> {
        cfg(name, rules)?;
        Ok(FailGuard {
            name: name.to_string(),
        })
    }

    /// Inert stub: without the `failpoints` feature there is nothing to
    /// configure and the guard is empty.
    #[cfg(not(feature = "failpoints"))]
    pub fn new(_name: &str, _rules: &str) -> Result<FailGuard, String> {
        Ok(FailGuard {})
    }
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        #[cfg(feature = "failpoints")]
        remove(&self.name);
    }
}

// ---------------------------------------------------------------------
// Inert stubs: the API surface exists without the feature so callers
// can invoke setup/teardown unconditionally; everything is a no-op.
// ---------------------------------------------------------------------

/// No-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn cfg(_name: &str, _rules: &str) -> Result<(), String> {
    Ok(())
}

/// No-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn remove(_name: &str) {}

/// No-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn teardown() {}

/// No-op without the `failpoints` feature (reports zero points).
#[cfg(not(feature = "failpoints"))]
pub fn setup_from_env() -> Result<usize, String> {
    Ok(0)
}

/// No-op without the `failpoints` feature (reports no points).
#[cfg(not(feature = "failpoints"))]
pub fn active() -> Vec<String> {
    Vec::new()
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global; tests that configure points
    /// serialize on this (and use distinct point names besides).
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parsing_accepts_the_documented_grammar() {
        assert_eq!(
            parse_rules("return").unwrap(),
            vec![Rule {
                count: None,
                prob: None,
                action: Action::Return(None)
            }]
        );
        assert_eq!(
            parse_rules("2*50%delay(30)").unwrap(),
            vec![Rule {
                count: Some(2),
                prob: Some(50),
                action: Action::Delay(30)
            }]
        );
        assert_eq!(
            parse_rules("1*panic(boom)->return(io)").unwrap(),
            vec![
                Rule {
                    count: Some(1),
                    prob: None,
                    action: Action::Panic(Some("boom".into()))
                },
                Rule {
                    count: None,
                    prob: None,
                    action: Action::Return(Some("io".into()))
                },
            ]
        );
        assert_eq!(
            parse_rules("truncate(12)").unwrap()[0].action,
            Action::Truncate(12)
        );
        assert_eq!(parse_rules("off").unwrap()[0].action, Action::Off);
        assert_eq!(parse_rules("abort").unwrap()[0].action, Action::Abort);

        for bad in ["explode", "150%return", "x*return", "delay", "truncate"] {
            assert!(parse_rules(bad).is_err(), "`{bad}` accepted");
        }
    }

    #[test]
    fn unconfigured_points_are_inert_and_counts_exhaust() {
        let _g = serial();
        assert_eq!(hit("test.never_configured"), None);

        cfg("test.count", "2*return(x)").unwrap();
        assert_eq!(hit("test.count").as_deref(), Some("x"));
        assert_eq!(hit("test.count").as_deref(), Some("x"));
        assert_eq!(hit("test.count"), None, "count exhausted");
        remove("test.count");
    }

    #[test]
    fn chains_fall_through_when_a_count_exhausts() {
        let _g = serial();
        cfg("test.chain", "1*return(first)->return(rest)").unwrap();
        assert_eq!(hit("test.chain").as_deref(), Some("first"));
        assert_eq!(hit("test.chain").as_deref(), Some("rest"));
        assert_eq!(hit("test.chain").as_deref(), Some("rest"));
        remove("test.chain");
    }

    #[test]
    fn return_messages_default_to_naming_the_point() {
        let _g = serial();
        cfg("test.msg", "return").unwrap();
        assert!(hit("test.msg").unwrap().contains("test.msg"));
        remove("test.msg");
    }

    #[test]
    fn probability_is_between_never_and_always() {
        let _g = serial();
        cfg("test.prob", "50%return").unwrap();
        let fired = (0..200).filter(|_| hit("test.prob").is_some()).count();
        assert!(
            (40..=160).contains(&fired),
            "50% fired {fired}/200 — generator broken"
        );
        cfg("test.prob", "0%return").unwrap();
        assert!((0..50).all(|_| hit("test.prob").is_none()));
        cfg("test.prob", "100%return").unwrap();
        assert!((0..50).all(|_| hit("test.prob").is_some()));
        remove("test.prob");
    }

    #[test]
    fn truncate_rules_only_fire_at_write_points() {
        let _g = serial();
        cfg("test.trunc", "truncate(4)").unwrap();
        assert_eq!(hit("test.trunc"), None, "hit ignores truncate");
        assert_eq!(truncate_len("test.trunc", 100), Some(4));
        assert_eq!(truncate_len("test.trunc", 2), Some(2), "clamped");
        remove("test.trunc");

        cfg("test.trunc2", "return(io)").unwrap();
        assert_eq!(
            truncate_len("test.trunc2", 10),
            None,
            "truncate_len ignores return"
        );
        remove("test.trunc2");
    }

    #[test]
    fn guards_remove_their_point_on_drop() {
        let _g = serial();
        {
            let _guard = FailGuard::new("test.guarded", "return(g)").unwrap();
            assert_eq!(hit("test.guarded").as_deref(), Some("g"));
        }
        assert_eq!(hit("test.guarded"), None);
        assert!(FailGuard::new("test.guarded", "nonsense").is_err());
    }

    #[test]
    fn off_disables_and_reconfiguration_replaces() {
        let _g = serial();
        cfg("test.off", "return").unwrap();
        cfg("test.off", "off").unwrap();
        assert_eq!(hit("test.off"), None);
        remove("test.off");
    }

    #[test]
    fn env_setup_parses_schedules_and_rejects_typos() {
        let _g = serial();
        // `setup_from_env` reads the real environment; drive the parser
        // directly through the same clause splitting it applies.
        for clause in "a.b=1*return(x);c.d=50%delay(2)".split(';') {
            let (name, rules) = clause.split_once('=').unwrap();
            cfg(name, rules).unwrap();
        }
        assert!(active().contains(&"a.b".to_string()));
        assert!(active().contains(&"c.d".to_string()));
        assert!(cfg("a.b", "explode").is_err());
        teardown();
        assert!(active().is_empty());
    }

    #[test]
    fn panic_action_panics_with_the_point_name() {
        let _g = serial();
        cfg("test.panic", "panic(ouch)").unwrap();
        let err = std::panic::catch_unwind(|| hit("test.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("test.panic") && msg.contains("ouch"), "{msg}");
        remove("test.panic");
    }

    #[test]
    fn macros_compile_in_both_forms() {
        let _g = serial();
        fn guarded() -> Result<u32, String> {
            fail_point!("test.macro.unit");
            fail_point!("test.macro.ret", Err);
            Ok(7)
        }
        assert_eq!(guarded(), Ok(7));
        cfg("test.macro.ret", "return(nope)").unwrap();
        assert_eq!(guarded(), Err("nope".into()));
        remove("test.macro.ret");

        // Torn-write macro: inert without a truncate rule.
        let mut sink = Vec::new();
        let bytes = b"hello".to_vec();
        fail_torn_write!("test.macro.torn", &mut sink, bytes);
        assert!(sink.is_empty());
    }
}
