//! Property-based tests for the rely-guarantee bridge and the
//! conserved-combination discovery.
//!
//! * **Bridge theorem** on random programs: `stable p` (operational,
//!   all-states) coincides with "every step satisfies the action
//!   predicate `p ⇒ p'`" for every predicate in the pool.
//! * **Conservation soundness** on random linear programs: every
//!   discovered combination is genuinely unchanged by every command from
//!   every state (checked by brute force, independent of the linear
//!   algebra), and a *planted* conservation law is always found.
//! * **Locality-as-rely** on random two-component compositions: each
//!   component's steps satisfy the sibling's locality rely.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::compose::{InitSatCheck, System};
use unity_core::conserve::conserved_linear_combinations;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::rg::{locality_rely, stable_agrees_with_rg, steps_satisfy, ActionVocab};
use unity_core::state::StateSpaceIter;

const X: VarId = VarId(0);
const Y: VarId = VarId(1);
const FLAG: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("y", Domain::int_range(0, 2).unwrap()).unwrap();
    v.declare("flag", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_update() -> impl Strategy<Value = (VarId, Expr)> {
    prop_oneof![
        Just((X, add(var(X), int(1)))),
        Just((X, var(Y))),
        Just((X, int(0))),
        Just((Y, sub(var(Y), int(1)))),
        Just((Y, var(X))),
        Just((FLAG, not(var(FLAG)))),
    ]
}

fn arb_guard() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(tt()),
        Just(var(FLAG)),
        (0i64..=2).prop_map(|k| lt(var(X), int(k))),
        (0i64..=2).prop_map(|k| ge(var(Y), int(k))),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        (arb_guard(), prop::collection::vec(arb_update(), 1..3)),
        1..4,
    )
    .prop_map(|cmds| {
        let mut b = Program::builder("p", vocab()).init(tt());
        for (i, (g, mut ups)) in cmds.into_iter().enumerate() {
            ups.sort_by_key(|(x, _)| *x);
            ups.dedup_by_key(|(x, _)| *x);
            b = b.command(format!("c{i}"), g, ups);
        }
        b.build().expect("pool is well-typed")
    })
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..=2).prop_map(|k| le(var(X), int(k))),
        (0i64..=2).prop_map(|k| eq(var(Y), int(k))),
        Just(var(FLAG)),
        Just(eq(var(X), var(Y))),
        (0i64..=4).prop_map(|k| eq(add(var(X), var(Y)), int(k))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The operational `stable p` and its action-predicate reading agree
    /// on every random program and predicate.
    #[test]
    fn stable_bridge(prog in arb_program(), p in arb_pred()) {
        let av = ActionVocab::new(prog.vocab.clone()).unwrap();
        let (op, rg) = stable_agrees_with_rg(&prog, &av, &p);
        prop_assert_eq!(op, rg);
    }

    /// Every discovered conserved combination really is conserved —
    /// verified by brute-force execution, independent of the algebra.
    #[test]
    fn conservation_is_sound(prog in arb_program()) {
        let basis = conserved_linear_combinations(&prog);
        for combo in &basis.combos {
            for s in StateSpaceIter::new(&prog.vocab) {
                let before = combo.evaluate(&s);
                for c in &prog.commands {
                    let t = c.step(&s, &prog.vocab);
                    prop_assert_eq!(
                        combo.evaluate(&t), before,
                        "combo {:?} changed by {} from {}",
                        combo.coeffs, c.name, s.display(&prog.vocab)
                    );
                }
            }
        }
    }

    /// Planting a transfer command (x -= 1, y += 1) in an otherwise
    /// y-free program guarantees `x + y` is in the discovered space
    /// whenever every other command also conserves it.
    #[test]
    fn planted_law_is_found(flip_flag in any::<bool>()) {
        let v = vocab();
        let mut b = Program::builder("planted", v)
            .init(tt())
            .command(
                "transfer",
                and2(gt(var(X), int(0)), lt(var(Y), int(2))),
                vec![(X, sub(var(X), int(1))), (Y, add(var(Y), int(1)))],
            );
        if flip_flag {
            b = b.command("flip", tt(), vec![(FLAG, not(var(FLAG)))]);
        }
        let prog = b.build().unwrap();
        let basis = conserved_linear_combinations(&prog);
        let want: std::collections::BTreeMap<VarId, i64> =
            [(X, 1), (Y, 1)].into_iter().collect();
        prop_assert!(
            basis.combos.iter().any(|c| c.coeffs == want),
            "x + y not found; basis = {:?}",
            basis.combos
        );
    }

    /// In a locality-respecting composition, each component justifies the
    /// sibling's locality rely; violations are impossible by construction.
    #[test]
    fn locality_rely_is_justified(
        f_cmds in prop::collection::vec((arb_guard(), prop_oneof![
            Just((X, add(var(X), int(1)))),
            Just((X, int(0))),
        ]), 1..3),
        g_cmds in prop::collection::vec((arb_guard(), prop_oneof![
            Just((Y, add(var(Y), int(1)))),
            Just((Y, int(0))),
        ]), 1..3),
    ) {
        let v = vocab();
        let mut fb = Program::builder("F", v.clone()).init(tt()).local(X);
        for (i, (g, up)) in f_cmds.into_iter().enumerate() {
            fb = fb.command(format!("f{i}"), g, vec![up]);
        }
        let mut gb = Program::builder("G", v.clone()).init(tt()).local(Y);
        for (i, (g, up)) in g_cmds.into_iter().enumerate() {
            gb = gb.command(format!("g{i}"), g, vec![up]);
        }
        let f = fb.build().unwrap();
        let g = gb.build().unwrap();
        let sys = System::compose(vec![f, g], InitSatCheck::Skip).unwrap();
        let av = ActionVocab::new(v).unwrap();
        // G's steps satisfy F's locality rely and vice versa.
        let rely_f = locality_rely(&av, &sys.components[0]);
        let rely_g = locality_rely(&av, &sys.components[1]);
        prop_assert!(steps_satisfy(&sys.components[1], &av, &rely_f).is_ok());
        prop_assert!(steps_satisfy(&sys.components[0], &av, &rely_g).is_ok());
    }
}
