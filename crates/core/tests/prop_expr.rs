//! Property-based tests for the expression layer: evaluation-preserving
//! simplification, the semantic substitution lemma, `wp` vs. operational
//! agreement, and pretty-print/parse round-trips.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::command::Command;
use unity_core::domain::Domain;
use unity_core::dsl::parse_expr;
use unity_core::expr::build::*;
use unity_core::expr::eval::{eval, eval_bool};
use unity_core::expr::pretty::Render;
use unity_core::expr::simplify::simplify;
use unity_core::expr::subst::Subst;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::state::StateSpaceIter;

/// The fixed test vocabulary: x:int 0..4, y:int 0..3, p:bool, q:bool.
fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 4).unwrap()).unwrap();
    v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("p", Domain::Bool).unwrap();
    v.declare("q", Domain::Bool).unwrap();
    Arc::new(v)
}

const X: VarId = VarId(0);
const Y: VarId = VarId(1);
const P: VarId = VarId(2);
const Q: VarId = VarId(3);

/// Strategy for well-typed integer expressions (non-negative literals so
/// parse round-trips are exact).
fn arb_int_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![(0i64..=6).prop_map(int), Just(var(X)), Just(var(Y)),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| div(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| rem(a, b)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(sum),
            prop::collection::vec(inner.clone(), 1..3).prop_map(min),
            prop::collection::vec(inner.clone(), 1..3).prop_map(max),
            (arb_bool_leaf(), inner.clone(), inner).prop_map(|(c, t, e)| ite(c, t, e)),
        ]
    })
}

fn arb_bool_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![Just(tt()), Just(ff()), Just(var(P)), Just(var(Q)),]
}

/// Strategy for well-typed boolean expressions.
fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    let leaf = arb_bool_leaf();
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| or2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| iff(a, b)),
            (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| eq(a, b)),
            (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| lt(a, b)),
            (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| le(a, b)),
            (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| ne(a, b)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(and),
            prop::collection::vec(inner, 1..3).prop_map(or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simplify_preserves_value_int(e in arb_int_expr()) {
        let v = vocab();
        prop_assert!(e.infer_type(&v).is_ok());
        let s = simplify(&e);
        for state in StateSpaceIter::new(&v) {
            prop_assert_eq!(eval(&e, &state), eval(&s, &state));
        }
        prop_assert!(s.size() <= e.size(), "simplification never grows the tree");
    }

    #[test]
    fn simplify_preserves_value_bool(e in arb_bool_expr()) {
        let v = vocab();
        prop_assert!(e.infer_type(&v).is_ok());
        let s = simplify(&e);
        for state in StateSpaceIter::new(&v) {
            prop_assert_eq!(eval(&e, &state), eval(&s, &state));
        }
    }

    #[test]
    fn substitution_lemma(q in arb_bool_expr(), ex in arb_int_expr(), ey in arb_int_expr()) {
        // eval(q[x,y := ex,ey], s) == eval(q, s[x := eval(ex,s), y := eval(ey,s)])
        let v = vocab();
        let subst = Subst::from_pairs([(X, ex.clone()), (Y, ey.clone())]);
        let q2 = subst.apply(&q);
        for state in StateSpaceIter::new(&v) {
            let lhs = eval(&q2, &state);
            let mut shifted = state.clone();
            shifted.set(X, eval(&ex, &state));
            shifted.set(Y, eval(&ey, &state));
            let rhs = eval(&q, &shifted);
            prop_assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn wp_agrees_with_operational_step(
        guard in arb_bool_expr(),
        ex in arb_int_expr(),
        eb in arb_bool_expr(),
        post in arb_bool_expr(),
    ) {
        let v = vocab();
        let cmd = Command::new("c", guard, vec![(X, ex), (P, eb)], &v).unwrap();
        let wp = cmd.wp(&post, &v);
        for state in StateSpaceIter::new(&v) {
            let semantic = eval_bool(&post, &cmd.step(&state, &v));
            let syntactic = eval_bool(&wp, &state);
            prop_assert_eq!(semantic, syntactic, "state {}", state.display(&v));
        }
    }

    #[test]
    fn pretty_parse_roundtrip_int(e in arb_int_expr()) {
        let v = vocab();
        let text = Render::new(&e, &v).to_string();
        let parsed = parse_expr(&text, &v)
            .unwrap_or_else(|err| panic!("`{text}` failed to parse: {err}"));
        prop_assert_eq!(parsed, e, "pretty output `{}`", text);
    }

    #[test]
    fn pretty_parse_roundtrip_bool(e in arb_bool_expr()) {
        let v = vocab();
        let text = Render::new(&e, &v).to_string();
        let parsed = parse_expr(&text, &v)
            .unwrap_or_else(|err| panic!("`{text}` failed to parse: {err}"));
        prop_assert_eq!(parsed, e, "pretty output `{}`", text);
    }

    #[test]
    fn double_simplify_is_idempotent(e in arb_bool_expr()) {
        let once = simplify(&e);
        let twice = simplify(&once);
        prop_assert_eq!(once, twice);
    }
}
