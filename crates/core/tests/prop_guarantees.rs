//! Property-based tests of the guarantees calculus algebra
//! (`unity_core::guarantee::calculus`): entailment is a preorder on the
//! generated property pool, the checker's conclusions are stable under
//! the rules' algebraic laws, and unsound shapes are rejected.

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::eval::eval_bool;
use unity_core::expr::Expr;
use unity_core::guarantee::calculus::*;
use unity_core::ident::Vocabulary;
use unity_core::properties::Property;
use unity_core::state::StateSpaceIter;

fn vocab() -> Vocabulary {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("f", Domain::Bool).unwrap();
    v
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let v = vocab();
    let x = v.lookup("x").unwrap();
    let f = v.lookup("f").unwrap();
    prop_oneof![
        (0i64..=3).prop_map(move |k| eq(var(x), int(k))),
        (0i64..=3).prop_map(move |k| le(var(x), int(k))),
        (0i64..=3).prop_map(move |k| ge(var(x), int(k))),
        Just(var(f)),
        Just(not(var(f))),
        Just(tt()),
        Just(ff()),
    ]
}

fn arb_prop() -> impl Strategy<Value = Property> {
    prop_oneof![
        arb_pred().prop_map(Property::Init),
        arb_pred().prop_map(Property::Transient),
        arb_pred().prop_map(Property::Stable),
        arb_pred().prop_map(Property::Invariant),
        (arb_pred(), arb_pred()).prop_map(|(p, q)| Property::Next(p, q)),
        (arb_pred(), arb_pred()).prop_map(|(p, q)| Property::LeadsTo(p, q)),
    ]
}

fn scan_valid(v: &Vocabulary) -> impl FnMut(&Expr) -> bool + '_ {
    move |e: &Expr| StateSpaceIter::new(v).all(|s| eval_bool(e, &s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Entailment is reflexive and transitive on the pool.
    #[test]
    fn entailment_is_a_preorder(a in arb_prop(), b in arb_prop(), c in arb_prop()) {
        let v = vocab();
        let mut valid = scan_valid(&v);
        prop_assert!(prop_entails(&a, &a, &mut valid), "reflexive");
        if prop_entails(&a, &b, &mut valid) && prop_entails(&b, &c, &mut valid) {
            prop_assert!(
                prop_entails(&a, &c, &mut valid),
                "transitivity gap: {} / {} / {}",
                a.display(&v), b.display(&v), c.display(&v)
            );
        }
    }

    /// Set entailment is monotone in the hypothesis set and reflexive.
    #[test]
    fn set_entailment_monotone(
        xs in prop::collection::vec(arb_prop(), 0..4),
        extra in arb_prop(),
        ys in prop::collection::vec(arb_prop(), 0..3),
    ) {
        let v = vocab();
        let mut valid = scan_valid(&v);
        prop_assert!(set_entails(&xs, &xs, &mut valid), "reflexive");
        if set_entails(&xs, &ys, &mut valid) {
            let mut bigger = xs.clone();
            bigger.push(extra);
            prop_assert!(set_entails(&bigger, &ys, &mut valid), "monotone");
        }
    }

    /// The Consequence rule accepts exactly the set-entailment pairs, and
    /// its conclusion round-trips through the checker.
    #[test]
    fn consequence_matches_set_entailment(
        xs in prop::collection::vec(arb_prop(), 1..3),
        ys in prop::collection::vec(arb_prop(), 1..3),
    ) {
        let v = vocab();
        let mut valid = scan_valid(&v);
        let entails = set_entails(&xs, &ys, &mut valid);
        let mut valid = scan_valid(&v);
        let mut holds = |_: &Property| true;
        let mut ctx = CalcCtx { valid: &mut valid, component_holds: &mut holds };
        let proof = GProof::Consequence { hypothesis: xs.clone(), conclusion: ys.clone() };
        match check_gproof(&proof, &mut ctx) {
            Ok(clause) => {
                prop_assert!(entails);
                prop_assert_eq!(clause.hypothesis, xs);
                prop_assert_eq!(clause.conclusion, ys);
            }
            Err(_) => prop_assert!(!entails),
        }
    }

    /// Conjunction is commutative up to set membership and never drops
    /// conclusions.
    #[test]
    fn conjunction_is_commutative_as_sets(
        xs in prop::collection::vec(arb_prop(), 1..3),
        ys in prop::collection::vec(arb_prop(), 1..3),
        zs in prop::collection::vec(arb_prop(), 1..3),
        ws in prop::collection::vec(arb_prop(), 1..3),
    ) {
        let v = vocab();
        let a = GProof::Premise(GuaranteeClause::new(xs, ys));
        let b = GProof::Premise(GuaranteeClause::new(zs, ws));
        let run = |l: &GProof, r: &GProof| {
            let mut valid = scan_valid(&v);
            let mut holds = |_: &Property| true;
            let mut ctx = CalcCtx { valid: &mut valid, component_holds: &mut holds };
            check_gproof(
                &GProof::Conjunction { left: Box::new(l.clone()), right: Box::new(r.clone()) },
                &mut ctx,
            ).unwrap()
        };
        let ab = run(&a, &b);
        let ba = run(&b, &a);
        for p in &ab.conclusion {
            prop_assert!(ba.conclusion.contains(p));
        }
        for p in &ba.hypothesis {
            prop_assert!(ab.hypothesis.contains(p));
        }
    }

    /// FromExistential accepts exactly the existential property kinds.
    #[test]
    fn existential_intro_gate(p in arb_prop()) {
        let v = vocab();
        let mut valid = scan_valid(&v);
        let mut holds = |_: &Property| true;
        let mut ctx = CalcCtx { valid: &mut valid, component_holds: &mut holds };
        let accepted = check_gproof(&GProof::FromExistential { prop: p.clone() }, &mut ctx).is_ok();
        let existential = matches!(p, Property::Init(_) | Property::Transient(_));
        prop_assert_eq!(accepted, existential);
    }
}
