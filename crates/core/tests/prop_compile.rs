//! Differential property tests for the compilation layer: on random
//! well-typed expressions over a mixed bool/int vocabulary, the bytecode
//! evaluator (packed-word and state-slice forms) must agree with the
//! tree-walking reference `eval` on **every** state, and compiled
//! command steps must agree with `Command::step`.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::command::Command;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::expr::compile::{CompiledCommand, CompiledExpr, PackedLayout, Scratch};
use unity_core::expr::eval::eval;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::state::StateSpaceIter;
use unity_core::value::Value;

/// Test vocabulary: x:int 0..4, y:int -3..3, p:bool, q:bool.
fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("x", Domain::int_range(0, 4).unwrap()).unwrap();
    v.declare("y", Domain::int_range(-3, 3).unwrap()).unwrap();
    v.declare("p", Domain::Bool).unwrap();
    v.declare("q", Domain::Bool).unwrap();
    Arc::new(v)
}

const X: VarId = VarId(0);
const Y: VarId = VarId(1);
const P: VarId = VarId(2);
const Q: VarId = VarId(3);

fn arb_int_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![(-4i64..=7).prop_map(int), Just(var(X)), Just(var(Y)),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| div(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| rem(a, b)),
            inner.clone().prop_map(neg),
            prop::collection::vec(inner.clone(), 1..3).prop_map(sum),
            prop::collection::vec(inner.clone(), 1..3).prop_map(min),
            prop::collection::vec(inner.clone(), 1..3).prop_map(max),
            (arb_bool_leaf(), inner.clone(), inner).prop_map(|(c, t, e)| ite(c, t, e)),
        ]
    })
}

fn arb_bool_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![Just(tt()), Just(ff()), Just(var(P)), Just(var(Q))]
}

fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    let leaf = arb_bool_leaf();
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| or2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| iff(a, b)),
            (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| eq(a, b)),
            (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| ne(a, b)),
            (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| lt(a, b)),
            (arb_int_expr(), arb_int_expr()).prop_map(|(a, b)| le(a, b)),
            (arb_bool_leaf(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| ite(c, t, e)),
            prop::collection::vec(inner.clone(), 0..3).prop_map(and),
            prop::collection::vec(inner, 0..3).prop_map(or),
        ]
    })
}

fn as_i64(v: Value) -> i64 {
    match v {
        Value::Bool(b) => i64::from(b),
        Value::Int(n) => n,
    }
}

/// `compiled_eval(e, s) == eval(e, s)` over the full state space, for
/// both the packed-word and the state-slice interpreters.
fn assert_differential(e: &Expr, vocab: &Vocabulary) {
    let layout = PackedLayout::new(vocab).expect("test vocabulary packs");
    let prog = CompiledExpr::compile(e, &layout).expect("test expressions compile");
    let mut scratch = Scratch::new();
    for s in StateSpaceIter::new(vocab) {
        let reference = as_i64(eval(e, &s));
        let word = layout.pack(&s);
        assert_eq!(
            prog.eval_packed(word, &mut scratch),
            reference,
            "packed: {e:?}"
        );
        assert_eq!(prog.eval_state(&s, &mut scratch), reference, "state: {e:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_int_exprs_agree_with_eval(e in arb_int_expr()) {
        let v = vocab();
        prop_assert!(e.infer_type(&v).is_ok());
        assert_differential(&e, &v);
    }

    #[test]
    fn compiled_bool_exprs_agree_with_eval(e in arb_bool_expr()) {
        let v = vocab();
        prop_assert!(e.infer_type(&v).is_ok());
        assert_differential(&e, &v);
    }

    /// Compiled command steps agree with the reference `step` (guard,
    /// simultaneous assignment, implicit domain guard) on every state.
    #[test]
    fn compiled_commands_agree_with_step(
        guard in arb_bool_expr(),
        ex in arb_int_expr(),
        eb in arb_bool_expr(),
    ) {
        let v = vocab();
        let cmd = Command::new("c", guard, vec![(X, ex), (P, eb)], &v).unwrap();
        let layout = PackedLayout::new(&v).unwrap();
        let cc = CompiledCommand::compile(&cmd, &layout).unwrap();
        let mut scratch = Scratch::new();
        for s in StateSpaceIter::new(&v) {
            let reference = cmd.step(&s, &v);
            let got = cc.step_packed(layout.pack(&s), &layout, &mut scratch);
            prop_assert_eq!(layout.unpack(got, &v), reference, "state {}", s.display(&v));
        }
    }

    /// The incremental flat-index stepping agrees with full re-encoding.
    #[test]
    fn incremental_flat_agrees_with_reencoding(
        guard in arb_bool_expr(),
        ex in arb_int_expr(),
    ) {
        let v = vocab();
        let cmd = Command::new("c", guard, vec![(Y, ex)], &v).unwrap();
        let layout = PackedLayout::new(&v).unwrap();
        let cc = CompiledCommand::compile(&cmd, &layout).unwrap();
        let mut scratch = Scratch::new();
        for (flat, s) in StateSpaceIter::new(&v).enumerate() {
            let w = layout.pack(&s);
            prop_assert_eq!(layout.flat_of_word(w), flat as u64);
            let (w2, flat2) = cc.step_packed_flat(w, flat as u64, &layout, &mut scratch);
            prop_assert_eq!(flat2, layout.flat_of_word(w2));
        }
    }
}
