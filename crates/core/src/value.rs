//! Runtime values.

use std::fmt;

/// A runtime value: either a boolean or a (bounded) integer.
///
/// The programming model of the paper is untyped mathematically; we give it
/// the minimal type structure needed for the two case studies (counters and
/// edge orientations) and for finite-state enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
}

impl Value {
    /// Extracts a boolean, if this is one.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            Value::Int(_) => None,
        }
    }

    /// Extracts an integer, if this is one.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(n),
            Value::Bool(_) => None,
        }
    }

    /// Extracts a boolean, panicking on type confusion.
    ///
    /// Only used after expressions have been type checked.
    #[inline]
    pub fn expect_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(n) => panic!("type confusion: expected bool, found int {n}"),
        }
    }

    /// Extracts an integer, panicking on type confusion.
    #[inline]
    pub fn expect_int(self) -> i64 {
        match self {
            Value::Int(n) => n,
            Value::Bool(b) => panic!("type confusion: expected int, found bool {b}"),
        }
    }

    /// The type of this value.
    #[inline]
    pub fn ty(self) -> Type {
        match self {
            Value::Bool(_) => Type::Bool,
            Value::Int(_) => Type::Int,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
        }
    }
}

/// Static types of expressions and variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// Boolean type.
    Bool,
    /// Integer type.
    Int,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(7i64).as_int(), Some(7));
        assert_eq!(Value::from(true).as_int(), None);
        assert_eq!(Value::from(7i64).as_bool(), None);
    }

    #[test]
    fn types() {
        assert_eq!(Value::Bool(false).ty(), Type::Bool);
        assert_eq!(Value::Int(0).ty(), Type::Int);
        assert_eq!(Type::Bool.to_string(), "bool");
    }

    #[test]
    fn display() {
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }

    #[test]
    #[should_panic(expected = "type confusion")]
    fn expect_bool_panics_on_int() {
        Value::Int(1).expect_bool();
    }
}
