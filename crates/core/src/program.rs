//! Programs: the unit of composition.
//!
//! Following §2 of the paper, a program consists of a set of typed
//! variables, an `initially` predicate, a finite set `C` of commands
//! (always containing `skip` — kept *implicit* here and accounted for by
//! every checker), and a subset `D ⊆ C` of commands subject to weak
//! fairness.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::command::Command;
use crate::error::CoreError;
use crate::expr::eval::eval_bool;
use crate::expr::{vars, Expr};
use crate::ident::{VarId, Vocabulary};
use crate::state::{State, StateSpaceIter};

/// A UNITY-style program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (used in composition diagnostics).
    pub name: String,
    /// The vocabulary of variables the program may mention. Composed
    /// programs and their components share one vocabulary.
    pub vocab: Arc<Vocabulary>,
    /// Variables declared `local` to this program: no *other* program may
    /// write them.
    pub locals: BTreeSet<VarId>,
    /// The `initially` predicate.
    pub init: Expr,
    /// The explicit command set (excluding the implicit `skip`).
    pub commands: Vec<Command>,
    /// Indices into `commands` forming the weakly-fair subset `D`.
    pub fair: BTreeSet<usize>,
}

impl Program {
    /// Starts building a program over `vocab`.
    pub fn builder(name: impl Into<String>, vocab: Arc<Vocabulary>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            vocab,
            locals: BTreeSet::new(),
            init: crate::expr::build::tt(),
            commands: Vec::new(),
            fair: BTreeSet::new(),
            error: None,
        }
    }

    /// The set of variables any command of this program may write.
    pub fn write_set(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        for c in &self.commands {
            out.extend(c.writes());
        }
        out
    }

    /// The set of variables mentioned anywhere (init, guards, updates).
    pub fn mentioned_vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        vars::collect(&self.init, &mut out);
        for c in &self.commands {
            vars::collect(&c.guard, &mut out);
            for (x, e) in &c.updates {
                out.insert(*x);
                vars::collect(e, &mut out);
            }
        }
        out
    }

    /// Executes command `idx` from `state` (`skip` semantics on guard or
    /// domain failure).
    pub fn step(&self, idx: usize, state: &State) -> State {
        self.commands[idx].step(state, &self.vocab)
    }

    /// Whether `state` satisfies the `initially` predicate.
    pub fn satisfies_init(&self, state: &State) -> bool {
        eval_bool(&self.init, state)
    }

    /// Enumerates the initial states (all type-consistent states satisfying
    /// `init`). Exponential in vocabulary size; intended for finite
    /// instances.
    pub fn initial_states(&self) -> Vec<State> {
        StateSpaceIter::new(&self.vocab)
            .filter(|s| self.satisfies_init(s))
            .collect()
    }

    /// The weakly-fair commands (the paper's set `D`).
    pub fn fair_commands(&self) -> impl Iterator<Item = (usize, &Command)> {
        self.fair.iter().map(move |&i| (i, &self.commands[i]))
    }

    /// Number of explicit commands.
    pub fn command_count(&self) -> usize {
        self.commands.len()
    }

    /// Checks structural well-formedness: `init` is boolean, all commands
    /// type check (re-validation; builders enforce this on construction),
    /// fairness indices are in range, and locals exist in the vocabulary.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.init.check_pred(&self.vocab)?;
        for c in &self.commands {
            // Re-run the constructor checks.
            Command::new(
                c.name.clone(),
                c.guard.clone(),
                c.updates.clone(),
                &self.vocab,
            )?;
        }
        if let Some(&bad) = self.fair.iter().find(|&&i| i >= self.commands.len()) {
            return Err(CoreError::ProofShape {
                rule: "fairness",
                detail: format!("fair index {bad} out of range"),
            });
        }
        for &l in &self.locals {
            if l.index() >= self.vocab.len() {
                return Err(CoreError::UnknownVar {
                    name: l.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Renders a human-readable listing of the program.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "program {}", self.name);
        for (id, d) in self.vocab.iter() {
            let loc = if self.locals.contains(&id) {
                " local"
            } else {
                ""
            };
            let _ = writeln!(out, "  var {} : {}{}", d.name, d.domain, loc);
        }
        let _ = writeln!(
            out,
            "  init {}",
            crate::expr::pretty::Render::new(&self.init, &self.vocab)
        );
        for (i, c) in self.commands.iter().enumerate() {
            let kw = if self.fair.contains(&i) {
                "fair cmd"
            } else {
                "cmd"
            };
            let _ = writeln!(out, "  {} {}", kw, c.display(&self.vocab));
        }
        let _ = writeln!(out, "end");
        out
    }
}

/// Incremental builder for [`Program`], collecting the first error.
pub struct ProgramBuilder {
    name: String,
    vocab: Arc<Vocabulary>,
    locals: BTreeSet<VarId>,
    init: Expr,
    commands: Vec<Command>,
    fair: BTreeSet<usize>,
    error: Option<CoreError>,
}

impl ProgramBuilder {
    /// Declares `v` local to this program.
    pub fn local(mut self, v: VarId) -> Self {
        self.locals.insert(v);
        self
    }

    /// Conjoins `p` onto the `initially` predicate.
    pub fn init(mut self, p: Expr) -> Self {
        if self.error.is_none() {
            if let Err(e) = p.check_pred(&self.vocab) {
                self.error = Some(e);
                return self;
            }
            self.init = if self.init.is_true() {
                p
            } else {
                crate::expr::build::and2(
                    std::mem::replace(&mut self.init, crate::expr::build::tt()),
                    p,
                )
            };
        }
        self
    }

    /// Adds a non-fair command.
    pub fn command(
        mut self,
        name: impl Into<String>,
        guard: Expr,
        updates: Vec<(VarId, Expr)>,
    ) -> Self {
        if self.error.is_none() {
            match Command::new(name, guard, updates, &self.vocab) {
                Ok(c) => self.commands.push(c),
                Err(e) => self.error = Some(e),
            }
        }
        self
    }

    /// Adds a weakly-fair command (member of `D`).
    pub fn fair_command(
        mut self,
        name: impl Into<String>,
        guard: Expr,
        updates: Vec<(VarId, Expr)>,
    ) -> Self {
        if self.error.is_none() {
            match Command::new(name, guard, updates, &self.vocab) {
                Ok(c) => {
                    self.commands.push(c);
                    self.fair.insert(self.commands.len() - 1);
                }
                Err(e) => self.error = Some(e),
            }
        }
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Result<Program, CoreError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let p = Program {
            name: self.name,
            vocab: self.vocab,
            locals: self.locals,
            init: self.init,
            commands: self.commands,
            fair: self.fair,
        };
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::build::*;
    use crate::value::Value;

    fn counter_program() -> Program {
        let mut v = Vocabulary::new();
        let c = v.declare("c", Domain::int_range(0, 2).unwrap()).unwrap();
        let big = v.declare("C", Domain::int_range(0, 2).unwrap()).unwrap();
        let vocab = Arc::new(v);
        Program::builder("counter", vocab)
            .local(c)
            .init(and2(eq(var(c), int(0)), eq(var(big), int(0))))
            .fair_command(
                "a",
                lt(var(c), int(2)),
                vec![(c, add(var(c), int(1))), (big, add(var(big), int(1)))],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builder_builds() {
        let p = counter_program();
        assert_eq!(p.command_count(), 1);
        assert_eq!(p.fair.len(), 1);
        assert_eq!(p.locals.len(), 1);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn initial_states_satisfy_init() {
        let p = counter_program();
        let inits = p.initial_states();
        assert_eq!(inits.len(), 1);
        assert!(p.satisfies_init(&inits[0]));
        assert_eq!(inits[0].get(VarId(0)), Value::Int(0));
    }

    #[test]
    fn write_and_mentioned_sets() {
        let p = counter_program();
        let w = p.write_set();
        assert_eq!(w.len(), 2);
        let m = p.mentioned_vars();
        assert!(w.is_subset(&m));
    }

    #[test]
    fn step_executes() {
        let p = counter_program();
        let s0 = p.initial_states().remove(0);
        let s1 = p.step(0, &s0);
        assert_eq!(s1.get(VarId(0)), Value::Int(1));
        assert_eq!(s1.get(VarId(1)), Value::Int(1));
    }

    #[test]
    fn builder_propagates_errors() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        let r = Program::builder("bad", Arc::new(v))
            .init(var(x))
            .command("c", int(0), vec![]) // non-boolean guard
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn listing_is_parseable_shape() {
        let p = counter_program();
        let l = p.listing();
        assert!(l.contains("program counter"));
        assert!(l.contains("var c : int 0..2 local"));
        assert!(l.contains("fair cmd a:"));
        assert!(l.trim_end().ends_with("end"));
    }
}
