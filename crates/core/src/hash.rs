//! A fast non-cryptographic hasher for state tables and content keys.
//!
//! State interning is the hottest hash-table workload in the checker; the
//! default SipHash is needlessly strong for it (no untrusted input). This
//! is the classic Fx/fxhash multiply-rotate mix, implemented locally to
//! stay within the approved dependency set. It lives in `unity-core` so
//! both the model checker's intern tables and the compositional layer's
//! content-hashed certificates key with the same function.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` build-hasher alias using [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (word-at-a-time).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

/// The finalized [`FxHasher`] value of a single `u64` — exactly what a
/// `FxHashMap<u64, _>` computes for the same key, exposed so the sharded
/// explorer can partition state words consistently with its per-shard
/// intern tables.
#[inline]
pub fn hash_word(word: u64) -> u64 {
    word.wrapping_mul(SEED)
}

/// The owning shard of a state word under a power-of-two shard count:
/// a mask over the **high** bits of the [`hash_word`] finalizer. The
/// multiply mixes low input bits into the high output bits, so high
/// bits discriminate well even for small consecutive words — and they
/// are disjoint from the low bits the intern tables' bucket index uses,
/// keeping per-shard tables evenly loaded.
#[inline]
pub fn shard_of_word(word: u64, shards: u32) -> u32 {
    debug_assert!(shards.is_power_of_two());
    ((hash_word(word) >> (64 - shards.trailing_zeros().max(1))) & (shards as u64 - 1)) as u32
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_discriminating() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"abc"), h(b"abc"));
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"12345678"), h(b"12345679"));
    }

    #[test]
    fn hash_word_matches_the_hasher() {
        for w in [0u64, 1, 42, u64::MAX, 0xdead_beef_cafe_f00d] {
            let mut hasher = FxHasher::default();
            hasher.write_u64(w);
            assert_eq!(hash_word(w), hasher.finish());
        }
    }

    #[test]
    fn shard_of_word_is_in_range_and_balanced() {
        for shards in [1u32, 2, 4, 8, 16, 64] {
            let mut counts = vec![0u32; shards as usize];
            for w in 0..4096u64 {
                let s = shard_of_word(w, shards);
                assert!(s < shards);
                counts[s as usize] += 1;
            }
            // Consecutive words must spread: no shard may own more than
            // 4x its fair share (the multiply-rotate mix does far
            // better; this is a tripwire against a degenerate mask).
            let fair = 4096 / shards;
            assert!(
                counts.iter().all(|&c| c <= 4 * fair),
                "skewed shards at P={shards}: {counts:?}"
            );
        }
    }

    #[test]
    fn usable_in_hashmap() {
        let mut m: FxHashMap<Vec<u8>, usize> = FxHashMap::default();
        for i in 0..1000usize {
            m.insert(i.to_le_bytes().to_vec(), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&5usize.to_le_bytes().to_vec()], 5);
    }
}
