//! Automatic discovery of conserved linear quantities.
//!
//! §3.3 of the paper *constructs* the shared universal property
//! `∀k. stable (C − Σᵢ cᵢ = k)` from the components' local specifications
//! and calls the step creative ("we found no mechanical way of bridging
//! this gap"). For the linear fragment the bridge *is* mechanical: a
//! linear combination `L = Σ aᵥ·v` is unchanged by a multi-assignment
//! `x̄ := ē` exactly when the (linear) update leaves `L`'s normal form
//! fixed, which is a homogeneous linear system in the coefficients `aᵥ`.
//! Solving it — one equation block per command, null space over the
//! rationals — yields *every* linear quantity conserved by *every*
//! command: precisely the candidates for the paper's weakened universal
//! property, found by Gaussian elimination instead of insight.
//!
//! Soundness notes:
//!
//! * Guards are ignored (we require the update to conserve `L`
//!   unconditionally), so every reported combination really is
//!   `Unchanged` in the paper's sense — the analysis is sound and only
//!   *incomplete* for guard-dependent conservation.
//! * Updates whose right-hand side is not exactly linear (or could
//!   saturate — see [`crate::expr::linear`]) make their target variable
//!   **tainted**: its coefficient is pinned to zero rather than failing
//!   the whole analysis. Tainted variables are reported.
//! * Results can be independently re-verified: wrap a combination in
//!   [`crate::properties::Property::Unchanged`] and hand it to the model
//!   checker (the test-suites do).

use std::collections::{BTreeMap, BTreeSet};

use crate::expr::build::{eq, int, mul, neg, sum, var};
use crate::expr::linear::linear_form;
use crate::expr::Expr;
use crate::ident::VarId;
use crate::program::Program;
use crate::state::State;
use crate::value::{Type, Value};

/// An integer-coefficient linear combination of program variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearCombo {
    /// Non-zero coefficients per variable.
    pub coeffs: BTreeMap<VarId, i64>,
}

impl LinearCombo {
    /// Builds the combination as an expression (`Σ aᵥ·v`, with `±1`
    /// coefficients rendered without the multiplication).
    pub fn to_expr(&self) -> Expr {
        let terms: Vec<Expr> = self
            .coeffs
            .iter()
            .map(|(&v, &a)| match a {
                1 => var(v),
                -1 => neg(var(v)),
                a => mul(int(a), var(v)),
            })
            .collect();
        sum(terms)
    }

    /// Exact (non-saturating) value of the combination in `state`.
    pub fn evaluate(&self, state: &State) -> i128 {
        self.coeffs
            .iter()
            .map(|(&v, &a)| {
                let Value::Int(x) = state.get(v) else {
                    return 0;
                };
                a as i128 * x as i128
            })
            .sum()
    }

    /// Number of variables with non-zero coefficient.
    pub fn support_size(&self) -> usize {
        self.coeffs.len()
    }
}

/// The full basis of conserved linear combinations of a program.
#[derive(Debug, Clone)]
pub struct ConservedBasis {
    /// A basis (over ℚ, scaled to coprime integers) of the space of
    /// conserved linear combinations.
    pub combos: Vec<LinearCombo>,
    /// Integer variables excluded from the analysis because some update
    /// of theirs is non-linear or could saturate.
    pub tainted: Vec<VarId>,
}

impl ConservedBasis {
    /// Dimension of the conserved space (excluding tainted variables).
    pub fn dimension(&self) -> usize {
        self.combos.len()
    }

    /// The combinations whose support has at least two variables — the
    /// interesting ones (single-variable members are just never-written
    /// variables).
    pub fn nontrivial(&self) -> Vec<&LinearCombo> {
        self.combos
            .iter()
            .filter(|c| c.support_size() >= 2)
            .collect()
    }
}

/// Computes the basis of linear combinations conserved by **every**
/// command of `program` (see the module docs for scope and soundness).
pub fn conserved_linear_combinations(program: &Program) -> ConservedBasis {
    let vocab = &program.vocab;
    // Columns: integer-typed variables, in VarId order.
    let int_vars: Vec<VarId> = vocab
        .iter()
        .filter(|(_, d)| d.domain.ty() == Type::Int)
        .map(|(id, _)| id)
        .collect();
    let col_of: BTreeMap<VarId, usize> =
        int_vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let ncols = int_vars.len();

    // Taint analysis: non-linearizable updates pin their target to 0.
    let mut tainted: BTreeSet<VarId> = BTreeSet::new();
    for c in &program.commands {
        for (x, e) in &c.updates {
            if vocab.domain(*x).ty() != Type::Int {
                continue;
            }
            if linear_form(e, vocab).is_none() {
                tainted.insert(*x);
            }
        }
    }

    let mut rows: Vec<Vec<Ratio>> = Vec::new();
    for &t in &tainted {
        let mut row = vec![Ratio::ZERO; ncols];
        row[col_of[&t]] = Ratio::ONE;
        rows.push(row);
    }

    for c in &program.commands {
        // Written integer variables with their update's linear form.
        let mut written: BTreeMap<VarId, crate::expr::linear::LinearForm> = BTreeMap::new();
        let mut skip_cmd = false;
        for (x, e) in &c.updates {
            if vocab.domain(*x).ty() != Type::Int || tainted.contains(x) {
                continue;
            }
            match linear_form(e, vocab) {
                Some(lf) => {
                    // A tainted variable may still appear on the RHS of a
                    // clean update; its coefficient there matters, so keep
                    // the form (its column is pinned to zero anyway).
                    written.insert(*x, lf);
                }
                None => {
                    // Shouldn't happen (taint pass covered it) — but stay
                    // conservative.
                    skip_cmd = true;
                }
            }
        }
        if skip_cmd || written.is_empty() {
            continue;
        }
        // Per variable w: Σ_x coef(e_x, w)·a_x − [w written]·a_w = 0.
        for &w in &int_vars {
            let mut row = vec![Ratio::ZERO; ncols];
            let mut nonzero = false;
            for (x, lf) in &written {
                let coef = lf.coeffs.get(&w).copied().unwrap_or(0);
                if coef != 0 {
                    row[col_of[x]] = row[col_of[x]].add(Ratio::of(coef));
                    nonzero = true;
                }
            }
            if written.contains_key(&w) {
                row[col_of[&w]] = row[col_of[&w]].sub(Ratio::ONE);
                nonzero = true;
            }
            if nonzero {
                rows.push(row);
            }
        }
        // Constant: Σ_x const(e_x)·a_x = 0.
        let mut row = vec![Ratio::ZERO; ncols];
        let mut nonzero = false;
        for (x, lf) in &written {
            if lf.constant != 0 {
                row[col_of[x]] = row[col_of[x]].add(Ratio::of(lf.constant));
                nonzero = true;
            }
        }
        if nonzero {
            rows.push(row);
        }
    }

    let basis = null_space(rows, ncols);
    let combos = basis
        .into_iter()
        .map(|vec| {
            let coeffs = int_vars
                .iter()
                .enumerate()
                .filter(|(i, _)| vec[*i] != 0)
                .map(|(i, &v)| (v, vec[i]))
                .collect();
            LinearCombo { coeffs }
        })
        .collect();
    ConservedBasis {
        combos,
        tainted: tainted.into_iter().collect(),
    }
}

/// If every initial state gives the combination the same value, returns
/// the derived invariant `L = value` — the automatic analogue of §3.3's
/// `invariant C = Σᵢ cᵢ` (whose initial value is 0). Enumerates the full
/// initial-state set; intended for finite instances.
pub fn invariant_from_combo(program: &Program, combo: &LinearCombo) -> Option<Expr> {
    let inits = program.initial_states();
    let first = combo.evaluate(inits.first()?);
    if inits.iter().any(|s| combo.evaluate(s) != first) {
        return None;
    }
    let k = i64::try_from(first).ok()?;
    Some(eq(combo.to_expr(), int(k)))
}

// ---------------------------------------------------------------------
// Exact rational arithmetic + null space (small dense systems).
// ---------------------------------------------------------------------

/// A reduced rational with positive denominator, over `i128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ratio {
    num: i128,
    den: i128,
}

impl Ratio {
    const ZERO: Ratio = Ratio { num: 0, den: 1 };
    const ONE: Ratio = Ratio { num: 1, den: 1 };

    fn of(n: i64) -> Ratio {
        Ratio {
            num: n as i128,
            den: 1,
        }
    }

    fn reduced(num: i128, den: i128) -> Ratio {
        debug_assert!(den != 0);
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i128;
        let sign = if den < 0 { -1 } else { 1 };
        if g == 0 {
            return Ratio::ZERO;
        }
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    fn add(self, o: Ratio) -> Ratio {
        Ratio::reduced(self.num * o.den + o.num * self.den, self.den * o.den)
    }

    fn sub(self, o: Ratio) -> Ratio {
        Ratio::reduced(self.num * o.den - o.num * self.den, self.den * o.den)
    }

    fn mul(self, o: Ratio) -> Ratio {
        Ratio::reduced(self.num * o.num, self.den * o.den)
    }

    fn div(self, o: Ratio) -> Ratio {
        debug_assert!(o.num != 0);
        Ratio::reduced(self.num * o.den, self.den * o.num)
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn lcm(a: u128, b: u128) -> u128 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

/// Null-space basis of the homogeneous system `rows · a = 0`, returned as
/// coprime integer vectors with positive leading entry.
fn null_space(mut rows: Vec<Vec<Ratio>>, ncols: usize) -> Vec<Vec<i64>> {
    // Reduced row echelon form.
    let mut pivot_cols: Vec<usize> = Vec::new();
    let mut r = 0;
    for c in 0..ncols {
        let Some(pr) = (r..rows.len()).find(|&i| !rows[i][c].is_zero()) else {
            continue;
        };
        rows.swap(r, pr);
        let pv = rows[r][c];
        for x in rows[r].iter_mut() {
            *x = x.div(pv);
        }
        let pivot_row = rows[r].clone();
        for (i, row) in rows.iter_mut().enumerate() {
            if i != r && !row[c].is_zero() {
                let f = row[c];
                for (cell, p) in row.iter_mut().zip(&pivot_row) {
                    *cell = cell.sub(p.mul(f));
                }
            }
        }
        pivot_cols.push(c);
        r += 1;
        if r == rows.len() {
            break;
        }
    }

    let is_pivot = |c: usize| pivot_cols.contains(&c);
    let mut basis = Vec::new();
    for free in (0..ncols).filter(|&c| !is_pivot(c)) {
        // a_free = 1; pivots determined by their row.
        let mut vec_q = vec![Ratio::ZERO; ncols];
        vec_q[free] = Ratio::ONE;
        for (row_idx, &pc) in pivot_cols.iter().enumerate() {
            // Row: a_pc + Σ_{free cols c} rows[row_idx][c]·a_c = 0.
            vec_q[pc] = Ratio::ZERO.sub(rows[row_idx][free]);
        }
        // Scale to coprime integers.
        let denom_lcm = vec_q
            .iter()
            .fold(1u128, |acc, x| lcm(acc, x.den.unsigned_abs()));
        let ints: Vec<i128> = vec_q
            .iter()
            .map(|x| x.num * (denom_lcm as i128 / x.den))
            .collect();
        let g = ints
            .iter()
            .fold(0u128, |acc, &x| gcd(acc, x.unsigned_abs()))
            .max(1);
        let mut out: Vec<i64> = ints.iter().map(|&x| (x / g as i128) as i64).collect();
        if let Some(first) = out.iter().find(|&&x| x != 0) {
            if *first < 0 {
                for x in &mut out {
                    *x = -*x;
                }
            }
        }
        basis.push(out);
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::build::{add, and2, lt, mul as bmul, sub as bsub, tt};
    use crate::ident::Vocabulary;
    use std::sync::Arc;

    fn toy_two() -> (Program, VarId, VarId, VarId) {
        let mut v = Vocabulary::new();
        let c0 = v.declare("c0", Domain::int_range(0, 2).unwrap()).unwrap();
        let c1 = v.declare("c1", Domain::int_range(0, 2).unwrap()).unwrap();
        let big = v.declare("C", Domain::int_range(0, 4).unwrap()).unwrap();
        let vocab = Arc::new(v);
        let p = Program::builder("toy", vocab)
            .init(and2(
                and2(eq(var(c0), int(0)), eq(var(c1), int(0))),
                eq(var(big), int(0)),
            ))
            .fair_command(
                "a0",
                and2(lt(var(c0), int(2)), lt(var(big), int(4))),
                vec![(c0, add(var(c0), int(1))), (big, add(var(big), int(1)))],
            )
            .fair_command(
                "a1",
                and2(lt(var(c1), int(2)), lt(var(big), int(4))),
                vec![(c1, add(var(c1), int(1))), (big, add(var(big), int(1)))],
            )
            .build()
            .unwrap();
        (p, c0, c1, big)
    }

    #[test]
    fn discovers_the_toy_conservation_law() {
        let (p, c0, c1, big) = toy_two();
        let basis = conserved_linear_combinations(&p);
        assert!(basis.tainted.is_empty());
        let nontrivial = basis.nontrivial();
        assert_eq!(nontrivial.len(), 1, "exactly the paper's law");
        let combo = nontrivial[0];
        // C − c0 − c1 up to global sign; leading coefficient normalized
        // positive means c0 gets +1 (it is the lowest VarId).
        let expected: BTreeMap<VarId, i64> = [(c0, 1), (c1, 1), (big, -1)].into_iter().collect();
        assert_eq!(combo.coeffs, expected);
    }

    #[test]
    fn derives_the_invariant_with_initial_value() {
        let (p, ..) = toy_two();
        let basis = conserved_linear_combinations(&p);
        let combo = basis.nontrivial()[0];
        let inv = invariant_from_combo(&p, combo).expect("init pins the value");
        // c0 + c1 − C = 0.
        let rendered = format!("{}", crate::expr::pretty::Render::new(&inv, &p.vocab));
        assert!(rendered.contains('='), "an equation: {rendered}");
    }

    #[test]
    fn swap_conserves_the_sum() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
        let p = Program::builder("swap", Arc::new(v))
            .init(tt())
            .command("swap", tt(), vec![(x, var(y)), (y, var(x))])
            .build()
            .unwrap();
        let basis = conserved_linear_combinations(&p);
        let expected: BTreeMap<VarId, i64> = [(x, 1), (y, 1)].into_iter().collect();
        assert!(basis.combos.iter().any(|c| c.coeffs == expected));
        // x − y is *not* conserved (it flips sign).
        let flipped: BTreeMap<VarId, i64> = [(x, 1), (y, -1)].into_iter().collect();
        assert!(basis.combos.iter().all(|c| c.coeffs != flipped));
    }

    #[test]
    fn transfer_conserves_weighted_sum() {
        // x -= 1, y += 2 conserves 2x + y.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 4).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 8).unwrap()).unwrap();
        let p = Program::builder("transfer", Arc::new(v))
            .init(tt())
            .command(
                "t",
                and2(lt(int(0), var(x)), lt(var(y), int(7))),
                vec![(x, bsub(var(x), int(1))), (y, add(var(y), int(2)))],
            )
            .build()
            .unwrap();
        let basis = conserved_linear_combinations(&p);
        let expected: BTreeMap<VarId, i64> = [(x, 2), (y, 1)].into_iter().collect();
        assert_eq!(basis.nontrivial().len(), 1);
        assert_eq!(basis.nontrivial()[0].coeffs, expected);
    }

    #[test]
    fn unwritten_variable_is_trivially_conserved() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 2).unwrap()).unwrap();
        let z = v.declare("z", Domain::int_range(0, 2).unwrap()).unwrap();
        let p = Program::builder("inc", Arc::new(v))
            .init(tt())
            .command("i", lt(var(x), int(2)), vec![(x, add(var(x), int(1)))])
            .build()
            .unwrap();
        let basis = conserved_linear_combinations(&p);
        let z_alone: BTreeMap<VarId, i64> = [(z, 1)].into_iter().collect();
        assert!(basis.combos.iter().any(|c| c.coeffs == z_alone));
        // x alone is not conserved.
        let x_alone: BTreeMap<VarId, i64> = [(x, 1)].into_iter().collect();
        assert!(basis.combos.iter().all(|c| c.coeffs != x_alone));
    }

    #[test]
    fn nonlinear_update_taints_only_its_target() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
        let z = v.declare("z", Domain::int_range(0, 3).unwrap()).unwrap();
        let p = Program::builder("mixed", Arc::new(v))
            .init(tt())
            .command("sq", tt(), vec![(x, bmul(var(x), var(x)))])
            .command("swap", tt(), vec![(y, var(z)), (z, var(y))])
            .build()
            .unwrap();
        let basis = conserved_linear_combinations(&p);
        assert_eq!(basis.tainted, vec![x]);
        let yz: BTreeMap<VarId, i64> = [(y, 1), (z, 1)].into_iter().collect();
        assert!(basis.combos.iter().any(|c| c.coeffs == yz));
        assert!(basis.combos.iter().all(|c| !c.coeffs.contains_key(&x)));
    }

    #[test]
    fn combo_expr_and_eval_agree() {
        let (p, c0, c1, big) = toy_two();
        let basis = conserved_linear_combinations(&p);
        let combo = basis.nontrivial()[0].clone();
        let e = combo.to_expr();
        e.infer_type(&p.vocab).unwrap();
        let mut s = State::minimum(&p.vocab);
        s.set(c0, Value::Int(2));
        s.set(c1, Value::Int(1));
        s.set(big, Value::Int(3));
        // c0 + c1 − C = 0 on a conserved trajectory point.
        assert_eq!(combo.evaluate(&s), 0);
        let v = crate::expr::eval::eval_int(&e, &s);
        assert_eq!(v, 0);
    }

    #[test]
    fn invariant_from_combo_rejects_unpinned_inits() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
        let p = Program::builder("free", Arc::new(v))
            .init(tt()) // any initial value
            .command("swap", tt(), vec![(x, var(y)), (y, var(x))])
            .build()
            .unwrap();
        let basis = conserved_linear_combinations(&p);
        let combo = basis.combos.iter().find(|c| c.support_size() == 2).unwrap();
        assert!(invariant_from_combo(&p, combo).is_none());
    }

    #[test]
    fn rational_arithmetic_reduces() {
        let a = Ratio::reduced(2, 4);
        assert_eq!(a, Ratio { num: 1, den: 2 });
        let b = Ratio::reduced(-3, -6);
        assert_eq!(b, Ratio { num: 1, den: 2 });
        let c = Ratio::reduced(3, -6);
        assert_eq!(c, Ratio { num: -1, den: 2 });
        assert_eq!(a.add(b), Ratio::ONE);
        assert_eq!(a.sub(b), Ratio::ZERO);
        assert_eq!(a.mul(Ratio::of(4)), Ratio::of(2));
        assert_eq!(Ratio::of(3).div(Ratio::of(3)), Ratio::ONE);
        assert!(Ratio::ZERO.is_zero());
    }
}
