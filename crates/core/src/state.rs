//! Program states.
//!
//! A [`State`] assigns a value to every variable of a vocabulary, laid out as
//! a flat array indexed by [`VarId`]. States are small and cheap to clone;
//! the model checker additionally packs them into `u64` keys when the
//! vocabulary fits (see `unity-mc`).

use std::fmt;

use crate::ident::{VarId, Vocabulary};
use crate::value::Value;

/// A total assignment of values to the variables of a vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State {
    values: Box<[Value]>,
}

impl State {
    /// Builds a state from a value vector (one entry per variable, in
    /// [`VarId`] order).
    pub fn new(values: Vec<Value>) -> Self {
        State {
            values: values.into_boxed_slice(),
        }
    }

    /// The all-minimum state of `vocab` (each variable at its domain minimum).
    pub fn minimum(vocab: &Vocabulary) -> Self {
        State::new(vocab.iter().map(|(_, d)| d.domain.min_value()).collect())
    }

    /// Value of variable `id`.
    #[inline]
    pub fn get(&self, id: VarId) -> Value {
        self.values[id.index()]
    }

    /// Sets variable `id` to `v`.
    #[inline]
    pub fn set(&mut self, id: VarId, v: Value) {
        self.values[id.index()] = v;
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state has no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw value slice in [`VarId`] order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Whether every variable's value lies in its declared domain.
    pub fn in_domains(&self, vocab: &Vocabulary) -> bool {
        self.values
            .iter()
            .zip(vocab.iter())
            .all(|(v, (_, d))| d.domain.contains(*v))
    }

    /// Renders the state with variable names from `vocab`, e.g.
    /// `{c0=1, C=1}`.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> StateDisplay<'a> {
        StateDisplay { state: self, vocab }
    }
}

/// Helper for rendering states with variable names.
pub struct StateDisplay<'a> {
    state: &'a State,
    vocab: &'a Vocabulary,
}

impl fmt::Display for StateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (id, decl)) in self.vocab.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", decl.name, self.state.get(id))?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the full domain product of a vocabulary, in canonical
/// (mixed-radix, first variable slowest) order.
///
/// The iterator yields every type-consistent state exactly once; this is the
/// state universe over which the paper's inductive `next`/`stable`/`transient`
/// definitions quantify.
pub struct StateSpaceIter<'a> {
    vocab: &'a Vocabulary,
    /// Canonical indices per variable; `None` once exhausted.
    cursor: Option<Vec<u64>>,
}

impl<'a> StateSpaceIter<'a> {
    /// Creates the iterator. An empty vocabulary yields exactly one (empty)
    /// state.
    pub fn new(vocab: &'a Vocabulary) -> Self {
        StateSpaceIter {
            vocab,
            cursor: Some(vec![0; vocab.len()]),
        }
    }

    /// Decodes a flat index (in the same canonical order as iteration) into a
    /// state. `flat` must be `< vocab.space_size()`.
    pub fn decode(vocab: &Vocabulary, mut flat: u64) -> State {
        let mut vals = vec![Value::Bool(false); vocab.len()];
        for (id, decl) in vocab.iter().rev() {
            let size = decl.domain.size();
            vals[id.index()] = decl.domain.value_at(flat % size);
            flat /= size;
        }
        State::new(vals)
    }

    /// Encodes a state into its flat canonical index.
    pub fn encode(vocab: &Vocabulary, state: &State) -> Option<u64> {
        let mut flat: u64 = 0;
        for (id, decl) in vocab.iter() {
            let idx = decl.domain.index_of(state.get(id))?;
            flat = flat.checked_mul(decl.domain.size())?.checked_add(idx)?;
        }
        Some(flat)
    }
}

impl Iterator for StateSpaceIter<'_> {
    type Item = State;

    fn next(&mut self) -> Option<State> {
        let cursor = self.cursor.as_mut()?;
        let state = State::new(
            cursor
                .iter()
                .zip(self.vocab.iter())
                .map(|(&k, (_, d))| d.domain.value_at(k))
                .collect(),
        );
        // Advance mixed-radix counter, last variable fastest.
        let mut i = cursor.len();
        loop {
            if i == 0 {
                self.cursor = None;
                break;
            }
            i -= 1;
            let size = self.vocab.domain(VarId(i as u32)).size();
            let c = self.cursor.as_mut().unwrap();
            c[i] += 1;
            if c[i] < size {
                break;
            }
            c[i] = 0;
        }
        Some(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("b", Domain::Bool).unwrap();
        v.declare("n", Domain::int_range(0, 2).unwrap()).unwrap();
        v
    }

    #[test]
    fn get_set() {
        let v = vocab();
        let mut s = State::minimum(&v);
        assert_eq!(s.get(VarId(0)), Value::Bool(false));
        s.set(VarId(1), Value::Int(2));
        assert_eq!(s.get(VarId(1)), Value::Int(2));
        assert!(s.in_domains(&v));
        s.set(VarId(1), Value::Int(9));
        assert!(!s.in_domains(&v));
    }

    #[test]
    fn iteration_covers_product() {
        let v = vocab();
        let states: Vec<State> = StateSpaceIter::new(&v).collect();
        assert_eq!(states.len(), 6);
        // All distinct.
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                assert_ne!(states[i], states[j]);
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let v = vocab();
        for (flat, s) in StateSpaceIter::new(&v).enumerate() {
            assert_eq!(StateSpaceIter::encode(&v, &s), Some(flat as u64));
            assert_eq!(StateSpaceIter::decode(&v, flat as u64), s);
        }
    }

    #[test]
    fn empty_vocabulary_yields_one_state() {
        let v = Vocabulary::new();
        let states: Vec<State> = StateSpaceIter::new(&v).collect();
        assert_eq!(states.len(), 1);
        assert!(states[0].is_empty());
    }

    #[test]
    fn display_uses_names() {
        let v = vocab();
        let s = State::minimum(&v);
        assert_eq!(s.display(&v).to_string(), "{b=false, n=0}");
    }
}
