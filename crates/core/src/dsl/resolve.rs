//! Name resolution: surface AST → core IR.

use std::sync::Arc;

use crate::domain::Domain;
use crate::error::CoreError;
use crate::expr::{BinOp, Expr, NAryOp};
use crate::ident::Vocabulary;
use crate::program::Program;
use crate::properties::Property;
use crate::value::Value;

use super::ast::*;

/// Resolves a surface program into a [`Program`] over a fresh vocabulary.
pub fn resolve_program(sp: &SProgram) -> Result<Program, CoreError> {
    let mut vocab = Vocabulary::new();
    let mut locals = Vec::new();
    for v in &sp.vars {
        let domain = match v.ty {
            SType::Bool => Domain::Bool,
            SType::IntRange(lo, hi) => Domain::int_range(lo, hi)?,
        };
        let id = vocab.declare(&v.name, domain)?;
        if v.local {
            locals.push(id);
        }
    }
    let vocab = Arc::new(vocab);
    let mut b = Program::builder(sp.name.clone(), vocab.clone());
    for l in locals {
        b = b.local(l);
    }
    for init in &sp.inits {
        b = b.init(resolve_expr(init, &vocab)?);
    }
    for c in &sp.commands {
        let guard = resolve_expr(&c.guard, &vocab)?;
        let mut updates = Vec::with_capacity(c.updates.len());
        for (name, rhs) in &c.updates {
            let id = vocab
                .lookup(name)
                .ok_or_else(|| CoreError::UnknownVar { name: name.clone() })?;
            updates.push((id, resolve_expr(rhs, &vocab)?));
        }
        b = if c.fair {
            b.fair_command(c.name.clone(), guard, updates)
        } else {
            b.command(c.name.clone(), guard, updates)
        };
    }
    b.build()
}

/// Resolves a surface expression against `vocab`.
pub fn resolve_expr(se: &SExpr, vocab: &Vocabulary) -> Result<Expr, CoreError> {
    let e = go(se, vocab)?;
    e.infer_type(vocab)?;
    Ok(e)
}

fn go(se: &SExpr, vocab: &Vocabulary) -> Result<Expr, CoreError> {
    Ok(match se {
        SExpr::Int(n) => Expr::Lit(Value::Int(*n)),
        SExpr::Bool(b) => Expr::Lit(Value::Bool(*b)),
        SExpr::Name(name) => {
            let id = vocab
                .lookup(name)
                .ok_or_else(|| CoreError::UnknownVar { name: name.clone() })?;
            Expr::Var(id)
        }
        SExpr::Unary(SUnOp::Not, a) => Expr::Not(Box::new(go(a, vocab)?)),
        SExpr::Unary(SUnOp::Neg, a) => Expr::Neg(Box::new(go(a, vocab)?)),
        SExpr::Binary(op, a, b) => Expr::Bin(
            resolve_binop(*op),
            Box::new(go(a, vocab)?),
            Box::new(go(b, vocab)?),
        ),
        SExpr::Ite(c, t, f) => Expr::Ite(
            Box::new(go(c, vocab)?),
            Box::new(go(t, vocab)?),
            Box::new(go(f, vocab)?),
        ),
        SExpr::Call(call, args) => {
            let op = match call {
                SCall::All => NAryOp::And,
                SCall::Any => NAryOp::Or,
                SCall::Sum => NAryOp::Sum,
                SCall::Min => NAryOp::Min,
                SCall::Max => NAryOp::Max,
            };
            Expr::NAry(
                op,
                args.iter()
                    .map(|a| go(a, vocab))
                    .collect::<Result<_, _>>()?,
            )
        }
    })
}

fn resolve_binop(op: SBinOp) -> BinOp {
    match op {
        SBinOp::Add => BinOp::Add,
        SBinOp::Sub => BinOp::Sub,
        SBinOp::Mul => BinOp::Mul,
        SBinOp::Div => BinOp::Div,
        SBinOp::Mod => BinOp::Mod,
        SBinOp::Eq => BinOp::Eq,
        SBinOp::Ne => BinOp::Ne,
        SBinOp::Lt => BinOp::Lt,
        SBinOp::Le => BinOp::Le,
        SBinOp::Gt => BinOp::Gt,
        SBinOp::Ge => BinOp::Ge,
        SBinOp::And => BinOp::And,
        SBinOp::Or => BinOp::Or,
        SBinOp::Implies => BinOp::Implies,
        SBinOp::Iff => BinOp::Iff,
    }
}

/// Resolves a surface property against `vocab`, type checking it.
pub fn resolve_property(sp: &SProperty, vocab: &Vocabulary) -> Result<Property, CoreError> {
    let prop = match sp {
        SProperty::Init(p) => Property::Init(resolve_expr(p, vocab)?),
        SProperty::Transient(p) => Property::Transient(resolve_expr(p, vocab)?),
        SProperty::Stable(p) => Property::Stable(resolve_expr(p, vocab)?),
        SProperty::Invariant(p) => Property::Invariant(resolve_expr(p, vocab)?),
        SProperty::Unchanged(e) => Property::Unchanged(resolve_expr(e, vocab)?),
        SProperty::Next(p, q) => Property::Next(resolve_expr(p, vocab)?, resolve_expr(q, vocab)?),
        SProperty::LeadsTo(p, q) => {
            Property::LeadsTo(resolve_expr(p, vocab)?, resolve_expr(q, vocab)?)
        }
    };
    prop.check_types(vocab)?;
    Ok(prop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_names() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let se = SExpr::Binary(
            SBinOp::Add,
            Box::new(SExpr::Name("x".into())),
            Box::new(SExpr::Int(1)),
        );
        let e = resolve_expr(&se, &v).unwrap();
        assert_eq!(
            e,
            crate::expr::build::add(crate::expr::build::var(x), crate::expr::build::int(1))
        );
    }

    #[test]
    fn rejects_unknown_name() {
        let v = Vocabulary::new();
        let se = SExpr::Name("nope".into());
        assert!(matches!(
            resolve_expr(&se, &v),
            Err(CoreError::UnknownVar { .. })
        ));
    }

    #[test]
    fn rejects_ill_typed() {
        let mut v = Vocabulary::new();
        v.declare("b", Domain::Bool).unwrap();
        let se = SExpr::Binary(
            SBinOp::Add,
            Box::new(SExpr::Name("b".into())),
            Box::new(SExpr::Int(1)),
        );
        assert!(resolve_expr(&se, &v).is_err());
    }
}
