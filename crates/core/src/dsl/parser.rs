//! Recursive-descent parser for the DSL.

use crate::error::CoreError;

use super::ast::*;
use super::lexer::{Spanned, Tok};

/// Parser over a token stream.
pub struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over `toks`.
    pub fn new(toks: Vec<Spanned>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn here(&self) -> (u32, u32) {
        match self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
        {
            Some(s) => (s.line, s.col),
            None => (1, 1),
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CoreError> {
        let (line, col) = self.here();
        Err(CoreError::Parse {
            line,
            col,
            msg: msg.into(),
        })
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), CoreError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => self.err(format!("expected {what}, found {t:?}")),
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, CoreError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            Some(t) => self.err(format!("expected {what}, found {t:?}")),
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), CoreError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword `{kw}`"))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    // ----- programs -----

    /// Parses all `program ... end` blocks to end of input.
    pub fn parse_programs(&mut self) -> Result<Vec<SProgram>, CoreError> {
        let mut out = Vec::new();
        while self.peek().is_some() {
            out.push(self.parse_program_block()?);
        }
        if out.is_empty() {
            return self.err("expected at least one `program` block");
        }
        Ok(out)
    }

    fn parse_program_block(&mut self) -> Result<SProgram, CoreError> {
        self.expect_keyword("program")?;
        let name = self.expect_ident("program name")?;
        let mut vars = Vec::new();
        let mut inits = Vec::new();
        let mut commands = Vec::new();
        loop {
            if self.eat_keyword("end") {
                break;
            }
            if self.eat_keyword("var") {
                vars.push(self.parse_var_decl()?);
            } else if self.eat_keyword("init") {
                inits.push(self.parse_expr()?);
            } else if self.peek_keyword("fair") || self.peek_keyword("cmd") {
                let fair = self.eat_keyword("fair");
                self.expect_keyword("cmd")?;
                commands.push(self.parse_command(fair)?);
            } else if self.peek().is_none() {
                return self.err("unexpected end of input inside program (missing `end`?)");
            } else {
                return self.err("expected `var`, `init`, `cmd`, `fair cmd` or `end`");
            }
        }
        Ok(SProgram {
            name,
            vars,
            inits,
            commands,
        })
    }

    fn parse_var_decl(&mut self) -> Result<SVarDecl, CoreError> {
        let name = self.expect_ident("variable name")?;
        self.expect(&Tok::Colon, "`:`")?;
        let ty = if self.eat_keyword("bool") {
            SType::Bool
        } else if self.eat_keyword("int") {
            let lo = self.parse_signed_int()?;
            self.expect(&Tok::DotDot, "`..`")?;
            let hi = self.parse_signed_int()?;
            SType::IntRange(lo, hi)
        } else {
            return self.err("expected `bool` or `int lo..hi`");
        };
        let local = self.eat_keyword("local");
        Ok(SVarDecl { name, ty, local })
    }

    fn parse_signed_int(&mut self) -> Result<i64, CoreError> {
        let negative = matches!(self.peek(), Some(Tok::Minus));
        if negative {
            self.pos += 1;
        }
        match self.bump() {
            Some(Tok::Int(n)) => Ok(if negative { -n } else { n }),
            _ => self.err("expected integer literal"),
        }
    }

    fn parse_command(&mut self, fair: bool) -> Result<SCommand, CoreError> {
        let name = self.expect_ident("command name")?;
        self.expect(&Tok::Colon, "`:`")?;
        let guard = self.parse_expr()?;
        self.expect(&Tok::Arrow, "`->`")?;
        let mut updates = Vec::new();
        if self.eat_keyword("skip") {
            // no updates
        } else {
            loop {
                let target = self.expect_ident("assignment target")?;
                self.expect(&Tok::Assign, "`:=`")?;
                let rhs = self.parse_expr()?;
                updates.push((target, rhs));
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        Ok(SCommand {
            name,
            fair,
            guard,
            updates,
        })
    }

    // ----- properties -----

    /// Parses a property and requires end of input.
    pub fn parse_property_eof(&mut self) -> Result<SProperty, CoreError> {
        let p = self.parse_property()?;
        if self.peek().is_some() {
            return self.err("unexpected trailing tokens after property");
        }
        Ok(p)
    }

    fn parse_property(&mut self) -> Result<SProperty, CoreError> {
        for (kw, mk) in [
            ("init", SProperty::Init as fn(SExpr) -> SProperty),
            ("transient", SProperty::Transient as fn(SExpr) -> SProperty),
            ("stable", SProperty::Stable as fn(SExpr) -> SProperty),
            ("invariant", SProperty::Invariant as fn(SExpr) -> SProperty),
            ("unchanged", SProperty::Unchanged as fn(SExpr) -> SProperty),
        ] {
            if self.eat_keyword(kw) {
                return Ok(mk(self.parse_expr()?));
            }
        }
        let lhs = self.parse_expr()?;
        if self.eat_keyword("next") {
            let rhs = self.parse_expr()?;
            return Ok(SProperty::Next(lhs, rhs));
        }
        if self.eat_keyword("leadsto") {
            let rhs = self.parse_expr()?;
            return Ok(SProperty::LeadsTo(lhs, rhs));
        }
        self.err("expected a property keyword, `next` or `leadsto`")
    }

    // ----- expressions (precedence climbing) -----

    /// Parses an expression and requires end of input.
    pub fn parse_expr_eof(&mut self) -> Result<SExpr, CoreError> {
        let e = self.parse_expr()?;
        if self.peek().is_some() {
            return self.err("unexpected trailing tokens after expression");
        }
        Ok(e)
    }

    /// Parses an expression (lowest precedence: `<=>`).
    pub fn parse_expr(&mut self) -> Result<SExpr, CoreError> {
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<SExpr, CoreError> {
        let mut lhs = self.parse_implies()?;
        while matches!(self.peek(), Some(Tok::Iff)) {
            self.pos += 1;
            let rhs = self.parse_implies()?;
            lhs = SExpr::Binary(SBinOp::Iff, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<SExpr, CoreError> {
        let lhs = self.parse_or()?;
        if matches!(self.peek(), Some(Tok::Implies)) {
            self.pos += 1;
            // Right-associative.
            let rhs = self.parse_implies()?;
            return Ok(SExpr::Binary(SBinOp::Implies, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_or(&mut self) -> Result<SExpr, CoreError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Tok::OrOr)) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = SExpr::Binary(SBinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<SExpr, CoreError> {
        let mut lhs = self.parse_cmp()?;
        while matches!(self.peek(), Some(Tok::AndAnd)) {
            self.pos += 1;
            let rhs = self.parse_cmp()?;
            lhs = SExpr::Binary(SBinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<SExpr, CoreError> {
        let lhs = self.parse_addsub()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => Some(SBinOp::Eq),
            Some(Tok::NotEq) => Some(SBinOp::Ne),
            Some(Tok::Lt) => Some(SBinOp::Lt),
            Some(Tok::Le) => Some(SBinOp::Le),
            Some(Tok::Gt) => Some(SBinOp::Gt),
            Some(Tok::Ge) => Some(SBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_addsub()?;
            return Ok(SExpr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_addsub(&mut self) -> Result<SExpr, CoreError> {
        let mut lhs = self.parse_muldiv()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => SBinOp::Add,
                Some(Tok::Minus) => SBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_muldiv()?;
            lhs = SExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_muldiv(&mut self) -> Result<SExpr, CoreError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => SBinOp::Mul,
                Some(Tok::Slash) => SBinOp::Div,
                Some(Tok::Percent) => SBinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = SExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<SExpr, CoreError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(SExpr::Unary(SUnOp::Not, Box::new(self.parse_unary()?)))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(SExpr::Unary(SUnOp::Neg, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<SExpr, CoreError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(SExpr::Int(n))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "true" => {
                    self.pos += 1;
                    Ok(SExpr::Bool(true))
                }
                "false" => {
                    self.pos += 1;
                    Ok(SExpr::Bool(false))
                }
                "if" => {
                    self.pos += 1;
                    let c = self.parse_expr()?;
                    self.expect_keyword("then")?;
                    let t = self.parse_expr()?;
                    self.expect_keyword("else")?;
                    let e = self.parse_expr()?;
                    Ok(SExpr::Ite(Box::new(c), Box::new(t), Box::new(e)))
                }
                "all" | "any" | "sum" | "min" | "max"
                    if matches!(self.peek2(), Some(Tok::LParen)) =>
                {
                    let call = match name.as_str() {
                        "all" => SCall::All,
                        "any" => SCall::Any,
                        "sum" => SCall::Sum,
                        "min" => SCall::Min,
                        _ => SCall::Max,
                    };
                    self.pos += 2; // ident + lparen
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Tok::RParen)) {
                        loop {
                            args.push(self.parse_expr()?);
                            if matches!(self.peek(), Some(Tok::Comma)) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    Ok(SExpr::Call(call, args))
                }
                _ => {
                    self.pos += 1;
                    Ok(SExpr::Name(name))
                }
            },
            Some(t) => self.err(format!("expected expression, found {t:?}")),
            None => self.err("expected expression, found end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn expr(src: &str) -> SExpr {
        Parser::new(lex(src).unwrap()).parse_expr_eof().unwrap()
    }

    #[test]
    fn precedence() {
        // a + b * c parses as a + (b * c)
        let e = expr("a + b * c");
        match e {
            SExpr::Binary(SBinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, SExpr::Binary(SBinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // p => q => r is right-associative
        let e = expr("p => q => r");
        match e {
            SExpr::Binary(SBinOp::Implies, _, rhs) => {
                assert!(matches!(*rhs, SExpr::Binary(SBinOp::Implies, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_and_calls() {
        assert_eq!(
            expr("!p"),
            SExpr::Unary(SUnOp::Not, Box::new(SExpr::Name("p".into())))
        );
        assert_eq!(
            expr("sum(a, b, 1)"),
            SExpr::Call(
                SCall::Sum,
                vec![
                    SExpr::Name("a".into()),
                    SExpr::Name("b".into()),
                    SExpr::Int(1)
                ]
            )
        );
        // `min` as plain identifier when not followed by `(`.
        assert_eq!(expr("min"), SExpr::Name("min".into()));
    }

    #[test]
    fn ite() {
        let e = expr("if p then 1 else 2");
        assert!(matches!(e, SExpr::Ite(..)));
    }

    #[test]
    fn comparison_is_non_associative() {
        // a < b < c is a parse error (comparison doesn't chain).
        let r = Parser::new(lex("a < b < c").unwrap()).parse_expr_eof();
        assert!(r.is_err());
    }

    #[test]
    fn property_forms() {
        let p = Parser::new(lex("invariant x == 0").unwrap())
            .parse_property_eof()
            .unwrap();
        assert!(matches!(p, SProperty::Invariant(_)));
        let p = Parser::new(lex("x == 0 next x <= 1").unwrap())
            .parse_property_eof()
            .unwrap();
        assert!(matches!(p, SProperty::Next(..)));
        let p = Parser::new(lex("true leadsto done").unwrap())
            .parse_property_eof()
            .unwrap();
        assert!(matches!(p, SProperty::LeadsTo(..)));
    }
}
