//! Tokenizer for the DSL.

use crate::error::CoreError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal (non-negative; unary minus is a parser concern).
    Int(i64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `:`.
    Colon,
    /// `:=`.
    Assign,
    /// `->`.
    Arrow,
    /// `,`.
    Comma,
    /// `..`.
    DotDot,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
    /// `=>`.
    Implies,
    /// `<=>`.
    Iff,
}

/// A token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Tokenizes `src`. Comments run from `#` or `//` to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CoreError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! err {
        ($msg:expr) => {
            return Err(CoreError::Parse {
                line,
                col,
                msg: $msg.to_string(),
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tline, tcol) = (line, col);
        let mut push = |tok: Tok, len: usize| {
            out.push(Spanned {
                tok,
                line: tline,
                col: tcol,
            });
            len
        };
        let advance = match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
                continue;
            }
            ' ' | '\t' | '\r' => 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                    col += 1;
                }
                continue;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                    col += 1;
                }
                continue;
            }
            '(' => push(Tok::LParen, 1),
            ')' => push(Tok::RParen, 1),
            ',' => push(Tok::Comma, 1),
            '+' => push(Tok::Plus, 1),
            '*' => push(Tok::Star, 1),
            '/' => push(Tok::Slash, 1),
            '%' => push(Tok::Percent, 1),
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(Tok::Assign, 2)
                } else {
                    push(Tok::Colon, 1)
                }
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push(Tok::Arrow, 2)
                } else {
                    push(Tok::Minus, 1)
                }
            }
            '.' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    push(Tok::DotDot, 2)
                } else {
                    err!("unexpected `.`")
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(Tok::EqEq, 2)
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push(Tok::Implies, 2)
                } else {
                    err!("unexpected `=` (use `==`, `=>` or `:=`)")
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(Tok::NotEq, 2)
                } else {
                    push(Tok::Bang, 1)
                }
            }
            '<' => {
                if i + 2 < bytes.len() && bytes[i + 1] == b'=' && bytes[i + 2] == b'>' {
                    push(Tok::Iff, 3)
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(Tok::Le, 2)
                } else {
                    push(Tok::Lt, 1)
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(Tok::Ge, 2)
                } else {
                    push(Tok::Gt, 1)
                }
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    push(Tok::AndAnd, 2)
                } else {
                    err!("unexpected `&` (use `&&`)")
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    push(Tok::OrOr, 2)
                } else {
                    err!("unexpected `|` (use `||`)")
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let text = &src[start..j];
                let n: i64 = text.parse().map_err(|_| CoreError::Parse {
                    line,
                    col,
                    msg: format!("integer literal `{text}` out of range"),
                })?;
                push(Tok::Int(n), j - i)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_alphanumeric() || cj == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                push(Tok::Ident(src[start..j].to_string()), j - i)
            }
            other => err!(format!("unexpected character `{other}`")),
        };
        i += advance;
        col += advance as u32;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("== != <= >= < > && || ! => <=> := -> .. : , % / * + -"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Implies,
                Tok::Iff,
                Tok::Assign,
                Tok::Arrow,
                Tok::DotDot,
                Tok::Colon,
                Tok::Comma,
                Tok::Percent,
                Tok::Slash,
                Tok::Star,
                Tok::Plus,
                Tok::Minus,
            ]
        );
    }

    #[test]
    fn lexes_idents_and_ints() {
        assert_eq!(
            toks("foo _bar9 42"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Ident("_bar9".into()),
                Tok::Int(42)
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("a # comment\nb // another\nc"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into())
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn rejects_stray_chars() {
        assert!(lex("a @ b").is_err());
        assert!(lex("a = b").is_err());
        assert!(lex("a & b").is_err());
    }
}
