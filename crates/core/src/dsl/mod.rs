//! A textual DSL for UNITY-style programs and properties.
//!
//! The concrete syntax mirrors [`Program::listing`](crate::program::Program::listing):
//!
//! ```text
//! program Counter0
//!   var c0 : int 0..2 local
//!   var C  : int 0..4
//!   init c0 == 0 && C == 0
//!   fair cmd a0: c0 < 2 -> c0 := c0 + 1, C := C + 1
//! end
//! ```
//!
//! Properties use the paper's keywords:
//!
//! ```text
//! invariant C == sum(c0, c1)
//! true leadsto C == 4
//! c0 == 0 next c0 <= 1
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod resolve;

use crate::error::CoreError;
use crate::expr::Expr;
use crate::ident::Vocabulary;
use crate::program::Program;
use crate::properties::Property;

/// Parses a single `program ... end` block into a [`Program`] over its own
/// fresh vocabulary.
pub fn parse_program(src: &str) -> Result<Program, CoreError> {
    let mut programs = parse_programs(src)?;
    if programs.len() != 1 {
        return Err(CoreError::Parse {
            line: 1,
            col: 1,
            msg: format!("expected exactly one program, found {}", programs.len()),
        });
    }
    Ok(programs.remove(0))
}

/// Parses any number of `program ... end` blocks. Each program gets its own
/// vocabulary; compose them with
/// [`System::compose_merging`](crate::compose::System::compose_merging).
pub fn parse_programs(src: &str) -> Result<Vec<Program>, CoreError> {
    let tokens = lexer::lex(src)?;
    let ast_programs = parser::Parser::new(tokens).parse_programs()?;
    ast_programs.iter().map(resolve::resolve_program).collect()
}

/// Parses an expression against an existing vocabulary.
pub fn parse_expr(src: &str, vocab: &Vocabulary) -> Result<Expr, CoreError> {
    let tokens = lexer::lex(src)?;
    let ast = parser::Parser::new(tokens).parse_expr_eof()?;
    resolve::resolve_expr(&ast, vocab)
}

/// Parses a property (`init p`, `transient p`, `stable p`, `invariant p`,
/// `unchanged e`, `p next q`, `p leadsto q`) against a vocabulary.
pub fn parse_property(src: &str, vocab: &Vocabulary) -> Result<Property, CoreError> {
    let tokens = lexer::lex(src)?;
    let ast = parser::Parser::new(tokens).parse_property_eof()?;
    resolve::resolve_property(&ast, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{InitSatCheck, System};
    use crate::value::Value;

    const COUNTER: &str = r#"
        program Counter0
          var c0 : int 0..2 local
          var C : int 0..4
          init c0 == 0 && C == 0
          fair cmd a0: c0 < 2 -> c0 := c0 + 1, C := C + 1
        end
    "#;

    #[test]
    fn parses_counter_program() {
        let p = parse_program(COUNTER).unwrap();
        assert_eq!(p.name, "Counter0");
        assert_eq!(p.commands.len(), 1);
        assert_eq!(p.fair.len(), 1);
        assert_eq!(p.locals.len(), 1);
        let inits = p.initial_states();
        assert_eq!(inits.len(), 1);
        assert!(inits[0].values().iter().all(|v| *v == Value::Int(0)));
    }

    #[test]
    fn listing_round_trips() {
        let p = parse_program(COUNTER).unwrap();
        let listing = p.listing();
        let p2 = parse_program(&listing).unwrap();
        assert_eq!(p2.name, p.name);
        assert_eq!(p2.commands.len(), p.commands.len());
        assert_eq!(p2.init, p.init);
        assert_eq!(p2.commands[0].guard, p.commands[0].guard);
        assert_eq!(p2.commands[0].updates, p.commands[0].updates);
    }

    #[test]
    fn parses_two_programs_and_composes() {
        let src = format!(
            "{COUNTER}
            program Counter1
              var c1 : int 0..2 local
              var C : int 0..4
              init c1 == 0 && C == 0
              fair cmd a1: c1 < 2 -> c1 := c1 + 1, C := C + 1
            end"
        );
        let ps = parse_programs(&src).unwrap();
        assert_eq!(ps.len(), 2);
        let sys = System::compose_merging(&ps, InitSatCheck::Exhaustive).unwrap();
        assert_eq!(sys.vocab().len(), 3);
        assert_eq!(sys.composed.commands.len(), 2);
    }

    #[test]
    fn parses_properties() {
        let p = parse_program(COUNTER).unwrap();
        let v = &p.vocab;
        let inv = parse_property("invariant C == sum(c0)", v).unwrap();
        assert_eq!(inv.kind(), "invariant");
        let lt = parse_property("true leadsto C == 2", v).unwrap();
        assert_eq!(lt.kind(), "leadsto");
        let nx = parse_property("c0 == 0 next c0 <= 1", v).unwrap();
        assert_eq!(nx.kind(), "next");
        let un = parse_property("unchanged C - c0", v).unwrap();
        assert_eq!(un.kind(), "unchanged");
    }

    #[test]
    fn rejects_unknown_variable() {
        let p = parse_program(COUNTER).unwrap();
        assert!(parse_expr("zz + 1", &p.vocab).is_err());
    }

    #[test]
    fn reports_position_on_syntax_error() {
        let err = parse_program("program X\n  var ! : bool\nend").unwrap_err();
        match err {
            CoreError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }
}
