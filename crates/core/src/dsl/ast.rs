//! Surface abstract syntax (names unresolved).

/// Surface expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SExpr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Named variable reference.
    Name(String),
    /// Unary operator application.
    Unary(SUnOp, Box<SExpr>),
    /// Binary operator application.
    Binary(SBinOp, Box<SExpr>, Box<SExpr>),
    /// `if c then t else e`.
    Ite(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// N-ary call: `all(..)`, `any(..)`, `sum(..)`, `min(..)`, `max(..)`.
    Call(SCall, Vec<SExpr>),
}

/// Surface unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SUnOp {
    /// Boolean `!`.
    Not,
    /// Integer `-`.
    Neg,
}

/// Surface binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SBinOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    And,
    /// `||`.
    Or,
    /// `=>`.
    Implies,
    /// `<=>`.
    Iff,
}

/// N-ary call kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SCall {
    /// `all(p, ...)` — conjunction.
    All,
    /// `any(p, ...)` — disjunction.
    Any,
    /// `sum(e, ...)`.
    Sum,
    /// `min(e, ...)`.
    Min,
    /// `max(e, ...)`.
    Max,
}

/// Surface type annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SType {
    /// `bool`.
    Bool,
    /// `int lo..hi`.
    IntRange(i64, i64),
}

/// Surface variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SVarDecl {
    /// Variable name.
    pub name: String,
    /// Type annotation.
    pub ty: SType,
    /// Whether declared `local`.
    pub local: bool,
}

/// Surface command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SCommand {
    /// Command name.
    pub name: String,
    /// Whether declared `fair` (member of `D`).
    pub fair: bool,
    /// Guard expression.
    pub guard: SExpr,
    /// Updates `name := expr` (empty for `skip`).
    pub updates: Vec<(String, SExpr)>,
}

/// Surface program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SProgram {
    /// Program name.
    pub name: String,
    /// Variable declarations in order.
    pub vars: Vec<SVarDecl>,
    /// `init` clauses (conjoined).
    pub inits: Vec<SExpr>,
    /// Commands in order.
    pub commands: Vec<SCommand>,
}

/// Surface property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SProperty {
    /// `init p`.
    Init(SExpr),
    /// `transient p`.
    Transient(SExpr),
    /// `stable p`.
    Stable(SExpr),
    /// `invariant p`.
    Invariant(SExpr),
    /// `unchanged e`.
    Unchanged(SExpr),
    /// `p next q`.
    Next(SExpr, SExpr),
    /// `p leadsto q`.
    LeadsTo(SExpr, SExpr),
}
