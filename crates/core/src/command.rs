//! Guarded multiple-assignment commands.
//!
//! A command is `name: guard -> x₁,…,xₖ := e₁,…,eₖ` with *guarded-else-skip*
//! semantics: in a state where the guard is false the command behaves as
//! `skip`. This makes every command total (always executable), as the UNITY
//! model requires, so weak fairness is simply "every command of `D` is
//! executed infinitely often".
//!
//! **Domain-guarded semantics.** If any update would drive its target
//! outside the declared finite domain, the command also behaves as `skip`.
//! Well-written programs guard their updates explicitly (as the paper's toy
//! example does with bounded counters); [`Command::domain_guard`] exposes the
//! implicit part so tools can lint for accidental reliance on it.

use std::collections::BTreeSet;

use crate::error::CoreError;
use crate::expr::build::{and, and2, ge, int, le, not, or2, tt, var};
use crate::expr::eval::{eval, eval_bool};
use crate::expr::subst::Subst;
use crate::expr::{pretty::Render, Expr};
use crate::ident::{VarId, Vocabulary};
use crate::state::State;
use crate::value::Value;

/// A guarded simultaneous multiple-assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Command name (diagnostics, fairness auditing, trace labels).
    pub name: String,
    /// Boolean guard.
    pub guard: Expr,
    /// Simultaneous updates `(target, rhs)`; targets are pairwise distinct.
    pub updates: Vec<(VarId, Expr)>,
}

impl Command {
    /// Builds a command, checking guard/update types and target uniqueness
    /// against `vocab`.
    pub fn new(
        name: impl Into<String>,
        guard: Expr,
        updates: Vec<(VarId, Expr)>,
        vocab: &Vocabulary,
    ) -> Result<Self, CoreError> {
        let name = name.into();
        guard.check_pred(vocab)?;
        let mut seen = BTreeSet::new();
        for (x, e) in &updates {
            if !seen.insert(*x) {
                return Err(CoreError::DuplicateAssignment {
                    command: name.clone(),
                    var: vocab.name(*x).to_string(),
                });
            }
            let want = vocab.domain(*x).ty();
            let found = e.infer_type(vocab)?;
            if want != found {
                return Err(CoreError::TypeError {
                    expr: format!("{} := {}", vocab.name(*x), Render::new(e, vocab)),
                    expected: want,
                    found,
                });
            }
        }
        Ok(Command {
            name,
            guard,
            updates,
        })
    }

    /// The `skip` command: always enabled, changes nothing.
    pub fn skip() -> Self {
        Command {
            name: "skip".into(),
            guard: tt(),
            updates: Vec::new(),
        }
    }

    /// Whether this command can never change any state (no updates).
    pub fn is_skip(&self) -> bool {
        self.updates.is_empty()
    }

    /// The set of variables this command may write.
    pub fn writes(&self) -> BTreeSet<VarId> {
        self.updates.iter().map(|(x, _)| *x).collect()
    }

    /// Executes one step from `state`.
    ///
    /// Returns `None` when the command acts as `skip` (guard false or a
    /// domain violation); callers treating `skip` uniformly can use
    /// [`Command::step`].
    pub fn apply(&self, state: &State, vocab: &Vocabulary) -> Option<State> {
        if !eval_bool(&self.guard, state) {
            return None;
        }
        // Evaluate all right-hand sides in the *pre*-state (simultaneous
        // assignment), checking domains before committing.
        let mut new_vals: Vec<(VarId, Value)> = Vec::with_capacity(self.updates.len());
        for (x, e) in &self.updates {
            let v = eval(e, state);
            if !vocab.domain(*x).contains(v) {
                return None;
            }
            new_vals.push((*x, v));
        }
        let mut out = state.clone();
        for (x, v) in new_vals {
            out.set(x, v);
        }
        Some(out)
    }

    /// Executes one step, yielding the post-state (`state` itself when the
    /// command acts as `skip`).
    pub fn step(&self, state: &State, vocab: &Vocabulary) -> State {
        self.apply(state, vocab).unwrap_or_else(|| state.clone())
    }

    /// The *effective* guard: the declared guard conjoined with the implicit
    /// domain guard. The command changes state exactly in states where this
    /// holds (and some update actually differs).
    pub fn effective_guard(&self, vocab: &Vocabulary) -> Expr {
        and2(self.guard.clone(), self.domain_guard(vocab))
    }

    /// The implicit domain guard: every update's value stays in its target's
    /// domain. `true` when all targets are booleans.
    pub fn domain_guard(&self, vocab: &Vocabulary) -> Expr {
        let mut parts = Vec::new();
        for (x, e) in &self.updates {
            if let crate::domain::Domain::IntRange(lo, hi) = vocab.domain(*x) {
                parts.push(ge(e.clone(), int(*lo)));
                parts.push(le(e.clone(), int(*hi)));
            }
        }
        if parts.is_empty() {
            tt()
        } else {
            and(parts)
        }
    }

    /// Weakest precondition of this command with respect to postcondition
    /// `q`:
    ///
    /// ```text
    /// wp(c, q) = (G ∧ q[x̄ := ē]) ∨ (¬G ∧ q)      where G = effective guard
    /// ```
    ///
    /// The substitution is simultaneous. For deterministic total commands
    /// this coincides with "executing the command from any state satisfying
    /// `wp(c,q)` lands in `q`" — the equivalence is enforced by property
    /// tests against [`Command::step`].
    pub fn wp(&self, q: &Expr, vocab: &Vocabulary) -> Expr {
        let g = self.effective_guard(vocab);
        let subst = Subst::from_pairs(self.updates.iter().cloned());
        let fired = and2(g.clone(), subst.apply(q));
        let skipped = and2(not(g), q.clone());
        or2(fired, skipped)
    }

    /// Lint: states in which the *declared* guard holds but the implicit
    /// domain guard blocks the command. Returns a predicate describing such
    /// states; if it is unsatisfiable the command never relies on the
    /// implicit domain guard.
    pub fn domain_block_pred(&self, vocab: &Vocabulary) -> Expr {
        and2(self.guard.clone(), not(self.domain_guard(vocab)))
    }

    /// Renders the command with variable names.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        let mut s = format!("{}: {} -> ", self.name, Render::new(&self.guard, vocab));
        if self.updates.is_empty() {
            s.push_str("skip");
        } else {
            for (i, (x, e)) in self.updates.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{} := {}", vocab.name(*x), Render::new(e, vocab)));
            }
        }
        s
    }
}

/// Convenience: builds an increment command `name: guard -> x := x + k`.
pub fn increment(
    name: impl Into<String>,
    guard: Expr,
    x: VarId,
    k: i64,
    vocab: &Vocabulary,
) -> Result<Command, CoreError> {
    Command::new(
        name,
        guard,
        vec![(x, crate::expr::build::add(var(x), int(k)))],
        vocab,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::build::*;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        v.declare("flag", Domain::Bool).unwrap();
        v
    }

    #[test]
    fn guarded_step() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let c = Command::new(
            "inc",
            lt(var(x), int(3)),
            vec![(x, add(var(x), int(1)))],
            &v,
        )
        .unwrap();
        let s0 = State::minimum(&v);
        let s1 = c.step(&s0, &v);
        assert_eq!(s1.get(x), Value::Int(1));
        // At the bound, the guard blocks: command skips.
        let mut s3 = State::minimum(&v);
        s3.set(x, Value::Int(3));
        assert_eq!(c.apply(&s3, &v), None);
        assert_eq!(c.step(&s3, &v), s3);
    }

    #[test]
    fn domain_guard_blocks_overflow() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        // No declared guard: relies on the implicit domain guard.
        let c = Command::new("inc", tt(), vec![(x, add(var(x), int(1)))], &v).unwrap();
        let mut s3 = State::minimum(&v);
        s3.set(x, Value::Int(3));
        assert_eq!(c.apply(&s3, &v), None, "update to 4 is out of domain");
        // The lint predicate is satisfiable exactly at x = 3.
        let block = c.domain_block_pred(&v);
        assert!(eval_bool(&block, &s3));
        assert!(!eval_bool(&block, &State::minimum(&v)));
    }

    #[test]
    fn simultaneous_swap() {
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::int_range(0, 9).unwrap()).unwrap();
        let b = v.declare("b", Domain::int_range(0, 9).unwrap()).unwrap();
        let c = Command::new("swap", tt(), vec![(a, var(b)), (b, var(a))], &v).unwrap();
        let mut s = State::minimum(&v);
        s.set(a, Value::Int(2));
        s.set(b, Value::Int(7));
        let s2 = c.step(&s, &v);
        assert_eq!(s2.get(a), Value::Int(7));
        assert_eq!(s2.get(b), Value::Int(2));
    }

    #[test]
    fn wp_agrees_with_step() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let f = v.lookup("flag").unwrap();
        let c = Command::new(
            "c",
            var(f),
            vec![(x, add(var(x), int(1))), (f, not(var(f)))],
            &v,
        )
        .unwrap();
        let q = eq(var(x), int(2));
        let wp = c.wp(&q, &v);
        for s in crate::state::StateSpaceIter::new(&v) {
            let semantic = eval_bool(&q, &c.step(&s, &v));
            let syntactic = eval_bool(&wp, &s);
            assert_eq!(semantic, syntactic, "state {}", s.display(&v));
        }
    }

    #[test]
    fn duplicate_target_rejected() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let r = Command::new("bad", tt(), vec![(x, int(0)), (x, int(1))], &v);
        assert!(matches!(r, Err(CoreError::DuplicateAssignment { .. })));
    }

    #[test]
    fn type_mismatch_rejected() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let f = v.lookup("flag").unwrap();
        assert!(Command::new("bad", tt(), vec![(x, var(f))], &v).is_err());
        assert!(Command::new("bad", var(x), vec![], &v).is_err());
    }

    #[test]
    fn skip_properties() {
        let v = vocab();
        let s = State::minimum(&v);
        let sk = Command::skip();
        assert!(sk.is_skip());
        assert_eq!(sk.step(&s, &v), s);
        assert!(sk.writes().is_empty());
    }

    #[test]
    fn display_renders() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let c = increment("inc", lt(var(x), int(3)), x, 1, &v).unwrap();
        assert_eq!(c.display(&v), "inc: x < 3 -> x := x + 1");
        assert_eq!(Command::skip().display(&v), "skip: true -> skip");
    }
}
