//! Property types (§2 of the paper).
//!
//! ```text
//! init p        ≝  initially ⇒ p
//! transient p   ≝  ⟨∃c : c ∈ D : p ⇒ wp.c.(¬p)⟩
//! p next q      ≝  ⟨∀c : c ∈ C : p ⇒ wp.c.q⟩
//! stable p      ≝  p next p
//! invariant p   ≝  init p ∧ stable p
//! p ↦ q         ≝  inductively from {Transient, Implication, Disjunction,
//!                  Transitivity, PSP}
//! ```
//!
//! We additionally make the paper's universally-quantified stability schema
//! `⟨∀k :: stable (e = k)⟩` first-class as [`Property::Unchanged`] — "no
//! command changes the value of `e`" — because it is the workhorse of the
//! §3.3 derivation and of Property 2 in §4.
//!
//! Note the paper uses these with their **inductive** definitions (over
//! *all* states, not just reachable ones) and avoids the substitution
//! axiom; our checkers in `unity-mc` follow suit.

use std::fmt;

use crate::expr::{pretty::Render, Expr};
use crate::ident::Vocabulary;

/// A program property in the paper's property language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Property {
    /// `init p`: every initial state satisfies `p`.
    Init(Expr),
    /// `transient p`: some weakly-fair command falsifies `p` from every
    /// `p`-state.
    Transient(Expr),
    /// `p next q`: every command (including the implicit `skip`) steps
    /// `p`-states into `q`-states. With `skip ∈ C` this entails `p ⇒ q`.
    Next(Expr, Expr),
    /// `stable p ≝ p next p`.
    Stable(Expr),
    /// `invariant p ≝ init p ∧ stable p`.
    Invariant(Expr),
    /// `Unchanged e ≝ ⟨∀k :: stable (e = k)⟩`: no command changes `e`.
    Unchanged(Expr),
    /// `p ↦ q` (leads-to) under weak fairness on `D`.
    LeadsTo(Expr, Expr),
}

impl Property {
    /// The predicates mentioned by the property, for typechecking.
    pub fn exprs(&self) -> Vec<&Expr> {
        match self {
            Property::Init(p)
            | Property::Transient(p)
            | Property::Stable(p)
            | Property::Invariant(p)
            | Property::Unchanged(p) => vec![p],
            Property::Next(p, q) | Property::LeadsTo(p, q) => vec![p, q],
        }
    }

    /// Type checks the property against `vocab`. `Unchanged` accepts any
    /// well-typed expression; the rest require boolean predicates.
    pub fn check_types(&self, vocab: &Vocabulary) -> Result<(), crate::error::CoreError> {
        match self {
            Property::Unchanged(e) => {
                e.infer_type(vocab)?;
                Ok(())
            }
            _ => {
                for e in self.exprs() {
                    e.check_pred(vocab)?;
                }
                Ok(())
            }
        }
    }

    /// A short keyword for the property kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Property::Init(_) => "init",
            Property::Transient(_) => "transient",
            Property::Next(..) => "next",
            Property::Stable(_) => "stable",
            Property::Invariant(_) => "invariant",
            Property::Unchanged(_) => "unchanged",
            Property::LeadsTo(..) => "leadsto",
        }
    }

    /// Renders with variable names.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> PropertyDisplay<'a> {
        PropertyDisplay { prop: self, vocab }
    }
}

/// Display helper pairing a property with its vocabulary.
pub struct PropertyDisplay<'a> {
    prop: &'a Property,
    vocab: &'a Vocabulary,
}

impl fmt::Display for PropertyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.vocab;
        match self.prop {
            Property::Init(p) => write!(f, "init {}", Render::new(p, v)),
            Property::Transient(p) => write!(f, "transient {}", Render::new(p, v)),
            Property::Next(p, q) => {
                write!(f, "{} next {}", Render::new(p, v), Render::new(q, v))
            }
            Property::Stable(p) => write!(f, "stable {}", Render::new(p, v)),
            Property::Invariant(p) => write!(f, "invariant {}", Render::new(p, v)),
            Property::Unchanged(e) => write!(f, "unchanged {}", Render::new(e, v)),
            Property::LeadsTo(p, q) => {
                write!(f, "{} leadsto {}", Render::new(p, v), Render::new(q, v))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::build::*;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        v.declare("b", Domain::Bool).unwrap();
        v
    }

    #[test]
    fn type_checking() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        assert!(Property::Invariant(eq(var(x), int(0)))
            .check_types(&v)
            .is_ok());
        assert!(Property::Invariant(var(x)).check_types(&v).is_err());
        // Unchanged accepts integer expressions.
        assert!(Property::Unchanged(var(x)).check_types(&v).is_ok());
        assert!(Property::LeadsTo(tt(), eq(var(x), int(3)))
            .check_types(&v)
            .is_ok());
    }

    #[test]
    fn display_forms() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let p = Property::LeadsTo(tt(), eq(var(x), int(3)));
        assert_eq!(p.display(&v).to_string(), "true leadsto x == 3");
        assert_eq!(p.kind(), "leadsto");
        let s = Property::Stable(le(var(x), int(1)));
        assert_eq!(s.display(&v).to_string(), "stable x <= 1");
    }
}
