//! Variable identifiers and vocabularies.
//!
//! A [`Vocabulary`] is the set of typed variables a program (or a composed
//! system) may mention. Variables are referred to by dense [`VarId`] indices
//! so that states can be stored as flat arrays and expressions can be
//! evaluated without hashing.

use std::collections::HashMap;
use std::fmt;

use crate::domain::Domain;
use crate::error::CoreError;

/// Index of a variable within a [`Vocabulary`].
///
/// `VarId`s are only meaningful relative to the vocabulary that issued them;
/// composing programs built over different vocabularies remaps ids (see
/// [`Vocabulary::merge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A declared variable: a name plus a finite domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name, unique within a vocabulary.
    pub name: String,
    /// Finite domain of values the variable ranges over.
    pub domain: Domain,
}

/// An ordered collection of variable declarations with unique names.
///
/// The order of declaration fixes the [`VarId`] assignment and therefore the
/// layout of [`State`](crate::state::State) vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    vars: Vec<VarDecl>,
    index: HashMap<String, VarId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a variable, returning its id.
    ///
    /// Fails if a variable of the same name but a *different* domain already
    /// exists. Re-declaring an identical variable returns the existing id,
    /// which makes building shared-variable components convenient.
    pub fn declare(&mut self, name: &str, domain: Domain) -> Result<VarId, CoreError> {
        if let Some(&id) = self.index.get(name) {
            let existing = &self.vars[id.index()];
            if existing.domain == domain {
                return Ok(id);
            }
            return Err(CoreError::DomainMismatch {
                var: name.to_string(),
                left: existing.domain.clone(),
                right: domain,
            });
        }
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.to_string(),
            domain,
        });
        self.index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a variable id by name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// The declaration for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this vocabulary.
    pub fn decl(&self, id: VarId) -> &VarDecl {
        &self.vars[id.index()]
    }

    /// The name of `id`.
    pub fn name(&self, id: VarId) -> &str {
        &self.vars[id.index()].name
    }

    /// The domain of `id`.
    pub fn domain(&self, id: VarId) -> &Domain {
        &self.vars[id.index()].domain
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variables are declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over `(id, decl)` pairs in declaration order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (VarId, &VarDecl)> + ExactSizeIterator {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, d)| (VarId(i as u32), d))
    }

    /// All ids in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = VarId> + 'static {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Total number of states in the full domain product.
    ///
    /// Returns `None` on overflow (astronomically large spaces).
    pub fn space_size(&self) -> Option<u64> {
        let mut n: u64 = 1;
        for d in &self.vars {
            n = n.checked_mul(d.domain.size())?;
        }
        Some(n)
    }

    /// Merges `other` into `self`, returning a remapping table such that
    /// `map[old.index()]` is the id of the same-named variable in `self`.
    ///
    /// Fails on domain mismatches for shared names.
    pub fn merge(&mut self, other: &Vocabulary) -> Result<Vec<VarId>, CoreError> {
        let mut map = Vec::with_capacity(other.len());
        for (_, decl) in other.iter() {
            let id = self.declare(&decl.name, decl.domain.clone())?;
            map.push(id);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        let y = v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
        assert_ne!(x, y);
        assert_eq!(v.lookup("x"), Some(x));
        assert_eq!(v.lookup("y"), Some(y));
        assert_eq!(v.lookup("z"), None);
        assert_eq!(v.name(x), "x");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn redeclare_same_domain_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.declare("x", Domain::Bool).unwrap();
        let b = v.declare("x", Domain::Bool).unwrap();
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn redeclare_different_domain_fails() {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::Bool).unwrap();
        let err = v.declare("x", Domain::int_range(0, 1).unwrap());
        assert!(err.is_err());
    }

    #[test]
    fn space_size_products() {
        let mut v = Vocabulary::new();
        v.declare("a", Domain::Bool).unwrap();
        v.declare("b", Domain::int_range(0, 4).unwrap()).unwrap();
        assert_eq!(v.space_size(), Some(10));
    }

    #[test]
    fn merge_remaps() {
        let mut v1 = Vocabulary::new();
        v1.declare("x", Domain::Bool).unwrap();
        let mut v2 = Vocabulary::new();
        let y2 = v2.declare("y", Domain::Bool).unwrap();
        let x2 = v2.declare("x", Domain::Bool).unwrap();
        let map = v1.merge(&v2).unwrap();
        assert_eq!(map[y2.index()], VarId(1));
        assert_eq!(map[x2.index()], VarId(0));
        assert_eq!(v1.len(), 2);
    }
}
