//! A checked inference calculus for `guarantees` clauses.
//!
//! The paper uses `guarantees` only to note that existential liveness
//! properties beyond `transient` can be obtained by putting `leadsto` on
//! the right-hand side (§2, citing \[3, 6\]). This module mechanizes the
//! *algebra* of the operator from Chandy & Sanders, *Reasoning about
//! program composition*: clauses `X guarantees Y` where `X` and `Y` are
//! finite conjunctions of [`Property`]s, with the checked rules
//!
//! ```text
//! consequence     X ⊒ Y                    ⊢  X guarantees Y
//! weaken          X guarantees Y, X' ⊒ X, Y ⊒ Y'
//!                                          ⊢  X' guarantees Y'
//! transitivity    X guarantees Y, Y' guarantees Z, Y ⊒ Y'
//!                                          ⊢  X guarantees Z
//! conjunction     X guarantees Y, X' guarantees Y'
//!                                          ⊢  X ∪ X' guarantees Y ∪ Y'
//! existential     F ⊨ P, P existential     ⊢  ∅ guarantees {P}   (for F's
//!                                             environments)
//! ```
//!
//! where `X ⊒ Y` ("X entails Y") is the sound, incomplete per-property
//! entailment of [`set_entails`]: every property of `Y` is entailed by
//! some property of `X` under [`prop_entails`], whose side conditions
//! (`⊨ p ⇒ q`) are discharged by a caller-supplied validity oracle —
//! in practice `unity-mc`'s full-domain scan, mirroring how the proof
//! kernel discharges its side conditions.
//!
//! Soundness arguments are given rule by rule on [`GProof`]'s variants;
//! the semantic facts behind [`prop_entails`] are re-verified against the
//! model checker by the cross-crate test suite (`tests/guarantees.rs`).
//!
//! ```
//! use unity_core::domain::Domain;
//! use unity_core::expr::build::*;
//! use unity_core::guarantee::calculus::*;
//! use unity_core::ident::Vocabulary;
//! use unity_core::properties::Property;
//!
//! let mut v = Vocabulary::new();
//! let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
//! // A published clause and a consequence step, chained by transitivity.
//! let published = GProof::Premise(GuaranteeClause::new(
//!     vec![Property::Init(eq(var(x), int(0)))],
//!     vec![Property::Invariant(le(var(x), int(2)))],
//! ));
//! let unpack = GProof::Consequence {
//!     hypothesis: vec![Property::Invariant(le(var(x), int(2)))],
//!     conclusion: vec![Property::Stable(le(var(x), int(2)))],
//! };
//! let chain = GProof::Transitivity { first: Box::new(published), second: Box::new(unpack) };
//! // Side conditions here are decided by a naive full-domain scan.
//! let mut valid = |e: &unity_core::expr::Expr| {
//!     unity_core::state::StateSpaceIter::new(&v)
//!         .all(|s| unity_core::expr::eval::eval_bool(e, &s))
//! };
//! let mut holds = |_: &Property| true;
//! let mut ctx = CalcCtx { valid: &mut valid, component_holds: &mut holds };
//! let clause = check_gproof(&chain, &mut ctx).unwrap();
//! assert_eq!(clause.conclusion, vec![Property::Stable(le(var(x), int(2)))]);
//! ```

use crate::classify::{classify, PropertyClass};
use crate::error::CoreError;
use crate::expr::build::implies;
use crate::expr::Expr;
use crate::properties::Property;

/// A finite conjunction of properties (the empty set is `true`).
pub type PropSet = Vec<Property>;

/// A guarantees clause `hypothesis guarantees conclusion` with
/// conjunction-set sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuaranteeClause {
    /// The hypothesis conjunction `X`.
    pub hypothesis: PropSet,
    /// The conclusion conjunction `Y`.
    pub conclusion: PropSet,
}

impl GuaranteeClause {
    /// Builds a clause.
    pub fn new(hypothesis: PropSet, conclusion: PropSet) -> Self {
        GuaranteeClause {
            hypothesis,
            conclusion,
        }
    }
}

/// Derivation trees for guarantees clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GProof {
    /// An assumed clause (e.g. published with a component's specification).
    /// The checker returns it unchanged; trust is the caller's concern,
    /// exactly like [`crate::proof::rules::Proof::Premise`].
    Premise(GuaranteeClause),
    /// `X guarantees Y` when `X ⊒ Y`. Sound: in any system where the
    /// hypothesis conjunction holds, entailment gives the conclusion —
    /// no component behaviour is even consulted.
    Consequence {
        /// Hypothesis set `X`.
        hypothesis: PropSet,
        /// Conclusion set `Y` with `X ⊒ Y`.
        conclusion: PropSet,
    },
    /// Strengthen the hypothesis and/or weaken the conclusion. Sound:
    /// anti-monotonicity of `guarantees` in its hypothesis and
    /// monotonicity in its conclusion (immediate from the definition).
    Weaken {
        /// Proof of the original clause.
        sub: Box<GProof>,
        /// New hypothesis `X'` with `X' ⊒ X`.
        hypothesis: PropSet,
        /// New conclusion `Y'` with `Y ⊒ Y'`.
        conclusion: PropSet,
    },
    /// Chain two clauses: from `X g Y` and `Y' g Z` with `Y ⊒ Y'`,
    /// conclude `X g Z`. Sound: in a system containing both components
    /// (or one component holding both clauses), `X` gives `Y`, entailment
    /// gives `Y'`, the second clause gives `Z`.
    Transitivity {
        /// Proof of `X guarantees Y`.
        first: Box<GProof>,
        /// Proof of `Y' guarantees Z`.
        second: Box<GProof>,
    },
    /// Conjoin two clauses side-wise. Sound: both definitions instantiate
    /// on the same composed system.
    Conjunction {
        /// Proof of `X guarantees Y`.
        left: Box<GProof>,
        /// Proof of `X' guarantees Y'`.
        right: Box<GProof>,
    },
    /// `∅ guarantees {prop}` from a component-scope fact: `prop` is
    /// existential, so it survives into every composition containing the
    /// component. The component-scope fact itself is discharged by the
    /// `component_holds` oracle of [`CalcCtx`]. This is the paper's route
    /// to existential liveness (`leadsto` on the right of `guarantees`)
    /// when combined with `Premise`s proved by the leads-to kernel.
    FromExistential {
        /// The existential component property.
        prop: Property,
    },
}

impl GProof {
    /// Short rule name for diagnostics.
    pub fn rule_name(&self) -> &'static str {
        match self {
            GProof::Premise(_) => "g-premise",
            GProof::Consequence { .. } => "g-consequence",
            GProof::Weaken { .. } => "g-weaken",
            GProof::Transitivity { .. } => "g-transitivity",
            GProof::Conjunction { .. } => "g-conjunction",
            GProof::FromExistential { .. } => "g-existential",
        }
    }

    /// Number of rule applications in the tree.
    pub fn size(&self) -> usize {
        1 + match self {
            GProof::Premise(_) | GProof::Consequence { .. } | GProof::FromExistential { .. } => 0,
            GProof::Weaken { sub, .. } => sub.size(),
            GProof::Transitivity { first, second } => first.size() + second.size(),
            GProof::Conjunction { left, right } => left.size() + right.size(),
        }
    }
}

/// Oracles the calculus checker needs: a validity decider for expression
/// side conditions and a component-fact decider for `FromExistential`.
pub struct CalcCtx<'a> {
    /// Decides `⊨ e` (full-domain validity). `unity-mc`'s scan fits.
    pub valid: &'a mut dyn FnMut(&Expr) -> bool,
    /// Decides whether the clause-owning component satisfies a property.
    pub component_holds: &'a mut dyn FnMut(&Property) -> bool,
}

fn shape(detail: String) -> CoreError {
    CoreError::ProofShape {
        rule: "guarantees",
        detail,
    }
}

/// Sound per-property entailment `a ⊩ b` ("any program satisfying `a`
/// satisfies `b`"), with expression side conditions discharged by `valid`.
///
/// The facts used (each proved against the inductive semantics in the
/// cross-crate tests):
///
/// * reflexivity (syntactic equality);
/// * `invariant p ⊩ init p` and `invariant p ⊩ stable p` (unpacking the
///   definition `invariant = init ∧ stable`);
/// * `init p ⊩ init q` when `⊨ p ⇒ q`;
/// * `next(p,q) ⊩ next(p',q')` when `⊨ p' ⇒ p` and `⊨ q ⇒ q'`
///   (`stable` participates as `next(p,p)`);
/// * `transient p ⊩ transient p'` when `⊨ p' ⇒ p` (a fair command
///   falsifying `p` everywhere falsifies the smaller `p'` from every
///   `p'`-state);
/// * `leadsto(p,q) ⊩ leadsto(p',q')` when `⊨ p' ⇒ p` and `⊨ q ⇒ q'`
///   (the kernel's `lt-mono`).
///
/// Deliberately *not* included: monotonicity of `stable`/`invariant` in
/// `p` (unsound — stability is not upward closed).
pub fn prop_entails(a: &Property, b: &Property, valid: &mut dyn FnMut(&Expr) -> bool) -> bool {
    use Property::*;
    if a == b {
        return true;
    }
    // Normalize stable to next for uniform treatment.
    let as_next = |p: &Property| -> Option<(Expr, Expr)> {
        match p {
            Next(x, y) => Some((x.clone(), y.clone())),
            Stable(x) => Some((x.clone(), x.clone())),
            _ => None,
        }
    };
    match (a, b) {
        (Invariant(p), Init(q)) | (Init(p), Init(q)) => valid(&implies(p.clone(), q.clone())),
        (Invariant(p), Stable(q)) => p == q,
        (Invariant(p), Next(q, r)) => {
            valid(&implies(q.clone(), p.clone())) && valid(&implies(p.clone(), r.clone()))
        }
        (Transient(p), Transient(q)) => valid(&implies(q.clone(), p.clone())),
        (LeadsTo(p, q), LeadsTo(p2, q2)) => {
            valid(&implies(p2.clone(), p.clone())) && valid(&implies(q.clone(), q2.clone()))
        }
        _ => match (as_next(a), as_next(b)) {
            (Some((p, q)), Some((p2, q2))) => {
                valid(&implies(p2.clone(), p.clone())) && valid(&implies(q.clone(), q2.clone()))
            }
            _ => false,
        },
    }
}

/// Set entailment `xs ⊒ ys`: every `y ∈ ys` is entailed by some `x ∈ xs`.
/// Sound (the conjunction of `xs` implies each `y`), incomplete (no
/// cross-property reasoning).
pub fn set_entails(xs: &[Property], ys: &[Property], valid: &mut dyn FnMut(&Expr) -> bool) -> bool {
    ys.iter()
        .all(|y| xs.iter().any(|x| prop_entails(x, y, valid)))
}

/// Checks a derivation and returns the clause it proves.
pub fn check_gproof(proof: &GProof, ctx: &mut CalcCtx<'_>) -> Result<GuaranteeClause, CoreError> {
    match proof {
        GProof::Premise(c) => Ok(c.clone()),
        GProof::Consequence {
            hypothesis,
            conclusion,
        } => {
            if !set_entails(hypothesis, conclusion, ctx.valid) {
                return Err(shape(
                    "consequence: hypothesis set does not entail conclusion set".into(),
                ));
            }
            Ok(GuaranteeClause::new(hypothesis.clone(), conclusion.clone()))
        }
        GProof::Weaken {
            sub,
            hypothesis,
            conclusion,
        } => {
            let inner = check_gproof(sub, ctx)?;
            if !set_entails(hypothesis, &inner.hypothesis, ctx.valid) {
                return Err(shape(
                    "weaken: new hypothesis does not entail the original hypothesis".into(),
                ));
            }
            if !set_entails(&inner.conclusion, conclusion, ctx.valid) {
                return Err(shape(
                    "weaken: original conclusion does not entail the new conclusion".into(),
                ));
            }
            Ok(GuaranteeClause::new(hypothesis.clone(), conclusion.clone()))
        }
        GProof::Transitivity { first, second } => {
            let a = check_gproof(first, ctx)?;
            let b = check_gproof(second, ctx)?;
            if !set_entails(&a.conclusion, &b.hypothesis, ctx.valid) {
                return Err(shape(
                    "transitivity: first conclusion does not entail second hypothesis".into(),
                ));
            }
            Ok(GuaranteeClause::new(a.hypothesis, b.conclusion))
        }
        GProof::Conjunction { left, right } => {
            let a = check_gproof(left, ctx)?;
            let b = check_gproof(right, ctx)?;
            let mut hypothesis = a.hypothesis;
            for h in b.hypothesis {
                if !hypothesis.contains(&h) {
                    hypothesis.push(h);
                }
            }
            let mut conclusion = a.conclusion;
            for c in b.conclusion {
                if !conclusion.contains(&c) {
                    conclusion.push(c);
                }
            }
            Ok(GuaranteeClause::new(hypothesis, conclusion))
        }
        GProof::FromExistential { prop } => {
            if classify(prop) != PropertyClass::Existential {
                return Err(shape(format!(
                    "existential intro on a {} property",
                    prop.kind()
                )));
            }
            if !(ctx.component_holds)(prop) {
                return Err(shape(format!(
                    "component does not satisfy the {} premise",
                    prop.kind()
                )));
            }
            Ok(GuaranteeClause::new(vec![], vec![prop.clone()]))
        }
    }
}

/// Elimination on a concrete system: given properties `established` of the
/// composed system and a clause held by one of its components, returns the
/// clause's conclusions (now system properties) if the established facts
/// entail the hypothesis.
pub fn eliminate(
    clause: &GuaranteeClause,
    established: &[Property],
    valid: &mut dyn FnMut(&Expr) -> bool,
) -> Result<PropSet, CoreError> {
    if !set_entails(established, &clause.hypothesis, valid) {
        return Err(shape(
            "eliminate: established system facts do not entail the hypothesis".into(),
        ));
    }
    Ok(clause.conclusion.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::build::*;
    use crate::expr::eval::eval_bool;
    use crate::ident::Vocabulary;
    use crate::state::StateSpaceIter;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        v
    }

    /// A real validity oracle: full-domain scan over the tiny vocabulary.
    fn scan_valid(v: &Vocabulary) -> impl FnMut(&Expr) -> bool + '_ {
        move |e: &Expr| StateSpaceIter::new(v).all(|s| eval_bool(e, &s))
    }

    fn ctx_parts(
        v: &Vocabulary,
    ) -> (
        impl FnMut(&Expr) -> bool + '_,
        impl FnMut(&Property) -> bool,
    ) {
        (scan_valid(v), |_: &Property| true)
    }

    #[test]
    fn entailment_facts() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let mut valid = scan_valid(&v);
        let p = le(var(x), int(1));
        let q = le(var(x), int(2));
        // init is monotone.
        assert!(prop_entails(
            &Property::Init(p.clone()),
            &Property::Init(q.clone()),
            &mut valid
        ));
        assert!(!prop_entails(
            &Property::Init(q.clone()),
            &Property::Init(p.clone()),
            &mut valid
        ));
        // invariant unpacks.
        assert!(prop_entails(
            &Property::Invariant(p.clone()),
            &Property::Stable(p.clone()),
            &mut valid
        ));
        assert!(prop_entails(
            &Property::Invariant(p.clone()),
            &Property::Init(p.clone()),
            &mut valid
        ));
        // invariant p entails next(q',r') for q' ⇒ p ⇒ r'.
        assert!(prop_entails(
            &Property::Invariant(p.clone()),
            &Property::Next(eq(var(x), int(0)), q.clone()),
            &mut valid
        ));
        // stable is NOT monotone.
        assert!(!prop_entails(
            &Property::Stable(p.clone()),
            &Property::Stable(q.clone()),
            &mut valid
        ));
        // but stable p entails next(p', q') with p' ⇒ p and p ⇒ q'.
        assert!(prop_entails(
            &Property::Stable(p.clone()),
            &Property::Next(eq(var(x), int(0)), q.clone()),
            &mut valid
        ));
        // transient is anti-monotone.
        assert!(prop_entails(
            &Property::Transient(q.clone()),
            &Property::Transient(p.clone()),
            &mut valid
        ));
        assert!(!prop_entails(
            &Property::Transient(p.clone()),
            &Property::Transient(q.clone()),
            &mut valid
        ));
        // leadsto: strengthen lhs, weaken rhs.
        assert!(prop_entails(
            &Property::LeadsTo(q.clone(), p.clone()),
            &Property::LeadsTo(p.clone(), q.clone()),
            &mut valid
        ));
        assert!(!prop_entails(
            &Property::LeadsTo(p, q.clone()),
            &Property::LeadsTo(q.clone(), eq(var(x), int(0))),
            &mut valid
        ));
    }

    #[test]
    fn consequence_and_weaken() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let (mut valid, mut holds) = ctx_parts(&v);
        let mut ctx = CalcCtx {
            valid: &mut valid,
            component_holds: &mut holds,
        };
        let p = le(var(x), int(1));
        let q = le(var(x), int(2));
        let proof = GProof::Consequence {
            hypothesis: vec![Property::Invariant(p.clone())],
            conclusion: vec![Property::Stable(p.clone()), Property::Init(q.clone())],
        };
        let clause = check_gproof(&proof, &mut ctx).unwrap();
        assert_eq!(clause.conclusion.len(), 2);
        // Wrap in a weaken: stronger hypothesis, weaker conclusion.
        let weak = GProof::Weaken {
            sub: Box::new(proof),
            hypothesis: vec![Property::Invariant(eq(var(x), int(0)))],
            conclusion: vec![Property::Init(q)],
        };
        // Hypothesis `invariant (x==0)` entails `invariant (x<=1)`? Not by
        // our facts (invariant not monotone) — so this must FAIL.
        assert!(check_gproof(&weak, &mut ctx).is_err());
        // A legitimate weaken: identical hypothesis, dropped conclusion.
        let p2 = le(var(x), int(1));
        let weak = GProof::Weaken {
            sub: Box::new(GProof::Consequence {
                hypothesis: vec![Property::Invariant(p2.clone())],
                conclusion: vec![Property::Stable(p2.clone()), Property::Init(p2.clone())],
            }),
            hypothesis: vec![Property::Invariant(p2.clone())],
            conclusion: vec![Property::Init(le(var(x), int(3)))],
        };
        let clause = check_gproof(&weak, &mut ctx).unwrap();
        assert_eq!(clause.conclusion.len(), 1);
    }

    #[test]
    fn transitivity_chains_and_rejects_gaps() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let (mut valid, mut holds) = ctx_parts(&v);
        let mut ctx = CalcCtx {
            valid: &mut valid,
            component_holds: &mut holds,
        };
        let p0 = eq(var(x), int(0));
        let p1 = le(var(x), int(1));
        let p2 = le(var(x), int(2));
        let first = GProof::Premise(GuaranteeClause::new(
            vec![Property::Init(p0.clone())],
            vec![Property::Init(p1.clone())],
        ));
        let second = GProof::Premise(GuaranteeClause::new(
            vec![Property::Init(p2.clone())],
            vec![Property::LeadsTo(tt(), p2.clone())],
        ));
        // init(x<=1) entails init(x<=2): chain is fine.
        let chain = GProof::Transitivity {
            first: Box::new(first.clone()),
            second: Box::new(second),
        };
        let clause = check_gproof(&chain, &mut ctx).unwrap();
        assert_eq!(clause.hypothesis, vec![Property::Init(p0.clone())]);
        assert_eq!(clause.conclusion.len(), 1);
        // A gap (second hypothesis not entailed) is rejected.
        let second_bad = GProof::Premise(GuaranteeClause::new(
            vec![Property::Init(p0)],
            vec![Property::LeadsTo(tt(), p2)],
        ));
        let chain = GProof::Transitivity {
            first: Box::new(first),
            second: Box::new(second_bad),
        };
        assert!(check_gproof(&chain, &mut ctx).is_err());
    }

    #[test]
    fn conjunction_unions_without_duplicates() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let (mut valid, mut holds) = ctx_parts(&v);
        let mut ctx = CalcCtx {
            valid: &mut valid,
            component_holds: &mut holds,
        };
        let h = Property::Init(le(var(x), int(1)));
        let a = GProof::Premise(GuaranteeClause::new(
            vec![h.clone()],
            vec![Property::Stable(tt())],
        ));
        let b = GProof::Premise(GuaranteeClause::new(
            vec![h.clone()],
            vec![Property::Init(tt())],
        ));
        let c = check_gproof(
            &GProof::Conjunction {
                left: Box::new(a),
                right: Box::new(b),
            },
            &mut ctx,
        )
        .unwrap();
        assert_eq!(c.hypothesis, vec![h]);
        assert_eq!(c.conclusion.len(), 2);
    }

    #[test]
    fn existential_intro_checks_class_and_fact() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let mut valid = scan_valid(&v);
        let tr = Property::Transient(eq(var(x), int(0)));
        // Oracle says the component has it.
        let mut yes = |_: &Property| true;
        let mut ctx = CalcCtx {
            valid: &mut valid,
            component_holds: &mut yes,
        };
        let clause = check_gproof(&GProof::FromExistential { prop: tr.clone() }, &mut ctx).unwrap();
        assert!(clause.hypothesis.is_empty());
        assert_eq!(clause.conclusion, vec![tr.clone()]);
        // A universal property is rejected regardless of the oracle.
        let st = Property::Stable(tt());
        assert!(check_gproof(&GProof::FromExistential { prop: st }, &mut ctx).is_err());
        // Oracle refusal is fatal.
        let mut valid2 = scan_valid(&v);
        let mut no = |_: &Property| false;
        let mut ctx = CalcCtx {
            valid: &mut valid2,
            component_holds: &mut no,
        };
        assert!(check_gproof(&GProof::FromExistential { prop: tr }, &mut ctx).is_err());
    }

    #[test]
    fn eliminate_discharges_hypothesis() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let mut valid = scan_valid(&v);
        let clause = GuaranteeClause::new(
            vec![Property::Init(le(var(x), int(2)))],
            vec![Property::LeadsTo(tt(), eq(var(x), int(3)))],
        );
        // The system established a *stronger* init.
        let est = vec![Property::Init(eq(var(x), int(0)))];
        let out = eliminate(&clause, &est, &mut valid).unwrap();
        assert_eq!(out, clause.conclusion);
        // Weaker facts do not discharge.
        let est = vec![Property::Init(le(var(x), int(3)))];
        assert!(eliminate(&clause, &est, &mut valid).is_err());
    }

    #[test]
    fn rule_names_and_size() {
        let prem = GProof::Premise(GuaranteeClause::new(vec![], vec![]));
        assert_eq!(prem.rule_name(), "g-premise");
        let conj = GProof::Conjunction {
            left: Box::new(prem.clone()),
            right: Box::new(prem),
        };
        assert_eq!(conj.size(), 3);
        assert_eq!(conj.rule_name(), "g-conjunction");
    }
}
