//! The `guarantees` operator (§2).
//!
//! ```text
//! X guarantees Y  ≝  λF. ⟨∀G : F ⊥ G : X.(F ∥ G) ⇒ Y.(F ∥ G)⟩
//! ```
//!
//! `guarantees` properties are existential: if one component of a system
//! satisfies `X guarantees Y`, the whole system does. The paper notes that
//! in its two case studies the operator is *not* needed (universal
//! properties suffice), but it is part of the theory, so we provide it:
//! a representation, the existential-composition theorem as a derived rule,
//! and an *instance checker* that verifies the implication `X ⇒ Y` on one
//! concrete composed system (the universally-quantified-over-environments
//! statement is established by the kernel's rules, not by enumeration of
//! all environments, which is impossible).

pub mod calculus;

use crate::properties::Property;

/// The property `X guarantees Y`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Guarantees {
    /// Hypothesis property `X` (on the composed system).
    pub hypothesis: Box<Property>,
    /// Conclusion property `Y` (on the composed system).
    pub conclusion: Box<Property>,
}

impl Guarantees {
    /// Builds `hypothesis guarantees conclusion`.
    pub fn new(hypothesis: Property, conclusion: Property) -> Self {
        Guarantees {
            hypothesis: Box::new(hypothesis),
            conclusion: Box::new(conclusion),
        }
    }

    /// The *elimination* rule: in a system `S` containing a component with
    /// this guarantee, if `S ⊨ X` then `S ⊨ Y`. Returns the conclusion to
    /// be recorded once the hypothesis has been established.
    ///
    /// (Soundness: existentiality of `guarantees` lifts the component's
    /// guarantee to `S`, and the definition then discharges `Y` from `X`.)
    pub fn eliminate(&self) -> &Property {
        &self.conclusion
    }

    /// The hypothesis that must be established on the composed system.
    pub fn hypothesis(&self) -> &Property {
        &self.hypothesis
    }
}

impl std::fmt::Debug for DisplayGuarantees<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

/// Display helper for [`Guarantees`].
pub struct DisplayGuarantees<'a> {
    g: &'a Guarantees,
    vocab: &'a crate::ident::Vocabulary,
}

impl Guarantees {
    /// Renders with variable names.
    pub fn display<'a>(&'a self, vocab: &'a crate::ident::Vocabulary) -> DisplayGuarantees<'a> {
        DisplayGuarantees { g: self, vocab }
    }
}

impl std::fmt::Display for DisplayGuarantees<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} guarantees {}",
            self.g.hypothesis.display(self.vocab),
            self.g.conclusion.display(self.vocab)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::build::*;
    use crate::ident::Vocabulary;

    #[test]
    fn construct_and_display() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let g = Guarantees::new(
            Property::Stable(eq(var(x), int(0))),
            Property::LeadsTo(tt(), eq(var(x), int(0))),
        );
        let s = g.display(&v).to_string();
        assert!(s.contains("guarantees"));
        assert_eq!(g.eliminate(), &Property::LeadsTo(tt(), eq(var(x), int(0))));
        assert_eq!(g.hypothesis(), &Property::Stable(eq(var(x), int(0))));
    }
}
