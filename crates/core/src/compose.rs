//! Program composition `F ∥ G` (§2 of the paper).
//!
//! The composition of programs is the union of their variables and command
//! sets, the union of their fair subsets, and the conjunction of their
//! `initially` predicates. Composition is *partial*: it must respect
//! variable locality (a variable declared `local` in one component may not
//! be written — nor redeclared local — by another) and must admit at least
//! one initial state. [`compatible`] implements the paper's `F ⊥ G` check
//! and [`compose`]/[`System::compose`] build `F ∥ G`.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::error::CoreError;
use crate::expr::build::and;
use crate::ident::{VarId, Vocabulary};
use crate::program::Program;
use crate::state::{State, StateSpaceIter};

/// How (and whether) to check that the composed `initially` predicate is
/// satisfiable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitSatCheck {
    /// Enumerate the full state space (exact; exponential).
    Exhaustive,
    /// Enumerate exhaustively only when the space has at most this many
    /// states, otherwise skip.
    BoundedExhaustive(u64),
    /// Do not check.
    Skip,
}

impl Default for InitSatCheck {
    fn default() -> Self {
        InitSatCheck::BoundedExhaustive(1 << 22)
    }
}

/// Checks the paper's compatibility relation `F ⊥ G` pairwise over
/// `programs`: no program writes (or re-declares local) a variable another
/// program declared local, and shared variable names agree on domains.
///
/// Programs must already share a vocabulary (see [`merge_programs`] for the
/// remapping path). Initial-state existence is checked by [`compose`].
pub fn compatible(programs: &[&Program]) -> Result<(), CoreError> {
    for (i, f) in programs.iter().enumerate() {
        for (j, g) in programs.iter().enumerate() {
            if i == j {
                continue;
            }
            debug_assert!(
                Arc::ptr_eq(&f.vocab, &g.vocab) || f.vocab == g.vocab,
                "compatible() requires a shared vocabulary"
            );
            let g_writes = g.write_set();
            for &l in &f.locals {
                if g_writes.contains(&l) {
                    return Err(CoreError::LocalityViolation {
                        writer: g.name.clone(),
                        owner: f.name.clone(),
                        var: f.vocab.name(l).to_string(),
                    });
                }
                if i < j && g.locals.contains(&l) {
                    return Err(CoreError::LocalityViolation {
                        writer: g.name.clone(),
                        owner: f.name.clone(),
                        var: format!("{} (declared local twice)", f.vocab.name(l)),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Composes `programs` (already over a shared vocabulary) into one program,
/// enforcing compatibility and initial-state existence.
pub fn compose(programs: &[Program], init_check: InitSatCheck) -> Result<Program, CoreError> {
    assert!(!programs.is_empty(), "cannot compose zero programs");
    let refs: Vec<&Program> = programs.iter().collect();
    compatible(&refs)?;
    let vocab = programs[0].vocab.clone();

    let mut commands = Vec::new();
    let mut fair = BTreeSet::new();
    let mut locals = BTreeSet::new();
    let mut inits = Vec::new();
    let mut names = Vec::new();
    for p in programs {
        let base = commands.len();
        commands.extend(p.commands.iter().cloned());
        fair.extend(p.fair.iter().map(|&i| base + i));
        locals.extend(p.locals.iter().copied());
        if !p.init.is_true() {
            inits.push(p.init.clone());
        }
        names.push(p.name.clone());
    }
    let init = and(inits);
    let composed = Program {
        name: names.join(" || "),
        vocab: vocab.clone(),
        locals,
        init,
        commands,
        fair,
    };

    let do_check = match init_check {
        InitSatCheck::Exhaustive => true,
        InitSatCheck::BoundedExhaustive(limit) => vocab.space_size().is_some_and(|n| n <= limit),
        InitSatCheck::Skip => false,
    };
    if do_check {
        let sat = StateSpaceIter::new(&vocab).any(|s| composed.satisfies_init(&s));
        if !sat {
            return Err(CoreError::UnsatisfiableInit { programs: names });
        }
    }
    Ok(composed)
}

/// Merges programs built over *different* vocabularies by name-unifying
/// their variables (shared names must agree on domains), remapping all
/// expressions, and returning the rebased programs over the shared
/// vocabulary. This is the entry point for composing DSL-parsed programs.
pub fn merge_programs(programs: &[Program]) -> Result<Vec<Program>, CoreError> {
    let mut vocab = Vocabulary::new();
    let mut maps = Vec::with_capacity(programs.len());
    for p in programs {
        maps.push(vocab.merge(&p.vocab)?);
    }
    let shared = Arc::new(vocab);
    let mut out = Vec::with_capacity(programs.len());
    for (p, map) in programs.iter().zip(&maps) {
        out.push(remap_program(p, map, shared.clone())?);
    }
    Ok(out)
}

fn remap_program(p: &Program, map: &[VarId], vocab: Arc<Vocabulary>) -> Result<Program, CoreError> {
    let remap_expr = |e: &crate::expr::Expr| remap(e, map);
    let mut commands = Vec::with_capacity(p.commands.len());
    for c in &p.commands {
        commands.push(crate::command::Command::new(
            c.name.clone(),
            remap_expr(&c.guard),
            c.updates
                .iter()
                .map(|(x, e)| (map[x.index()], remap_expr(e)))
                .collect(),
            &vocab,
        )?);
    }
    let prog = Program {
        name: p.name.clone(),
        vocab,
        locals: p.locals.iter().map(|l| map[l.index()]).collect(),
        init: remap_expr(&p.init),
        commands,
        fair: p.fair.clone(),
    };
    prog.validate()?;
    Ok(prog)
}

/// Rewrites variable ids in `e` through `map`.
pub fn remap(e: &crate::expr::Expr, map: &[VarId]) -> crate::expr::Expr {
    use crate::expr::Expr;
    match e {
        Expr::Lit(v) => Expr::Lit(*v),
        Expr::Var(id) => Expr::Var(map[id.index()]),
        Expr::Not(a) => Expr::Not(Box::new(remap(a, map))),
        Expr::Neg(a) => Expr::Neg(Box::new(remap(a, map))),
        Expr::Bin(op, a, b) => Expr::Bin(*op, Box::new(remap(a, map)), Box::new(remap(b, map))),
        Expr::Ite(c, t, f) => Expr::Ite(
            Box::new(remap(c, map)),
            Box::new(remap(t, map)),
            Box::new(remap(f, map)),
        ),
        Expr::NAry(op, args) => Expr::NAry(*op, args.iter().map(|a| remap(a, map)).collect()),
    }
}

/// A composed system that remembers its components.
///
/// The paper's reasoning pattern constantly switches between "property of
/// `Component_i`" and "property of the system"; keeping both programs around
/// makes each check well-scoped.
#[derive(Debug, Clone)]
pub struct System {
    /// The component programs (over the shared vocabulary).
    pub components: Vec<Program>,
    /// Their composition.
    pub composed: Program,
    /// For each composed command index, `(component index, local index)`.
    pub provenance: Vec<(usize, usize)>,
}

impl System {
    /// Composes components that already share a vocabulary.
    pub fn compose(components: Vec<Program>, init_check: InitSatCheck) -> Result<Self, CoreError> {
        let composed = compose(&components, init_check)?;
        let mut provenance = Vec::with_capacity(composed.commands.len());
        for (ci, p) in components.iter().enumerate() {
            for li in 0..p.commands.len() {
                provenance.push((ci, li));
            }
        }
        Ok(System {
            components,
            composed,
            provenance,
        })
    }

    /// Merges vocabularies first (DSL path), then composes.
    pub fn compose_merging(
        components: &[Program],
        init_check: InitSatCheck,
    ) -> Result<Self, CoreError> {
        let rebased = merge_programs(components)?;
        Self::compose(rebased, init_check)
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.composed.vocab
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the system has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Initial states of the composed program.
    pub fn initial_states(&self) -> Vec<State> {
        self.composed.initial_states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::build::*;
    use crate::value::Value;

    fn two_counters() -> (Arc<Vocabulary>, Program, Program) {
        let mut v = Vocabulary::new();
        let c0 = v.declare("c0", Domain::int_range(0, 2).unwrap()).unwrap();
        let c1 = v.declare("c1", Domain::int_range(0, 2).unwrap()).unwrap();
        let big = v.declare("C", Domain::int_range(0, 4).unwrap()).unwrap();
        let vocab = Arc::new(v);
        let p0 = Program::builder("P0", vocab.clone())
            .local(c0)
            .init(and2(eq(var(c0), int(0)), eq(var(big), int(0))))
            .fair_command(
                "a0",
                lt(var(c0), int(2)),
                vec![(c0, add(var(c0), int(1))), (big, add(var(big), int(1)))],
            )
            .build()
            .unwrap();
        let p1 = Program::builder("P1", vocab.clone())
            .local(c1)
            .init(and2(eq(var(c1), int(0)), eq(var(big), int(0))))
            .fair_command(
                "a1",
                lt(var(c1), int(2)),
                vec![(c1, add(var(c1), int(1))), (big, add(var(big), int(1)))],
            )
            .build()
            .unwrap();
        (vocab, p0, p1)
    }

    #[test]
    fn compose_unions() {
        let (_, p0, p1) = two_counters();
        let sys = System::compose(vec![p0, p1], InitSatCheck::Exhaustive).unwrap();
        assert_eq!(sys.composed.commands.len(), 2);
        assert_eq!(sys.composed.fair.len(), 2);
        assert_eq!(sys.composed.locals.len(), 2);
        assert_eq!(sys.provenance, vec![(0, 0), (1, 0)]);
        assert_eq!(sys.composed.name, "P0 || P1");
        // Exactly one initial state: all zeros.
        let inits = sys.initial_states();
        assert_eq!(inits.len(), 1);
        assert!(inits[0].values().iter().all(|v| *v == Value::Int(0)));
    }

    #[test]
    fn locality_violation_rejected() {
        let (vocab, p0, _) = two_counters();
        let c0 = vocab.lookup("c0").unwrap();
        // Evil writes P0's local c0.
        let evil = Program::builder("Evil", vocab.clone())
            .command("w", tt(), vec![(c0, int(0))])
            .build()
            .unwrap();
        let err = System::compose(vec![p0, evil], InitSatCheck::Skip).unwrap_err();
        assert!(matches!(err, CoreError::LocalityViolation { .. }));
    }

    #[test]
    fn double_local_rejected() {
        let (vocab, p0, _) = two_counters();
        let c0 = vocab.lookup("c0").unwrap();
        let q = Program::builder("Q", vocab.clone())
            .local(c0)
            .build()
            .unwrap();
        let err = System::compose(vec![p0, q], InitSatCheck::Skip).unwrap_err();
        assert!(matches!(err, CoreError::LocalityViolation { .. }));
    }

    #[test]
    fn unsat_init_rejected() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        let vocab = Arc::new(v);
        let f = Program::builder("F", vocab.clone())
            .init(var(x))
            .build()
            .unwrap();
        let g = Program::builder("G", vocab.clone())
            .init(not(var(x)))
            .build()
            .unwrap();
        let err = System::compose(vec![f, g], InitSatCheck::Exhaustive).unwrap_err();
        assert!(matches!(err, CoreError::UnsatisfiableInit { .. }));
    }

    #[test]
    fn reading_foreign_locals_is_allowed() {
        // The paper forbids *writing* another's locals; reading is fine.
        let (vocab, p0, _) = two_counters();
        let c0 = vocab.lookup("c0").unwrap();
        let big = vocab.lookup("C").unwrap();
        let reader = Program::builder("R", vocab.clone())
            .command("r", eq(var(c0), int(1)), vec![(big, var(big))])
            .build()
            .unwrap();
        assert!(System::compose(vec![p0, reader], InitSatCheck::Exhaustive).is_ok());
    }

    #[test]
    fn merge_programs_unifies_names() {
        // Two programs built over separate vocabularies sharing "C".
        let mut va = Vocabulary::new();
        let a = va.declare("a", Domain::Bool).unwrap();
        let ca = va.declare("C", Domain::int_range(0, 3).unwrap()).unwrap();
        let pa = Program::builder("A", Arc::new(va))
            .local(a)
            .command("t", var(a), vec![(ca, add(var(ca), int(1)))])
            .build()
            .unwrap();
        let mut vb = Vocabulary::new();
        let cb = vb.declare("C", Domain::int_range(0, 3).unwrap()).unwrap();
        let b = vb.declare("b", Domain::Bool).unwrap();
        let pb = Program::builder("B", Arc::new(vb))
            .local(b)
            .command("u", var(b), vec![(cb, add(var(cb), int(1)))])
            .build()
            .unwrap();
        let sys = System::compose_merging(&[pa, pb], InitSatCheck::Exhaustive).unwrap();
        assert_eq!(sys.vocab().len(), 3); // a, C, b
        assert_eq!(sys.composed.commands.len(), 2);
        // Both commands now write the same "C".
        let w0: Vec<_> = sys.composed.commands[0].writes().into_iter().collect();
        let w1: Vec<_> = sys.composed.commands[1].writes().into_iter().collect();
        assert_eq!(w0, w1);
    }

    #[test]
    fn composition_is_commutative_up_to_reindexing() {
        let (_, p0, p1) = two_counters();
        let s01 = System::compose(vec![p0.clone(), p1.clone()], InitSatCheck::Skip).unwrap();
        let s10 = System::compose(vec![p1, p0], InitSatCheck::Skip).unwrap();
        // Same command multiset.
        let mut names01: Vec<_> = s01
            .composed
            .commands
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut names10: Vec<_> = s10
            .composed
            .commands
            .iter()
            .map(|c| c.name.clone())
            .collect();
        names01.sort();
        names10.sort();
        assert_eq!(names01, names10);
        assert_eq!(s01.composed.locals, s10.composed.locals);
    }
}
