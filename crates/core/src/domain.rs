//! Finite variable domains.
//!
//! Every variable ranges over a finite domain so that the paper's inductive
//! property definitions (`next` quantifies over *all* states, not just
//! reachable ones) can be decided by enumeration.

use std::fmt;

use crate::error::CoreError;
use crate::value::{Type, Value};

/// A finite domain of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Domain {
    /// `{false, true}`.
    Bool,
    /// Inclusive integer range `lo..=hi` with `lo <= hi`.
    IntRange(i64, i64),
}

impl Domain {
    /// Constructs an inclusive integer range, checking `lo <= hi`.
    pub fn int_range(lo: i64, hi: i64) -> Result<Self, CoreError> {
        if lo > hi {
            return Err(CoreError::EmptyDomain { lo, hi });
        }
        Ok(Domain::IntRange(lo, hi))
    }

    /// Number of values in the domain.
    pub fn size(&self) -> u64 {
        match self {
            Domain::Bool => 2,
            Domain::IntRange(lo, hi) => (hi - lo) as u64 + 1,
        }
    }

    /// The static type of values in this domain.
    pub fn ty(&self) -> Type {
        match self {
            Domain::Bool => Type::Bool,
            Domain::IntRange(..) => Type::Int,
        }
    }

    /// Whether `v` belongs to the domain.
    pub fn contains(&self, v: Value) -> bool {
        match (self, v) {
            (Domain::Bool, Value::Bool(_)) => true,
            (Domain::IntRange(lo, hi), Value::Int(n)) => *lo <= n && n <= *hi,
            _ => false,
        }
    }

    /// The `k`-th value of the domain in canonical order (`false < true`,
    /// integers ascending).
    ///
    /// # Panics
    /// Panics if `k >= self.size()`.
    pub fn value_at(&self, k: u64) -> Value {
        debug_assert!(k < self.size(), "domain index out of range");
        match self {
            Domain::Bool => Value::Bool(k == 1),
            Domain::IntRange(lo, _) => Value::Int(lo + k as i64),
        }
    }

    /// The canonical index of `v` within the domain, if it belongs.
    pub fn index_of(&self, v: Value) -> Option<u64> {
        match (self, v) {
            (Domain::Bool, Value::Bool(b)) => Some(b as u64),
            (Domain::IntRange(lo, hi), Value::Int(n)) if *lo <= n && n <= *hi => {
                Some((n - lo) as u64)
            }
            _ => None,
        }
    }

    /// Iterates over all values of the domain in canonical order.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.size()).map(move |k| self.value_at(k))
    }

    /// The minimal value of the domain.
    pub fn min_value(&self) -> Value {
        self.value_at(0)
    }

    /// The maximal value of the domain.
    pub fn max_value(&self) -> Value {
        self.value_at(self.size() - 1)
    }

    /// Number of bits needed to store a canonical index into this domain.
    pub fn bits(&self) -> u32 {
        let n = self.size();
        if n <= 1 {
            0
        } else {
            64 - (n - 1).leading_zeros()
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Bool => write!(f, "bool"),
            Domain::IntRange(lo, hi) => write!(f, "int {lo}..{hi}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_domain() {
        let d = Domain::Bool;
        assert_eq!(d.size(), 2);
        assert_eq!(d.value_at(0), Value::Bool(false));
        assert_eq!(d.value_at(1), Value::Bool(true));
        assert_eq!(d.index_of(Value::Bool(true)), Some(1));
        assert!(d.contains(Value::Bool(false)));
        assert!(!d.contains(Value::Int(0)));
        assert_eq!(d.bits(), 1);
    }

    #[test]
    fn int_range_domain() {
        let d = Domain::int_range(-2, 3).unwrap();
        assert_eq!(d.size(), 6);
        assert_eq!(d.value_at(0), Value::Int(-2));
        assert_eq!(d.value_at(5), Value::Int(3));
        assert_eq!(d.index_of(Value::Int(0)), Some(2));
        assert_eq!(d.index_of(Value::Int(4)), None);
        assert_eq!(d.min_value(), Value::Int(-2));
        assert_eq!(d.max_value(), Value::Int(3));
        assert_eq!(d.bits(), 3);
    }

    #[test]
    fn empty_range_rejected() {
        assert!(Domain::int_range(2, 1).is_err());
    }

    #[test]
    fn singleton_has_zero_bits() {
        let d = Domain::int_range(5, 5).unwrap();
        assert_eq!(d.size(), 1);
        assert_eq!(d.bits(), 0);
    }

    #[test]
    fn values_roundtrip() {
        let d = Domain::int_range(0, 9).unwrap();
        for (k, v) in d.values().enumerate() {
            assert_eq!(d.index_of(v), Some(k as u64));
        }
    }
}
