//! Error types for the core crate.

use std::fmt;

use crate::domain::Domain;
use crate::value::Type;

/// Errors raised while building, typing, composing or proving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An integer range with `lo > hi`.
    EmptyDomain {
        /// Lower bound supplied.
        lo: i64,
        /// Upper bound supplied.
        hi: i64,
    },
    /// The same variable name declared with two different domains.
    DomainMismatch {
        /// Variable name.
        var: String,
        /// Domain on one side.
        left: Domain,
        /// Domain on the other side.
        right: Domain,
    },
    /// An expression failed to type check.
    TypeError {
        /// Human-readable description of the offending expression.
        expr: String,
        /// Expected type.
        expected: Type,
        /// Actual type.
        found: Type,
    },
    /// A variable id referenced outside the vocabulary.
    UnknownVar {
        /// The offending name (or rendered id).
        name: String,
    },
    /// A command assigns the same variable twice.
    DuplicateAssignment {
        /// Command name.
        command: String,
        /// Variable assigned twice.
        var: String,
    },
    /// Composition violates variable locality: a component writes a variable
    /// another component declared `local`.
    LocalityViolation {
        /// The writing program.
        writer: String,
        /// The program owning the local variable.
        owner: String,
        /// The variable written.
        var: String,
    },
    /// The conjunction of initial predicates is unsatisfiable, so the
    /// composition has no initial state.
    UnsatisfiableInit {
        /// Names of the composed programs.
        programs: Vec<String>,
    },
    /// A proof rule was applied to conclusions that do not fit its shape.
    ProofShape {
        /// Which rule.
        rule: &'static str,
        /// What went wrong.
        detail: String,
    },
    /// A leaf obligation failed to discharge.
    Discharge {
        /// Description of the obligation.
        obligation: String,
        /// Reason (e.g. a counterexample rendering).
        reason: String,
    },
    /// DSL parse error with line/column information.
    Parse {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Message.
        msg: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyDomain { lo, hi } => {
                write!(f, "empty integer domain {lo}..{hi}")
            }
            CoreError::DomainMismatch { var, left, right } => {
                write!(
                    f,
                    "variable `{var}` declared with domains {left} and {right}"
                )
            }
            CoreError::TypeError {
                expr,
                expected,
                found,
            } => write!(
                f,
                "type error in `{expr}`: expected {expected}, found {found}"
            ),
            CoreError::UnknownVar { name } => write!(f, "unknown variable `{name}`"),
            CoreError::DuplicateAssignment { command, var } => {
                write!(f, "command `{command}` assigns `{var}` more than once")
            }
            CoreError::LocalityViolation { writer, owner, var } => write!(
                f,
                "locality violation: `{writer}` writes `{var}` which is local to `{owner}`"
            ),
            CoreError::UnsatisfiableInit { programs } => write!(
                f,
                "composition of [{}] has no initial state (inconsistent init predicates)",
                programs.join(", ")
            ),
            CoreError::ProofShape { rule, detail } => {
                write!(f, "proof rule {rule} misapplied: {detail}")
            }
            CoreError::Discharge { obligation, reason } => {
                write!(f, "failed to discharge {obligation}: {reason}")
            }
            CoreError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::LocalityViolation {
            writer: "G".into(),
            owner: "F".into(),
            var: "x".into(),
        };
        let s = e.to_string();
        assert!(s.contains("locality"));
        assert!(s.contains('G'));
        assert!(s.contains('x'));
    }

    #[test]
    fn parse_error_carries_position() {
        let e = CoreError::Parse {
            line: 3,
            col: 14,
            msg: "expected `->`".into(),
        };
        assert!(e.to_string().contains("3:14"));
    }
}
