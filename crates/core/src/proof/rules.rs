//! Derivation trees and the inference rules they may use.
//!
//! Every variant of [`Proof`] is one of the paper's rules (or a standard
//! UNITY rule the paper uses implicitly, e.g. `next` weakening in the proof
//! of Property 5: "strengthening the left-hand side of the next"). The
//! conclusion of each node is *computed* by the checker, never trusted from
//! the author.

use crate::expr::build::{and2, eq, ge, implies, int, le, lt, not, or, or2};
use crate::expr::Expr;
use crate::properties::Property;

use super::Judgment;

/// A derivation tree.
#[derive(Debug, Clone)]
pub enum Proof {
    /// Leaf: a base judgment discharged semantically (model checker) or by
    /// fact-base lookup.
    Premise(Judgment),

    // ----- leadsto rules (the paper's inductive definition of ↦) -----
    /// **Transient**: from `transient q` conclude `true ↦ ¬q`.
    LtTransient {
        /// Proves `transient q` (same scope).
        sub: Box<Proof>,
    },
    /// **Implication**: from validity `⊨ p ⇒ q` conclude `p ↦ q`.
    LtImplication {
        /// Left-hand side.
        p: Expr,
        /// Right-hand side.
        q: Expr,
    },
    /// **Disjunction**: from `pᵢ ↦ q` for all `i` conclude `(∨ᵢ pᵢ) ↦ q`.
    /// All sub-conclusions must share the same `q` syntactically.
    LtDisjunction {
        /// Sub-proofs of the disjuncts.
        subs: Vec<Proof>,
    },
    /// **Transitivity**: from `p ↦ q` and `q ↦ r` conclude `p ↦ r`.
    /// The middle predicate must match syntactically (use [`Proof::LtMono`]
    /// to align shapes).
    LtTransitivity {
        /// Proves `p ↦ q`.
        first: Box<Proof>,
        /// Proves `q ↦ r`.
        second: Box<Proof>,
    },
    /// **PSP**: from `p ↦ q` and `s next t` conclude
    /// `(p ∧ s) ↦ (q ∧ s) ∨ (¬s ∧ t)`.
    LtPsp {
        /// Proves `p ↦ q`.
        lt: Box<Proof>,
        /// Proves `s next t`.
        next: Box<Proof>,
    },
    /// **Induction** over a bounded non-negative integer metric `M`
    /// (the paper's final step: "through induction on the cardinality of
    /// `A*(i)`"). From, for each `0 ≤ m ≤ bound`,
    /// `(p ∧ M = m) ↦ (p ∧ M < m) ∨ q`, plus validity
    /// `⊨ p ⇒ (0 ≤ M ∧ M ≤ bound)`, conclude `p ↦ q`.
    ///
    /// Use [`induction_step_goal`] to build the exact sub-goal shapes.
    LtInduction {
        /// Invariant part of the induction hypothesis.
        p: Expr,
        /// Target predicate.
        q: Expr,
        /// The metric expression `M` (integer-typed).
        metric: Expr,
        /// Upper bound of the metric under `p`.
        bound: i64,
        /// `steps[m]` proves the goal for metric value `m`.
        steps: Vec<Proof>,
    },
    /// **Monotonicity** (derived from Implication + Transitivity, provided
    /// for convenience): from `p ↦ q`, `⊨ p' ⇒ p` and `⊨ q ⇒ q'`,
    /// conclude `p' ↦ q'`.
    LtMono {
        /// Proves `p ↦ q`.
        sub: Box<Proof>,
        /// New (stronger or equivalent) left-hand side.
        p_new: Expr,
        /// New (weaker or equivalent) right-hand side.
        q_new: Expr,
    },
    /// **Invariant elimination on the left of ↦**: from `(p ∧ I) ↦ q` and
    /// `invariant I`, conclude `p ↦ q` (both system-scoped).
    ///
    /// This is the move the paper makes in the final step of Property 8
    /// ("From the invariant (26) … the previous formula implies …"): sound
    /// for *initialized* executions — every reachable `p`-state satisfies
    /// the invariant — which is exactly the paper's remark that the
    /// substitution axiom "could" be used for global system properties.
    /// The `lt` sub-proof's left-hand side must be syntactically
    /// `p ∧ I`.
    LtInvariantLhs {
        /// Proves `(p ∧ I) ↦ q`.
        lt: Box<Proof>,
        /// Proves `invariant I`.
        inv: Box<Proof>,
    },

    // ----- inductive-safety rules -----
    /// From `stable pᵢ` for all `i` conclude `stable (∧ᵢ pᵢ)` (conjunction
    /// built with the n-ary `all`).
    StableConj {
        /// Sub-proofs, each concluding some `stable pᵢ` (same scope).
        subs: Vec<Proof>,
    },
    /// **Next weakening**: from `p next q`, `⊨ p' ⇒ p`, `⊨ q ⇒ q'`,
    /// conclude `p' next q'`.
    NextWeaken {
        /// Proves `p next q`.
        sub: Box<Proof>,
        /// Strengthened left-hand side.
        p_new: Expr,
        /// Weakened right-hand side.
        q_new: Expr,
    },
    /// **Next disjunction**: from `p₁ next q₁` and `p₂ next q₂` conclude
    /// `(p₁ ∨ p₂) next (q₁ ∨ q₂)` (used in the proof of Property 5).
    NextDisj {
        /// Proves `p₁ next q₁`.
        left: Box<Proof>,
        /// Proves `p₂ next q₂`.
        right: Box<Proof>,
    },
    /// **Next conjunction**: from `p₁ next q₁` and `p₂ next q₂` conclude
    /// `(p₁ ∧ p₂) next (q₁ ∧ q₂)`.
    NextConj {
        /// Proves `p₁ next q₁`.
        left: Box<Proof>,
        /// Proves `p₂ next q₂`.
        right: Box<Proof>,
    },
    /// From `Unchanged eᵢ` proofs, conclude `Unchanged E` where `E` is
    /// syntactically *covered* by the `eᵢ` (every leaf-to-subterm path in
    /// `E` hits a literal or one of the `eᵢ`). This is the "conjunction of
    /// stable properties, removing unused dummies" step of §3.3.
    UnchangedCompose {
        /// Sub-proofs of `Unchanged eᵢ`.
        parts: Vec<Proof>,
        /// The composed expression.
        expr: Expr,
    },
    /// From `Unchanged e` and `⊨ e = e'`, conclude `Unchanged e'`.
    UnchangedEquiv {
        /// Proves `Unchanged e`.
        sub: Box<Proof>,
        /// The equivalent expression.
        to: Expr,
    },
    /// From `Unchanged p` for *boolean* `p`, conclude `stable p` (a
    /// predicate whose truth value never changes is in particular stable).
    StableFromUnchanged {
        /// Proves `Unchanged p`.
        sub: Box<Proof>,
    },
    /// From `init p` and `stable p`, conclude `invariant p` (the paper's
    /// definition of `invariant`).
    InvariantIntro {
        /// Proves `init p`.
        init: Box<Proof>,
        /// Proves `stable p`.
        stable: Box<Proof>,
    },
    /// From `invariant p` and `⊨ p ⇒ q`, conclude `invariant (p ∧ q)`
    /// (sound for the inductive definition; used for Property 6).
    InvariantStrengthen {
        /// Proves `invariant p`.
        sub: Box<Proof>,
        /// The implied predicate.
        q: Expr,
    },
    /// From `init p` and `⊨ p ⇒ q`, conclude `init q`.
    InitWeaken {
        /// Proves `init p`.
        sub: Box<Proof>,
        /// Weakened predicate.
        q: Expr,
    },
    /// From `init p` and `init q` (same scope), conclude `init (p ∧ q)`.
    InitConj {
        /// Sub-proofs.
        subs: Vec<Proof>,
    },
    /// From `transient p` and `⊨ q ⇒ p`, conclude `transient q` (the same
    /// fair command falsifies the stronger predicate).
    TransientStrengthen {
        /// Proves `transient p`.
        sub: Box<Proof>,
        /// Strengthened predicate.
        q: Expr,
    },

    // ----- composition (lifting) rules -----
    /// **Universal lifting**: `prop` is of a universal type and holds of
    /// *every* component ⇒ it holds of the system. `per_component[i]` must
    /// conclude `Component(i) ⊨ prop` for `i = 0..n_components`.
    LiftUniversal {
        /// The property being lifted.
        prop: Property,
        /// One proof per component, in order.
        per_component: Vec<Proof>,
    },
    /// **Existential lifting**: `prop` is of an existential type and holds
    /// of *some* component ⇒ it holds of the system.
    LiftExistential {
        /// Index of the witnessing component.
        component: usize,
        /// Proves `Component(component) ⊨ prop`.
        sub: Box<Proof>,
    },
}

impl Proof {
    /// Convenience: a premise leaf.
    pub fn premise(j: Judgment) -> Proof {
        Proof::Premise(j)
    }

    /// Number of nodes in the tree (reporting).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Immediate children of this node.
    pub fn children(&self) -> Vec<&Proof> {
        match self {
            Proof::Premise(_) | Proof::LtImplication { .. } => vec![],
            Proof::LtTransient { sub }
            | Proof::LtMono { sub, .. }
            | Proof::NextWeaken { sub, .. }
            | Proof::UnchangedEquiv { sub, .. }
            | Proof::StableFromUnchanged { sub }
            | Proof::InvariantStrengthen { sub, .. }
            | Proof::InitWeaken { sub, .. }
            | Proof::TransientStrengthen { sub, .. }
            | Proof::LiftExistential { sub, .. } => vec![sub],
            Proof::LtTransitivity { first, second } => vec![first, second],
            Proof::LtPsp { lt, next } => vec![lt, next],
            Proof::LtInvariantLhs { lt, inv } => vec![lt, inv],
            Proof::NextDisj { left, right } | Proof::NextConj { left, right } => {
                vec![left, right]
            }
            Proof::InvariantIntro { init, stable } => vec![init, stable],
            Proof::LtDisjunction { subs }
            | Proof::StableConj { subs }
            | Proof::InitConj { subs } => subs.iter().collect(),
            Proof::UnchangedCompose { parts, .. } => parts.iter().collect(),
            Proof::LtInduction { steps, .. } => steps.iter().collect(),
            Proof::LiftUniversal { per_component, .. } => per_component.iter().collect(),
        }
    }

    /// The rule name of this node.
    pub fn rule_name(&self) -> &'static str {
        match self {
            Proof::Premise(_) => "premise",
            Proof::LtTransient { .. } => "lt-transient",
            Proof::LtImplication { .. } => "lt-implication",
            Proof::LtDisjunction { .. } => "lt-disjunction",
            Proof::LtTransitivity { .. } => "lt-transitivity",
            Proof::LtPsp { .. } => "lt-psp",
            Proof::LtInduction { .. } => "lt-induction",
            Proof::LtMono { .. } => "lt-mono",
            Proof::LtInvariantLhs { .. } => "lt-invariant-lhs",
            Proof::StableConj { .. } => "stable-conj",
            Proof::NextWeaken { .. } => "next-weaken",
            Proof::NextDisj { .. } => "next-disj",
            Proof::NextConj { .. } => "next-conj",
            Proof::UnchangedCompose { .. } => "unchanged-compose",
            Proof::UnchangedEquiv { .. } => "unchanged-equiv",
            Proof::StableFromUnchanged { .. } => "stable-from-unchanged",
            Proof::InvariantIntro { .. } => "invariant-intro",
            Proof::InvariantStrengthen { .. } => "invariant-strengthen",
            Proof::InitWeaken { .. } => "init-weaken",
            Proof::InitConj { .. } => "init-conj",
            Proof::TransientStrengthen { .. } => "transient-strengthen",
            Proof::LiftUniversal { .. } => "lift-universal",
            Proof::LiftExistential { .. } => "lift-existential",
        }
    }
}

/// The exact sub-goal shape required by [`Proof::LtInduction`] for metric
/// value `m`:
///
/// ```text
/// (p ∧ M = m) ↦ (p ∧ M < m) ∨ q
/// ```
pub fn induction_step_goal(p: &Expr, q: &Expr, metric: &Expr, m: i64) -> (Expr, Expr) {
    let lhs = and2(p.clone(), eq(metric.clone(), int(m)));
    let rhs = or2(and2(p.clone(), lt(metric.clone(), int(m))), q.clone());
    (lhs, rhs)
}

/// The validity side condition of [`Proof::LtInduction`]:
/// `p ⇒ (0 ≤ M ∧ M ≤ bound)`.
pub fn induction_bound_condition(p: &Expr, metric: &Expr, bound: i64) -> Expr {
    implies(
        p.clone(),
        and2(ge(metric.clone(), int(0)), le(metric.clone(), int(bound))),
    )
}

/// The conclusion shape of [`Proof::LtPsp`]:
/// `(p ∧ s) ↦ (q ∧ s) ∨ (¬s ∧ t)`.
pub fn psp_goal(p: &Expr, q: &Expr, s: &Expr, t: &Expr) -> (Expr, Expr) {
    (
        and2(p.clone(), s.clone()),
        or2(and2(q.clone(), s.clone()), and2(not(s.clone()), t.clone())),
    )
}

/// The left-hand side produced by [`Proof::LtDisjunction`] over `ps`.
pub fn disjunction_lhs(ps: Vec<Expr>) -> Expr {
    or(ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::build::*;
    use crate::proof::Scope;

    #[test]
    fn node_count_and_children() {
        let leaf = Proof::premise(Judgment::new(Scope::System, Property::Transient(tt())));
        let tree = Proof::LtTransient {
            sub: Box::new(leaf),
        };
        assert_eq!(tree.node_count(), 2);
        assert_eq!(tree.children().len(), 1);
        assert_eq!(tree.rule_name(), "lt-transient");
    }

    #[test]
    fn induction_goal_shapes() {
        let p = tt();
        let q = ff();
        let m = int(0); // degenerate metric for shape test
        let (lhs, rhs) = induction_step_goal(&p, &q, &m, 2);
        assert_eq!(lhs, and2(tt(), eq(int(0), int(2))));
        assert_eq!(rhs, or2(and2(tt(), lt(int(0), int(2))), ff()));
        let cond = induction_bound_condition(&p, &m, 2);
        assert_eq!(
            cond,
            implies(tt(), and2(ge(int(0), int(0)), le(int(0), int(2))))
        );
    }

    #[test]
    fn psp_goal_shape() {
        let (l, r) = psp_goal(&tt(), &ff(), &tt(), &ff());
        assert_eq!(l, and2(tt(), tt()));
        assert_eq!(r, or2(and2(ff(), tt()), and2(not(tt()), ff())));
    }
}
