//! Rendering of derivation trees.

use crate::ident::Vocabulary;
use crate::proof::check::{check, CheckCtx};
use crate::proof::AssumeAll;

use super::rules::Proof;

/// Renders a proof tree as an indented outline, annotating each node with
/// the judgment it concludes (conclusions are computed with an
/// assume-everything discharger — this is a *display* aid, not a check).
pub fn render(proof: &Proof, vocab: &Vocabulary) -> String {
    let mut out = String::new();
    render_into(proof, vocab, 0, &mut out);
    out
}

fn render_into(proof: &Proof, vocab: &Vocabulary, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let conclusion = {
        let mut d = AssumeAll::default();
        let mut ctx = CheckCtx::new(&mut d).with_components(usize::MAX >> 1);
        // For display purposes, universal lifts with arbitrary component
        // counts must not fail; fall back to the rule name alone on error.
        match check_for_display(proof, &mut ctx) {
            Some(j) => format!("{} ⊨ {}", j.scope, j.prop.display(vocab)),
            None => "<unrenderable conclusion>".to_string(),
        }
    };
    out.push_str(&format!("{indent}[{}] {}\n", proof.rule_name(), conclusion));
    for c in proof.children() {
        render_into(c, vocab, depth + 1, out);
    }
}

fn check_for_display(proof: &Proof, ctx: &mut CheckCtx<'_>) -> Option<crate::proof::Judgment> {
    // Universal lifting checks the exact component count; for display we
    // infer it from the node itself.
    if let Proof::LiftUniversal { per_component, .. } = proof {
        ctx.n_components = Some(per_component.len());
    }
    check(proof, ctx).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::build::*;
    use crate::proof::{Judgment, Scope};
    use crate::properties::Property;

    #[test]
    fn renders_tree() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", crate::domain::Domain::Bool).unwrap();
        let proof = Proof::LtTransient {
            sub: Box::new(Proof::premise(Judgment::new(
                Scope::System,
                Property::Transient(var(x)),
            ))),
        };
        let s = render(&proof, &v);
        assert!(s.contains("[lt-transient]"));
        assert!(s.contains("[premise]"));
        assert!(s.contains("transient x"));
        assert!(s.contains("leadsto"));
    }
}
