//! The proof checker: computes each node's conclusion bottom-up and
//! verifies every side condition, delegating semantic leaves to a
//! [`Discharger`].

use crate::classify::{classify, PropertyClass};
use crate::error::CoreError;
use crate::expr::build::{and, and2, implies, not, or, tt};
use crate::expr::Expr;
use crate::ident::Vocabulary;
use crate::properties::Property;

use super::rules::{induction_bound_condition, induction_step_goal, Proof};
use super::{Discharger, Judgment, Scope};

/// Statistics about a checked proof.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Total rule applications (tree nodes).
    pub rules: usize,
    /// Premise leaves discharged.
    pub premises: usize,
    /// Validity / equivalence side conditions discharged.
    pub side_conditions: usize,
}

/// Context for checking a proof.
pub struct CheckCtx<'a> {
    /// Semantic back-end for leaves and side conditions.
    pub discharger: &'a mut dyn Discharger,
    /// Number of components of the system (required by universal lifting).
    pub n_components: Option<usize>,
    /// Vocabulary for type checking conclusions (optional but recommended).
    pub vocab: Option<&'a Vocabulary>,
    /// Accumulated statistics.
    pub stats: CheckStats,
}

impl<'a> CheckCtx<'a> {
    /// Builds a context.
    pub fn new(discharger: &'a mut dyn Discharger) -> Self {
        CheckCtx {
            discharger,
            n_components: None,
            vocab: None,
            stats: CheckStats::default(),
        }
    }

    /// Sets the component count (needed by [`Proof::LiftUniversal`]).
    pub fn with_components(mut self, n: usize) -> Self {
        self.n_components = Some(n);
        self
    }

    /// Sets the vocabulary for conclusion type checking.
    pub fn with_vocab(mut self, v: &'a Vocabulary) -> Self {
        self.vocab = Some(v);
        self
    }

    fn valid(&mut self, p: &Expr) -> Result<(), CoreError> {
        self.stats.side_conditions += 1;
        self.discharger.valid(p)
    }

    fn equivalent(&mut self, a: &Expr, b: &Expr) -> Result<(), CoreError> {
        self.stats.side_conditions += 1;
        self.discharger.equivalent(a, b)
    }
}

fn shape_err(rule: &'static str, detail: impl Into<String>) -> CoreError {
    CoreError::ProofShape {
        rule,
        detail: detail.into(),
    }
}

/// Views `Next(p,q)` or `Stable(p)` (i.e. `p next p`) uniformly.
fn as_next(prop: &Property, rule: &'static str) -> Result<(Expr, Expr), CoreError> {
    match prop {
        Property::Next(p, q) => Ok((p.clone(), q.clone())),
        Property::Stable(p) => Ok((p.clone(), p.clone())),
        other => Err(shape_err(
            rule,
            format!("expected a next/stable judgment, found {}", other.kind()),
        )),
    }
}

fn as_leadsto(prop: &Property, rule: &'static str) -> Result<(Expr, Expr), CoreError> {
    match prop {
        Property::LeadsTo(p, q) => Ok((p.clone(), q.clone())),
        other => Err(shape_err(
            rule,
            format!("expected a leadsto judgment, found {}", other.kind()),
        )),
    }
}

fn require_scope(j: &Judgment, want: Scope, rule: &'static str) -> Result<(), CoreError> {
    if j.scope != want {
        return Err(shape_err(
            rule,
            format!("expected a {want}-scoped judgment, found {}", j.scope),
        ));
    }
    Ok(())
}

/// Whether `expr` is syntactically *covered* by the set `parts`: every
/// branch of `expr` bottoms out in a literal or in a subterm syntactically
/// equal to one of `parts`. If so, the value of `expr` is a function of the
/// values of `parts` — this is the soundness condition of
/// [`Proof::UnchangedCompose`].
pub fn covers(expr: &Expr, parts: &[&Expr]) -> bool {
    if parts.contains(&expr) {
        return true;
    }
    match expr {
        Expr::Lit(_) => true,
        Expr::Var(_) => false,
        Expr::Not(a) | Expr::Neg(a) => covers(a, parts),
        Expr::Bin(_, a, b) => covers(a, parts) && covers(b, parts),
        Expr::Ite(c, t, f) => covers(c, parts) && covers(t, parts) && covers(f, parts),
        Expr::NAry(_, args) => args.iter().all(|a| covers(a, parts)),
    }
}

/// Checks `proof`, returning its conclusion.
pub fn check(proof: &Proof, ctx: &mut CheckCtx<'_>) -> Result<Judgment, CoreError> {
    ctx.stats.rules += 1;
    let concluded = match proof {
        Proof::Premise(j) => {
            ctx.stats.premises += 1;
            ctx.discharger.discharge(j)?;
            j.clone()
        }

        // ----- leadsto -----
        Proof::LtTransient { sub } => {
            let j = check(sub, ctx)?;
            require_scope(&j, Scope::System, "lt-transient")?;
            match &j.prop {
                Property::Transient(q) => Judgment::system(Property::LeadsTo(tt(), not(q.clone()))),
                other => {
                    return Err(shape_err(
                        "lt-transient",
                        format!("expected transient, found {}", other.kind()),
                    ))
                }
            }
        }
        Proof::LtImplication { p, q } => {
            ctx.valid(&implies(p.clone(), q.clone()))?;
            Judgment::system(Property::LeadsTo(p.clone(), q.clone()))
        }
        Proof::LtDisjunction { subs } => {
            if subs.is_empty() {
                return Err(shape_err("lt-disjunction", "no disjuncts"));
            }
            let mut ps = Vec::with_capacity(subs.len());
            let mut q_common: Option<Expr> = None;
            for s in subs {
                let j = check(s, ctx)?;
                require_scope(&j, Scope::System, "lt-disjunction")?;
                let (p, q) = as_leadsto(&j.prop, "lt-disjunction")?;
                match &q_common {
                    None => q_common = Some(q),
                    Some(qc) if *qc == q => {}
                    Some(_) => {
                        return Err(shape_err(
                            "lt-disjunction",
                            "right-hand sides differ across disjuncts",
                        ))
                    }
                }
                ps.push(p);
            }
            Judgment::system(Property::LeadsTo(or(ps), q_common.unwrap()))
        }
        Proof::LtTransitivity { first, second } => {
            let j1 = check(first, ctx)?;
            let j2 = check(second, ctx)?;
            require_scope(&j1, Scope::System, "lt-transitivity")?;
            require_scope(&j2, Scope::System, "lt-transitivity")?;
            let (p, q) = as_leadsto(&j1.prop, "lt-transitivity")?;
            let (q2, r) = as_leadsto(&j2.prop, "lt-transitivity")?;
            if q != q2 {
                return Err(shape_err(
                    "lt-transitivity",
                    "middle predicates do not match syntactically (use lt-mono to align)",
                ));
            }
            Judgment::system(Property::LeadsTo(p, r))
        }
        Proof::LtPsp { lt, next } => {
            let jl = check(lt, ctx)?;
            let jn = check(next, ctx)?;
            require_scope(&jl, Scope::System, "lt-psp")?;
            require_scope(&jn, Scope::System, "lt-psp")?;
            let (p, q) = as_leadsto(&jl.prop, "lt-psp")?;
            let (s, t) = as_next(&jn.prop, "lt-psp")?;
            let (lhs, rhs) = super::rules::psp_goal(&p, &q, &s, &t);
            Judgment::system(Property::LeadsTo(lhs, rhs))
        }
        Proof::LtInduction {
            p,
            q,
            metric,
            bound,
            steps,
        } => {
            if *bound < 0 {
                return Err(shape_err("lt-induction", "negative bound"));
            }
            if steps.len() as i64 != bound + 1 {
                return Err(shape_err(
                    "lt-induction",
                    format!("need {} steps, found {}", bound + 1, steps.len()),
                ));
            }
            ctx.valid(&induction_bound_condition(p, metric, *bound))?;
            for (m, step) in steps.iter().enumerate() {
                let j = check(step, ctx)?;
                require_scope(&j, Scope::System, "lt-induction")?;
                let (lhs, rhs) = as_leadsto(&j.prop, "lt-induction")?;
                let (want_l, want_r) = induction_step_goal(p, q, metric, m as i64);
                if lhs != want_l || rhs != want_r {
                    return Err(shape_err(
                        "lt-induction",
                        format!("step {m} does not match the required goal shape"),
                    ));
                }
            }
            Judgment::system(Property::LeadsTo(p.clone(), q.clone()))
        }
        Proof::LtMono { sub, p_new, q_new } => {
            let j = check(sub, ctx)?;
            require_scope(&j, Scope::System, "lt-mono")?;
            let (p, q) = as_leadsto(&j.prop, "lt-mono")?;
            ctx.valid(&implies(p_new.clone(), p))?;
            ctx.valid(&implies(q, q_new.clone()))?;
            Judgment::system(Property::LeadsTo(p_new.clone(), q_new.clone()))
        }
        Proof::LtInvariantLhs { lt, inv } => {
            let jl = check(lt, ctx)?;
            let ji = check(inv, ctx)?;
            require_scope(&jl, Scope::System, "lt-invariant-lhs")?;
            require_scope(&ji, Scope::System, "lt-invariant-lhs")?;
            let (lhs, q) = as_leadsto(&jl.prop, "lt-invariant-lhs")?;
            let inv_pred = match &ji.prop {
                Property::Invariant(i) => i.clone(),
                other => {
                    return Err(shape_err(
                        "lt-invariant-lhs",
                        format!("expected invariant, found {}", other.kind()),
                    ))
                }
            };
            // lhs must be syntactically (p ∧ I).
            match lhs {
                Expr::Bin(crate::expr::BinOp::And, p, i) if *i == inv_pred => {
                    Judgment::system(Property::LeadsTo(*p, q))
                }
                _ => {
                    return Err(shape_err(
                        "lt-invariant-lhs",
                        "leadsto left-hand side is not syntactically `p && I`",
                    ))
                }
            }
        }

        // ----- inductive safety -----
        Proof::StableConj { subs } => {
            if subs.is_empty() {
                return Err(shape_err("stable-conj", "no conjuncts"));
            }
            let mut scope = None;
            let mut ps = Vec::with_capacity(subs.len());
            for s in subs {
                let j = check(s, ctx)?;
                match &j.prop {
                    Property::Stable(p) => ps.push(p.clone()),
                    other => {
                        return Err(shape_err(
                            "stable-conj",
                            format!("expected stable, found {}", other.kind()),
                        ))
                    }
                }
                match scope {
                    None => scope = Some(j.scope),
                    Some(sc) if sc == j.scope => {}
                    Some(_) => return Err(shape_err("stable-conj", "mixed scopes")),
                }
            }
            Judgment::new(scope.unwrap(), Property::Stable(and(ps)))
        }
        Proof::NextWeaken { sub, p_new, q_new } => {
            let j = check(sub, ctx)?;
            let (p, q) = as_next(&j.prop, "next-weaken")?;
            ctx.valid(&implies(p_new.clone(), p))?;
            ctx.valid(&implies(q, q_new.clone()))?;
            Judgment::new(j.scope, Property::Next(p_new.clone(), q_new.clone()))
        }
        Proof::NextDisj { left, right } => {
            let jl = check(left, ctx)?;
            let jr = check(right, ctx)?;
            if jl.scope != jr.scope {
                return Err(shape_err("next-disj", "mixed scopes"));
            }
            let (p1, q1) = as_next(&jl.prop, "next-disj")?;
            let (p2, q2) = as_next(&jr.prop, "next-disj")?;
            Judgment::new(
                jl.scope,
                Property::Next(
                    crate::expr::build::or2(p1, p2),
                    crate::expr::build::or2(q1, q2),
                ),
            )
        }
        Proof::NextConj { left, right } => {
            let jl = check(left, ctx)?;
            let jr = check(right, ctx)?;
            if jl.scope != jr.scope {
                return Err(shape_err("next-conj", "mixed scopes"));
            }
            let (p1, q1) = as_next(&jl.prop, "next-conj")?;
            let (p2, q2) = as_next(&jr.prop, "next-conj")?;
            Judgment::new(jl.scope, Property::Next(and2(p1, p2), and2(q1, q2)))
        }
        Proof::UnchangedCompose { parts, expr } => {
            if parts.is_empty() {
                return Err(shape_err("unchanged-compose", "no parts"));
            }
            let mut scope = None;
            let mut exprs = Vec::with_capacity(parts.len());
            for s in parts {
                let j = check(s, ctx)?;
                match &j.prop {
                    Property::Unchanged(e) => exprs.push(e.clone()),
                    other => {
                        return Err(shape_err(
                            "unchanged-compose",
                            format!("expected unchanged, found {}", other.kind()),
                        ))
                    }
                }
                match scope {
                    None => scope = Some(j.scope),
                    Some(sc) if sc == j.scope => {}
                    Some(_) => return Err(shape_err("unchanged-compose", "mixed scopes")),
                }
            }
            let refs: Vec<&Expr> = exprs.iter().collect();
            if !covers(expr, &refs) {
                return Err(shape_err(
                    "unchanged-compose",
                    "expression is not syntactically covered by the unchanged parts",
                ));
            }
            Judgment::new(scope.unwrap(), Property::Unchanged(expr.clone()))
        }
        Proof::UnchangedEquiv { sub, to } => {
            let j = check(sub, ctx)?;
            match &j.prop {
                Property::Unchanged(e) => {
                    ctx.equivalent(e, to)?;
                    Judgment::new(j.scope, Property::Unchanged(to.clone()))
                }
                other => {
                    return Err(shape_err(
                        "unchanged-equiv",
                        format!("expected unchanged, found {}", other.kind()),
                    ))
                }
            }
        }
        Proof::StableFromUnchanged { sub } => {
            let j = check(sub, ctx)?;
            match &j.prop {
                Property::Unchanged(p) => {
                    if let Some(v) = ctx.vocab {
                        p.check_pred(v)?;
                    }
                    Judgment::new(j.scope, Property::Stable(p.clone()))
                }
                other => {
                    return Err(shape_err(
                        "stable-from-unchanged",
                        format!("expected unchanged, found {}", other.kind()),
                    ))
                }
            }
        }
        Proof::InvariantIntro { init, stable } => {
            let ji = check(init, ctx)?;
            let js = check(stable, ctx)?;
            if ji.scope != js.scope {
                return Err(shape_err("invariant-intro", "mixed scopes"));
            }
            match (&ji.prop, &js.prop) {
                (Property::Init(p), Property::Stable(q)) if p == q => {
                    Judgment::new(ji.scope, Property::Invariant(p.clone()))
                }
                _ => {
                    return Err(shape_err(
                        "invariant-intro",
                        "need init p and stable p with the same p",
                    ))
                }
            }
        }
        Proof::InvariantStrengthen { sub, q } => {
            let j = check(sub, ctx)?;
            match &j.prop {
                Property::Invariant(p) => {
                    ctx.valid(&implies(p.clone(), q.clone()))?;
                    Judgment::new(j.scope, Property::Invariant(and2(p.clone(), q.clone())))
                }
                other => {
                    return Err(shape_err(
                        "invariant-strengthen",
                        format!("expected invariant, found {}", other.kind()),
                    ))
                }
            }
        }
        Proof::InitWeaken { sub, q } => {
            let j = check(sub, ctx)?;
            match &j.prop {
                Property::Init(p) => {
                    ctx.valid(&implies(p.clone(), q.clone()))?;
                    Judgment::new(j.scope, Property::Init(q.clone()))
                }
                other => {
                    return Err(shape_err(
                        "init-weaken",
                        format!("expected init, found {}", other.kind()),
                    ))
                }
            }
        }
        Proof::InitConj { subs } => {
            if subs.is_empty() {
                return Err(shape_err("init-conj", "no conjuncts"));
            }
            let mut scope = None;
            let mut ps = Vec::with_capacity(subs.len());
            for s in subs {
                let j = check(s, ctx)?;
                match &j.prop {
                    Property::Init(p) => ps.push(p.clone()),
                    other => {
                        return Err(shape_err(
                            "init-conj",
                            format!("expected init, found {}", other.kind()),
                        ))
                    }
                }
                match scope {
                    None => scope = Some(j.scope),
                    Some(sc) if sc == j.scope => {}
                    Some(_) => return Err(shape_err("init-conj", "mixed scopes")),
                }
            }
            Judgment::new(scope.unwrap(), Property::Init(and(ps)))
        }
        Proof::TransientStrengthen { sub, q } => {
            let j = check(sub, ctx)?;
            match &j.prop {
                Property::Transient(p) => {
                    ctx.valid(&implies(q.clone(), p.clone()))?;
                    Judgment::new(j.scope, Property::Transient(q.clone()))
                }
                other => {
                    return Err(shape_err(
                        "transient-strengthen",
                        format!("expected transient, found {}", other.kind()),
                    ))
                }
            }
        }

        // ----- lifting -----
        Proof::LiftUniversal {
            prop,
            per_component,
        } => {
            if classify(prop) != PropertyClass::Universal {
                return Err(shape_err(
                    "lift-universal",
                    format!("{} is not a universal property type", prop.kind()),
                ));
            }
            let n = ctx.n_components.ok_or_else(|| {
                shape_err("lift-universal", "component count unknown in this context")
            })?;
            if per_component.len() != n {
                return Err(shape_err(
                    "lift-universal",
                    format!("need {n} component proofs, found {}", per_component.len()),
                ));
            }
            for (i, s) in per_component.iter().enumerate() {
                let j = check(s, ctx)?;
                if j.scope != Scope::Component(i) {
                    return Err(shape_err(
                        "lift-universal",
                        format!("proof {i} is scoped to {}, expected component {i}", j.scope),
                    ));
                }
                if j.prop != *prop {
                    return Err(shape_err(
                        "lift-universal",
                        format!("component {i} proves a different property"),
                    ));
                }
            }
            Judgment::system(prop.clone())
        }
        Proof::LiftExistential { component, sub } => {
            let j = check(sub, ctx)?;
            if classify(&j.prop) != PropertyClass::Existential {
                return Err(shape_err(
                    "lift-existential",
                    format!("{} is not an existential property type", j.prop.kind()),
                ));
            }
            if j.scope != Scope::Component(*component) {
                return Err(shape_err(
                    "lift-existential",
                    format!("expected a proof scoped to component {component}"),
                ));
            }
            if let Some(n) = ctx.n_components {
                if *component >= n {
                    return Err(shape_err(
                        "lift-existential",
                        format!("component {component} out of range ({n} components)"),
                    ));
                }
            }
            Judgment::system(j.prop)
        }
    };
    if let Some(v) = ctx.vocab {
        concluded.prop.check_types(v)?;
    }
    Ok(concluded)
}

/// Convenience wrapper: check `proof` and verify the conclusion equals
/// `expected`.
pub fn check_concludes(
    proof: &Proof,
    expected: &Judgment,
    ctx: &mut CheckCtx<'_>,
) -> Result<CheckStats, CoreError> {
    let got = check(proof, ctx)?;
    if got != *expected {
        return Err(CoreError::ProofShape {
            rule: "conclusion",
            detail: format!(
                "proof concludes a different judgment than expected (got {} {:?})",
                got.prop.kind(),
                got.scope
            ),
        });
    }
    Ok(ctx.stats.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::build::*;
    use crate::ident::VarId;
    use crate::proof::AssumeAll;

    fn sysj(p: Property) -> Judgment {
        Judgment::system(p)
    }

    #[test]
    fn transient_rule() {
        let q = eq(var(VarId(0)), int(1));
        let proof = Proof::LtTransient {
            sub: Box::new(Proof::premise(sysj(Property::Transient(q.clone())))),
        };
        let mut d = AssumeAll::default();
        let mut ctx = CheckCtx::new(&mut d);
        let j = check(&proof, &mut ctx).unwrap();
        assert_eq!(j, sysj(Property::LeadsTo(tt(), not(q))));
        assert_eq!(ctx.stats.premises, 1);
    }

    #[test]
    fn transitivity_requires_matching_middle() {
        let a = var(VarId(0));
        let b = var(VarId(1));
        let c = var(VarId(2));
        let good = Proof::LtTransitivity {
            first: Box::new(Proof::premise(sysj(Property::LeadsTo(
                a.clone(),
                b.clone(),
            )))),
            second: Box::new(Proof::premise(sysj(Property::LeadsTo(
                b.clone(),
                c.clone(),
            )))),
        };
        let mut d = AssumeAll::default();
        let j = check(&good, &mut CheckCtx::new(&mut d)).unwrap();
        assert_eq!(j, sysj(Property::LeadsTo(a.clone(), c.clone())));

        let bad = Proof::LtTransitivity {
            first: Box::new(Proof::premise(sysj(Property::LeadsTo(a.clone(), b)))),
            second: Box::new(Proof::premise(sysj(Property::LeadsTo(c.clone(), a)))),
        };
        let mut d = AssumeAll::default();
        assert!(check(&bad, &mut CheckCtx::new(&mut d)).is_err());
    }

    #[test]
    fn psp_shape() {
        let p = var(VarId(0));
        let q = var(VarId(1));
        let s = var(VarId(2));
        let t = var(VarId(3));
        let proof = Proof::LtPsp {
            lt: Box::new(Proof::premise(sysj(Property::LeadsTo(
                p.clone(),
                q.clone(),
            )))),
            next: Box::new(Proof::premise(sysj(Property::Next(s.clone(), t.clone())))),
        };
        let mut d = AssumeAll::default();
        let j = check(&proof, &mut CheckCtx::new(&mut d)).unwrap();
        let (lhs, rhs) = super::super::rules::psp_goal(&p, &q, &s, &t);
        assert_eq!(j, sysj(Property::LeadsTo(lhs, rhs)));
    }

    #[test]
    fn stable_feeds_psp_as_next() {
        let p = var(VarId(0));
        let q = var(VarId(1));
        let s = var(VarId(2));
        let proof = Proof::LtPsp {
            lt: Box::new(Proof::premise(sysj(Property::LeadsTo(
                p.clone(),
                q.clone(),
            )))),
            next: Box::new(Proof::premise(sysj(Property::Stable(s.clone())))),
        };
        let mut d = AssumeAll::default();
        let j = check(&proof, &mut CheckCtx::new(&mut d)).unwrap();
        let (lhs, rhs) = super::super::rules::psp_goal(&p, &q, &s, &s);
        assert_eq!(j, sysj(Property::LeadsTo(lhs, rhs)));
    }

    #[test]
    fn lift_universal_needs_all_components() {
        let prop = Property::Stable(var(VarId(0)));
        let mk = |i| Proof::premise(Judgment::component(i, prop.clone()));
        let proof = Proof::LiftUniversal {
            prop: prop.clone(),
            per_component: vec![mk(0), mk(1)],
        };
        let mut d = AssumeAll::default();
        let j = check(&proof, &mut CheckCtx::new(&mut d).with_components(2)).unwrap();
        assert_eq!(j, sysj(prop.clone()));
        // Wrong count fails.
        let proof_short = Proof::LiftUniversal {
            prop: prop.clone(),
            per_component: vec![mk(0)],
        };
        let mut d = AssumeAll::default();
        assert!(check(&proof_short, &mut CheckCtx::new(&mut d).with_components(2)).is_err());
        // Existential property type rejected.
        let bad = Proof::LiftUniversal {
            prop: Property::Init(tt()),
            per_component: vec![Proof::premise(Judgment::component(0, Property::Init(tt())))],
        };
        let mut d = AssumeAll::default();
        assert!(check(&bad, &mut CheckCtx::new(&mut d).with_components(1)).is_err());
    }

    #[test]
    fn lift_existential() {
        let prop = Property::Transient(var(VarId(0)));
        let proof = Proof::LiftExistential {
            component: 1,
            sub: Box::new(Proof::premise(Judgment::component(1, prop.clone()))),
        };
        let mut d = AssumeAll::default();
        let j = check(&proof, &mut CheckCtx::new(&mut d).with_components(3)).unwrap();
        assert_eq!(j, sysj(prop));
        // Universal property type rejected.
        let bad = Proof::LiftExistential {
            component: 0,
            sub: Box::new(Proof::premise(Judgment::component(
                0,
                Property::Stable(tt()),
            ))),
        };
        let mut d = AssumeAll::default();
        assert!(check(&bad, &mut CheckCtx::new(&mut d)).is_err());
    }

    #[test]
    fn unchanged_compose_coverage() {
        let e0 = sub(var(VarId(2)), var(VarId(0))); // C - c0
        let e1 = var(VarId(1)); // c1
        let composed = sub(e0.clone(), e1.clone()); // (C - c0) - c1
        let proof = Proof::UnchangedCompose {
            parts: vec![
                Proof::premise(Judgment::component(0, Property::Unchanged(e0.clone()))),
                Proof::premise(Judgment::component(0, Property::Unchanged(e1.clone()))),
            ],
            expr: composed.clone(),
        };
        let mut d = AssumeAll::default();
        let j = check(&proof, &mut CheckCtx::new(&mut d)).unwrap();
        assert_eq!(j, Judgment::component(0, Property::Unchanged(composed)));
        // Not covered: mentions a variable outside the parts.
        let bad = Proof::UnchangedCompose {
            parts: vec![Proof::premise(Judgment::component(
                0,
                Property::Unchanged(e0.clone()),
            ))],
            expr: sub(e0, var(VarId(5))),
        };
        let mut d = AssumeAll::default();
        assert!(check(&bad, &mut CheckCtx::new(&mut d)).is_err());
    }

    #[test]
    fn invariant_intro_and_strengthen() {
        let p = var(VarId(0));
        let q = var(VarId(1));
        let proof = Proof::InvariantStrengthen {
            sub: Box::new(Proof::InvariantIntro {
                init: Box::new(Proof::premise(sysj(Property::Init(p.clone())))),
                stable: Box::new(Proof::premise(sysj(Property::Stable(p.clone())))),
            }),
            q: q.clone(),
        };
        let mut d = AssumeAll::default();
        let j = check(&proof, &mut CheckCtx::new(&mut d)).unwrap();
        assert_eq!(j, sysj(Property::Invariant(and2(p, q))));
    }

    #[test]
    fn induction_structure() {
        let p = tt();
        let q = var(VarId(0));
        let metric = var(VarId(1));
        let steps: Vec<Proof> = (0..=2)
            .map(|m| {
                let (l, r) = induction_step_goal(&p, &q, &metric, m);
                Proof::premise(sysj(Property::LeadsTo(l, r)))
            })
            .collect();
        let proof = Proof::LtInduction {
            p: p.clone(),
            q: q.clone(),
            metric,
            bound: 2,
            steps,
        };
        let mut d = AssumeAll::default();
        let j = check(&proof, &mut CheckCtx::new(&mut d)).unwrap();
        assert_eq!(j, sysj(Property::LeadsTo(p, q)));
    }

    #[test]
    fn induction_wrong_step_count_fails() {
        let proof = Proof::LtInduction {
            p: tt(),
            q: ff(),
            metric: int(0),
            bound: 2,
            steps: vec![],
        };
        let mut d = AssumeAll::default();
        assert!(check(&proof, &mut CheckCtx::new(&mut d)).is_err());
    }

    #[test]
    fn check_concludes_mismatch() {
        let proof = Proof::premise(sysj(Property::Init(tt())));
        let mut d = AssumeAll::default();
        let mut ctx = CheckCtx::new(&mut d);
        let wrong = sysj(Property::Init(ff()));
        assert!(check_concludes(&proof, &wrong, &mut ctx).is_err());
    }

    #[test]
    fn invariant_lhs_elimination() {
        let p = var(VarId(0));
        let inv = var(VarId(1));
        let q = var(VarId(2));
        let proof = Proof::LtInvariantLhs {
            lt: Box::new(Proof::premise(sysj(Property::LeadsTo(
                and2(p.clone(), inv.clone()),
                q.clone(),
            )))),
            inv: Box::new(Proof::premise(sysj(Property::Invariant(inv.clone())))),
        };
        let mut d = AssumeAll::default();
        let j = check(&proof, &mut CheckCtx::new(&mut d)).unwrap();
        assert_eq!(j, sysj(Property::LeadsTo(p, q)));
    }

    #[test]
    fn invariant_lhs_requires_exact_conjunction_shape() {
        let p = var(VarId(0));
        let inv = var(VarId(1));
        // lhs is `inv && p` (wrong order w.r.t. `Invariant(inv)`) — must be rejected.
        let proof = Proof::LtInvariantLhs {
            lt: Box::new(Proof::premise(sysj(Property::LeadsTo(
                and2(inv.clone(), p.clone()),
                tt(),
            )))),
            inv: Box::new(Proof::premise(sysj(Property::Invariant(inv.clone())))),
        };
        let mut d = AssumeAll::default();
        assert!(check(&proof, &mut CheckCtx::new(&mut d)).is_err());
        // And a non-invariant second premise is rejected.
        let proof = Proof::LtInvariantLhs {
            lt: Box::new(Proof::premise(sysj(Property::LeadsTo(
                and2(p.clone(), inv.clone()),
                tt(),
            )))),
            inv: Box::new(Proof::premise(sysj(Property::Stable(inv)))),
        };
        let mut d = AssumeAll::default();
        assert!(check(&proof, &mut CheckCtx::new(&mut d)).is_err());
    }

    #[test]
    fn next_weaken_and_disj_shapes() {
        let p = var(VarId(0));
        let q = var(VarId(1));
        let r = var(VarId(2));
        let weaken = Proof::NextWeaken {
            sub: Box::new(Proof::premise(sysj(Property::Next(p.clone(), q.clone())))),
            p_new: r.clone(),
            q_new: tt(),
        };
        let mut d = AssumeAll::default();
        let j = check(&weaken, &mut CheckCtx::new(&mut d)).unwrap();
        assert_eq!(j, sysj(Property::Next(r.clone(), tt())));
        assert_eq!(d.validities, 2, "two implication side conditions");

        let disj = Proof::NextDisj {
            left: Box::new(Proof::premise(sysj(Property::Next(p.clone(), q.clone())))),
            right: Box::new(Proof::premise(sysj(Property::Stable(r.clone())))),
        };
        let mut d = AssumeAll::default();
        let j = check(&disj, &mut CheckCtx::new(&mut d)).unwrap();
        assert_eq!(j, sysj(Property::Next(or2(p, r.clone()), or2(q, r))));
    }

    #[test]
    fn transient_strengthen_shape() {
        let p = var(VarId(0));
        let q = and2(var(VarId(0)), var(VarId(1)));
        let proof = Proof::TransientStrengthen {
            sub: Box::new(Proof::premise(sysj(Property::Transient(p)))),
            q: q.clone(),
        };
        let mut d = AssumeAll::default();
        let j = check(&proof, &mut CheckCtx::new(&mut d)).unwrap();
        assert_eq!(j, sysj(Property::Transient(q)));
    }
}
