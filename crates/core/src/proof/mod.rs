//! A proof kernel for the paper's theory of composition.
//!
//! The paper derives system properties from component specifications using
//! a small set of inference rules: the `leadsto` rules {Transient,
//! Implication, Disjunction, Transitivity, PSP} plus induction over a
//! well-founded metric, inductive-safety manipulations (`stable`/`next`
//! conjunction and weakening, `invariant` introduction/strengthening), and
//! the two *composition* rules — existential and universal lifting — that
//! move component-scope judgments to system scope.
//!
//! [`Proof`](rules::Proof) trees encode derivations; [`check`](check::check)
//! verifies them. Leaves are *premises*: base judgments discharged by a
//! [`Discharger`] — in practice the `unity-mc` model checker (semantic
//! check over a finite instance), or a [`FactBase`] of already-established
//! facts. This split mirrors the paper's methodology: "almost mechanical"
//! steps are rule applications; the "creative" steps (inventing the shared
//! universal property) appear as the *statements* the proof author chooses
//! to route through the lifting rules.

pub mod check;
pub mod pretty;
pub mod rules;

use std::collections::HashSet;
use std::fmt;

use crate::error::CoreError;
use crate::expr::Expr;
use crate::properties::Property;

/// Where a judgment holds: of one component, or of the composed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// The `i`-th component of the system under consideration.
    Component(usize),
    /// The composed system.
    System,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Component(i) => write!(f, "component {i}"),
            Scope::System => write!(f, "system"),
        }
    }
}

/// A judgment: `scope ⊨ prop`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Judgment {
    /// Scope of the judgment.
    pub scope: Scope,
    /// The property judged to hold.
    pub prop: Property,
}

impl Judgment {
    /// Builds a judgment.
    pub fn new(scope: Scope, prop: Property) -> Self {
        Judgment { scope, prop }
    }

    /// System-scoped judgment.
    pub fn system(prop: Property) -> Self {
        Judgment::new(Scope::System, prop)
    }

    /// Component-scoped judgment.
    pub fn component(i: usize, prop: Property) -> Self {
        Judgment::new(Scope::Component(i), prop)
    }
}

/// Discharges leaf obligations of proofs.
///
/// Implementations: `unity-mc`'s model-checking discharger (semantic,
/// exact on finite instances), [`FactBase`] (syntactic lookup of
/// already-proved facts), and [`AssumeAll`] (for rendering/testing).
pub trait Discharger {
    /// Establishes `judgment` (a premise leaf).
    fn discharge(&mut self, judgment: &Judgment) -> Result<(), CoreError>;

    /// Establishes validity `⊨ p` over *all* type-consistent states.
    fn valid(&mut self, p: &Expr) -> Result<(), CoreError>;

    /// Establishes `⊨ a = b` (same value in every state).
    fn equivalent(&mut self, a: &Expr, b: &Expr) -> Result<(), CoreError>;
}

/// A discharger that accepts everything. Useful for computing the
/// conclusion of a proof tree or exercising the structural checks without
/// semantic backing. **Never** use it to claim a theorem.
#[derive(Debug, Default)]
pub struct AssumeAll {
    /// Count of discharged premises (for reporting).
    pub premises: usize,
    /// Count of accepted validity side conditions.
    pub validities: usize,
}

impl Discharger for AssumeAll {
    fn discharge(&mut self, _j: &Judgment) -> Result<(), CoreError> {
        self.premises += 1;
        Ok(())
    }
    fn valid(&mut self, _p: &Expr) -> Result<(), CoreError> {
        self.validities += 1;
        Ok(())
    }
    fn equivalent(&mut self, _a: &Expr, _b: &Expr) -> Result<(), CoreError> {
        self.validities += 1;
        Ok(())
    }
}

/// A store of established judgments; discharges premises by (syntactic)
/// lookup. Validity side conditions are rejected (route them through a
/// semantic discharger).
#[derive(Debug, Default, Clone)]
pub struct FactBase {
    facts: HashSet<Judgment>,
}

impl FactBase {
    /// Empty fact base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a judgment as established.
    pub fn record(&mut self, j: Judgment) -> &mut Self {
        self.facts.insert(j);
        self
    }

    /// Whether `j` has been recorded.
    pub fn contains(&self, j: &Judgment) -> bool {
        self.facts.contains(j)
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

impl Discharger for FactBase {
    fn discharge(&mut self, j: &Judgment) -> Result<(), CoreError> {
        if self.contains(j) {
            Ok(())
        } else {
            Err(CoreError::Discharge {
                obligation: format!("{:?} |= {}", j.scope, j.prop.kind()),
                reason: "not in fact base".into(),
            })
        }
    }
    fn valid(&mut self, _p: &Expr) -> Result<(), CoreError> {
        Err(CoreError::Discharge {
            obligation: "validity side condition".into(),
            reason: "FactBase cannot decide validity; use a semantic discharger".into(),
        })
    }
    fn equivalent(&mut self, _a: &Expr, _b: &Expr) -> Result<(), CoreError> {
        Err(CoreError::Discharge {
            obligation: "equivalence side condition".into(),
            reason: "FactBase cannot decide equivalence; use a semantic discharger".into(),
        })
    }
}

/// A discharger that consults a [`FactBase`] for premises and delegates
/// validity/equivalence side conditions to another discharger.
pub struct Layered<'a, D: Discharger> {
    /// Fact base consulted first for premises.
    pub facts: &'a mut FactBase,
    /// Fallback (and side-condition) discharger.
    pub fallback: &'a mut D,
}

impl<D: Discharger> Discharger for Layered<'_, D> {
    fn discharge(&mut self, j: &Judgment) -> Result<(), CoreError> {
        if self.facts.contains(j) {
            return Ok(());
        }
        self.fallback.discharge(j)
    }
    fn valid(&mut self, p: &Expr) -> Result<(), CoreError> {
        self.fallback.valid(p)
    }
    fn equivalent(&mut self, a: &Expr, b: &Expr) -> Result<(), CoreError> {
        self.fallback.equivalent(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::build::*;

    #[test]
    fn fact_base_lookup() {
        let mut fb = FactBase::new();
        let j = Judgment::system(Property::Stable(tt()));
        assert!(fb.discharge(&j).is_err());
        fb.record(j.clone());
        assert!(fb.discharge(&j).is_ok());
        assert!(fb.valid(&tt()).is_err());
        assert_eq!(fb.len(), 1);
    }

    #[test]
    fn assume_all_counts() {
        let mut d = AssumeAll::default();
        d.discharge(&Judgment::component(0, Property::Init(tt())))
            .unwrap();
        d.valid(&tt()).unwrap();
        assert_eq!(d.premises, 1);
        assert_eq!(d.validities, 1);
    }

    #[test]
    fn layered_prefers_facts() {
        let mut fb = FactBase::new();
        let j = Judgment::system(Property::Init(tt()));
        fb.record(j.clone());
        let mut fallback = FactBase::new(); // empty: would fail
        let mut layered = Layered {
            facts: &mut fb,
            fallback: &mut fallback,
        };
        assert!(layered.discharge(&j).is_ok());
        let other = Judgment::system(Property::Init(ff()));
        assert!(layered.discharge(&other).is_err());
    }
}
