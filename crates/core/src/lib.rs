//! # unity-core
//!
//! The programming model, property language, composition operator and proof
//! kernel of Charpentier & Chandy, *Examples of Program Composition
//! Illustrating the Use of Universal Properties* (IPPS 1999).
//!
//! A program ([`program::Program`]) is a set of typed variables over finite
//! domains, an `initially` predicate, a finite command set `C` (with an
//! implicit `skip`) and a weakly-fair subset `D ⊆ C`. Programs compose by
//! union ([`compose`]), subject to variable locality and initial-state
//! existence. Properties ([`properties::Property`]) follow the paper's
//! inductive definitions; [`classify`] records which property types are
//! existential and which universal, and [`proof`] provides a checked
//! derivation-tree kernel implementing the paper's inference rules —
//! including the two *lifting* rules that turn component-scope judgments
//! into system-scope judgments.
//!
//! Semantic discharge of base facts (`transient`, `next`, validity, ...) is
//! delegated to the `unity-mc` model checker through the
//! [`proof::Discharger`] trait.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use unity_core::prelude::*;
//!
//! // Build the paper's toy component: a local counter c0 and the shared C.
//! let mut vocab = Vocabulary::new();
//! let c0 = vocab.declare("c0", Domain::int_range(0, 2).unwrap()).unwrap();
//! let big = vocab.declare("C", Domain::int_range(0, 2).unwrap()).unwrap();
//! let vocab = Arc::new(vocab);
//! let component = Program::builder("Component0", vocab.clone())
//!     .local(c0)
//!     .init(and2(eq(var(c0), int(0)), eq(var(big), int(0))))
//!     .fair_command(
//!         "a0",
//!         lt(var(c0), int(2)),
//!         vec![(c0, add(var(c0), int(1))), (big, add(var(big), int(1)))],
//!     )
//!     .build()
//!     .unwrap();
//! assert_eq!(component.initial_states().len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod command;
pub mod compose;
pub mod conserve;
pub mod domain;
pub mod dsl;
pub mod error;
pub mod expr;
pub mod guarantee;
pub mod hash;
pub mod ident;
pub mod program;
pub mod proof;
pub mod properties;
pub mod rg;
pub mod state;
pub mod value;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::classify::{classify, PropertyClass};
    pub use crate::command::Command;
    pub use crate::compose::{compose, InitSatCheck, System};
    pub use crate::conserve::{
        conserved_linear_combinations, invariant_from_combo, ConservedBasis, LinearCombo,
    };
    pub use crate::domain::Domain;
    pub use crate::error::CoreError;
    pub use crate::expr::build::*;
    pub use crate::expr::compile::{CompiledCommand, CompiledExpr, PackedLayout, Scratch};
    pub use crate::expr::eval::{eval, eval_bool, eval_int};
    pub use crate::expr::pretty::Render;
    pub use crate::expr::simplify::simplify;
    pub use crate::expr::subst::Subst;
    pub use crate::expr::{BinOp, Expr, NAryOp};
    pub use crate::guarantee::calculus::{
        check_gproof, eliminate, prop_entails, set_entails, CalcCtx, GProof, GuaranteeClause,
        PropSet,
    };
    pub use crate::guarantee::Guarantees;
    pub use crate::ident::{VarId, Vocabulary};
    pub use crate::program::Program;
    pub use crate::proof::check::{check, check_concludes, CheckCtx, CheckStats};
    pub use crate::proof::rules::{induction_step_goal, psp_goal, Proof};
    pub use crate::proof::{AssumeAll, Discharger, FactBase, Judgment, Scope};
    pub use crate::properties::Property;
    pub use crate::rg::{
        action_implies, invariant_via_rg, locality_rely, parallel_rule, preserves, stable_under,
        steps_satisfy, unchanged_vars, ActionPred, ActionVocab, RelyGuarantee, RgError,
        RgViolation,
    };
    pub use crate::state::{State, StateSpaceIter};
    pub use crate::value::{Type, Value};
}
