//! Existential / universal classification of property types (§2).
//!
//! Using the definitions of reference \[6\] (Chandy & Sanders), as the paper does:
//!
//! ```text
//! X is existential ≝ ⟨∀ F,G : F ⊥ G : X.F ∨ X.G  ⇒  X.(F ∥ G)⟩
//! X is universal   ≝ ⟨∀ F,G : F ⊥ G : X.F ∧ X.G  ⇒  X.(F ∥ G)⟩
//! ```
//!
//! `init` and `transient` (and `guarantees`) are existential; `next`,
//! `stable`, `invariant` (and `unchanged`) are universal; `leadsto` is in
//! general neither. These classifications justify the *lifting* proof rules
//! in [`crate::proof`]: an existential property of one component, or a
//! universal property of all components, is a system property.

use crate::properties::Property;

/// Composition behaviour of a property type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyClass {
    /// Held by the composition if *some* component holds it.
    Existential,
    /// Held by the composition if *all* components hold it.
    Universal,
    /// Neither existential nor universal (e.g. `leadsto`).
    Neither,
}

/// Classifies a property per the paper's table.
pub fn classify(p: &Property) -> PropertyClass {
    match p {
        Property::Init(_) | Property::Transient(_) => PropertyClass::Existential,
        Property::Next(..)
        | Property::Stable(_)
        | Property::Invariant(_)
        | Property::Unchanged(_) => PropertyClass::Universal,
        Property::LeadsTo(..) => PropertyClass::Neither,
    }
}

/// Why each classification is sound, in terms of the model:
///
/// * `init` is existential **and** universal in effect: composition
///   *conjoins* `initially` predicates, so every component's `init p`
///   survives. (The paper files it under existential.)
/// * `transient p` names one fair command `d ∈ D` falsifying `p`;
///   composition unions `D`, so the witness survives — existential.
/// * `next`/`stable` quantify over **all** commands; composition unions
///   command sets, so all components must satisfy them — universal.
/// * `invariant p = init p ∧ stable p` — universal (each conjunct lifts
///   when all components have it).
/// * `leadsto` proofs may interleave many components' transient witnesses —
///   neither.
pub fn classification_rationale(p: &Property) -> &'static str {
    match classify(p) {
        PropertyClass::Existential => {
            "the witness (initial predicate conjunct / fair command) survives composition"
        }
        PropertyClass::Universal => {
            "the property quantifies over all commands, and composition unions command sets"
        }
        PropertyClass::Neither => {
            "liveness derivations may interleave several components' fair commands"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::build::*;

    /// The paper's §2 table, one row per property kind. Each row also
    /// pins which lifting obligation the class licenses: `some` —
    /// one component holding the property suffices, `all` — every
    /// component must hold it, `none` — no lift at all.
    #[test]
    fn paper_table() {
        use PropertyClass::*;
        let table: &[(&str, Property, PropertyClass, &str)] = &[
            ("init", Property::Init(tt()), Existential, "some"),
            ("transient", Property::Transient(tt()), Existential, "some"),
            ("next", Property::Next(tt(), tt()), Universal, "all"),
            ("stable", Property::Stable(tt()), Universal, "all"),
            ("invariant", Property::Invariant(tt()), Universal, "all"),
            ("unchanged", Property::Unchanged(int(0)), Universal, "all"),
            ("leadsto", Property::LeadsTo(tt(), tt()), Neither, "none"),
        ];
        assert_eq!(table.len(), 7, "all seven property kinds covered");
        for (kind, prop, expected, lift) in table {
            assert_eq!(classify(prop), *expected, "{kind}");
            let licensed = match classify(prop) {
                Existential => "some",
                Universal => "all",
                Neither => "none",
            };
            assert_eq!(licensed, *lift, "{kind}: licensed lift");
            assert!(!classification_rationale(prop).is_empty(), "{kind}");
        }
    }

    /// `init` is filed under existential (one component's `initially`
    /// conjunct survives composition) but is universal *in effect*:
    /// composition conjoins `initially` predicates, so all components'
    /// `init p` a fortiori survives too. Checked semantically on a
    /// two-component compose: every initial state of `F ∥ G` satisfies
    /// both F's and G's initial predicates.
    #[test]
    fn init_lifts_both_ways() {
        use crate::compose::{InitSatCheck, System};
        use crate::domain::Domain;
        use crate::expr::eval::eval_bool;
        use crate::ident::Vocabulary;
        use crate::program::Program;
        use crate::state::StateSpaceIter;
        use std::sync::Arc;

        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::int_range(0, 2).unwrap()).unwrap();
        let b = v.declare("b", Domain::int_range(0, 2).unwrap()).unwrap();
        let vocab = Arc::new(v);
        let f_init = eq(var(a), int(0));
        let g_init = eq(var(b), int(1));
        let f = Program::builder("F", vocab.clone())
            .local(a)
            .init(f_init.clone())
            .fair_command("fa", tt(), vec![(a, var(a))])
            .build()
            .unwrap();
        let g = Program::builder("G", vocab.clone())
            .local(b)
            .init(g_init.clone())
            .fair_command("gb", tt(), vec![(b, var(b))])
            .build()
            .unwrap();
        let sys = System::compose(vec![f, g], InitSatCheck::Exhaustive).unwrap();
        let mut initial_states = 0;
        for s in StateSpaceIter::new(&vocab) {
            if !sys.composed.satisfies_init(&s) {
                continue;
            }
            initial_states += 1;
            // Existential: F alone had `init (a = 0)`, the system has it.
            assert!(eval_bool(&f_init, &s), "F's init survives composition");
            // Universal in effect: G's conjunct survives just the same.
            assert!(eval_bool(&g_init, &s), "G's init survives composition");
        }
        assert!(initial_states > 0, "composition admits initial states");
        assert_eq!(
            classify(&Property::Init(f_init)),
            PropertyClass::Existential
        );
    }
}
