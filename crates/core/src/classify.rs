//! Existential / universal classification of property types (§2).
//!
//! Using the definitions of reference \[6\] (Chandy & Sanders), as the paper does:
//!
//! ```text
//! X is existential ≝ ⟨∀ F,G : F ⊥ G : X.F ∨ X.G  ⇒  X.(F ∥ G)⟩
//! X is universal   ≝ ⟨∀ F,G : F ⊥ G : X.F ∧ X.G  ⇒  X.(F ∥ G)⟩
//! ```
//!
//! `init` and `transient` (and `guarantees`) are existential; `next`,
//! `stable`, `invariant` (and `unchanged`) are universal; `leadsto` is in
//! general neither. These classifications justify the *lifting* proof rules
//! in [`crate::proof`]: an existential property of one component, or a
//! universal property of all components, is a system property.

use crate::properties::Property;

/// Composition behaviour of a property type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyClass {
    /// Held by the composition if *some* component holds it.
    Existential,
    /// Held by the composition if *all* components hold it.
    Universal,
    /// Neither existential nor universal (e.g. `leadsto`).
    Neither,
}

/// Classifies a property per the paper's table.
pub fn classify(p: &Property) -> PropertyClass {
    match p {
        Property::Init(_) | Property::Transient(_) => PropertyClass::Existential,
        Property::Next(..)
        | Property::Stable(_)
        | Property::Invariant(_)
        | Property::Unchanged(_) => PropertyClass::Universal,
        Property::LeadsTo(..) => PropertyClass::Neither,
    }
}

/// Why each classification is sound, in terms of the model:
///
/// * `init` is existential **and** universal in effect: composition
///   *conjoins* `initially` predicates, so every component's `init p`
///   survives. (The paper files it under existential.)
/// * `transient p` names one fair command `d ∈ D` falsifying `p`;
///   composition unions `D`, so the witness survives — existential.
/// * `next`/`stable` quantify over **all** commands; composition unions
///   command sets, so all components must satisfy them — universal.
/// * `invariant p = init p ∧ stable p` — universal (each conjunct lifts
///   when all components have it).
/// * `leadsto` proofs may interleave many components' transient witnesses —
///   neither.
pub fn classification_rationale(p: &Property) -> &'static str {
    match classify(p) {
        PropertyClass::Existential => {
            "the witness (initial predicate conjunct / fair command) survives composition"
        }
        PropertyClass::Universal => {
            "the property quantifies over all commands, and composition unions command sets"
        }
        PropertyClass::Neither => {
            "liveness derivations may interleave several components' fair commands"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::build::*;

    #[test]
    fn paper_table() {
        assert_eq!(classify(&Property::Init(tt())), PropertyClass::Existential);
        assert_eq!(
            classify(&Property::Transient(tt())),
            PropertyClass::Existential
        );
        assert_eq!(
            classify(&Property::Next(tt(), tt())),
            PropertyClass::Universal
        );
        assert_eq!(classify(&Property::Stable(tt())), PropertyClass::Universal);
        assert_eq!(
            classify(&Property::Invariant(tt())),
            PropertyClass::Universal
        );
        assert_eq!(
            classify(&Property::Unchanged(int(0))),
            PropertyClass::Universal
        );
        assert_eq!(
            classify(&Property::LeadsTo(tt(), tt())),
            PropertyClass::Neither
        );
    }

    #[test]
    fn rationales_exist() {
        for p in [
            Property::Init(tt()),
            Property::Stable(tt()),
            Property::LeadsTo(tt(), tt()),
        ] {
            assert!(!classification_rationale(&p).is_empty());
        }
    }
}
