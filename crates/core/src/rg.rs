//! Rely–guarantee specifications over two-state **action predicates**.
//!
//! The paper's conclusion names the "traditional rely-guarantee approach"
//! as the theory it is being related to. This module supplies that
//! bridge, fully checked on finite instances:
//!
//! * an [`ActionPred`] is a predicate over a *pair* of states — the
//!   pre-state and the post-state of a step — written over a doubled
//!   vocabulary in which every program variable `v` has a primed copy
//!   `v'` ([`ActionVocab`]);
//! * a component *satisfies a guarantee* `G` when every step of every one
//!   of its commands (and the implicit `skip`) satisfies `G`
//!   ([`steps_satisfy`]);
//! * a predicate is *stable under a rely* `R` when no `R`-step can
//!   falsify it ([`stable_under`]);
//! * the **parallel composition rule** — if each component's guarantee
//!   implies every sibling's rely, the composed system guarantees the
//!   disjunction of the component guarantees, and any predicate stable
//!   under all guarantees and initially true is a system invariant
//!   ([`invariant_via_rg`]).
//!
//! The connection to the paper's property types is exact and is enforced
//! by tests: a program has `stable p` (a **universal** property) iff its
//! steps satisfy the action predicate `p ⇒ p'` ([`preserves`]); and the
//! locality discipline of composition is itself a rely — the environment
//! of a component is obliged to leave the component's `local` variables
//! unchanged ([`locality_rely`]), which is how the paper's "variables
//! declared local … should not be written by another component" reads in
//! rely-guarantee terms.

use std::sync::Arc;

use crate::error::CoreError;
use crate::expr::build::{and, eq, implies, var};
use crate::expr::eval::eval_bool;
use crate::expr::Expr;
use crate::ident::{VarId, Vocabulary};
use crate::program::Program;
use crate::state::{State, StateSpaceIter};

/// A vocabulary doubled with primed copies: variable `v` of the base
/// vocabulary has id `v` (pre-state) and [`ActionVocab::prime`]`(v)`
/// (post-state) in the doubled vocabulary.
#[derive(Debug, Clone)]
pub struct ActionVocab {
    base: Arc<Vocabulary>,
    doubled: Arc<Vocabulary>,
}

impl ActionVocab {
    /// Doubles `base`. Fails if `base` already contains a primed name
    /// (`x` and `x'` both declared), which would alias.
    pub fn new(base: Arc<Vocabulary>) -> Result<Self, CoreError> {
        let mut doubled = Vocabulary::new();
        for (_, d) in base.iter() {
            doubled.declare(&d.name, d.domain.clone())?;
        }
        for (_, d) in base.iter() {
            let primed = format!("{}'", d.name);
            let id = doubled.declare(&primed, d.domain.clone())?;
            if id.index() < base.len() {
                return Err(CoreError::DuplicateAssignment {
                    command: "action-vocabulary".into(),
                    var: primed,
                });
            }
        }
        Ok(ActionVocab {
            base,
            doubled: Arc::new(doubled),
        })
    }

    /// The unprimed (program) vocabulary.
    pub fn base(&self) -> &Arc<Vocabulary> {
        &self.base
    }

    /// The doubled vocabulary (pre + post variables).
    pub fn doubled(&self) -> &Arc<Vocabulary> {
        &self.doubled
    }

    /// The primed (post-state) id of `v`.
    pub fn prime(&self, v: VarId) -> VarId {
        debug_assert!(v.index() < self.base.len());
        VarId((v.index() + self.base.len()) as u32)
    }

    /// Packs a `(pre, post)` state pair into one doubled-vocabulary state.
    pub fn pair(&self, pre: &State, post: &State) -> State {
        let mut values = Vec::with_capacity(2 * self.base.len());
        values.extend(pre.values().iter().copied());
        values.extend(post.values().iter().copied());
        State::new(values)
    }

    /// Rewrites a base-vocabulary expression to speak about the
    /// post-state (every variable replaced by its primed copy).
    pub fn primed_expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Lit(v) => Expr::Lit(*v),
            Expr::Var(v) => Expr::Var(self.prime(*v)),
            Expr::Not(a) => Expr::Not(Box::new(self.primed_expr(a))),
            Expr::Neg(a) => Expr::Neg(Box::new(self.primed_expr(a))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(self.primed_expr(a)),
                Box::new(self.primed_expr(b)),
            ),
            Expr::Ite(c, t, f) => Expr::Ite(
                Box::new(self.primed_expr(c)),
                Box::new(self.primed_expr(t)),
                Box::new(self.primed_expr(f)),
            ),
            Expr::NAry(op, args) => {
                Expr::NAry(*op, args.iter().map(|a| self.primed_expr(a)).collect())
            }
        }
    }
}

/// A predicate over steps `(s, s')`, as a boolean expression over a
/// doubled vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionPred {
    expr: Expr,
}

impl ActionPred {
    /// Builds an action predicate, type checking it against the doubled
    /// vocabulary.
    pub fn new(expr: Expr, av: &ActionVocab) -> Result<Self, CoreError> {
        expr.check_pred(av.doubled())?;
        Ok(ActionPred { expr })
    }

    /// The underlying doubled-vocabulary expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Whether the step `(pre, post)` satisfies the predicate.
    pub fn holds(&self, av: &ActionVocab, pre: &State, post: &State) -> bool {
        eval_bool(&self.expr, &av.pair(pre, post))
    }

    /// Conjunction of two action predicates.
    pub fn and(&self, other: &ActionPred) -> ActionPred {
        ActionPred {
            expr: crate::expr::build::and2(self.expr.clone(), other.expr.clone()),
        }
    }

    /// Disjunction of two action predicates.
    pub fn or(&self, other: &ActionPred) -> ActionPred {
        ActionPred {
            expr: crate::expr::build::or2(self.expr.clone(), other.expr.clone()),
        }
    }
}

/// The action predicate `⋀ᵥ v' = v` for the given variables — "this step
/// does not touch them". With all variables it is the stutter action.
pub fn unchanged_vars(av: &ActionVocab, vars: impl IntoIterator<Item = VarId>) -> ActionPred {
    let conj: Vec<Expr> = vars
        .into_iter()
        .map(|v| eq(var(av.prime(v)), var(v)))
        .collect();
    ActionPred { expr: and(conj) }
}

/// The action predicate `p ⇒ p'`: a step may do anything except falsify
/// `p`. This is the rely-guarantee reading of the paper's (universal)
/// `stable p`.
pub fn preserves(av: &ActionVocab, p: &Expr) -> ActionPred {
    ActionPred {
        expr: implies(p.clone(), av.primed_expr(p)),
    }
}

/// A rely-guarantee pair: what the component assumes of every
/// *environment* step and what it promises of every *own* step.
#[derive(Debug, Clone)]
pub struct RelyGuarantee {
    /// Assumption on environment steps.
    pub rely: ActionPred,
    /// Commitment on the component's own steps.
    pub guar: ActionPred,
}

/// A concrete step of a program violating an obligation.
#[derive(Debug, Clone)]
pub struct RgViolation {
    /// Name of the offending command (or `"skip"`).
    pub command: String,
    /// Pre-state of the violating step.
    pub before: State,
    /// Post-state of the violating step.
    pub after: State,
}

impl RgViolation {
    /// Renders the violation with variable names.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        format!(
            "command `{}`: {} -> {}",
            self.command,
            self.before.display(vocab),
            self.after.display(vocab)
        )
    }
}

/// Checks that **every step** of `program` — each command from each
/// type-consistent state, plus the implicit `skip` — satisfies `act`.
/// This is "`program` guarantees `act`". Exhaustive over the base state
/// space.
pub fn steps_satisfy(
    program: &Program,
    av: &ActionVocab,
    act: &ActionPred,
) -> Result<(), RgViolation> {
    for s in StateSpaceIter::new(&program.vocab) {
        if !act.holds(av, &s, &s) {
            return Err(RgViolation {
                command: "skip".into(),
                before: s.clone(),
                after: s,
            });
        }
        for c in &program.commands {
            let t = c.step(&s, &program.vocab);
            if !act.holds(av, &s, &t) {
                return Err(RgViolation {
                    command: c.name.clone(),
                    before: s,
                    after: t,
                });
            }
        }
    }
    Ok(())
}

/// Checks that `p` is stable under `act`-steps: for every type-consistent
/// pair `(s, s')` with `act(s, s')`, `p(s) ⇒ p(s')`. Exhaustive over
/// state *pairs*; intended for small instances.
pub fn stable_under(av: &ActionVocab, p: &Expr, act: &ActionPred) -> Result<(), RgViolation> {
    for s in StateSpaceIter::new(av.base()) {
        if !eval_bool(p, &s) {
            continue;
        }
        for t in StateSpaceIter::new(av.base()) {
            if act.holds(av, &s, &t) && !eval_bool(p, &t) {
                return Err(RgViolation {
                    command: "environment".into(),
                    before: s,
                    after: t,
                });
            }
        }
    }
    Ok(())
}

/// Checks `⊨ a ⇒ b` over all type-consistent state pairs (action
/// implication).
pub fn action_implies(av: &ActionVocab, a: &ActionPred, b: &ActionPred) -> Result<(), RgViolation> {
    for s in StateSpaceIter::new(av.base()) {
        for t in StateSpaceIter::new(av.base()) {
            if a.holds(av, &s, &t) && !b.holds(av, &s, &t) {
                return Err(RgViolation {
                    command: "implication".into(),
                    before: s,
                    after: t,
                });
            }
        }
    }
    Ok(())
}

/// Why a rely-guarantee composition check failed.
#[derive(Debug)]
pub enum RgError {
    /// Component `component`'s own step broke its guarantee.
    GuaranteeBroken {
        /// Index of the component.
        component: usize,
        /// The violating step.
        violation: RgViolation,
    },
    /// Component `promiser`'s guarantee does not imply `relier`'s rely:
    /// the interference assumption is unjustified.
    InterferenceUnjustified {
        /// Component whose guarantee is too weak.
        promiser: usize,
        /// Component whose rely is violated.
        relier: usize,
        /// A step allowed by the guarantee but not the rely.
        violation: RgViolation,
    },
    /// The invariant candidate is not stable under some guarantee.
    NotStable {
        /// Component whose guarantee admits the falsifying step.
        component: usize,
        /// The falsifying step.
        violation: RgViolation,
    },
    /// The invariant candidate fails in an initial state.
    InitFails {
        /// An initial state violating the candidate.
        state: State,
    },
}

/// The **parallel composition rule**, checked semantically: every
/// component satisfies its guarantee, and every guarantee implies every
/// sibling's rely. On success the composed system's every step satisfies
/// `⋁ᵢ guarᵢ ∨ stutter` — which the function also verifies directly
/// against `composed` as a soundness cross-check.
pub fn parallel_rule(
    components: &[(&Program, &RelyGuarantee)],
    composed: &Program,
    av: &ActionVocab,
) -> Result<(), Box<RgError>> {
    for (i, (p, rg)) in components.iter().enumerate() {
        steps_satisfy(p, av, &rg.guar).map_err(|violation| {
            Box::new(RgError::GuaranteeBroken {
                component: i,
                violation,
            })
        })?;
    }
    for (j, (_, rg_j)) in components.iter().enumerate() {
        for (i, (_, rg_i)) in components.iter().enumerate() {
            if i == j {
                continue;
            }
            action_implies(av, &rg_j.guar, &rg_i.rely).map_err(|violation| {
                Box::new(RgError::InterferenceUnjustified {
                    promiser: j,
                    relier: i,
                    violation,
                })
            })?;
        }
    }
    // Soundness cross-check on the composition itself.
    let disj = components
        .iter()
        .map(|(_, rg)| rg.guar.clone())
        .reduce(|a, b| a.or(&b))
        .unwrap_or_else(|| unchanged_vars(av, av.base().ids()));
    let with_stutter = disj.or(&unchanged_vars(av, av.base().ids()));
    steps_satisfy(composed, av, &with_stutter).map_err(|violation| {
        Box::new(RgError::GuaranteeBroken {
            component: usize::MAX,
            violation,
        })
    })
}

/// The rely-guarantee **invariant rule**: if every component satisfies
/// its guarantee, `p` is stable under every guarantee, and every initial
/// state of the composition satisfies `p`, then `p` is an invariant of
/// the composed system — verified here both by the rule's premises and
/// (cross-check) directly against `composed`.
pub fn invariant_via_rg(
    components: &[(&Program, &RelyGuarantee)],
    composed: &Program,
    av: &ActionVocab,
    p: &Expr,
) -> Result<(), Box<RgError>> {
    for (i, (prog, rg)) in components.iter().enumerate() {
        steps_satisfy(prog, av, &rg.guar).map_err(|violation| {
            Box::new(RgError::GuaranteeBroken {
                component: i,
                violation,
            })
        })?;
        stable_under(av, p, &rg.guar).map_err(|violation| {
            Box::new(RgError::NotStable {
                component: i,
                violation,
            })
        })?;
    }
    for s in composed.initial_states() {
        if !eval_bool(p, &s) {
            return Err(Box::new(RgError::InitFails { state: s }));
        }
    }
    // Cross-check: p really is inductive on the composition.
    steps_satisfy(composed, av, &preserves(av, p)).map_err(|violation| {
        Box::new(RgError::NotStable {
            component: usize::MAX,
            violation,
        })
    })
}

/// The rely induced by the locality discipline: the environment of
/// `program` may not write `program`'s local variables. This is the
/// paper's composition precondition, stated as an assumption on
/// interference.
pub fn locality_rely(av: &ActionVocab, program: &Program) -> ActionPred {
    unchanged_vars(av, program.locals.iter().copied())
}

/// Checks the bridge theorem for one program: `stable p` (checked
/// operationally over all states) holds iff the program's steps satisfy
/// `preserves p`. Returns the two verdicts (they must agree; tests
/// assert it).
pub fn stable_agrees_with_rg(program: &Program, av: &ActionVocab, p: &Expr) -> (bool, bool) {
    let op = StateSpaceIter::new(&program.vocab).all(|s| {
        !eval_bool(p, &s)
            || program
                .commands
                .iter()
                .all(|c| eval_bool(p, &c.step(&s, &program.vocab)))
    });
    let rg = steps_satisfy(program, av, &preserves(av, p)).is_ok();
    (op, rg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{InitSatCheck, System};
    use crate::domain::Domain;
    use crate::expr::build::*;

    /// The §3 toy pair over a shared vocabulary.
    fn toy() -> (System, ActionVocab, VarId, VarId, VarId) {
        let mut v = Vocabulary::new();
        let c0 = v.declare("c0", Domain::int_range(0, 1).unwrap()).unwrap();
        let c1 = v.declare("c1", Domain::int_range(0, 1).unwrap()).unwrap();
        let big = v.declare("C", Domain::int_range(0, 2).unwrap()).unwrap();
        let vocab = Arc::new(v);
        let mk = |name: &str, c: VarId, other: VarId| {
            Program::builder(name, vocab.clone())
                .local(c)
                .init(and(vec![
                    eq(var(c), int(0)),
                    eq(var(other), int(0)),
                    eq(var(big), int(0)),
                ]))
                .fair_command(
                    format!("a_{name}"),
                    and2(lt(var(c), int(1)), lt(var(big), int(2))),
                    vec![(c, add(var(c), int(1))), (big, add(var(big), int(1)))],
                )
                .build()
                .unwrap()
        };
        let f = mk("F", c0, c1);
        let g = mk("G", c1, c0);
        let sys = System::compose(vec![f, g], InitSatCheck::Exhaustive).unwrap();
        let av = ActionVocab::new(vocab).unwrap();
        (sys, av, c0, c1, big)
    }

    /// Guarantee of component writing `c`: it bumps `C` and `c` in
    /// lockstep and never touches `other`.
    fn lockstep_guar(av: &ActionVocab, c: VarId, other: VarId, big: VarId) -> ActionPred {
        let delta_eq = eq(
            sub(var(av.prime(big)), var(big)),
            sub(var(av.prime(c)), var(c)),
        );
        ActionPred::new(and2(delta_eq, eq(var(av.prime(other)), var(other))), av).unwrap()
    }

    #[test]
    fn action_vocab_doubles_and_primes() {
        let (_, av, c0, ..) = toy();
        assert_eq!(av.doubled().len(), 2 * av.base().len());
        assert_eq!(av.doubled().name(av.prime(c0)), "c0'");
        let e = add(var(c0), int(1));
        let pe = av.primed_expr(&e);
        assert_eq!(pe, add(var(av.prime(c0)), int(1)));
    }

    #[test]
    fn primed_name_collision_rejected() {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::Bool).unwrap();
        v.declare("x'", Domain::Bool).unwrap();
        assert!(ActionVocab::new(Arc::new(v)).is_err());
    }

    #[test]
    fn components_satisfy_their_lockstep_guarantee() {
        let (sys, av, c0, c1, big) = toy();
        let g0 = lockstep_guar(&av, c0, c1, big);
        let g1 = lockstep_guar(&av, c1, c0, big);
        steps_satisfy(&sys.components[0], &av, &g0).unwrap();
        steps_satisfy(&sys.components[1], &av, &g1).unwrap();
        // And each *fails* the other's guarantee: the paper's observation
        // that the naive universal property is not shared.
        assert!(steps_satisfy(&sys.components[0], &av, &g1).is_err());
        assert!(steps_satisfy(&sys.components[1], &av, &g0).is_err());
    }

    #[test]
    fn parallel_rule_composes_the_toy() {
        let (sys, av, c0, c1, big) = toy();
        let g0 = lockstep_guar(&av, c0, c1, big);
        let g1 = lockstep_guar(&av, c1, c0, big);
        let rg0 = RelyGuarantee {
            rely: g1.clone(),
            guar: g0.clone(),
        };
        let rg1 = RelyGuarantee { rely: g0, guar: g1 };
        parallel_rule(
            &[(&sys.components[0], &rg0), (&sys.components[1], &rg1)],
            &sys.composed,
            &av,
        )
        .unwrap();
    }

    #[test]
    fn interference_mismatch_is_reported() {
        let (sys, av, c0, c1, big) = toy();
        let g0 = lockstep_guar(&av, c0, c1, big);
        let g1 = lockstep_guar(&av, c1, c0, big);
        // Component 1 relies on *nobody touching C at all* — too strong.
        let rg0 = RelyGuarantee {
            rely: g1.clone(),
            guar: g0.clone(),
        };
        let rg1 = RelyGuarantee {
            rely: unchanged_vars(&av, [big]),
            guar: g1,
        };
        let err = parallel_rule(
            &[(&sys.components[0], &rg0), (&sys.components[1], &rg1)],
            &sys.composed,
            &av,
        )
        .unwrap_err();
        match *err {
            RgError::InterferenceUnjustified {
                promiser, relier, ..
            } => {
                assert_eq!((promiser, relier), (0, 1));
            }
            other => panic!("expected interference error, got {other:?}"),
        }
    }

    #[test]
    fn invariant_rule_derives_the_conservation_law() {
        let (sys, av, c0, c1, big) = toy();
        let g0 = lockstep_guar(&av, c0, c1, big);
        let g1 = lockstep_guar(&av, c1, c0, big);
        let rg0 = RelyGuarantee {
            rely: g1.clone(),
            guar: g0.clone(),
        };
        let rg1 = RelyGuarantee { rely: g0, guar: g1 };
        let p = eq(var(big), add(var(c0), var(c1)));
        invariant_via_rg(
            &[(&sys.components[0], &rg0), (&sys.components[1], &rg1)],
            &sys.composed,
            &av,
            &p,
        )
        .unwrap();
        // A wrong candidate is rejected with a concrete step.
        let wrong = eq(var(big), var(c0));
        let err = invariant_via_rg(
            &[(&sys.components[0], &rg0), (&sys.components[1], &rg1)],
            &sys.composed,
            &av,
            &wrong,
        )
        .unwrap_err();
        assert!(matches!(*err, RgError::NotStable { .. }));
    }

    #[test]
    fn locality_is_a_rely_the_siblings_justify() {
        let (sys, av, ..) = toy();
        // Environment of F = G's steps; G must satisfy F's locality rely.
        let rely_f = locality_rely(&av, &sys.components[0]);
        steps_satisfy(&sys.components[1], &av, &rely_f).unwrap();
        let rely_g = locality_rely(&av, &sys.components[1]);
        steps_satisfy(&sys.components[0], &av, &rely_g).unwrap();
        // F itself does *not* satisfy its own locality rely (it writes c0).
        assert!(steps_satisfy(&sys.components[0], &av, &rely_f).is_err());
    }

    #[test]
    fn stable_bridge_holds_on_the_toy() {
        let (sys, av, c0, _, big) = toy();
        for p in [
            le(var(c0), int(1)),
            eq(var(big), int(0)),
            ge(var(big), var(c0)),
        ] {
            let (op, rg) = stable_agrees_with_rg(&sys.composed, &av, &p);
            assert_eq!(op, rg, "bridge disagrees on {p:?}");
        }
    }

    #[test]
    fn stable_under_finds_interference() {
        let (_, av, c0, c1, big) = toy();
        let g1 = lockstep_guar(&av, c1, c0, big);
        // `C = c0` is not stable under component 1's steps (it bumps C).
        let err = stable_under(&av, &eq(var(big), var(c0)), &g1).unwrap_err();
        assert_eq!(err.command, "environment");
        // But `c0 = 1` is: component 1 never touches c0.
        stable_under(&av, &eq(var(c0), int(1)), &g1).unwrap();
    }

    #[test]
    fn violation_display_names_variables() {
        let (sys, av, c0, c1, big) = toy();
        let g0 = lockstep_guar(&av, c0, c1, big);
        let err = steps_satisfy(&sys.components[1], &av, &g0).unwrap_err();
        let text = err.display(av.base());
        assert!(text.contains("a_G"), "offending command named: {text}");
        assert!(text.contains("c0="), "states rendered: {text}");
    }
}
