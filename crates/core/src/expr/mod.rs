//! Expressions: the term language for guards, assignments and predicates.
//!
//! Expressions are finite first-order terms over a vocabulary's variables.
//! Boolean-typed expressions double as *predicates on states*; the paper's
//! properties (`init p`, `p next q`, ...) are stated with them.
//!
//! Quantifiers over component indices (the paper's `⟨∀i :: ...⟩`,
//! `Σ_i c_i`) are expanded at construction time into the n-ary [`NAryOp`]
//! nodes, since systems are built for concrete finite component counts.

pub mod build;
pub mod compile;
pub mod eval;
pub mod linear;
pub mod pretty;
pub mod simplify;
pub mod subst;
pub mod vars;

use crate::error::CoreError;
use crate::ident::{VarId, Vocabulary};
use crate::value::{Type, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Saturating integer addition.
    Add,
    /// Saturating integer subtraction.
    Sub,
    /// Saturating integer multiplication.
    Mul,
    /// Total Euclidean division (`x / 0 = 0` by convention).
    Div,
    /// Total Euclidean remainder (`x % 0 = 0` by convention).
    Mod,
    /// Equality (both operands the same type).
    Eq,
    /// Disequality.
    Ne,
    /// Strictly less (integers).
    Lt,
    /// Less or equal (integers).
    Le,
    /// Strictly greater (integers).
    Gt,
    /// Greater or equal (integers).
    Ge,
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Implication.
    Implies,
    /// Bi-implication.
    Iff,
}

impl BinOp {
    /// Whether the operator takes integer operands.
    pub fn arith_or_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Sub
                | BinOp::Mul
                | BinOp::Div
                | BinOp::Mod
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
        )
    }

    /// Result type of the operator.
    pub fn result_type(self) -> Type {
        match self {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => Type::Int,
            _ => Type::Bool,
        }
    }
}

/// N-ary operators (flattened associative/commutative reductions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NAryOp {
    /// Conjunction of boolean operands; empty = `true`.
    And,
    /// Disjunction of boolean operands; empty = `false`.
    Or,
    /// Sum of integer operands; empty = `0`.
    Sum,
    /// Minimum of integer operands; must be non-empty.
    Min,
    /// Maximum of integer operands; must be non-empty.
    Max,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Literal constant.
    Lit(Value),
    /// Variable reference.
    Var(VarId),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Integer negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// If-then-else (`cond` boolean; branches share a type).
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    /// N-ary reduction.
    NAry(NAryOp, Vec<Expr>),
}

impl Expr {
    /// Infers the type of the expression against `vocab`, checking
    /// well-typedness throughout.
    pub fn infer_type(&self, vocab: &Vocabulary) -> Result<Type, CoreError> {
        match self {
            Expr::Lit(v) => Ok(v.ty()),
            Expr::Var(id) => {
                if id.index() >= vocab.len() {
                    return Err(CoreError::UnknownVar {
                        name: id.to_string(),
                    });
                }
                Ok(vocab.domain(*id).ty())
            }
            Expr::Not(e) => {
                expect(e, vocab, Type::Bool)?;
                Ok(Type::Bool)
            }
            Expr::Neg(e) => {
                expect(e, vocab, Type::Int)?;
                Ok(Type::Int)
            }
            Expr::Bin(op, a, b) => {
                if op.arith_or_cmp() {
                    expect(a, vocab, Type::Int)?;
                    expect(b, vocab, Type::Int)?;
                } else if matches!(op, BinOp::Eq | BinOp::Ne) {
                    let ta = a.infer_type(vocab)?;
                    let tb = b.infer_type(vocab)?;
                    if ta != tb {
                        return Err(CoreError::TypeError {
                            expr: format!("{}", pretty::Render::new(self, vocab)),
                            expected: ta,
                            found: tb,
                        });
                    }
                } else {
                    expect(a, vocab, Type::Bool)?;
                    expect(b, vocab, Type::Bool)?;
                }
                Ok(op.result_type())
            }
            Expr::Ite(c, t, e) => {
                expect(c, vocab, Type::Bool)?;
                let tt = t.infer_type(vocab)?;
                expect(e, vocab, tt)?;
                Ok(tt)
            }
            Expr::NAry(op, args) => {
                let elem = match op {
                    NAryOp::And | NAryOp::Or => Type::Bool,
                    NAryOp::Sum | NAryOp::Min | NAryOp::Max => Type::Int,
                };
                if matches!(op, NAryOp::Min | NAryOp::Max) && args.is_empty() {
                    return Err(CoreError::TypeError {
                        expr: "min/max of empty list".into(),
                        expected: Type::Int,
                        found: Type::Int,
                    });
                }
                for a in args {
                    expect(a, vocab, elem)?;
                }
                Ok(elem)
            }
        }
    }

    /// Checks that the expression is a boolean predicate over `vocab`.
    pub fn check_pred(&self, vocab: &Vocabulary) -> Result<(), CoreError> {
        expect_self(self, vocab, Type::Bool)
    }

    /// Structural size (number of AST nodes); useful in tests and stats.
    pub fn size(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Var(_) => 1,
            Expr::Not(e) | Expr::Neg(e) => 1 + e.size(),
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            Expr::Ite(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Expr::NAry(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// Whether the expression is the literal `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Expr::Lit(Value::Bool(true)))
    }

    /// Whether the expression is the literal `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, Expr::Lit(Value::Bool(false)))
    }
}

fn expect(e: &Expr, vocab: &Vocabulary, want: Type) -> Result<(), CoreError> {
    expect_self(e, vocab, want)
}

fn expect_self(e: &Expr, vocab: &Vocabulary, want: Type) -> Result<(), CoreError> {
    let found = e.infer_type(vocab)?;
    if found != want {
        return Err(CoreError::TypeError {
            expr: format!("{}", pretty::Render::new(e, vocab)),
            expected: want,
            found,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::domain::Domain;

    fn vocab() -> (Vocabulary, VarId, VarId) {
        let mut v = Vocabulary::new();
        let b = v.declare("b", Domain::Bool).unwrap();
        let n = v.declare("n", Domain::int_range(0, 5).unwrap()).unwrap();
        (v, b, n)
    }

    #[test]
    fn well_typed() {
        let (vocab, b, n) = vocab();
        let e = and2(var(b), eq(var(n), int(3)));
        assert_eq!(e.infer_type(&vocab).unwrap(), Type::Bool);
        let a = add(var(n), int(1));
        assert_eq!(a.infer_type(&vocab).unwrap(), Type::Int);
    }

    #[test]
    fn ill_typed_rejected() {
        let (vocab, b, n) = vocab();
        assert!(add(var(b), int(1)).infer_type(&vocab).is_err());
        assert!(eq(var(b), var(n)).infer_type(&vocab).is_err());
        assert!(not(var(n)).infer_type(&vocab).is_err());
        assert!(Expr::NAry(NAryOp::Min, vec![]).infer_type(&vocab).is_err());
    }

    #[test]
    fn unknown_var_rejected() {
        let vocab = Vocabulary::new();
        assert!(var(VarId(7)).infer_type(&vocab).is_err());
    }

    #[test]
    fn size_counts_nodes() {
        let (_, b, _) = vocab();
        assert_eq!(var(b).size(), 1);
        assert_eq!(and2(var(b), var(b)).size(), 3);
    }

    #[test]
    fn truth_literal_predicates() {
        assert!(tt().is_true());
        assert!(ff().is_false());
        assert!(!tt().is_false());
    }
}
