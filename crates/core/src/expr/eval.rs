//! Expression evaluation.
//!
//! Evaluation is *total* on well-typed expressions: arithmetic saturates at
//! the `i64` boundaries and division/remainder by zero yield `0` (a
//! documented convention, also used by SMT-LIB-style totalizations). This
//! keeps the hot model-checking loops free of `Result` plumbing; types are
//! checked once at program construction.

use super::{BinOp, Expr, NAryOp};
use crate::state::State;
use crate::value::Value;

/// Evaluates `e` in `state`.
///
/// # Panics
/// Panics on ill-typed expressions (callers type check at construction) or
/// variable ids outside the state.
pub fn eval(e: &Expr, state: &State) -> Value {
    match e {
        Expr::Lit(v) => *v,
        Expr::Var(id) => state.get(*id),
        Expr::Not(a) => Value::Bool(!eval(a, state).expect_bool()),
        Expr::Neg(a) => Value::Int(eval(a, state).expect_int().saturating_neg()),
        Expr::Bin(op, a, b) => eval_bin(*op, a, b, state),
        Expr::Ite(c, t, f) => {
            if eval(c, state).expect_bool() {
                eval(t, state)
            } else {
                eval(f, state)
            }
        }
        Expr::NAry(op, args) => eval_nary(*op, args, state),
    }
}

/// Evaluates a boolean expression in `state`.
#[inline]
pub fn eval_bool(e: &Expr, state: &State) -> bool {
    eval(e, state).expect_bool()
}

/// Evaluates an integer expression in `state`.
#[inline]
pub fn eval_int(e: &Expr, state: &State) -> i64 {
    eval(e, state).expect_int()
}

fn eval_bin(op: BinOp, a: &Expr, b: &Expr, state: &State) -> Value {
    // Short-circuit the lazy boolean connectives first.
    match op {
        BinOp::And => {
            return Value::Bool(eval_bool(a, state) && eval_bool(b, state));
        }
        BinOp::Or => {
            return Value::Bool(eval_bool(a, state) || eval_bool(b, state));
        }
        BinOp::Implies => {
            return Value::Bool(!eval_bool(a, state) || eval_bool(b, state));
        }
        BinOp::Iff => {
            return Value::Bool(eval_bool(a, state) == eval_bool(b, state));
        }
        _ => {}
    }
    let va = eval(a, state);
    let vb = eval(b, state);
    match op {
        BinOp::Eq => Value::Bool(va == vb),
        BinOp::Ne => Value::Bool(va != vb),
        BinOp::Add => Value::Int(va.expect_int().saturating_add(vb.expect_int())),
        BinOp::Sub => Value::Int(va.expect_int().saturating_sub(vb.expect_int())),
        BinOp::Mul => Value::Int(va.expect_int().saturating_mul(vb.expect_int())),
        BinOp::Div => Value::Int(euclid_div(va.expect_int(), vb.expect_int())),
        BinOp::Mod => Value::Int(euclid_rem(va.expect_int(), vb.expect_int())),
        BinOp::Lt => Value::Bool(va.expect_int() < vb.expect_int()),
        BinOp::Le => Value::Bool(va.expect_int() <= vb.expect_int()),
        BinOp::Gt => Value::Bool(va.expect_int() > vb.expect_int()),
        BinOp::Ge => Value::Bool(va.expect_int() >= vb.expect_int()),
        BinOp::And | BinOp::Or | BinOp::Implies | BinOp::Iff => unreachable!(),
    }
}

fn eval_nary(op: NAryOp, args: &[Expr], state: &State) -> Value {
    match op {
        NAryOp::And => Value::Bool(args.iter().all(|a| eval_bool(a, state))),
        NAryOp::Or => Value::Bool(args.iter().any(|a| eval_bool(a, state))),
        NAryOp::Sum => Value::Int(
            args.iter()
                .map(|a| eval_int(a, state))
                .fold(0i64, i64::saturating_add),
        ),
        NAryOp::Min => Value::Int(
            args.iter()
                .map(|a| eval_int(a, state))
                .min()
                .expect("min of empty list rejected by type checker"),
        ),
        NAryOp::Max => Value::Int(
            args.iter()
                .map(|a| eval_int(a, state))
                .max()
                .expect("max of empty list rejected by type checker"),
        ),
    }
}

/// Total Euclidean division: result rounds toward negative infinity such
/// that the remainder is non-negative; division by zero yields 0.
pub fn euclid_div(a: i64, b: i64) -> i64 {
    if b == 0 {
        0
    } else {
        a.div_euclid(b)
    }
}

/// Total Euclidean remainder; remainder by zero yields 0.
pub fn euclid_rem(a: i64, b: i64) -> i64 {
    if b == 0 {
        0
    } else {
        a.rem_euclid(b)
    }
}

#[cfg(test)]
mod tests {
    use super::super::build::*;
    use super::*;
    use crate::domain::Domain;
    use crate::ident::Vocabulary;

    fn setup() -> (Vocabulary, State) {
        let mut v = Vocabulary::new();
        let b = v.declare("b", Domain::Bool).unwrap();
        let n = v.declare("n", Domain::int_range(-10, 10).unwrap()).unwrap();
        let mut s = State::minimum(&v);
        s.set(b, Value::Bool(true));
        s.set(n, Value::Int(4));
        (v, s)
    }

    #[test]
    fn arithmetic() {
        let (v, s) = setup();
        let n = v.lookup("n").unwrap();
        assert_eq!(eval_int(&add(var(n), int(3)), &s), 7);
        assert_eq!(eval_int(&sub(var(n), int(10)), &s), -6);
        assert_eq!(eval_int(&mul(var(n), int(2)), &s), 8);
        assert_eq!(eval_int(&neg(var(n)), &s), -4);
    }

    #[test]
    fn total_division() {
        let (_, s) = setup();
        assert_eq!(eval_int(&div(int(7), int(2)), &s), 3);
        assert_eq!(eval_int(&div(int(-7), int(2)), &s), -4);
        assert_eq!(eval_int(&rem(int(-7), int(2)), &s), 1);
        assert_eq!(eval_int(&div(int(7), int(0)), &s), 0);
        assert_eq!(eval_int(&rem(int(7), int(0)), &s), 0);
    }

    #[test]
    fn saturation() {
        let (_, s) = setup();
        assert_eq!(eval_int(&add(int(i64::MAX), int(1)), &s), i64::MAX);
        assert_eq!(eval_int(&sub(int(i64::MIN), int(1)), &s), i64::MIN);
        assert_eq!(eval_int(&neg(int(i64::MIN)), &s), i64::MAX);
    }

    #[test]
    fn booleans_and_comparisons() {
        let (v, s) = setup();
        let b = v.lookup("b").unwrap();
        let n = v.lookup("n").unwrap();
        assert!(eval_bool(&and2(var(b), lt(var(n), int(5))), &s));
        assert!(!eval_bool(&not(var(b)), &s));
        assert!(eval_bool(&implies(ff(), ff()), &s));
        assert!(eval_bool(&iff(var(b), ge(var(n), int(0))), &s));
        assert!(eval_bool(&ne(var(n), int(5)), &s));
    }

    #[test]
    fn nary_reductions() {
        let (_, s) = setup();
        assert_eq!(eval_int(&sum(vec![int(1), int(2), int(3)]), &s), 6);
        assert_eq!(eval_int(&sum(vec![]), &s), 0);
        assert_eq!(eval_int(&min(vec![int(4), int(-1)]), &s), -1);
        assert_eq!(eval_int(&max(vec![int(4), int(-1)]), &s), 4);
        assert!(eval_bool(&and(vec![]), &s));
        assert!(!eval_bool(&or(vec![]), &s));
    }

    #[test]
    fn ite_branches() {
        let (v, s) = setup();
        let b = v.lookup("b").unwrap();
        assert_eq!(eval_int(&ite(var(b), int(1), int(2)), &s), 1);
        assert_eq!(eval_int(&ite(not(var(b)), int(1), int(2)), &s), 2);
    }
}
