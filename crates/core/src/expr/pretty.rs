//! Pretty-printing of expressions with named variables.
//!
//! The renderer produces the same concrete syntax the DSL parser accepts,
//! enabling round-trip property tests (`parse(print(e)) == e` up to
//! associativity of n-ary nodes).

use std::fmt;

use super::{BinOp, Expr, NAryOp};
use crate::ident::Vocabulary;

/// Binding strength used for parenthesization (higher binds tighter).
fn bin_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Iff => 1,
        Implies => 2,
        Or => 3,
        And => 4,
        Eq | Ne | Lt | Le | Gt | Ge => 5,
        Add | Sub => 6,
        Mul | Div | Mod => 7,
    }
}

fn bin_symbol(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Mod => "%",
        Eq => "==",
        Ne => "!=",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        And => "&&",
        Or => "||",
        Implies => "=>",
        Iff => "<=>",
    }
}

/// An [`Expr`] paired with its vocabulary for display.
pub struct Render<'a> {
    expr: &'a Expr,
    vocab: &'a Vocabulary,
}

impl<'a> Render<'a> {
    /// Pairs `expr` with `vocab` for rendering.
    pub fn new(expr: &'a Expr, vocab: &'a Vocabulary) -> Self {
        Render { expr, vocab }
    }

    fn fmt_expr(&self, e: &Expr, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match e {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Var(id) => {
                if id.index() < self.vocab.len() {
                    write!(f, "{}", self.vocab.name(*id))
                } else {
                    write!(f, "{id}")
                }
            }
            Expr::Not(a) => {
                write!(f, "!")?;
                self.fmt_expr(a, f, 9)
            }
            Expr::Neg(a) => {
                write!(f, "-")?;
                self.fmt_expr(a, f, 9)
            }
            Expr::Bin(op, a, b) => {
                let prec = bin_prec(*op);
                let need = prec <= parent_prec;
                if need {
                    write!(f, "(")?;
                }
                // Parenthesization must mirror the parser's associativity:
                // `+ - * / % && || <=>` parse left-associative (left child
                // may share the level), `=>` parses right-associative, and
                // comparisons do not chain at all.
                let (lp, rp) = match op {
                    BinOp::Implies => (prec, prec - 1),
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        (prec, prec)
                    }
                    _ => (prec - 1, prec),
                };
                self.fmt_expr(a, f, lp)?;
                write!(f, " {} ", bin_symbol(*op))?;
                self.fmt_expr(b, f, rp)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Ite(c, t, els) => {
                write!(f, "(if ")?;
                self.fmt_expr(c, f, 0)?;
                write!(f, " then ")?;
                self.fmt_expr(t, f, 0)?;
                write!(f, " else ")?;
                self.fmt_expr(els, f, 0)?;
                write!(f, ")")
            }
            Expr::NAry(op, args) => {
                let (name, empty) = match op {
                    NAryOp::And => ("all", "true"),
                    NAryOp::Or => ("any", "false"),
                    NAryOp::Sum => ("sum", "0"),
                    NAryOp::Min => ("min", "?"),
                    NAryOp::Max => ("max", "?"),
                };
                if args.is_empty() {
                    return write!(f, "{empty}");
                }
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    self.fmt_expr(a, f, 0)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Render<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_expr(self.expr, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::build::*;
    use super::*;
    use crate::domain::Domain;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::int_range(0, 9).unwrap()).unwrap();
        v.declare("y", Domain::int_range(0, 9).unwrap()).unwrap();
        v.declare("p", Domain::Bool).unwrap();
        v
    }

    #[test]
    fn renders_names_and_precedence() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let y = v.lookup("y").unwrap();
        let e = mul(add(var(x), var(y)), int(2));
        assert_eq!(Render::new(&e, &v).to_string(), "(x + y) * 2");
        let e2 = add(var(x), mul(var(y), int(2)));
        assert_eq!(Render::new(&e2, &v).to_string(), "x + y * 2");
    }

    #[test]
    fn renders_logic() {
        let v = vocab();
        let p = v.lookup("p").unwrap();
        let x = v.lookup("x").unwrap();
        let e = implies(var(p), eq(var(x), int(0)));
        assert_eq!(Render::new(&e, &v).to_string(), "p => x == 0");
    }

    #[test]
    fn renders_nary() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let e = sum(vec![var(x), int(1)]);
        assert_eq!(Render::new(&e, &v).to_string(), "sum(x, 1)");
        assert_eq!(Render::new(&and(vec![]), &v).to_string(), "true");
    }

    #[test]
    fn left_associative_subtraction_needs_no_parens() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let y = v.lookup("y").unwrap();
        // (x - y) - 1 renders without parens; x - (y - 1) keeps them.
        let l = sub(sub(var(x), var(y)), int(1));
        assert_eq!(Render::new(&l, &v).to_string(), "x - y - 1");
        let r = sub(var(x), sub(var(y), int(1)));
        assert_eq!(Render::new(&r, &v).to_string(), "x - (y - 1)");
    }
}
