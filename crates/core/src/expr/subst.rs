//! Simultaneous substitution of expressions for variables.
//!
//! This implements the syntactic engine behind `wp` for multiple-assignment
//! commands: `wp(x₁,…,xₖ := e₁,…,eₖ, q) = q[x₁,…,xₖ := e₁,…,eₖ]` with all
//! substitutions applied *simultaneously*.

use std::collections::BTreeMap;

use super::Expr;
use crate::ident::VarId;

/// A simultaneous substitution `{xᵢ ↦ eᵢ}`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<VarId, Expr>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(var, replacement)` pairs. Later bindings for the same
    /// variable overwrite earlier ones.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VarId, Expr)>) -> Self {
        Subst {
            map: pairs.into_iter().collect(),
        }
    }

    /// Adds or replaces a binding.
    pub fn bind(&mut self, v: VarId, e: Expr) -> &mut Self {
        self.map.insert(v, e);
        self
    }

    /// Replacement for `v`, if bound.
    pub fn get(&self, v: VarId) -> Option<&Expr> {
        self.map.get(&v)
    }

    /// Whether the substitution binds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over bindings in `VarId` order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Expr)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }

    /// Applies the substitution to `e`, returning the transformed tree.
    pub fn apply(&self, e: &Expr) -> Expr {
        if self.is_empty() {
            return e.clone();
        }
        self.apply_inner(e)
    }

    fn apply_inner(&self, e: &Expr) -> Expr {
        match e {
            Expr::Lit(v) => Expr::Lit(*v),
            Expr::Var(id) => match self.map.get(id) {
                Some(rep) => rep.clone(),
                None => Expr::Var(*id),
            },
            Expr::Not(a) => Expr::Not(Box::new(self.apply_inner(a))),
            Expr::Neg(a) => Expr::Neg(Box::new(self.apply_inner(a))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(self.apply_inner(a)),
                Box::new(self.apply_inner(b)),
            ),
            Expr::Ite(c, t, f) => Expr::Ite(
                Box::new(self.apply_inner(c)),
                Box::new(self.apply_inner(t)),
                Box::new(self.apply_inner(f)),
            ),
            Expr::NAry(op, args) => {
                Expr::NAry(*op, args.iter().map(|a| self.apply_inner(a)).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::build::*;
    use super::super::eval::eval;
    use super::*;
    use crate::domain::Domain;
    use crate::ident::Vocabulary;
    use crate::state::State;
    use crate::value::Value;

    #[test]
    fn simultaneity_swap() {
        // q = (x = 1 ∧ y = 2); q[x,y := y,x] must swap, not chain.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
        let q = and2(eq(var(x), int(1)), eq(var(y), int(2)));
        let s = Subst::from_pairs([(x, var(y)), (y, var(x))]);
        let q2 = s.apply(&q);
        // q2 = (y = 1 ∧ x = 2)
        let mut st = State::minimum(&v);
        st.set(x, Value::Int(2));
        st.set(y, Value::Int(1));
        assert_eq!(eval(&q2, &st), Value::Bool(true));
        let mut st2 = State::minimum(&v);
        st2.set(x, Value::Int(1));
        st2.set(y, Value::Int(2));
        assert_eq!(eval(&q2, &st2), Value::Bool(false));
    }

    #[test]
    fn unbound_vars_untouched() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let y = v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
        let e = add(var(x), var(y));
        let s = Subst::from_pairs([(x, int(7))]);
        assert_eq!(s.apply(&e), add(int(7), var(y)));
    }

    #[test]
    fn empty_subst_is_identity() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        let e = not(var(x));
        assert_eq!(Subst::new().apply(&e), e);
    }

    #[test]
    fn substitution_lemma() {
        // eval(q[x:=e], s) == eval(q, s[x := eval(e, s)])  — the semantic
        // substitution lemma that wp relies on.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 10).unwrap()).unwrap();
        let q = lt(var(x), int(5));
        let e = add(var(x), int(2));
        let s = Subst::from_pairs([(x, e.clone())]);
        for n in 0..=10 {
            let mut st = State::minimum(&v);
            st.set(x, Value::Int(n));
            let lhs = eval(&s.apply(&q), &st);
            let mut st2 = st.clone();
            st2.set(x, eval(&e, &st));
            let rhs = eval(&q, &st2);
            assert_eq!(lhs, rhs, "mismatch at x={n}");
        }
    }
}
