//! Compilation of expressions to register bytecode over packed states.
//!
//! The model checker's inner loops evaluate the same predicates against
//! millions of states. The tree-walking [`eval`](super::eval) pays an
//! enum-match and a pointer chase per AST node per state, against a
//! heap-allocated `Box<[Value]>` state. This module lowers an [`Expr`]
//! **once** into:
//!
//! * a flat, post-order [`CompiledExpr`] — a register bytecode with
//!   short-circuit jumps for `&&`/`||`/`⇒` and if-then-else, n-ary
//!   reductions unrolled, and constants folded (via
//!   [`simplify`]); and
//! * a [`PackedLayout`] that bit-packs a whole state into one `u64` word
//!   (each variable a contiguous field holding its canonical domain
//!   index), so the scan loops stream plain integers instead of chasing
//!   heap states.
//!
//! Booleans evaluate as `0`/`1` integers; the type checker has already
//! guaranteed operand types, so one `i64` register file serves both
//! types. All arithmetic conventions of the reference evaluator are
//! preserved exactly (saturating `+ − × neg`, total Euclidean `÷`/`%`
//! with `x/0 = x%0 = 0`); the differential property suite
//! (`tests/prop_compile.rs`) pins `compiled ≡ eval` on random
//! expressions.
//!
//! The fast path engages when the vocabulary fits in 64 bits
//! ([`PackedLayout::new`] returns `Some` — true for every shipped
//! system); callers keep the tree-walking evaluator as the reference
//! semantics and fall back to it otherwise.

use super::eval::{euclid_div, euclid_rem};
use super::simplify::simplify;
use super::{BinOp, Expr, NAryOp};
use crate::domain::Domain;
use crate::ident::{VarId, Vocabulary};
use crate::state::State;
use crate::value::Value;

/// Bit-packed state representation: one `u64` word per state.
///
/// Variable `v` occupies `bits[v]` bits at `shift[v]`, storing the
/// *canonical index* of its value within its domain (`false < true`;
/// integers ascending from the domain minimum). The all-zero word is the
/// all-minimum state.
#[derive(Debug, Clone)]
pub struct PackedLayout {
    shift: Vec<u32>,
    bits: Vec<u32>,
    mask: Vec<u64>,
    /// Decoded value of field 0 (domain minimum; 0 for booleans).
    base: Vec<i64>,
    /// Domain sizes, for in-domain checks and mixed-radix arithmetic.
    size: Vec<u64>,
    /// Mixed-radix weight of each variable in the canonical flat index
    /// (`weight[v] = Π_{j > v} size[j]`).
    weight: Vec<u64>,
    total_bits: u32,
}

impl PackedLayout {
    /// Builds the layout, or `None` when the vocabulary needs more than
    /// 64 bits (the callers then stay on the reference path).
    pub fn new(vocab: &Vocabulary) -> Option<PackedLayout> {
        let n = vocab.len();
        let mut shift = Vec::with_capacity(n);
        let mut bits = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        let mut base = Vec::with_capacity(n);
        let mut size = Vec::with_capacity(n);
        let mut at: u32 = 0;
        for (_, decl) in vocab.iter() {
            let b = decl.domain.bits();
            if at + b > 64 {
                return None;
            }
            shift.push(at);
            bits.push(b);
            mask.push(if b == 0 { 0 } else { (!0u64) >> (64 - b) });
            base.push(match &decl.domain {
                Domain::Bool => 0,
                Domain::IntRange(lo, _) => *lo,
            });
            size.push(decl.domain.size());
            at += b;
        }
        let mut weight = vec![1u64; n];
        for v in (0..n.saturating_sub(1)).rev() {
            // Saturating: only meaningful when the full product fits u64;
            // `flat_of_word` callers check `space_size()` first.
            weight[v] = weight[v + 1].saturating_mul(size[v + 1]);
        }
        Some(PackedLayout {
            shift,
            bits,
            mask,
            base,
            size,
            weight,
            total_bits: at,
        })
    }

    /// Number of variables in the layout.
    pub fn len(&self) -> usize {
        self.shift.len()
    }

    /// Whether the layout has no variables.
    pub fn is_empty(&self) -> bool {
        self.shift.is_empty()
    }

    /// Total bits used by a packed word.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Field width in bits of variable `v`.
    pub fn field_bits(&self, v: usize) -> u32 {
        self.bits[v]
    }

    /// Bit offset of variable `v`'s field within a packed word.
    ///
    /// Together with [`PackedLayout::field_bits`],
    /// [`PackedLayout::field_base`] and [`PackedLayout::domain_size`] this
    /// exposes the full packed layout, so alternative backends (the
    /// symbolic BDD engine) can share the exact bit encoding.
    pub fn field_shift(&self, v: usize) -> u32 {
        self.shift[v]
    }

    /// Decoded value of field 0 of variable `v` (the domain minimum;
    /// 0 for booleans).
    pub fn field_base(&self, v: usize) -> i64 {
        self.base[v]
    }

    /// Decoded value of variable `v` in `word` (booleans as 0/1).
    #[inline(always)]
    pub fn get(&self, word: u64, v: usize) -> i64 {
        self.base[v] + ((word >> self.shift[v]) & self.mask[v]) as i64
    }

    /// Canonical field (domain index) of variable `v` in `word`.
    #[inline(always)]
    pub fn field(&self, word: u64, v: usize) -> u64 {
        (word >> self.shift[v]) & self.mask[v]
    }

    /// Writes decoded value `val` into variable `v` of `word`, or `None`
    /// when `val` lies outside the variable's domain.
    #[inline(always)]
    pub fn set_checked(&self, word: u64, v: usize, val: i64) -> Option<u64> {
        let idx = val.wrapping_sub(self.base[v]) as u64;
        if idx >= self.size[v] {
            return None;
        }
        Some((word & !(self.mask[v] << self.shift[v])) | (idx << self.shift[v]))
    }

    /// Domain size of variable `v`.
    #[inline(always)]
    pub fn domain_size(&self, v: usize) -> u64 {
        self.size[v]
    }

    /// Packs a [`State`] into a word.
    ///
    /// # Panics
    /// Panics if a value lies outside its declared domain.
    pub fn pack(&self, state: &State) -> u64 {
        let mut word = 0u64;
        for (v, val) in state.values().iter().enumerate() {
            let decoded = match val {
                Value::Bool(b) => i64::from(*b),
                Value::Int(n) => *n,
            };
            word = self
                .set_checked(word, v, decoded)
                .expect("state value within its declared domain");
        }
        word
    }

    /// Unpacks a word into a [`State`] over `vocab`.
    pub fn unpack(&self, word: u64, vocab: &Vocabulary) -> State {
        State::new(
            vocab
                .iter()
                .enumerate()
                .map(|(v, (_, decl))| decl.domain.value_at(self.field(word, v)))
                .collect(),
        )
    }

    /// Unpacks a word into an existing state (no allocation; `out` must
    /// belong to `vocab`).
    pub fn unpack_into(&self, word: u64, vocab: &Vocabulary, out: &mut State) {
        for (v, (id, decl)) in vocab.iter().enumerate() {
            out.set(id, decl.domain.value_at(self.field(word, v)));
        }
    }

    /// The canonical flat index (mixed-radix, first variable slowest) of
    /// `word` — matches `StateSpaceIter` enumeration order.
    pub fn flat_of_word(&self, word: u64) -> u64 {
        let mut flat = 0u64;
        for v in 0..self.len() {
            flat = flat * self.size[v] + self.field(word, v);
        }
        flat
    }

    /// Mixed-radix weight of variable `v` within the canonical flat
    /// index.
    #[inline(always)]
    pub fn flat_weight(&self, v: usize) -> u64 {
        self.weight[v]
    }

    /// The packed word of canonical flat index `flat` (inverse of
    /// [`PackedLayout::flat_of_word`]).
    pub fn word_of_flat(&self, mut flat: u64) -> u64 {
        let mut word = 0u64;
        for v in (0..self.len()).rev() {
            let f = flat % self.size[v];
            flat /= self.size[v];
            word |= f << self.shift[v];
        }
        word
    }

    /// A cursor enumerating the sub-space spanned by `support` (all other
    /// variables pinned at their minimum), in canonical order starting at
    /// flat sub-index `start`. Returns `None` if the sub-space size
    /// overflows `u64`.
    pub fn support_cursor(&self, support: &[VarId], start: u64) -> Option<SupportCursor> {
        let mut size: u64 = 1;
        for v in support {
            size = size.checked_mul(self.size[v.index()])?;
        }
        let vars: Vec<u32> = support.iter().map(|v| v.0).collect();
        let mut digits = vec![0u64; vars.len()];
        let mut word = 0u64;
        let mut rem = start;
        for (k, &v) in vars.iter().enumerate().rev() {
            let s = self.size[v as usize];
            digits[k] = rem % s;
            rem /= s;
            word |= digits[k] << self.shift[v as usize];
        }
        Some(SupportCursor {
            vars,
            digits,
            word,
            size,
        })
    }
}

/// Incremental mixed-radix enumeration of a support sub-space as packed
/// words (amortized O(1) per step — no div/mod in the loop).
#[derive(Debug, Clone)]
pub struct SupportCursor {
    vars: Vec<u32>,
    digits: Vec<u64>,
    word: u64,
    size: u64,
}

impl SupportCursor {
    /// The current packed word.
    #[inline(always)]
    pub fn word(&self) -> u64 {
        self.word
    }

    /// Number of words in the enumerated sub-space.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Advances to the next word (wrapping at the end).
    #[inline]
    pub fn advance(&mut self, layout: &PackedLayout) {
        for k in (0..self.vars.len()).rev() {
            let v = self.vars[k] as usize;
            self.digits[k] += 1;
            // Wrapping: a field at shift 63 (layouts may use all 64
            // bits) overflows transiently on rollover; the carry
            // subtraction below restores the exact value mod 2^64.
            self.word = self.word.wrapping_add(1 << layout.shift[v]);
            if self.digits[k] < layout.size[v] {
                return;
            }
            self.word = self.word.wrapping_sub(self.digits[k] << layout.shift[v]);
            self.digits[k] = 0;
        }
    }
}

/// One bytecode instruction. `dst`/`src` index the scratch register
/// file; jump targets are instruction indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `r[dst] = val`
    Const {
        /// Destination register.
        dst: u8,
        /// Constant value (booleans as 0/1).
        val: i64,
    },
    /// `r[dst] = decode(word >> shift & mask)` / `state[idx]`
    Load {
        /// Destination register.
        dst: u8,
        /// Variable index (for state-slice evaluation).
        idx: u16,
        /// Field shift (packed evaluation).
        shift: u8,
        /// Field mask (packed evaluation).
        mask: u64,
        /// Decoded value of field 0.
        base: i64,
    },
    /// `r[dst] = !r[dst]` (boolean).
    Not {
        /// Operand and destination register.
        dst: u8,
    },
    /// `r[dst] = -r[dst]` (saturating).
    Neg {
        /// Operand and destination register.
        dst: u8,
    },
    /// `r[dst] = r[dst] op r[src]`
    Bin {
        /// Strict binary operator.
        op: BinCode,
        /// Left operand and destination register.
        dst: u8,
        /// Right operand register.
        src: u8,
    },
    /// Skip to `target` when `r[reg] == 0`.
    JumpIfZero {
        /// Tested register.
        reg: u8,
        /// Jump target (instruction index).
        target: u16,
    },
    /// Skip to `target` when `r[reg] != 0`.
    JumpIfNonZero {
        /// Tested register.
        reg: u8,
        /// Jump target (instruction index).
        target: u16,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target (instruction index).
        target: u16,
    },
}

/// Strict (non-short-circuiting) binary operators of the bytecode.
/// The lazy connectives compile to jumps instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinCode {
    /// Saturating addition.
    Add,
    /// Saturating subtraction.
    Sub,
    /// Saturating multiplication.
    Mul,
    /// Total Euclidean division (`x/0 = 0`).
    Div,
    /// Total Euclidean remainder (`x%0 = 0`).
    Mod,
    /// Equality (also implements `⇔` on booleans).
    Eq,
    /// Disequality.
    Ne,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Why an expression could not be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The expression nests deeper than the 256-register file.
    TooDeep,
    /// The bytecode exceeds `u16` jump range.
    TooLong,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::TooDeep => write!(f, "expression exceeds 256 registers"),
            CompileError::TooLong => write!(f, "bytecode exceeds 65535 instructions"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled expression: flat bytecode plus its register demand.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    ops: Vec<Op>,
    n_regs: usize,
    /// Whether `Load` ops carry real field offsets — false for
    /// [`CompiledExpr::compile_unpacked`] programs, whose packed
    /// evaluation would silently read every variable as 0.
    has_layout: bool,
}

/// Reusable register file for compiled evaluation. One per worker
/// thread; no allocation inside the scan loops.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    regs: Vec<i64>,
    /// Staging buffer for simultaneous-assignment values.
    vals: Vec<i64>,
}

impl Scratch {
    /// Creates an empty scratch (grown on demand).
    pub fn new() -> Self {
        Scratch::default()
    }

    #[inline]
    fn ensure(&mut self, n: usize) {
        if self.regs.len() < n {
            self.regs.resize(n, 0);
        }
    }
}

impl CompiledExpr {
    /// Compiles `e` (after constant folding) for evaluation over packed
    /// words of `layout` and over plain states.
    pub fn compile(e: &Expr, layout: &PackedLayout) -> Result<CompiledExpr, CompileError> {
        Self::compile_inner(e, Some(layout))
    }

    /// Compiles `e` for state-slice evaluation only (no packed layout —
    /// used when the vocabulary exceeds 64 bits).
    pub fn compile_unpacked(e: &Expr) -> Result<CompiledExpr, CompileError> {
        Self::compile_inner(e, None)
    }

    fn compile_inner(
        e: &Expr,
        layout: Option<&PackedLayout>,
    ) -> Result<CompiledExpr, CompileError> {
        let folded = simplify(e);
        let mut c = Compiler {
            ops: Vec::with_capacity(folded.size()),
            layout,
            n_regs: 0,
        };
        c.emit(&folded, 0)?;
        Ok(CompiledExpr {
            ops: c.ops,
            n_regs: c.n_regs,
            has_layout: layout.is_some(),
        })
    }

    /// The instruction stream (inspection/tests).
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Registers required.
    pub fn register_count(&self) -> usize {
        self.n_regs
    }

    /// Evaluates against a packed word. Requires compilation with a
    /// layout whose vocabulary produced the word.
    #[inline]
    pub fn eval_packed(&self, word: u64, scratch: &mut Scratch) -> i64 {
        debug_assert!(
            self.has_layout,
            "eval_packed on a compile_unpacked program (use eval_state)"
        );
        scratch.ensure(self.n_regs);
        let regs = &mut scratch.regs[..];
        let mut pc = 0usize;
        let ops = &self.ops[..];
        while pc < ops.len() {
            match ops[pc] {
                Op::Const { dst, val } => regs[dst as usize] = val,
                Op::Load {
                    dst,
                    shift,
                    mask,
                    base,
                    ..
                } => regs[dst as usize] = base + ((word >> shift) & mask) as i64,
                Op::Not { dst } => regs[dst as usize] = i64::from(regs[dst as usize] == 0),
                Op::Neg { dst } => regs[dst as usize] = regs[dst as usize].saturating_neg(),
                Op::Bin { op, dst, src } => {
                    let a = regs[dst as usize];
                    let b = regs[src as usize];
                    regs[dst as usize] = bin_code(op, a, b);
                }
                Op::JumpIfZero { reg, target } => {
                    if regs[reg as usize] == 0 {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::JumpIfNonZero { reg, target } => {
                    if regs[reg as usize] != 0 {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::Jump { target } => {
                    pc = target as usize;
                    continue;
                }
            }
            pc += 1;
        }
        regs[0]
    }

    /// Evaluates against a plain state (values in `VarId` order).
    #[inline]
    pub fn eval_state(&self, state: &State, scratch: &mut Scratch) -> i64 {
        scratch.ensure(self.n_regs);
        let regs = &mut scratch.regs[..];
        let values = state.values();
        let mut pc = 0usize;
        let ops = &self.ops[..];
        while pc < ops.len() {
            match ops[pc] {
                Op::Const { dst, val } => regs[dst as usize] = val,
                Op::Load { dst, idx, .. } => {
                    regs[dst as usize] = match values[idx as usize] {
                        Value::Bool(b) => i64::from(b),
                        Value::Int(n) => n,
                    }
                }
                Op::Not { dst } => regs[dst as usize] = i64::from(regs[dst as usize] == 0),
                Op::Neg { dst } => regs[dst as usize] = regs[dst as usize].saturating_neg(),
                Op::Bin { op, dst, src } => {
                    let a = regs[dst as usize];
                    let b = regs[src as usize];
                    regs[dst as usize] = bin_code(op, a, b);
                }
                Op::JumpIfZero { reg, target } => {
                    if regs[reg as usize] == 0 {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::JumpIfNonZero { reg, target } => {
                    if regs[reg as usize] != 0 {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::Jump { target } => {
                    pc = target as usize;
                    continue;
                }
            }
            pc += 1;
        }
        regs[0]
    }

    /// Boolean convenience over [`CompiledExpr::eval_packed`].
    #[inline(always)]
    pub fn eval_packed_bool(&self, word: u64, scratch: &mut Scratch) -> bool {
        self.eval_packed(word, scratch) != 0
    }
}

#[inline(always)]
fn bin_code(op: BinCode, a: i64, b: i64) -> i64 {
    match op {
        BinCode::Add => a.saturating_add(b),
        BinCode::Sub => a.saturating_sub(b),
        BinCode::Mul => a.saturating_mul(b),
        BinCode::Div => euclid_div(a, b),
        BinCode::Mod => euclid_rem(a, b),
        BinCode::Eq => i64::from(a == b),
        BinCode::Ne => i64::from(a != b),
        BinCode::Lt => i64::from(a < b),
        BinCode::Le => i64::from(a <= b),
        BinCode::Gt => i64::from(a > b),
        BinCode::Ge => i64::from(a >= b),
        BinCode::Min => a.min(b),
        BinCode::Max => a.max(b),
    }
}

struct Compiler<'a> {
    ops: Vec<Op>,
    layout: Option<&'a PackedLayout>,
    n_regs: usize,
}

impl Compiler<'_> {
    fn reg(&mut self, r: usize) -> Result<u8, CompileError> {
        if r >= 256 {
            return Err(CompileError::TooDeep);
        }
        self.n_regs = self.n_regs.max(r + 1);
        Ok(r as u8)
    }

    fn target(&self) -> Result<u16, CompileError> {
        u16::try_from(self.ops.len()).map_err(|_| CompileError::TooLong)
    }

    fn push(&mut self, op: Op) -> Result<(), CompileError> {
        if self.ops.len() >= u16::MAX as usize {
            return Err(CompileError::TooLong);
        }
        self.ops.push(op);
        Ok(())
    }

    fn patch(&mut self, at: usize) -> Result<(), CompileError> {
        let here = self.target()?;
        match &mut self.ops[at] {
            Op::JumpIfZero { target, .. }
            | Op::JumpIfNonZero { target, .. }
            | Op::Jump { target } => *target = here,
            other => unreachable!("patching non-jump {other:?}"),
        }
        Ok(())
    }

    /// Emits code leaving the value of `e` in register `dst`.
    fn emit(&mut self, e: &Expr, dst: usize) -> Result<(), CompileError> {
        let d = self.reg(dst)?;
        match e {
            Expr::Lit(v) => {
                let val = match v {
                    Value::Bool(b) => i64::from(*b),
                    Value::Int(n) => *n,
                };
                self.push(Op::Const { dst: d, val })
            }
            Expr::Var(id) => {
                let v = id.index();
                let (shift, mask, base) = match self.layout {
                    Some(l) => (l.shift[v] as u8, l.mask[v], l.base[v]),
                    None => (0, 0, 0),
                };
                self.push(Op::Load {
                    dst: d,
                    idx: v as u16,
                    shift,
                    mask,
                    base,
                })
            }
            Expr::Not(a) => {
                self.emit(a, dst)?;
                self.push(Op::Not { dst: d })
            }
            Expr::Neg(a) => {
                self.emit(a, dst)?;
                self.push(Op::Neg { dst: d })
            }
            Expr::Bin(op, a, b) => self.emit_bin(*op, a, b, dst),
            Expr::Ite(c, t, f) => {
                self.emit(c, dst)?;
                let jz = self.ops.len();
                self.push(Op::JumpIfZero { reg: d, target: 0 })?;
                self.emit(t, dst)?;
                let jend = self.ops.len();
                self.push(Op::Jump { target: 0 })?;
                self.patch(jz)?;
                self.emit(f, dst)?;
                self.patch(jend)
            }
            Expr::NAry(op, args) => self.emit_nary(*op, args, dst),
        }
    }

    fn emit_bin(&mut self, op: BinOp, a: &Expr, b: &Expr, dst: usize) -> Result<(), CompileError> {
        let d = self.reg(dst)?;
        match op {
            BinOp::And => {
                self.emit(a, dst)?;
                let jz = self.ops.len();
                self.push(Op::JumpIfZero { reg: d, target: 0 })?;
                self.emit(b, dst)?;
                self.patch(jz)
            }
            BinOp::Or => {
                self.emit(a, dst)?;
                let jnz = self.ops.len();
                self.push(Op::JumpIfNonZero { reg: d, target: 0 })?;
                self.emit(b, dst)?;
                self.patch(jnz)
            }
            BinOp::Implies => {
                self.emit(a, dst)?;
                let jz = self.ops.len();
                self.push(Op::JumpIfZero { reg: d, target: 0 })?;
                self.emit(b, dst)?;
                let jend = self.ops.len();
                self.push(Op::Jump { target: 0 })?;
                self.patch(jz)?;
                self.push(Op::Const { dst: d, val: 1 })?;
                self.patch(jend)
            }
            _ => {
                let code = match op {
                    BinOp::Add => BinCode::Add,
                    BinOp::Sub => BinCode::Sub,
                    BinOp::Mul => BinCode::Mul,
                    BinOp::Div => BinCode::Div,
                    BinOp::Mod => BinCode::Mod,
                    BinOp::Eq | BinOp::Iff => BinCode::Eq,
                    BinOp::Ne => BinCode::Ne,
                    BinOp::Lt => BinCode::Lt,
                    BinOp::Le => BinCode::Le,
                    BinOp::Gt => BinCode::Gt,
                    BinOp::Ge => BinCode::Ge,
                    BinOp::And | BinOp::Or | BinOp::Implies => unreachable!(),
                };
                self.emit(a, dst)?;
                self.emit(b, dst + 1)?;
                let s = self.reg(dst + 1)?;
                self.push(Op::Bin {
                    op: code,
                    dst: d,
                    src: s,
                })
            }
        }
    }

    fn emit_nary(&mut self, op: NAryOp, args: &[Expr], dst: usize) -> Result<(), CompileError> {
        let d = self.reg(dst)?;
        match op {
            NAryOp::And | NAryOp::Or => {
                if args.is_empty() {
                    return self.push(Op::Const {
                        dst: d,
                        val: i64::from(matches!(op, NAryOp::And)),
                    });
                }
                let mut jumps = Vec::with_capacity(args.len() - 1);
                for (k, a) in args.iter().enumerate() {
                    self.emit(a, dst)?;
                    if k + 1 < args.len() {
                        jumps.push(self.ops.len());
                        self.push(match op {
                            NAryOp::And => Op::JumpIfZero { reg: d, target: 0 },
                            _ => Op::JumpIfNonZero { reg: d, target: 0 },
                        })?;
                    }
                }
                for j in jumps {
                    self.patch(j)?;
                }
                Ok(())
            }
            NAryOp::Sum | NAryOp::Min | NAryOp::Max => {
                let code = match op {
                    NAryOp::Sum => BinCode::Add,
                    NAryOp::Min => BinCode::Min,
                    _ => BinCode::Max,
                };
                match args.split_first() {
                    None => self.push(Op::Const { dst: d, val: 0 }),
                    Some((first, rest)) => {
                        self.emit(first, dst)?;
                        for a in rest {
                            self.emit(a, dst + 1)?;
                            let s = self.reg(dst + 1)?;
                            self.push(Op::Bin {
                                op: code,
                                dst: d,
                                src: s,
                            })?;
                        }
                        Ok(())
                    }
                }
            }
        }
    }
}

/// A command lowered for packed stepping: compiled guard, compiled
/// right-hand sides, and per-target field/domain metadata.
#[derive(Debug, Clone)]
pub struct CompiledCommand {
    guard: CompiledExpr,
    updates: Vec<CompiledUpdate>,
}

#[derive(Debug, Clone)]
struct CompiledUpdate {
    target: u32,
    rhs: CompiledExpr,
}

impl CompiledCommand {
    /// Compiles `command` against `layout`.
    pub fn compile(
        command: &crate::command::Command,
        layout: &PackedLayout,
    ) -> Result<CompiledCommand, CompileError> {
        Ok(CompiledCommand {
            guard: CompiledExpr::compile(&command.guard, layout)?,
            updates: command
                .updates
                .iter()
                .map(|(x, e)| {
                    Ok(CompiledUpdate {
                        target: x.0,
                        rhs: CompiledExpr::compile(e, layout)?,
                    })
                })
                .collect::<Result<_, CompileError>>()?,
        })
    }

    /// Executes one guarded-else-skip step on a packed word, mirroring
    /// [`Command::step`](crate::command::Command::step): guard false or
    /// any update leaving its domain means the word is returned
    /// unchanged.
    #[inline]
    pub fn step_packed(&self, word: u64, layout: &PackedLayout, scratch: &mut Scratch) -> u64 {
        if self.guard.eval_packed(word, scratch) == 0 {
            return word;
        }
        // Evaluate all right-hand sides in the pre-state before writing.
        scratch.vals.clear();
        for u in &self.updates {
            let v = u.rhs.eval_packed(word, scratch);
            scratch.vals.push(v);
        }
        let mut out = word;
        for (k, u) in self.updates.iter().enumerate() {
            match layout.set_checked(out, u.target as usize, scratch.vals[k]) {
                Some(w) => out = w,
                None => return word, // domain guard: act as skip
            }
        }
        out
    }

    /// Like [`CompiledCommand::step_packed`], but also maintains the
    /// canonical flat index incrementally: the successor's flat index is
    /// the predecessor's plus the weighted field deltas of the written
    /// variables — O(updates) instead of the O(vars) full re-encoding of
    /// [`PackedLayout::flat_of_word`]. `flat` must be `word`'s index.
    #[inline]
    pub fn step_packed_flat(
        &self,
        word: u64,
        flat: u64,
        layout: &PackedLayout,
        scratch: &mut Scratch,
    ) -> (u64, u64) {
        let out = self.step_packed(word, layout, scratch);
        if out == word {
            return (word, flat);
        }
        let mut delta: i64 = 0;
        for u in &self.updates {
            let v = u.target as usize;
            let before = layout.field(word, v) as i64;
            let after = layout.field(out, v) as i64;
            delta += (after - before) * layout.flat_weight(v) as i64;
        }
        (out, (flat as i64 + delta) as u64)
    }

    /// The compiled guard (for enabledness scans).
    pub fn guard(&self) -> &CompiledExpr {
        &self.guard
    }

    /// Number of updates.
    pub fn update_count(&self) -> usize {
        self.updates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::build::*;
    use super::*;
    use crate::command::Command;
    use crate::state::StateSpaceIter;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("b", Domain::Bool).unwrap();
        v.declare("n", Domain::int_range(-3, 4).unwrap()).unwrap();
        v.declare("m", Domain::int_range(0, 6).unwrap()).unwrap();
        v
    }

    fn assert_agrees(e: &Expr, v: &Vocabulary) {
        let layout = PackedLayout::new(v).unwrap();
        let prog = CompiledExpr::compile(e, &layout).unwrap();
        let mut scratch = Scratch::new();
        for s in StateSpaceIter::new(v) {
            let reference = match super::super::eval::eval(e, &s) {
                Value::Bool(b) => i64::from(b),
                Value::Int(n) => n,
            };
            let word = layout.pack(&s);
            assert_eq!(
                prog.eval_packed(word, &mut scratch),
                reference,
                "packed {e:?}"
            );
            assert_eq!(prog.eval_state(&s, &mut scratch), reference, "state {e:?}");
        }
    }

    #[test]
    fn layout_roundtrips() {
        let v = vocab();
        let layout = PackedLayout::new(&v).unwrap();
        assert_eq!(layout.total_bits(), 1 + 3 + 3);
        for (flat, s) in StateSpaceIter::new(&v).enumerate() {
            let word = layout.pack(&s);
            assert_eq!(layout.unpack(word, &v), s);
            assert_eq!(layout.flat_of_word(word), flat as u64);
            assert_eq!(layout.word_of_flat(flat as u64), word);
        }
    }

    #[test]
    fn layout_rejects_oversized_vocabularies() {
        let mut v = Vocabulary::new();
        for i in 0..9 {
            v.declare(&format!("x{i}"), Domain::int_range(0, 200).unwrap())
                .unwrap();
        }
        assert!(PackedLayout::new(&v).is_none(), "9 × 8 bits > 64");
    }

    #[test]
    fn arithmetic_and_comparisons_agree() {
        let v = vocab();
        let n = v.lookup("n").unwrap();
        let m = v.lookup("m").unwrap();
        for e in [
            add(var(n), mul(var(m), int(3))),
            sub(neg(var(n)), var(m)),
            div(var(m), var(n)),
            rem(var(m), var(n)),
            ite(lt(var(n), int(0)), neg(var(n)), var(n)),
        ] {
            assert_agrees(&e, &v);
        }
        for e in [
            lt(var(n), var(m)),
            le(var(n), int(0)),
            gt(var(m), int(3)),
            ge(add(var(n), var(m)), int(2)),
            eq(var(n), var(m)),
            ne(var(n), int(-3)),
        ] {
            assert_agrees(&e, &v);
        }
    }

    #[test]
    fn boolean_connectives_agree_and_short_circuit() {
        let v = vocab();
        let b = v.lookup("b").unwrap();
        let n = v.lookup("n").unwrap();
        for e in [
            and2(var(b), lt(var(n), int(2))),
            or2(not(var(b)), ge(var(n), int(0))),
            implies(var(b), lt(var(n), int(4))),
            iff(var(b), lt(var(n), int(0))),
            not(and2(var(b), var(b))),
        ] {
            assert_agrees(&e, &v);
        }
    }

    #[test]
    fn nary_reductions_agree() {
        let v = vocab();
        let n = v.lookup("n").unwrap();
        let m = v.lookup("m").unwrap();
        let b = v.lookup("b").unwrap();
        for e in [
            sum(vec![var(n), var(m), int(1)]),
            min(vec![var(n), var(m)]),
            max(vec![var(n), var(m), int(0)]),
        ] {
            assert_agrees(&e, &v);
        }
        for e in [
            and(vec![var(b), lt(var(n), int(3)), ge(var(m), int(0))]),
            or(vec![not(var(b)), eq(var(n), int(4))]),
            and(vec![]),
            or(vec![]),
        ] {
            assert_agrees(&e, &v);
        }
    }

    #[test]
    fn saturation_and_division_conventions_match() {
        let v = vocab();
        let n = v.lookup("n").unwrap();
        for e in [
            add(int(i64::MAX), int(1)),
            sub(int(i64::MIN), int(1)),
            neg(int(i64::MIN)),
            div(var(n), int(0)),
            rem(var(n), int(0)),
            div(int(-7), int(2)),
            rem(int(-7), int(2)),
        ] {
            assert_agrees(&e, &v);
        }
    }

    #[test]
    fn compiled_command_steps_match_reference() {
        let v = vocab();
        let n = v.lookup("n").unwrap();
        let m = v.lookup("m").unwrap();
        let b = v.lookup("b").unwrap();
        let layout = PackedLayout::new(&v).unwrap();
        let commands = [
            Command::new(
                "swapish",
                var(b),
                vec![(n, sub(var(m), int(3))), (m, add(var(m), int(1)))],
                &v,
            )
            .unwrap(),
            // Relies on the implicit domain guard at the m-boundary.
            Command::new("bump", tt(), vec![(m, add(var(m), int(2)))], &v).unwrap(),
            Command::new("blocked", ff(), vec![(m, int(0))], &v).unwrap(),
        ];
        let mut scratch = Scratch::new();
        for c in &commands {
            let cc = CompiledCommand::compile(c, &layout).unwrap();
            for s in StateSpaceIter::new(&v) {
                let expect = c.step(&s, &v);
                let got = cc.step_packed(layout.pack(&s), &layout, &mut scratch);
                assert_eq!(
                    layout.unpack(got, &v),
                    expect,
                    "command {} from {}",
                    c.name,
                    s.display(&v)
                );
            }
        }
    }

    #[test]
    fn support_cursor_enumerates_subspace_in_order() {
        let v = vocab();
        let layout = PackedLayout::new(&v).unwrap();
        let n = v.lookup("n").unwrap();
        let b = v.lookup("b").unwrap();
        let support = vec![b, n];
        let mut cursor = layout.support_cursor(&support, 0).unwrap();
        assert_eq!(cursor.size(), 16);
        let mut seen = Vec::new();
        for _ in 0..cursor.size() {
            seen.push(cursor.word());
            cursor.advance(&layout);
        }
        // All distinct, m pinned at minimum (field 0).
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        for w in &seen {
            assert_eq!(layout.field(*w, v.lookup("m").unwrap().index()), 0);
        }
        // Wraps to the start.
        assert_eq!(cursor.word(), seen[0]);
        // Starting mid-way agrees with sequential enumeration.
        let mid = layout.support_cursor(&support, 7).unwrap();
        assert_eq!(mid.word(), seen[7]);
    }

    #[test]
    fn cursor_survives_full_64_bit_layouts() {
        // Exactly 64 packed bits: the top field sits at shift 63, so
        // rollover past it must wrap, not overflow (regression).
        let mut v = Vocabulary::new();
        for i in 0..64 {
            v.declare(&format!("b{i}"), Domain::Bool).unwrap();
        }
        let layout = PackedLayout::new(&v).unwrap();
        assert_eq!(layout.total_bits(), 64);
        // Enumerate a support containing the top variable and wrap.
        let support = vec![VarId(0), VarId(63)];
        let mut cursor = layout.support_cursor(&support, 0).unwrap();
        let start = cursor.word();
        for _ in 0..cursor.size() {
            cursor.advance(&layout);
        }
        assert_eq!(cursor.word(), start, "full cycle returns to the start");
    }

    #[test]
    fn constant_folding_shrinks_programs() {
        let v = vocab();
        let layout = PackedLayout::new(&v).unwrap();
        let e = add(int(2), int(3));
        let prog = CompiledExpr::compile(&e, &layout).unwrap();
        assert_eq!(prog.ops(), &[Op::Const { dst: 0, val: 5 }]);
        // `x && false` folds to `false`.
        let b = v.lookup("b").unwrap();
        let e = and2(var(b), ff());
        let prog = CompiledExpr::compile(&e, &layout).unwrap();
        assert_eq!(prog.ops(), &[Op::Const { dst: 0, val: 0 }]);
    }

    #[test]
    fn deep_expressions_are_rejected_not_miscompiled() {
        let v = vocab();
        let n = v.lookup("n").unwrap();
        let layout = PackedLayout::new(&v).unwrap();
        // Right-leaning additions: each level needs one more register.
        let mut e = var(n);
        for _ in 0..300 {
            e = add(var(n), e);
        }
        assert_eq!(
            CompiledExpr::compile(&e, &layout).unwrap_err(),
            CompileError::TooDeep
        );
    }
}
