//! Expression simplification.
//!
//! A conservative, evaluation-preserving rewriter: constant folding,
//! neutral/absorbing element elimination, double-negation removal and
//! flattening of nested n-ary nodes. Used to keep `wp`-generated formulas
//! small before validity scans; *must not* change the value of the
//! expression in any state (enforced by property tests).

use super::eval::{euclid_div, euclid_rem};
use super::{BinOp, Expr, NAryOp};
use crate::value::Value;

/// Simplifies `e`, preserving its value in every state.
pub fn simplify(e: &Expr) -> Expr {
    match e {
        Expr::Lit(v) => Expr::Lit(*v),
        Expr::Var(id) => Expr::Var(*id),
        Expr::Not(a) => {
            let a = simplify(a);
            match a {
                Expr::Lit(Value::Bool(b)) => Expr::Lit(Value::Bool(!b)),
                Expr::Not(inner) => *inner,
                other => Expr::Not(Box::new(other)),
            }
        }
        Expr::Neg(a) => {
            let a = simplify(a);
            match a {
                Expr::Lit(Value::Int(n)) => Expr::Lit(Value::Int(n.saturating_neg())),
                other => Expr::Neg(Box::new(other)),
            }
        }
        Expr::Bin(op, a, b) => simplify_bin(*op, simplify(a), simplify(b)),
        Expr::Ite(c, t, f) => {
            let c = simplify(c);
            match c {
                Expr::Lit(Value::Bool(true)) => simplify(t),
                Expr::Lit(Value::Bool(false)) => simplify(f),
                other => {
                    let t = simplify(t);
                    let f = simplify(f);
                    if t == f {
                        t
                    } else {
                        Expr::Ite(Box::new(other), Box::new(t), Box::new(f))
                    }
                }
            }
        }
        Expr::NAry(op, args) => simplify_nary(*op, args),
    }
}

fn simplify_bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    use BinOp::*;
    // Constant folding.
    if let (Expr::Lit(va), Expr::Lit(vb)) = (&a, &b) {
        if let Some(v) = fold_bin(op, *va, *vb) {
            return Expr::Lit(v);
        }
    }
    match (op, &a, &b) {
        // Boolean identities.
        (And, x, _) if x.is_false() => return super::build::ff(),
        (And, _, x) if x.is_false() => return super::build::ff(),
        (And, x, _) if x.is_true() => return b,
        (And, _, x) if x.is_true() => return a,
        (Or, x, _) if x.is_true() => return super::build::tt(),
        (Or, _, x) if x.is_true() => return super::build::tt(),
        (Or, x, _) if x.is_false() => return b,
        (Or, _, x) if x.is_false() => return a,
        (Implies, x, _) if x.is_false() => return super::build::tt(),
        (Implies, _, x) if x.is_true() => return super::build::tt(),
        (Implies, x, _) if x.is_true() => return b,
        (Implies, _, x) if x.is_false() => return simplify(&Expr::Not(Box::new(a))),
        (Iff, x, _) if x.is_true() => return b,
        (Iff, _, x) if x.is_true() => return a,
        // Arithmetic identities.
        (Add, Expr::Lit(Value::Int(0)), _) => return b,
        (Add, _, Expr::Lit(Value::Int(0))) => return a,
        (Sub, _, Expr::Lit(Value::Int(0))) => return a,
        (Mul, Expr::Lit(Value::Int(1)), _) => return b,
        (Mul, _, Expr::Lit(Value::Int(1))) => return a,
        _ => {}
    }
    // Syntactic reflexivity for relations on identical subtrees. Sound
    // because evaluation is deterministic and side-effect free.
    if a == b {
        match op {
            Eq | Le | Ge | Iff | Implies => return super::build::tt(),
            Ne | Lt | Gt => return super::build::ff(),
            Sub => return super::build::int(0),
            _ => {}
        }
    }
    Expr::Bin(op, Box::new(a), Box::new(b))
}

fn fold_bin(op: BinOp, a: Value, b: Value) -> Option<Value> {
    use BinOp::*;
    Some(match (op, a, b) {
        (Add, Value::Int(x), Value::Int(y)) => Value::Int(x.saturating_add(y)),
        (Sub, Value::Int(x), Value::Int(y)) => Value::Int(x.saturating_sub(y)),
        (Mul, Value::Int(x), Value::Int(y)) => Value::Int(x.saturating_mul(y)),
        (Div, Value::Int(x), Value::Int(y)) => Value::Int(euclid_div(x, y)),
        (Mod, Value::Int(x), Value::Int(y)) => Value::Int(euclid_rem(x, y)),
        (Eq, x, y) => Value::Bool(x == y),
        (Ne, x, y) => Value::Bool(x != y),
        (Lt, Value::Int(x), Value::Int(y)) => Value::Bool(x < y),
        (Le, Value::Int(x), Value::Int(y)) => Value::Bool(x <= y),
        (Gt, Value::Int(x), Value::Int(y)) => Value::Bool(x > y),
        (Ge, Value::Int(x), Value::Int(y)) => Value::Bool(x >= y),
        (And, Value::Bool(x), Value::Bool(y)) => Value::Bool(x && y),
        (Or, Value::Bool(x), Value::Bool(y)) => Value::Bool(x || y),
        (Implies, Value::Bool(x), Value::Bool(y)) => Value::Bool(!x || y),
        (Iff, Value::Bool(x), Value::Bool(y)) => Value::Bool(x == y),
        _ => return None,
    })
}

fn simplify_nary(op: NAryOp, args: &[Expr]) -> Expr {
    let mut flat = Vec::with_capacity(args.len());
    for a in args {
        let a = simplify(a);
        match a {
            // Flatten nested same-operator nodes.
            Expr::NAry(inner_op, inner) if inner_op == op => flat.extend(inner),
            other => flat.push(other),
        }
    }
    match op {
        NAryOp::And => {
            if flat.iter().any(Expr::is_false) {
                return super::build::ff();
            }
            flat.retain(|e| !e.is_true());
            match flat.len() {
                0 => super::build::tt(),
                1 => flat.pop().unwrap(),
                _ => Expr::NAry(op, flat),
            }
        }
        NAryOp::Or => {
            if flat.iter().any(Expr::is_true) {
                return super::build::tt();
            }
            flat.retain(|e| !e.is_false());
            match flat.len() {
                0 => super::build::ff(),
                1 => flat.pop().unwrap(),
                _ => Expr::NAry(op, flat),
            }
        }
        NAryOp::Sum => {
            let mut acc: i64 = 0;
            let mut rest = Vec::with_capacity(flat.len());
            for e in flat {
                if let Expr::Lit(Value::Int(n)) = e {
                    acc = acc.saturating_add(n);
                } else {
                    rest.push(e);
                }
            }
            if rest.is_empty() {
                return super::build::int(acc);
            }
            if acc != 0 {
                rest.push(super::build::int(acc));
            }
            if rest.len() == 1 {
                rest.pop().unwrap()
            } else {
                Expr::NAry(op, rest)
            }
        }
        NAryOp::Min | NAryOp::Max => {
            if flat.iter().all(|e| matches!(e, Expr::Lit(Value::Int(_)))) && !flat.is_empty() {
                let vals = flat.iter().map(|e| match e {
                    Expr::Lit(Value::Int(n)) => *n,
                    _ => unreachable!(),
                });
                let v = if op == NAryOp::Min {
                    vals.min().unwrap()
                } else {
                    vals.max().unwrap()
                };
                return super::build::int(v);
            }
            if flat.len() == 1 {
                return flat.pop().unwrap();
            }
            Expr::NAry(op, flat)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::build::*;
    use super::*;

    #[test]
    fn folds_constants() {
        assert_eq!(simplify(&add(int(2), int(3))), int(5));
        assert_eq!(simplify(&and2(tt(), ff())), ff());
        assert_eq!(simplify(&lt(int(1), int(2))), tt());
        assert_eq!(simplify(&div(int(7), int(0))), int(0));
    }

    #[test]
    fn identities() {
        let x = var(crate::ident::VarId(0));
        assert_eq!(simplify(&and2(tt(), x.clone())), x);
        assert_eq!(simplify(&or2(x.clone(), ff())), x);
        assert_eq!(simplify(&add(x.clone(), int(0))), x);
        assert_eq!(simplify(&mul(int(1), x.clone())), x);
        assert_eq!(simplify(&implies(ff(), x.clone())), tt());
        assert_eq!(simplify(&not(not(x.clone()))), x);
    }

    #[test]
    fn reflexive_relations() {
        let x = var(crate::ident::VarId(0));
        assert_eq!(simplify(&eq(x.clone(), x.clone())), tt());
        assert_eq!(simplify(&ne(x.clone(), x.clone())), ff());
        assert_eq!(simplify(&sub(x.clone(), x.clone())), int(0));
    }

    #[test]
    fn nary_flattening_and_units() {
        let x = var(crate::ident::VarId(0));
        let e = and(vec![tt(), and(vec![x.clone(), tt()]), tt()]);
        assert_eq!(simplify(&e), x);
        let e = or(vec![ff(), tt(), x.clone()]);
        assert_eq!(simplify(&e), tt());
        let e = sum(vec![
            int(1),
            sum(vec![int(2), var(crate::ident::VarId(1))]),
            int(3),
        ]);
        // 1 + 2 + 3 folded into single literal alongside the variable.
        match simplify(&e) {
            Expr::NAry(NAryOp::Sum, parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts.contains(&int(6)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ite_simplification() {
        let x = var(crate::ident::VarId(0));
        assert_eq!(simplify(&ite(tt(), x.clone(), int(0))), x);
        assert_eq!(simplify(&ite(ff(), x.clone(), int(0))), int(0));
        // Identical branches collapse.
        assert_eq!(simplify(&ite(x.clone(), int(4), int(4))), int(4));
    }

    #[test]
    fn min_max_folding() {
        assert_eq!(simplify(&min(vec![int(3), int(1), int(2)])), int(1));
        assert_eq!(simplify(&max(vec![int(3), int(1), int(2)])), int(3));
    }
}
