//! Free-variable analysis.

use std::collections::BTreeSet;

use super::Expr;
use crate::ident::VarId;

/// Collects the set of variables occurring in `e`.
pub fn free_vars(e: &Expr) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    collect(e, &mut out);
    out
}

/// Adds the variables of `e` into `out`.
pub fn collect(e: &Expr, out: &mut BTreeSet<VarId>) {
    match e {
        Expr::Lit(_) => {}
        Expr::Var(id) => {
            out.insert(*id);
        }
        Expr::Not(a) | Expr::Neg(a) => collect(a, out),
        Expr::Bin(_, a, b) => {
            collect(a, out);
            collect(b, out);
        }
        Expr::Ite(c, t, f) => {
            collect(c, out);
            collect(t, out);
            collect(f, out);
        }
        Expr::NAry(_, args) => {
            for a in args {
                collect(a, out);
            }
        }
    }
}

/// Whether `e` mentions `v`.
pub fn mentions(e: &Expr, v: VarId) -> bool {
    match e {
        Expr::Lit(_) => false,
        Expr::Var(id) => *id == v,
        Expr::Not(a) | Expr::Neg(a) => mentions(a, v),
        Expr::Bin(_, a, b) => mentions(a, v) || mentions(b, v),
        Expr::Ite(c, t, f) => mentions(c, v) || mentions(t, v) || mentions(f, v),
        Expr::NAry(_, args) => args.iter().any(|a| mentions(a, v)),
    }
}

/// Whether every variable of `e` lies in `allowed` — the *locality* test:
/// a property of a component is **local** when it names only that
/// component's variables (its locals plus the shared variables it uses).
pub fn is_local_to(e: &Expr, allowed: &BTreeSet<VarId>) -> bool {
    free_vars(e).is_subset(allowed)
}

#[cfg(test)]
mod tests {
    use super::super::build::*;
    use super::*;

    #[test]
    fn collects_all_vars() {
        let e = and2(
            eq(var(VarId(0)), int(1)),
            or(vec![var(VarId(2)), not(var(VarId(1)))]),
        );
        let fv = free_vars(&e);
        assert_eq!(
            fv.into_iter().collect::<Vec<_>>(),
            vec![VarId(0), VarId(1), VarId(2)]
        );
    }

    #[test]
    fn mentions_works() {
        let e = ite(var(VarId(3)), int(0), var(VarId(5)));
        assert!(mentions(&e, VarId(3)));
        assert!(mentions(&e, VarId(5)));
        assert!(!mentions(&e, VarId(4)));
    }

    #[test]
    fn locality_subset() {
        let e = add(var(VarId(0)), var(VarId(1)));
        let mut allowed = BTreeSet::new();
        allowed.insert(VarId(0));
        assert!(!is_local_to(&e, &allowed));
        allowed.insert(VarId(1));
        assert!(is_local_to(&e, &allowed));
    }

    #[test]
    fn literals_have_no_vars() {
        assert!(free_vars(&int(5)).is_empty());
        assert!(free_vars(&tt()).is_empty());
    }
}
