//! Linear normal forms for integer expressions.
//!
//! Many of the equivalence side conditions arising in the paper's proofs
//! are pure linear arithmetic — e.g. §3.3's
//! `(C − cᵢ) − Σ_{j≠i} cⱼ  =  C − Σⱼ cⱼ`. Deciding those by state-space
//! scan costs the full domain product; normalizing both sides to
//! `Σ aᵥ·v + b` and comparing coefficient maps costs `O(|expr|)`.
//!
//! **Saturation soundness.** Runtime evaluation saturates at the `i64`
//! boundaries, so "equal linear forms" implies "equal value in every
//! state" only when no intermediate computation can saturate. We therefore
//! carry interval bounds (from the variables' declared domains) through
//! the normalization with *checked* arithmetic and return `None` — caller
//! falls back to scanning — if any intermediate could clip.

use std::collections::BTreeMap;

use crate::ident::{VarId, Vocabulary};
use crate::value::{Type, Value};

use super::{BinOp, Expr, NAryOp};

/// A linear form `Σ coeffs[v]·v + constant` with a guaranteed-exact value
/// interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearForm {
    /// Variable coefficients (zero coefficients removed).
    pub coeffs: BTreeMap<VarId, i64>,
    /// Constant term.
    pub constant: i64,
    /// Lower bound of the value over all type-consistent states.
    pub lo: i64,
    /// Upper bound of the value over all type-consistent states.
    pub hi: i64,
}

impl LinearForm {
    fn constant(n: i64) -> Self {
        LinearForm {
            coeffs: BTreeMap::new(),
            constant: n,
            lo: n,
            hi: n,
        }
    }

    /// Whether two forms denote the same function (identical coefficients
    /// and constants).
    pub fn same_function(&self, other: &LinearForm) -> bool {
        self.constant == other.constant && self.coeffs == other.coeffs
    }
}

/// Attempts to compute the linear normal form of an integer expression.
/// Returns `None` for non-linear expressions (comparisons, `ite`,
/// `min`/`max`, division, variable products) or when intermediate
/// saturation cannot be ruled out.
pub fn linear_form(e: &Expr, vocab: &Vocabulary) -> Option<LinearForm> {
    match e {
        Expr::Lit(Value::Int(n)) => Some(LinearForm::constant(*n)),
        Expr::Lit(Value::Bool(_)) => None,
        Expr::Var(v) => {
            let d = vocab.domain(*v);
            if d.ty() != Type::Int {
                return None;
            }
            let (lo, hi) = match d {
                crate::domain::Domain::IntRange(lo, hi) => (*lo, *hi),
                crate::domain::Domain::Bool => unreachable!("type checked above"),
            };
            let mut coeffs = BTreeMap::new();
            coeffs.insert(*v, 1);
            Some(LinearForm {
                coeffs,
                constant: 0,
                lo,
                hi,
            })
        }
        Expr::Neg(a) => {
            let a = linear_form(a, vocab)?;
            scale(&a, -1)
        }
        Expr::Bin(BinOp::Add, a, b) => {
            let a = linear_form(a, vocab)?;
            let b = linear_form(b, vocab)?;
            combine(&a, &b, 1)
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            let a = linear_form(a, vocab)?;
            let b = linear_form(b, vocab)?;
            combine(&a, &b, -1)
        }
        Expr::Bin(BinOp::Mul, a, b) => {
            // Constant × linear (either side).
            let fa = linear_form(a, vocab)?;
            let fb = linear_form(b, vocab)?;
            if fa.coeffs.is_empty() {
                scale(&fb, fa.constant)
            } else if fb.coeffs.is_empty() {
                scale(&fa, fb.constant)
            } else {
                None
            }
        }
        Expr::NAry(NAryOp::Sum, args) => {
            let mut acc = LinearForm::constant(0);
            for arg in args {
                let f = linear_form(arg, vocab)?;
                acc = combine(&acc, &f, 1)?;
            }
            Some(acc)
        }
        _ => None,
    }
}

/// `a + sign·b` with checked interval arithmetic.
fn combine(a: &LinearForm, b: &LinearForm, sign: i64) -> Option<LinearForm> {
    debug_assert!(sign == 1 || sign == -1);
    let mut coeffs = a.coeffs.clone();
    for (&v, &c) in &b.coeffs {
        let entry = coeffs.entry(v).or_insert(0);
        *entry = entry.checked_add(c.checked_mul(sign)?)?;
        if *entry == 0 {
            coeffs.remove(&v);
        }
    }
    let constant = a.constant.checked_add(b.constant.checked_mul(sign)?)?;
    let (blo, bhi) = if sign == 1 {
        (b.lo, b.hi)
    } else {
        (-b.hi, -b.lo)
    };
    let lo = a.lo.checked_add(blo)?;
    let hi = a.hi.checked_add(bhi)?;
    Some(LinearForm {
        coeffs,
        constant,
        lo,
        hi,
    })
}

/// `k·a` with checked interval arithmetic.
fn scale(a: &LinearForm, k: i64) -> Option<LinearForm> {
    let mut coeffs = BTreeMap::new();
    for (&v, &c) in &a.coeffs {
        let scaled = c.checked_mul(k)?;
        if scaled != 0 {
            coeffs.insert(v, scaled);
        }
    }
    let constant = a.constant.checked_mul(k)?;
    let e1 = a.lo.checked_mul(k)?;
    let e2 = a.hi.checked_mul(k)?;
    Some(LinearForm {
        coeffs,
        constant,
        lo: e1.min(e2),
        hi: e1.max(e2),
    })
}

/// Fast-path equivalence: `Some(true)` when both expressions have linear
/// forms denoting the same function (hence equal in every state);
/// `Some(false)` when both have forms but they differ **and** the
/// difference is a non-zero constant (definitely inequivalent); `None`
/// when the fast path cannot decide (fall back to scanning).
pub fn linear_equivalent(a: &Expr, b: &Expr, vocab: &Vocabulary) -> Option<bool> {
    let fa = linear_form(a, vocab)?;
    let fb = linear_form(b, vocab)?;
    if fa.same_function(&fb) {
        return Some(true);
    }
    // Same coefficients but different constants: values differ everywhere.
    if fa.coeffs == fb.coeffs && fa.constant != fb.constant {
        return Some(false);
    }
    // Coefficients differ: over restricted domains the functions could
    // still coincide; undecided here.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expr::build::*;
    use crate::expr::eval::eval_int;
    use crate::state::StateSpaceIter;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("x", Domain::int_range(0, 5).unwrap()).unwrap();
        v.declare("y", Domain::int_range(-2, 3).unwrap()).unwrap();
        v.declare("z", Domain::int_range(0, 4).unwrap()).unwrap();
        v.declare("b", Domain::Bool).unwrap();
        v
    }

    #[test]
    fn normalizes_the_toy_identity() {
        // (C - c0) - (c1 + c2)  ==  C - (c0 + c1 + c2), modeled with x,y,z.
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let y = v.lookup("y").unwrap();
        let z = v.lookup("z").unwrap();
        let lhs = sub(sub(var(x), var(y)), var(z));
        let rhs = sub(var(x), sum(vec![var(y), var(z)]));
        assert_eq!(linear_equivalent(&lhs, &rhs, &v), Some(true));
    }

    #[test]
    fn distinguishes_constants() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        assert_eq!(
            linear_equivalent(&add(var(x), int(1)), &var(x), &v),
            Some(false)
        );
    }

    #[test]
    fn rejects_non_linear() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let y = v.lookup("y").unwrap();
        assert!(linear_form(&mul(var(x), var(y)), &v).is_none());
        assert!(linear_form(&div(var(x), int(2)), &v).is_none());
        assert!(linear_form(&ite(tt(), var(x), var(y)), &v).is_none());
        assert!(linear_form(&var(v.lookup("b").unwrap()), &v).is_none());
    }

    #[test]
    fn form_agrees_with_eval_everywhere() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let y = v.lookup("y").unwrap();
        let z = v.lookup("z").unwrap();
        let exprs = [
            sub(sum(vec![var(x), var(y), var(z)]), mul(int(2), var(y))),
            neg(sub(var(x), int(7))),
            mul(int(-3), add(var(y), int(1))),
        ];
        for e in exprs {
            let f = linear_form(&e, &v).expect("linear");
            for s in StateSpaceIter::new(&v) {
                let direct = eval_int(&e, &s);
                let from_form: i64 = f.constant
                    + f.coeffs
                        .iter()
                        .map(|(&var_id, &c)| c * s.get(var_id).expect_int())
                        .sum::<i64>();
                assert_eq!(direct, from_form);
                assert!(f.lo <= direct && direct <= f.hi, "interval bound violated");
            }
        }
    }

    #[test]
    fn saturation_risk_bails_out() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        // A chain whose intermediate bound overflows i64: must bail, not
        // produce a wrong "equivalence".
        let huge = mul(int(i64::MAX / 2), mul(int(4), var(x)));
        assert!(linear_form(&huge, &v).is_none());
    }

    #[test]
    fn cancellation_removes_coefficients() {
        let v = vocab();
        let x = v.lookup("x").unwrap();
        let e = sub(add(var(x), int(3)), var(x));
        let f = linear_form(&e, &v).unwrap();
        assert!(f.coeffs.is_empty());
        assert_eq!(f.constant, 3);
    }
}
