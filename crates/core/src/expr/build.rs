//! Ergonomic expression constructors.
//!
//! These free functions keep system-builder code close to the paper's
//! notation, e.g. `eq(var(c), sum(counters))` for `C = Σᵢ cᵢ`.

use super::{BinOp, Expr, NAryOp};
use crate::ident::VarId;
use crate::value::Value;

/// Literal `true`.
pub fn tt() -> Expr {
    Expr::Lit(Value::Bool(true))
}

/// Literal `false`.
pub fn ff() -> Expr {
    Expr::Lit(Value::Bool(false))
}

/// Integer literal.
pub fn int(n: i64) -> Expr {
    Expr::Lit(Value::Int(n))
}

/// Boolean literal.
pub fn boolean(b: bool) -> Expr {
    Expr::Lit(Value::Bool(b))
}

/// Variable reference.
pub fn var(id: VarId) -> Expr {
    Expr::Var(id)
}

/// Boolean negation.
pub fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

/// Integer negation.
pub fn neg(e: Expr) -> Expr {
    Expr::Neg(Box::new(e))
}

fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::Bin(op, Box::new(a), Box::new(b))
}

/// `a + b` (saturating).
pub fn add(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Add, a, b)
}

/// `a - b` (saturating).
pub fn sub(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Sub, a, b)
}

/// `a * b` (saturating).
pub fn mul(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Mul, a, b)
}

/// Total Euclidean division.
pub fn div(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Div, a, b)
}

/// Total Euclidean remainder.
pub fn rem(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Mod, a, b)
}

/// `a = b`.
pub fn eq(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Eq, a, b)
}

/// `a ≠ b`.
pub fn ne(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Ne, a, b)
}

/// `a < b`.
pub fn lt(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Lt, a, b)
}

/// `a ≤ b`.
pub fn le(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Le, a, b)
}

/// `a > b`.
pub fn gt(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Gt, a, b)
}

/// `a ≥ b`.
pub fn ge(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Ge, a, b)
}

/// Binary conjunction.
pub fn and2(a: Expr, b: Expr) -> Expr {
    bin(BinOp::And, a, b)
}

/// Binary disjunction.
pub fn or2(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Or, a, b)
}

/// `a ⇒ b`.
pub fn implies(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Implies, a, b)
}

/// `a ⇔ b`.
pub fn iff(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Iff, a, b)
}

/// N-ary conjunction (`true` when empty) — the paper's `⟨∀i :: pᵢ⟩`.
pub fn and(args: Vec<Expr>) -> Expr {
    Expr::NAry(NAryOp::And, args)
}

/// N-ary disjunction (`false` when empty) — the paper's `⟨∃i :: pᵢ⟩`.
pub fn or(args: Vec<Expr>) -> Expr {
    Expr::NAry(NAryOp::Or, args)
}

/// N-ary sum (`0` when empty) — the paper's `Σᵢ eᵢ`.
pub fn sum(args: Vec<Expr>) -> Expr {
    Expr::NAry(NAryOp::Sum, args)
}

/// N-ary minimum (must be non-empty).
pub fn min(args: Vec<Expr>) -> Expr {
    Expr::NAry(NAryOp::Min, args)
}

/// N-ary maximum (must be non-empty).
pub fn max(args: Vec<Expr>) -> Expr {
    Expr::NAry(NAryOp::Max, args)
}

/// If-then-else.
pub fn ite(c: Expr, t: Expr, e: Expr) -> Expr {
    Expr::Ite(Box::new(c), Box::new(t), Box::new(e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_build_expected_shapes() {
        let e = implies(and2(tt(), ff()), or(vec![tt()]));
        match e {
            Expr::Bin(BinOp::Implies, a, b) => {
                assert!(matches!(*a, Expr::Bin(BinOp::And, _, _)));
                assert!(matches!(*b, Expr::NAry(NAryOp::Or, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn empty_nary_units() {
        assert!(matches!(and(vec![]), Expr::NAry(NAryOp::And, ref v) if v.is_empty()));
        assert!(matches!(sum(vec![]), Expr::NAry(NAryOp::Sum, ref v) if v.is_empty()));
    }
}
