//! Discharge planning: which compositional strategy fits a property.
//!
//! The mapping is exactly the paper's §2 classification table
//! ([`unity_core::classify`]): existential property types need one
//! passing component, universal types need all components, and `leadsto`
//! — neither existential nor universal — is routed through the
//! cone-of-influence slice (with the product space as the residue).

use unity_core::classify::{classify, PropertyClass};
use unity_core::properties::Property;

/// How a checker should attempt to discharge a property of a composition
/// before resorting to the product space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Pass if *some* component passes (`init`, `transient`): the
    /// witness — initial conjunct or fair command — survives composition.
    /// If every component fails, the property may still hold of the
    /// composition (e.g. a conjoined `initially` can entail what no
    /// single conjunct does), so the residue is a product check, never a
    /// refutation.
    Existential,
    /// Pass if *all* components pass (`next`, `stable`, `invariant`,
    /// `unchanged`): these quantify over all commands and composition
    /// unions command sets. A failing component usually refutes the
    /// composition too, but the canonical witness still comes from the
    /// product check.
    Universal,
    /// Decide on the cone-of-influence slice (`leadsto`): liveness is
    /// neither existential nor universal, but it *is* local to the
    /// components that can influence the predicates (see
    /// [`crate::slice`]).
    Cone,
}

/// Plans the discharge strategy for `prop` from its §2 classification.
pub fn plan(prop: &Property) -> Strategy {
    match classify(prop) {
        PropertyClass::Existential => Strategy::Existential,
        PropertyClass::Universal => Strategy::Universal,
        PropertyClass::Neither => Strategy::Cone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::expr::build::*;

    #[test]
    fn strategies_follow_the_classification_table() {
        assert_eq!(plan(&Property::Init(tt())), Strategy::Existential);
        assert_eq!(plan(&Property::Transient(tt())), Strategy::Existential);
        assert_eq!(plan(&Property::Next(tt(), tt())), Strategy::Universal);
        assert_eq!(plan(&Property::Stable(tt())), Strategy::Universal);
        assert_eq!(plan(&Property::Invariant(tt())), Strategy::Universal);
        assert_eq!(plan(&Property::Unchanged(int(0))), Strategy::Universal);
        assert_eq!(plan(&Property::LeadsTo(tt(), tt())), Strategy::Cone);
    }
}
