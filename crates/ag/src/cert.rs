//! Content-hashed component certificates and the discharge record.
//!
//! A certificate says "this *program* (identified by content hash)
//! satisfies this *property* (canonical text) under this universe".
//! Certificates are engine-agnostic: the three checking engines are
//! pinned verdict-identical by the differential suites, so a fact
//! established by any engine answers for all of them.
//!
//! Keying is **per component program**, not per spec file: the hash
//! covers exactly the component's own canonical text (its name, the
//! variables it mentions or owns, its `initially` conjunct, and its
//! commands), rendered by *name* so it is stable under vocabulary growth
//! caused by editing sibling components. Editing one component of an
//! N-component system therefore invalidates exactly that component's
//! certificates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::hash::Hasher as _;

use unity_core::expr::pretty::Render;
use unity_core::expr::vars::free_vars;
use unity_core::hash::FxHasher;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;

/// Universe tag for certificates over the reachable state space
/// (`leadsto` under `Universe::Reachable`).
pub const UNIVERSE_REACHABLE: u8 = 0;
/// Universe tag for certificates over all type-consistent states
/// (`leadsto` under `Universe::AllStates`).
pub const UNIVERSE_ALL: u8 = 1;
/// Universe tag for the inductive safety checks, which quantify over all
/// states regardless of the requested universe — one certificate answers
/// for both.
pub const UNIVERSE_INDUCTIVE: u8 = 2;

/// Second-word salt of the 128-bit content hash (a fractional-sqrt
/// constant, distinct from the spec store's salt so program hashes and
/// spec hashes can never be confused for one another).
const HI_SALT: u64 = 0xbb67_ae85_84ca_a73b;

/// The canonical text a component is hashed over: like
/// [`Program::listing`], but restricted to the variables the program
/// mentions or owns, sorted by **name**. Rendering by name (never by
/// `VarId`) keeps the hash stable when a sibling component's edit grows
/// or reorders the shared vocabulary.
pub fn canonical_text(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", p.name);
    let mut vars: Vec<VarId> = p
        .mentioned_vars()
        .union(&p.locals)
        .copied()
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    vars.sort_by(|a, b| p.vocab.name(*a).cmp(p.vocab.name(*b)));
    for v in vars {
        let d = p.vocab.decl(v);
        let loc = if p.locals.contains(&v) { " local" } else { "" };
        let _ = writeln!(out, "  var {} : {}{}", d.name, d.domain, loc);
    }
    let _ = writeln!(out, "  init {}", Render::new(&p.init, &p.vocab));
    for (i, c) in p.commands.iter().enumerate() {
        let kw = if p.fair.contains(&i) {
            "fair cmd"
        } else {
            "cmd"
        };
        let _ = writeln!(out, "  {} {}", kw, c.display(&p.vocab));
    }
    let _ = writeln!(out, "end");
    out
}

/// 128-bit content hash of a component program as 32 lowercase hex
/// digits — the certificate (and store-directory) key. Two independently
/// salted 64-bit FxHash words over [`canonical_text`]; the second word
/// also mixes the length, closing FxHash's trailing-padding collision.
pub fn program_hash(p: &Program) -> String {
    let text = canonical_text(p);
    let bytes = text.as_bytes();
    let mut lo = FxHasher::default();
    lo.write(bytes);
    let mut hi = FxHasher::default();
    hi.write_u64(HI_SALT);
    hi.write(bytes);
    hi.write_u64(bytes.len() as u64);
    format!("{:016x}{:016x}", lo.finish(), hi.finish())
}

/// The canonical text a certificate keys a property by: the rendered
/// property followed by the domains of its free variables (sorted by
/// name). The domain suffix matters because the inductive safety
/// semantics quantify over the variables' *full domains* — a property
/// mentioning a variable the program itself never touches (hence
/// outside [`canonical_text`]) must not share a certificate with a
/// same-named variable of a different domain.
pub fn obligation_text(prop: &Property, vocab: &Vocabulary) -> String {
    let mut out = prop.display(vocab).to_string();
    let mut vs: Vec<VarId> = prop
        .exprs()
        .iter()
        .flat_map(|e| free_vars(e))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    vs.sort_by(|a, b| vocab.name(*a).cmp(vocab.name(*b)));
    for v in vs {
        let d = vocab.decl(v);
        let _ = write!(out, " | {} : {}", d.name, d.domain);
    }
    out
}

/// Identity of one certificate: program content hash × canonical
/// property text × universe tag.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CertKey {
    /// [`program_hash`] of the program the fact is about.
    pub program: String,
    /// The property, rendered canonically with variable names.
    pub property: String,
    /// One of [`UNIVERSE_REACHABLE`], [`UNIVERSE_ALL`],
    /// [`UNIVERSE_INDUCTIVE`].
    pub universe: u8,
}

/// An in-memory certificate store: established pass/fail facts about
/// component programs, with dirty tracking so a persistence layer can
/// write back only what this run added.
///
/// Only definite verdicts are stored — a check that *errors* (space
/// bound, typing) proves nothing about the program and is never cached.
#[derive(Debug, Default, Clone)]
pub struct CertStore {
    entries: BTreeMap<CertKey, bool>,
    dirty: BTreeSet<CertKey>,
}

impl CertStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded verdict for `key`, if any.
    pub fn get(&self, key: &CertKey) -> Option<bool> {
        self.entries.get(key).copied()
    }

    /// Records a freshly established fact (marked dirty for
    /// persistence). A changed verdict under the same key would mean the
    /// content hash failed — `debug_assert`ed, last write wins.
    pub fn insert(&mut self, key: CertKey, passed: bool) {
        if let Some(old) = self.entries.get(&key) {
            debug_assert_eq!(*old, passed, "conflicting certificate for {key:?}");
        }
        self.dirty.insert(key.clone());
        self.entries.insert(key, passed);
    }

    /// Seeds a fact loaded from persistent storage (not marked dirty).
    pub fn seed(&mut self, key: CertKey, passed: bool) {
        self.entries.insert(key, passed);
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no facts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All facts, in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&CertKey, bool)> {
        self.entries.iter().map(|(k, v)| (k, *v))
    }

    /// Facts added since the last [`CertStore::clear_dirty`], in
    /// deterministic key order — what a persistence layer should write.
    pub fn dirty(&self) -> impl Iterator<Item = (&CertKey, bool)> {
        self.dirty.iter().map(|k| (k, self.entries[k]))
    }

    /// Number of dirty facts.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Marks all facts persisted.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }
}

/// Which rule closed a compositional obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DischargeRule {
    /// An existential property held by the named component lifts to the
    /// system (the kernel's `lift-existential`).
    LiftExistential {
        /// The witnessing component index.
        component: usize,
    },
    /// A universal property held by every component lifts to the system
    /// (the kernel's `lift-universal`).
    LiftUniversal,
    /// A `leadsto` decided on the cone-of-influence slice — the
    /// sub-composition of the named components over their own variables.
    Cone {
        /// The block of component indices forming the cone.
        components: Vec<usize>,
    },
    /// The residue: no rule applied (or a component check refuted the
    /// lift), so the property was checked in the product space.
    ProductFallback,
}

impl DischargeRule {
    /// Machine-readable rule name. The lift names match the proof
    /// kernel's [`Proof::rule_name`](unity_core::proof::rules::Proof)
    /// spellings.
    pub fn rule_name(&self) -> &'static str {
        match self {
            DischargeRule::LiftExistential { .. } => "lift-existential",
            DischargeRule::LiftUniversal => "lift-universal",
            DischargeRule::Cone { .. } => "cone-of-influence",
            DischargeRule::ProductFallback => "product-fallback",
        }
    }

    /// The component indices the rule rests on (empty for
    /// `lift-universal`, which rests on all of them, and for the product
    /// fallback).
    pub fn components(&self) -> &[usize] {
        match self {
            DischargeRule::LiftExistential { component } => std::slice::from_ref(component),
            DischargeRule::Cone { components } => components,
            _ => &[],
        }
    }
}

/// One closed obligation: the property, the rule that closed it, and
/// whether every component fact it rests on was answered from the
/// certificate cache (no component re-checked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discharge {
    /// Canonical property text.
    pub property: String,
    /// The closing rule.
    pub rule: DischargeRule,
    /// Whether the obligation was closed entirely from cached
    /// certificates.
    pub cached: bool,
}

/// The machine-readable record of how a battery of obligations was
/// discharged, in check order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CertChain {
    /// One entry per obligation, in the order they were discharged.
    pub entries: Vec<Discharge>,
}

impl CertChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a discharge record.
    pub fn push(&mut self, d: Discharge) {
        self.entries.push(d);
    }

    /// Number of discharged obligations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no obligations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many obligations a given rule (by [`DischargeRule::rule_name`])
    /// closed.
    pub fn count_rule(&self, name: &str) -> usize {
        self.entries
            .iter()
            .filter(|d| d.rule.rule_name() == name)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    fn two_vocab_component(order_flipped: bool) -> Program {
        // The same component text over vocabularies that differ only in
        // declaration order / the presence of a sibling's variable.
        let mut v = Vocabulary::new();
        let (x, y);
        if order_flipped {
            v.declare("other", Domain::Bool).unwrap();
            y = v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
            x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        } else {
            x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
            y = v.declare("y", Domain::int_range(0, 3).unwrap()).unwrap();
        }
        Program::builder("comp", Arc::new(v))
            .local(x)
            .init(and2(eq(var(x), int(0)), eq(var(y), int(0))))
            .fair_command("step", lt(var(x), int(3)), vec![(x, add(var(x), int(1)))])
            .command("sync", tt(), vec![(y, var(x))])
            .build()
            .unwrap()
    }

    #[test]
    fn hash_is_stable_under_vocabulary_growth_and_reorder() {
        let a = two_vocab_component(false);
        let b = two_vocab_component(true);
        assert_eq!(canonical_text(&a), canonical_text(&b));
        assert_eq!(program_hash(&a), program_hash(&b));
        assert_eq!(program_hash(&a).len(), 32);
    }

    #[test]
    fn hash_discriminates_content() {
        let a = two_vocab_component(false);
        let mut edited = a.clone();
        edited.init = tt();
        assert_ne!(program_hash(&a), program_hash(&edited));
        let mut renamed = a.clone();
        renamed.name = "comp2".into();
        assert_ne!(program_hash(&a), program_hash(&renamed));
    }

    #[test]
    fn obligation_text_pins_free_variable_domains() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let mut w = Vocabulary::new();
        let xw = w.declare("x", Domain::int_range(0, 7).unwrap()).unwrap();
        let p = Property::Invariant(le(var(x), int(3)));
        let pw = Property::Invariant(le(var(xw), int(3)));
        // Same rendered property, different domain: distinct key texts.
        assert_eq!(
            p.display(&v).to_string(),
            pw.display(&w).to_string(),
            "precondition: identical rendering"
        );
        assert_ne!(obligation_text(&p, &v), obligation_text(&pw, &w));
        assert!(obligation_text(&p, &v).starts_with("invariant "));
    }

    #[test]
    fn store_tracks_dirty_facts() {
        let mut s = CertStore::new();
        let k = |p: &str| CertKey {
            program: p.into(),
            property: "stable x <= 1".into(),
            universe: UNIVERSE_INDUCTIVE,
        };
        s.seed(k("a"), true);
        assert_eq!(s.dirty_len(), 0);
        assert_eq!(s.get(&k("a")), Some(true));
        s.insert(k("b"), false);
        assert_eq!(s.dirty_len(), 1);
        assert_eq!(s.len(), 2);
        let dirty: Vec<_> = s.dirty().collect();
        assert_eq!(dirty, vec![(&k("b"), false)]);
        s.clear_dirty();
        assert_eq!(s.dirty_len(), 0);
    }

    #[test]
    fn rules_name_themselves() {
        assert_eq!(
            DischargeRule::LiftExistential { component: 2 }.rule_name(),
            "lift-existential"
        );
        assert_eq!(
            DischargeRule::LiftExistential { component: 2 }.components(),
            &[2]
        );
        assert_eq!(DischargeRule::LiftUniversal.rule_name(), "lift-universal");
        assert_eq!(
            DischargeRule::Cone {
                components: vec![0, 3]
            }
            .rule_name(),
            "cone-of-influence"
        );
        assert_eq!(
            DischargeRule::ProductFallback.rule_name(),
            "product-fallback"
        );
        let mut chain = CertChain::new();
        chain.push(Discharge {
            property: "p".into(),
            rule: DischargeRule::LiftUniversal,
            cached: false,
        });
        chain.push(Discharge {
            property: "q".into(),
            rule: DischargeRule::ProductFallback,
            cached: false,
        });
        assert_eq!(chain.count_rule("lift-universal"), 1);
        assert_eq!(chain.count_rule("cone-of-influence"), 0);
        assert_eq!(chain.len(), 2);
    }
}
