//! Cone-of-influence slicing for `leadsto` obligations.
//!
//! `p ↦ q` is neither existential nor universal, but it *is* local: only
//! components whose writes can (transitively) influence the predicates
//! matter. [`cone_block`] computes that least component set as a
//! fixpoint over write-sets, and [`Slice::build`] rebuilds the block
//! over a **restricted vocabulary** containing only the variables the
//! block (or the property) mentions — so the slice's state space is the
//! block's own product, not the system's.
//!
//! Soundness of lifting a slice **pass** to the full composition (the
//! only direction a checker uses — refutations are re-derived on the
//! product for canonical witnesses): components outside the block never
//! write a variable the block reads or the property mentions, so on the
//! slice variables they behave as `skip`, and weak fairness of their
//! commands adds only stutters. Any product-space violation — a
//! reachable `p ∧ ¬q` state leading into a fair trap — therefore
//! projects to a violation in the slice: the projected trap stays
//! strongly connected (outside steps collapse to stutters), every block
//! fair command keeps its in-trap successor, and the slice's initial
//! states (block `initially` conjuncts only) are a superset of the
//! projected product initials. Contrapositive: slice pass ⇒ product
//! pass. The differential suite pins this end to end.

use std::collections::BTreeSet;
use std::sync::Arc;

use unity_core::command::Command;
use unity_core::compose::remap;
use unity_core::error::CoreError;
use unity_core::expr::{build, vars, Expr};
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;

/// The cone-of-influence block of `seed` (typically the free variables
/// of a property): the least set of component indices closed under "a
/// component writing a needed variable joins, and everything it mentions
/// becomes needed". Returned sorted.
pub fn cone_block(components: &[Program], seed: &BTreeSet<VarId>) -> Vec<usize> {
    let mut needed = seed.clone();
    let mut in_block = vec![false; components.len()];
    loop {
        let mut changed = false;
        for (i, p) in components.iter().enumerate() {
            if !in_block[i] && p.write_set().iter().any(|v| needed.contains(v)) {
                in_block[i] = true;
                needed.extend(p.mentioned_vars());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    in_block
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i))
        .collect()
}

/// A block of components rebuilt over a restricted vocabulary, composed
/// by union. Expressions over the original vocabulary translate through
/// [`Slice::remap_expr`] / [`Slice::remap_property`].
#[derive(Debug, Clone)]
pub struct Slice {
    /// The component indices the slice was built from (sorted).
    pub block: Vec<usize>,
    /// The block programs over the restricted vocabulary, in block order.
    pub programs: Vec<Program>,
    /// Their union composition (no initial-satisfiability enumeration —
    /// the product program already passed it).
    pub composed: Program,
    /// Old variable id → new id (entries for dropped variables are a
    /// dummy and must never be dereferenced).
    map: Vec<VarId>,
    /// The original ids kept, in old-id order (= new-id order).
    kept: Vec<VarId>,
}

impl Slice {
    /// Builds the slice of `block` (sorted component indices into
    /// `components`, which share one vocabulary) keeping the block's
    /// variables plus `extra` (typically the property's free variables).
    pub fn build(
        components: &[Program],
        block: &[usize],
        extra: &BTreeSet<VarId>,
    ) -> Result<Slice, CoreError> {
        let full = components
            .first()
            .map(|p| p.vocab.clone())
            .unwrap_or_else(|| Arc::new(Vocabulary::new()));
        let mut keep: BTreeSet<VarId> = extra.clone();
        for &i in block {
            keep.extend(components[i].mentioned_vars());
            keep.extend(components[i].locals.iter().copied());
        }
        let kept: Vec<VarId> = keep.iter().copied().collect();
        let mut vocab = Vocabulary::new();
        let mut map = vec![VarId(0); full.len().max(1)];
        for &old in &kept {
            let d = full.decl(old);
            map[old.index()] = vocab.declare(&d.name, d.domain.clone())?;
        }
        let vocab = Arc::new(vocab);

        let mut programs = Vec::with_capacity(block.len());
        for &i in block {
            programs.push(remap_onto(&components[i], &map, vocab.clone())?);
        }

        // Union composition, mirroring `unity_core::compose::compose`
        // but skipping the initial-satisfiability enumeration: the
        // product program's (stronger) init already passed it.
        let mut commands: Vec<Command> = Vec::new();
        let mut fair = BTreeSet::new();
        let mut locals = BTreeSet::new();
        let mut inits = Vec::new();
        let mut names = Vec::new();
        for p in &programs {
            let base = commands.len();
            names.push(p.name.clone());
            commands.extend(p.commands.iter().cloned());
            fair.extend(p.fair.iter().map(|&k| base + k));
            locals.extend(p.locals.iter().copied());
            if !p.init.is_true() {
                inits.push(p.init.clone());
            }
        }
        let name = if names.is_empty() {
            "slice".to_string()
        } else {
            names.join(" || ")
        };
        let init = if inits.is_empty() {
            build::tt()
        } else {
            build::and(inits)
        };
        let composed = Program {
            name,
            vocab,
            locals,
            init,
            commands,
            fair,
        };
        composed.validate()?;
        Ok(Slice {
            block: block.to_vec(),
            programs,
            composed,
            map,
            kept,
        })
    }

    /// The restricted vocabulary.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.composed.vocab
    }

    /// The original variable ids the slice kept, in new-id order.
    pub fn kept(&self) -> &[VarId] {
        &self.kept
    }

    /// Translates an expression over the original vocabulary onto the
    /// slice vocabulary. The expression must only mention kept variables
    /// (guaranteed for the cone's seed property by construction).
    pub fn remap_expr(&self, e: &Expr) -> Expr {
        debug_assert!(
            vars::free_vars(e).iter().all(|v| self.kept.contains(v)),
            "expression mentions a variable outside the slice"
        );
        remap(e, &self.map)
    }

    /// Translates a property onto the slice vocabulary.
    pub fn remap_property(&self, p: &Property) -> Property {
        match p {
            Property::Init(e) => Property::Init(self.remap_expr(e)),
            Property::Transient(e) => Property::Transient(self.remap_expr(e)),
            Property::Next(a, b) => Property::Next(self.remap_expr(a), self.remap_expr(b)),
            Property::Stable(e) => Property::Stable(self.remap_expr(e)),
            Property::Invariant(e) => Property::Invariant(self.remap_expr(e)),
            Property::Unchanged(e) => Property::Unchanged(self.remap_expr(e)),
            Property::LeadsTo(a, b) => Property::LeadsTo(self.remap_expr(a), self.remap_expr(b)),
        }
    }
}

fn remap_onto(p: &Program, map: &[VarId], vocab: Arc<Vocabulary>) -> Result<Program, CoreError> {
    let mut commands = Vec::with_capacity(p.commands.len());
    for c in &p.commands {
        commands.push(Command::new(
            c.name.clone(),
            remap(&c.guard, map),
            c.updates
                .iter()
                .map(|(x, e)| (map[x.index()], remap(e, map)))
                .collect(),
            &vocab,
        )?);
    }
    let prog = Program {
        name: p.name.clone(),
        vocab,
        locals: p.locals.iter().map(|l| map[l.index()]).collect(),
        init: remap(&p.init, map),
        commands,
        fair: p.fair.clone(),
    };
    prog.validate()?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;

    /// Three components over one vocabulary: two independent counters
    /// and an observer copying the first.
    fn rig() -> (Vec<Program>, VarId, VarId, VarId) {
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::int_range(0, 3).unwrap()).unwrap();
        let b = v.declare("b", Domain::int_range(0, 3).unwrap()).unwrap();
        let c = v.declare("c", Domain::int_range(0, 3).unwrap()).unwrap();
        let vocab = Arc::new(v);
        let p0 = Program::builder("P0", vocab.clone())
            .local(a)
            .init(eq(var(a), int(0)))
            .fair_command("inca", lt(var(a), int(3)), vec![(a, add(var(a), int(1)))])
            .build()
            .unwrap();
        let p1 = Program::builder("P1", vocab.clone())
            .local(b)
            .init(eq(var(b), int(0)))
            .fair_command("incb", lt(var(b), int(3)), vec![(b, add(var(b), int(1)))])
            .build()
            .unwrap();
        let p2 = Program::builder("P2", vocab.clone())
            .local(c)
            .init(eq(var(c), int(0)))
            .fair_command("copy", tt(), vec![(c, var(a))])
            .build()
            .unwrap();
        (vec![p0, p1, p2], a, b, c)
    }

    #[test]
    fn cone_is_the_least_influencing_set() {
        let (ps, a, b, c) = rig();
        let seed = |v: VarId| [v].into_iter().collect::<BTreeSet<_>>();
        assert_eq!(cone_block(&ps, &seed(a)), vec![0]);
        assert_eq!(cone_block(&ps, &seed(b)), vec![1]);
        // c depends on a's writer transitively.
        assert_eq!(cone_block(&ps, &seed(c)), vec![0, 2]);
        // A variable nobody writes has an empty cone.
        assert_eq!(cone_block(&ps, &BTreeSet::new()), Vec::<usize>::new());
    }

    #[test]
    fn slice_restricts_the_vocabulary() {
        let (ps, a, _b, _c) = rig();
        let extra = [a].into_iter().collect();
        let s = Slice::build(&ps, &[0], &extra).unwrap();
        assert_eq!(s.vocab().len(), 1, "only `a` survives");
        assert_eq!(s.composed.commands.len(), 1);
        assert_eq!(s.composed.fair.len(), 1);
        assert_eq!(s.composed.name, "P0");
        // The remapped property type-checks on the slice vocabulary.
        let prop = Property::LeadsTo(tt(), eq(var(a), int(3)));
        let remapped = s.remap_property(&prop);
        remapped.check_types(s.vocab()).unwrap();
        // 4 initial-candidate states instead of 4^3.
        assert_eq!(s.vocab().space_size(), Some(4));
    }

    #[test]
    fn slice_of_two_components_unions_commands_and_rebases_fairness() {
        let (ps, a, _b, c) = rig();
        let extra = [a, c].into_iter().collect();
        let s = Slice::build(&ps, &[0, 2], &extra).unwrap();
        assert_eq!(s.vocab().len(), 2);
        assert_eq!(s.composed.commands.len(), 2);
        assert_eq!(s.composed.fair, [0usize, 1].into_iter().collect());
        assert_eq!(s.composed.name, "P0 || P2");
        assert_eq!(s.programs.len(), 2);
    }

    #[test]
    fn empty_block_slice_is_the_skip_program() {
        let (ps, a, ..) = rig();
        let extra = [a].into_iter().collect();
        let s = Slice::build(&ps, &[], &extra).unwrap();
        assert!(s.composed.commands.is_empty());
        assert!(s.composed.init.is_true());
        assert_eq!(s.vocab().len(), 1);
    }
}
