//! # unity-ag
//!
//! Assume-guarantee compositional verification: the planning and
//! certificate layer that lets a checker discharge properties of a
//! composed program **without building the product state space**.
//!
//! The source paper's central observation is that universal properties
//! of `F ∥ G` follow from per-component certificates plus the
//! union/inheritance rules, and existential properties from a single
//! component's certificate. This crate turns that observation into
//! machinery a model checker can drive:
//!
//! * [`plan`]: maps each property kind to a discharge [`plan::Strategy`]
//!   via the paper's §2 classification ([`unity_core::classify`]) —
//!   existential properties need *one* passing component, universal
//!   properties need *all* components, and `leadsto` (neither class)
//!   routes through a cone-of-influence slice.
//! * [`mod@slice`]: computes the cone-of-influence block of a `leadsto`
//!   property — the least set of components whose writes can influence
//!   the predicates — and rebuilds that block over a *restricted*
//!   vocabulary, so liveness of a local subsystem is decided in the
//!   subsystem's exponentially smaller space.
//! * [`cert`]: content-hashed component certificates
//!   ([`cert::program_hash`] keys by the component's own canonical text,
//!   not the spec file, so editing one component of an N-component
//!   system invalidates exactly one certificate), plus the
//!   machine-readable [`cert::CertChain`] recording *which rule closed
//!   each obligation*.
//!
//! The crate depends only on `unity-core`: it plans and records, it does
//! not check. `unity-mc`'s `CompositionalVerifier` executes plans with
//! the three-engine `Verifier` and validates every lift through the
//! proof kernel's `lift-universal` / `lift-existential` rules; anything
//! the rules cannot close falls back to the product space, so the
//! compositional verdict (and witness) is identical to the flat one by
//! construction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cert;
pub mod plan;
pub mod slice;

/// Commonly used items.
pub mod prelude {
    pub use crate::cert::{
        canonical_text, obligation_text, program_hash, CertChain, CertKey, CertStore, Discharge,
        DischargeRule, UNIVERSE_ALL, UNIVERSE_INDUCTIVE, UNIVERSE_REACHABLE,
    };
    pub use crate::plan::{plan, Strategy};
    pub use crate::slice::{cone_block, Slice};
}
