//! The resource-allocator example sketched in the paper's conclusion.
//!
//! The conclusion points to a companion case study (its reference \[3\]: Chandy &
//! Charpentier, *An experiment in program composition and proof*) — a
//! resource allocator whose "safety points are local" and whose
//! composition uses existential properties. We reproduce its shape: `T`
//! interchangeable tokens, `n` clients. Each client cycles
//! request → hold → release; the allocator grants tokens from the shared
//! pool.
//!
//! The conservation law `avail + Σᵢ holdᵢ = T` is *exactly* the toy
//! example's pattern (§3): each component changes `avail` and its own
//! `holdᵢ` by opposite amounts, so `unchanged (avail + Σ holdᵢ)` lifts
//! universally — see the test that replays the §3.3 proof technique here.

use std::sync::Arc;

use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::error::CoreError;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;

/// Parameters of the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceSpec {
    /// Number of clients.
    pub n: usize,
    /// Number of tokens in the pool.
    pub tokens: i64,
}

/// The built allocator system.
#[derive(Debug, Clone)]
pub struct ResourceSystem {
    /// Parameters.
    pub spec: ResourceSpec,
    /// Composed system; component `i` is client `i`.
    pub system: System,
    /// Shared pool variable.
    pub avail: VarId,
    /// Per-client `want` flags (local).
    pub wants: Vec<VarId>,
    /// Per-client hold counts (local, 0/1).
    pub holds: Vec<VarId>,
}

/// Builds the allocator: every client is one component owning `wantᵢ` and
/// `holdᵢ` (both local) and sharing `avail`.
pub fn resource_allocator(spec: ResourceSpec) -> Result<ResourceSystem, CoreError> {
    assert!(spec.n >= 1 && spec.tokens >= 1);
    let mut vocab = Vocabulary::new();
    let avail = vocab.declare("avail", Domain::int_range(0, spec.tokens)?)?;
    let mut wants = Vec::with_capacity(spec.n);
    let mut holds = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        wants.push(vocab.declare(&format!("want{i}"), Domain::Bool)?);
        holds.push(vocab.declare(&format!("hold{i}"), Domain::int_range(0, 1)?)?);
    }
    let vocab = Arc::new(vocab);

    let mut components = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let (w, h) = (wants[i], holds[i]);
        let program = Program::builder(format!("Client{i}"), vocab.clone())
            .local(w)
            .local(h)
            .init(and(vec![
                eq(var(avail), int(spec.tokens)),
                not(var(w)),
                eq(var(h), int(0)),
            ]))
            .fair_command(
                format!("request{i}"),
                and2(not(var(w)), eq(var(h), int(0))),
                vec![(w, tt())],
            )
            .fair_command(
                format!("acquire{i}"),
                and(vec![var(w), eq(var(h), int(0)), gt(var(avail), int(0))]),
                vec![(h, int(1)), (avail, sub(var(avail), int(1)))],
            )
            .fair_command(
                format!("release{i}"),
                eq(var(h), int(1)),
                vec![(h, int(0)), (avail, add(var(avail), int(1))), (w, ff())],
            )
            .build()?;
        components.push(program);
    }
    let system = System::compose(components, InitSatCheck::BoundedExhaustive(1 << 22))?;
    Ok(ResourceSystem {
        spec,
        system,
        avail,
        wants,
        holds,
    })
}

impl ResourceSystem {
    /// The conserved expression `avail + Σᵢ holdᵢ`.
    pub fn conservation_expr(&self) -> Expr {
        add(
            var(self.avail),
            sum(self.holds.iter().map(|&h| var(h)).collect()),
        )
    }

    /// Conservation invariant: `avail + Σ holdᵢ = T`.
    pub fn conservation_invariant(&self) -> Property {
        Property::Invariant(eq(self.conservation_expr(), int(self.spec.tokens)))
    }

    /// Per-component conservation obligation (the §3-style local spec):
    /// `unchanged (avail + holdᵢ)` — client `i` moves tokens between the
    /// pool and its own hand, never minting or destroying them.
    pub fn spec_unchanged(&self, i: usize) -> Property {
        Property::Unchanged(add(var(self.avail), var(self.holds[i])))
    }

    /// No over-allocation: `Σ holdᵢ ≤ T`. Not inductive on its own (it
    /// needs the conservation strengthening), so state it conjoined with
    /// conservation; the bare predicate holds over reachable states.
    pub fn no_overallocation(&self) -> Property {
        Property::Invariant(and2(
            eq(self.conservation_expr(), int(self.spec.tokens)),
            le(
                sum(self.holds.iter().map(|&h| var(h)).collect()),
                int(self.spec.tokens),
            ),
        ))
    }

    /// Client progress: `wantᵢ ↦ holdᵢ = 1`.
    ///
    /// **Holds iff `T ≥ n`.** With fewer tokens than clients, weak
    /// fairness of the `acquire` commands is *not* enough: a client's fair
    /// `acquire` may always be scheduled while the pool is empty, and the
    /// model checker produces the starvation lasso (the other clients
    /// cycle request → acquire → release forever). This is the classic gap
    /// between weak fairness on commands and strong fairness on guards —
    /// closing it is exactly what the §4 priority mechanism is for (see
    /// [`crate::dining`], where progress holds with one shared resource
    /// per conflict). The experiment suite records both regimes.
    pub fn progress(&self, i: usize) -> Property {
        Property::LeadsTo(var(self.wants[i]), eq(var(self.holds[i]), int(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::proof::check::{check_concludes, CheckCtx};
    use unity_core::proof::rules::Proof;
    use unity_core::proof::{Judgment, Scope};
    use unity_mc::prelude::*;

    #[test]
    fn builds() {
        let r = resource_allocator(ResourceSpec { n: 2, tokens: 1 }).unwrap();
        assert_eq!(r.system.composed.commands.len(), 6);
        assert_eq!(r.system.initial_states().len(), 1);
    }

    #[test]
    fn conservation_holds() {
        for (n, t) in [(1usize, 1i64), (2, 1), (2, 2), (3, 2)] {
            let r = resource_allocator(ResourceSpec { n, tokens: t }).unwrap();
            check_property(
                &r.system.composed,
                &r.conservation_invariant(),
                Universe::Reachable,
                &ScanConfig::default(),
            )
            .unwrap_or_else(|e| panic!("n={n} t={t}: {e}"));
        }
    }

    #[test]
    fn no_overallocation_holds() {
        let r = resource_allocator(ResourceSpec { n: 3, tokens: 2 }).unwrap();
        // Strengthened form is inductive.
        check_property(
            &r.system.composed,
            &r.no_overallocation(),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        // Bare form holds over reachable states.
        check_invariant_reachable(
            &r.system.composed,
            &le(sum(r.holds.iter().map(|&h| var(h)).collect()), int(2)),
            &ScanConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn progress_holds_iff_enough_tokens() {
        let cfg = ScanConfig::default();
        // T >= n: weak fairness suffices (the pool can never be empty
        // while a handless client waits).
        let ample = resource_allocator(ResourceSpec { n: 2, tokens: 2 }).unwrap();
        for i in 0..2 {
            check_property(
                &ample.system.composed,
                &ample.progress(i),
                Universe::Reachable,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("progress({i}) with ample tokens: {e}"));
        }
        // T < n: starvation lasso exists — weak fairness on `acquire` is
        // not strong fairness on its guard.
        let scarce = resource_allocator(ResourceSpec { n: 2, tokens: 1 }).unwrap();
        let err = check_property(
            &scarce.system.composed,
            &scarce.progress(0),
            Universe::Reachable,
            &cfg,
        )
        .unwrap_err();
        match err {
            McError::Refuted {
                cex: Counterexample::LeadsTo { trap, .. },
                ..
            } => {
                assert!(!trap.is_empty(), "starvation trap is concrete");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conservation_proof_via_toy_pattern() {
        // Replay the §3.3 derivation: per-client unchanged + locality ⇒
        // shared universal property ⇒ system invariant.
        let r = resource_allocator(ResourceSpec { n: 2, tokens: 2 }).unwrap();
        let conserved = r.conservation_expr();
        let per_component: Vec<Proof> = (0..2)
            .map(|i| {
                let own = add(var(r.avail), var(r.holds[i]));
                let mut parts = vec![Proof::premise(Judgment::component(
                    i,
                    Property::Unchanged(own.clone()),
                ))];
                let mut foreign = Vec::new();
                for (j, &h) in r.holds.iter().enumerate() {
                    if j != i {
                        parts.push(Proof::premise(Judgment::component(
                            i,
                            Property::Unchanged(var(h)),
                        )));
                        foreign.push(var(h));
                    }
                }
                Proof::UnchangedEquiv {
                    sub: Box::new(Proof::UnchangedCompose {
                        parts,
                        expr: add(own, sum(foreign)),
                    }),
                    to: conserved.clone(),
                }
            })
            .collect();
        let lifted = Proof::LiftUniversal {
            prop: Property::Unchanged(conserved.clone()),
            per_component,
        };
        let target = eq(conserved.clone(), int(2));
        let stable = Proof::StableFromUnchanged {
            sub: Box::new(Proof::UnchangedCompose {
                parts: vec![lifted],
                expr: target.clone(),
            }),
        };
        let init = Proof::premise(Judgment::system(Property::Init(target.clone())));
        let proof = Proof::InvariantIntro {
            init: Box::new(init),
            stable: Box::new(stable),
        };
        let conclusion = Judgment::new(Scope::System, Property::Invariant(target));
        let mut mc = McDischarger::new(&r.system);
        let mut ctx = CheckCtx::new(&mut mc).with_components(2);
        check_concludes(&proof, &conclusion, &mut ctx).unwrap();
    }
}
