//! The N-quadrant grid: the workload where the product build *is* the
//! bottleneck — and assume-guarantee discharge makes it unnecessary.
//!
//! `n` walkers each own a private `side × side` quadrant: walker `i`
//! moves east (`xᵢ := xᵢ+1`) or north (`yᵢ := yᵢ+1`) under weak
//! fairness, burning one unit of fuel `fᵢ` per step, until it parks in
//! its corner with the fuel exhausted. The quadrants share **no**
//! variables, so each component's behaviour lives in `side²` states
//! while the composed product is `side²ⁿ` — exponentially dominated by
//! states that differ only in *other* quadrants' positions. A flat
//! verifier pays for that product on every `leadsto`; the compositional
//! verifier never builds it:
//!
//! * `origin(i)` (`init`) lifts existentially from quadrant `i`'s own
//!   initial condition;
//! * `bounds(i)` (`invariant`) and `settled(i)` (`stable`) lift
//!   universally — quadrant `i` proves the inductive step, every other
//!   quadrant proves locality (it never writes `i`'s variables);
//! * `arrival(i)` (`leadsto`) is decided on the cone-of-influence
//!   slice, which is exactly quadrant `i`'s `side²`-state grid.
//!
//! [`QuadrantGrid::checks`] bundles those per-quadrant obligations into
//! the default battery — every one of them discharges without touching
//! the product. The deliberate residue lives next door:
//! [`QuadrantGrid::conservation`] states the per-quadrant fuel law
//! `xᵢ + yᵢ + fᵢ = 2(side−1)`, which *other* quadrants cannot prove
//! from their own initial conditions (the inductive base needs `i`'s
//! init), and [`QuadrantGrid::joint_arrival`] couples all quadrants in
//! one `leadsto` — both force the product fallback and pin the
//! fallback contract in the tests. This system backs the `e23_compose`
//! bench: editing one quadrant re-verifies one quadrant.

use std::sync::Arc;

use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::error::CoreError;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;

/// Parameters of the quadrant grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadrantSpec {
    /// Number of quadrants (components).
    pub n: usize,
    /// Cells per side; each walker roams `side × side` positions.
    pub side: i64,
}

impl QuadrantSpec {
    /// Creates a spec; `n ≥ 1`, `side ≥ 2`.
    pub fn new(n: usize, side: i64) -> Self {
        assert!(n >= 1 && side >= 2, "need n >= 1 and side >= 2");
        QuadrantSpec { n, side }
    }

    /// Fuel each walker starts with: `2(side − 1)` — one unit per step
    /// of the corner-to-corner walk.
    pub fn fuel(&self) -> i64 {
        2 * (self.side - 1)
    }
}

/// The built grid with its variable handles.
#[derive(Debug, Clone)]
pub struct QuadrantGrid {
    /// Parameters.
    pub spec: QuadrantSpec,
    /// The composed system (components share the vocabulary).
    pub system: System,
    /// Per-quadrant x coordinates.
    pub x: Vec<VarId>,
    /// Per-quadrant y coordinates.
    pub y: Vec<VarId>,
    /// Per-quadrant fuel counters.
    pub f: Vec<VarId>,
}

/// Builds the `n`-quadrant grid.
pub fn quadrant_grid(spec: QuadrantSpec) -> Result<QuadrantGrid, CoreError> {
    let m = spec.side - 1;
    let mut vocab = Vocabulary::new();
    let mut x = Vec::with_capacity(spec.n);
    let mut y = Vec::with_capacity(spec.n);
    let mut f = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        x.push(vocab.declare(&format!("x{i}"), Domain::int_range(0, m)?)?);
        y.push(vocab.declare(&format!("y{i}"), Domain::int_range(0, m)?)?);
        f.push(vocab.declare(&format!("f{i}"), Domain::int_range(0, spec.fuel())?)?);
    }
    let vocab = Arc::new(vocab);

    let mut components = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let (xi, yi, fi) = (x[i], y[i], f[i]);
        let init = and(vec![
            eq(var(xi), int(0)),
            eq(var(yi), int(0)),
            eq(var(fi), int(spec.fuel())),
        ]);
        let program = Program::builder(format!("Quadrant{i}"), vocab.clone())
            .local(xi)
            .local(yi)
            .local(fi)
            .init(init)
            .fair_command(
                format!("east{i}"),
                lt(var(xi), int(m)),
                vec![(xi, add(var(xi), int(1))), (fi, sub(var(fi), int(1)))],
            )
            .fair_command(
                format!("north{i}"),
                lt(var(yi), int(m)),
                vec![(yi, add(var(yi), int(1))), (fi, sub(var(fi), int(1)))],
            )
            .build()?;
        components.push(program);
    }
    let system = System::compose(components, InitSatCheck::BoundedExhaustive(1 << 22))?;
    Ok(QuadrantGrid {
        spec,
        system,
        x,
        y,
        f,
    })
}

impl QuadrantGrid {
    /// Quadrant `i` starts at its origin with a full tank:
    /// `init (xᵢ = 0 ∧ yᵢ = 0 ∧ fᵢ = 2(side−1))` — discharged by
    /// `lift-existential` from component `i`'s own initial condition.
    pub fn origin(&self, i: usize) -> Property {
        Property::Init(and(vec![
            eq(var(self.x[i]), int(0)),
            eq(var(self.y[i]), int(0)),
            eq(var(self.f[i]), int(self.spec.fuel())),
        ]))
    }

    /// Quadrant `i` never leaves its grid:
    /// `invariant (xᵢ ≤ side−1 ∧ yᵢ ≤ side−1)` — every component proves
    /// it, so `lift-universal` closes it.
    pub fn bounds(&self, i: usize) -> Property {
        let m = self.spec.side - 1;
        Property::Invariant(and2(le(var(self.x[i]), int(m)), le(var(self.y[i]), int(m))))
    }

    /// Once quadrant `i` parks, it stays parked: `stable (fᵢ = 0)` —
    /// component `i` proves the guards are off at the corner, every
    /// other component proves locality; `lift-universal` closes it.
    pub fn settled(&self, i: usize) -> Property {
        Property::Stable(eq(var(self.f[i]), int(0)))
    }

    /// Quadrant `i` eventually parks: `true ↦ fᵢ = 0` — decided on the
    /// cone-of-influence slice, which is exactly quadrant `i`'s own
    /// `side²`-state grid.
    pub fn arrival(&self, i: usize) -> Property {
        Property::LeadsTo(tt(), eq(var(self.f[i]), int(0)))
    }

    /// The per-quadrant fuel law `invariant xᵢ + yᵢ + fᵢ = 2(side−1)`.
    /// True of the composition, but **not** liftable: component `j ≠ i`
    /// cannot establish the inductive base (its initial condition says
    /// nothing about quadrant `i`), so this is the canonical
    /// product-fallback residue.
    pub fn conservation(&self, i: usize) -> Property {
        Property::Invariant(eq(
            sum(vec![var(self.x[i]), var(self.y[i]), var(self.f[i])]),
            int(self.spec.fuel()),
        ))
    }

    /// All quadrants eventually park at once: `true ↦ ⋀ᵢ fᵢ = 0`. The
    /// cone is the whole system, so slicing buys nothing and the check
    /// falls back to the product space.
    pub fn joint_arrival(&self) -> Property {
        Property::LeadsTo(tt(), self.all_parked())
    }

    /// The predicate `⋀ᵢ fᵢ = 0`.
    pub fn all_parked(&self) -> Expr {
        and(self.f.iter().map(|&fi| eq(var(fi), int(0))).collect())
    }

    /// The default battery: `origin`, `bounds`, `settled`, `arrival`
    /// for every quadrant — `4n` obligations, all of which the
    /// assume-guarantee rules discharge without building the product.
    pub fn checks(&self) -> Vec<(String, Property)> {
        let mut out = Vec::with_capacity(4 * self.spec.n);
        for i in 0..self.spec.n {
            out.push((format!("origin{i}"), self.origin(i)));
            out.push((format!("bounds{i}"), self.bounds(i)));
            out.push((format!("settled{i}"), self.settled(i)));
            out.push((format!("arrival{i}"), self.arrival(i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_mc::prelude::*;

    fn named(grid: &QuadrantGrid) -> Vec<NamedCheck> {
        grid.checks()
            .into_iter()
            .enumerate()
            .map(|(line, (name, property))| NamedCheck {
                name,
                property,
                line,
            })
            .collect()
    }

    #[test]
    fn component_spaces_are_small_while_the_product_is_exponential() {
        let grid = quadrant_grid(QuadrantSpec::new(3, 3)).unwrap();
        assert_eq!(grid.system.len(), 3);
        assert_eq!(grid.system.composed.commands.len(), 6);
        // Reachable product: each quadrant independently roams its
        // side² positions (fuel is a function of position).
        let ts = TransitionSystem::build(
            &grid.system.composed,
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        assert_eq!(ts.len(), 9 * 9 * 9, "side²ⁿ reachable product states");
    }

    #[test]
    fn default_battery_discharges_without_the_product() {
        let grid = quadrant_grid(QuadrantSpec::new(3, 3)).unwrap();
        let mut cv = CompositionalVerifier::new(&grid.system, ScanConfig::default());
        let report = cv.verify_all(&named(&grid));
        assert!(report.all_passed(), "{:?}", report.checks);
        assert!(cv.product_status().is_none(), "product never opened");
        let stats = cv.stats();
        assert_eq!(stats.obligations, 12);
        assert_eq!(stats.lift_existential, 3, "origins");
        assert_eq!(stats.lift_universal, 6, "bounds + settled");
        assert_eq!(stats.cone, 3, "arrivals");
        assert_eq!(stats.product_fallbacks, 0);
    }

    #[test]
    fn default_battery_matches_the_flat_verdicts() {
        let grid = quadrant_grid(QuadrantSpec::new(2, 3)).unwrap();
        let checks = named(&grid);
        let cfg = ScanConfig::default();
        let (comp, _) =
            Verifier::verify_compositional(&grid.system, &checks, cfg.clone(), Universe::Reachable);
        let flat = Verifier::new(&grid.system.composed, cfg).verify_all(&checks);
        for (c, f) in comp.checks.iter().zip(&flat.checks) {
            assert_eq!(c.verdict.outcome, f.verdict.outcome, "{}", c.name);
        }
    }

    #[test]
    fn conservation_and_joint_arrival_are_the_product_residue() {
        let grid = quadrant_grid(QuadrantSpec::new(2, 3)).unwrap();
        let mut cv = CompositionalVerifier::new(&grid.system, ScanConfig::default());
        for prop in [grid.conservation(0), grid.joint_arrival()] {
            let verdict = cv.verify(&prop);
            assert!(verdict.passed());
            assert_eq!(verdict.discharge.as_ref().unwrap().rule, "product-fallback");
        }
        assert_eq!(cv.stats().product_fallbacks, 2);
        assert!(cv.product_status().is_some());
    }
}
