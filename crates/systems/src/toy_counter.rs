//! §3 of the paper: the shared-counter toy example.
//!
//! N components each own a local counter `cᵢ` and share a global counter
//! `C`; each performs an action `a` that increments both simultaneously.
//! The component specification is exactly the paper's (1)–(4):
//!
//! ```text
//! (1)  init (cᵢ = 0 ∧ C = 0)
//! (2)  ⟨∀k :: stable (C − cᵢ = k)⟩            — here: unchanged (C − cᵢ)
//! (3)  ⟨∀v ≠ cᵢ, C; k :: stable (v = k)⟩      — locality, from `local cᵢ`
//! ```
//!
//! and the system goal is `invariant C = Σᵢ cᵢ` (the paper's (4)).
//!
//! Counters are bounded (`cᵢ ∈ 0..K`, `C ∈ 0..N·K`) so the state space is
//! finite; increments are guarded by `cᵢ < K`, which keeps the bound from
//! ever blocking `C`'s update (`C = Σ cᵢ ≤ N·K` whenever the guard holds —
//! see the domain-blocking lint test).

use std::sync::Arc;

use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::error::CoreError;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;

/// Parameters of the toy system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToySpec {
    /// Number of components.
    pub n: usize,
    /// Per-component counter bound `K` (counters range over `0..=K`).
    pub k: i64,
}

impl ToySpec {
    /// Creates a spec; `n ≥ 1`, `k ≥ 1`.
    pub fn new(n: usize, k: i64) -> Self {
        assert!(n >= 1 && k >= 1, "need n >= 1 and k >= 1");
        ToySpec { n, k }
    }
}

/// The built toy system with its variable handles.
#[derive(Debug, Clone)]
pub struct ToySystem {
    /// Parameters.
    pub spec: ToySpec,
    /// The composed system (components share the vocabulary).
    pub system: System,
    /// Ids of the local counters `c₀..`.
    pub counters: Vec<VarId>,
    /// Id of the shared counter `C`.
    pub shared: VarId,
}

/// Builds the paper's toy system with symmetric initial conditions
/// (`init cᵢ = 0 ∧ C = 0` in every component — the paper's preferred,
/// symmetric form; see [`toy_system_asymmetric`] for footnote 1).
pub fn toy_system(spec: ToySpec) -> Result<ToySystem, CoreError> {
    build(spec, InitStyle::Symmetric)
}

/// The paper's footnote-1 variant: component 0 instead assumes
/// `init C = c₀` and the others `init cᵢ = 0`, introducing a dissymmetry
/// but still pinning `C = Σ cᵢ` initially.
pub fn toy_system_asymmetric(spec: ToySpec) -> Result<ToySystem, CoreError> {
    build(spec, InitStyle::Asymmetric)
}

/// A deliberately broken variant: component `faulty` forgets to update `C`
/// along with its own counter, violating specification (2). Used by tests
/// and the fault-injection experiments to show both the proof and the
/// model checker reject it.
pub fn toy_system_broken(spec: ToySpec, faulty: usize) -> Result<ToySystem, CoreError> {
    assert!(faulty < spec.n);
    build(spec, InitStyle::Broken(faulty))
}

enum InitStyle {
    Symmetric,
    Asymmetric,
    Broken(usize),
}

fn build(spec: ToySpec, style: InitStyle) -> Result<ToySystem, CoreError> {
    let mut vocab = Vocabulary::new();
    let counters: Vec<VarId> = (0..spec.n)
        .map(|i| vocab.declare(&format!("c{i}"), Domain::int_range(0, spec.k)?))
        .collect::<Result<_, _>>()?;
    let shared = vocab.declare("C", Domain::int_range(0, spec.n as i64 * spec.k)?)?;
    let vocab = Arc::new(vocab);

    let mut components = Vec::with_capacity(spec.n);
    for (i, &ci) in counters.iter().enumerate() {
        let init_pred = match style {
            InitStyle::Asymmetric if i == 0 => eq(var(shared), var(ci)),
            InitStyle::Asymmetric => eq(var(ci), int(0)),
            _ => and2(eq(var(ci), int(0)), eq(var(shared), int(0))),
        };
        let broken = matches!(style, InitStyle::Broken(f) if f == i);
        let updates = if broken {
            vec![(ci, add(var(ci), int(1)))]
        } else {
            vec![
                (ci, add(var(ci), int(1))),
                (shared, add(var(shared), int(1))),
            ]
        };
        let program = Program::builder(format!("Component{i}"), vocab.clone())
            .local(ci)
            .init(init_pred)
            .fair_command(format!("a{i}"), lt(var(ci), int(spec.k)), updates)
            .build()?;
        components.push(program);
    }
    let system = System::compose(components, InitSatCheck::BoundedExhaustive(1 << 22))?;
    Ok(ToySystem {
        spec,
        system,
        counters,
        shared,
    })
}

impl ToySystem {
    /// The paper's (1) for component `i`: `init (cᵢ = 0 ∧ C = 0)`.
    pub fn spec_init(&self, i: usize) -> Property {
        Property::Init(and2(
            eq(var(self.counters[i]), int(0)),
            eq(var(self.shared), int(0)),
        ))
    }

    /// The paper's (2) for component `i`, in `unchanged` form:
    /// `⟨∀k :: stable (C − cᵢ = k)⟩  ≡  unchanged (C − cᵢ)`.
    pub fn spec_unchanged(&self, i: usize) -> Property {
        Property::Unchanged(sub(var(self.shared), var(self.counters[i])))
    }

    /// The paper's (3) for component `i` and foreign variable `v`:
    /// `unchanged v` for every `v ∉ {cᵢ, C}` (locality).
    pub fn spec_locality(&self, i: usize) -> Vec<Property> {
        self.counters
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &cj)| Property::Unchanged(var(cj)))
            .collect()
    }

    /// The expression `Σⱼ cⱼ`.
    pub fn sum_expr(&self) -> Expr {
        sum(self.counters.iter().map(|&c| var(c)).collect())
    }

    /// The canonical difference expression `C − Σⱼ cⱼ` used by the proof.
    pub fn difference_expr(&self) -> Expr {
        sub(var(self.shared), self.sum_expr())
    }

    /// The target system property (paper (4)): `invariant C = Σⱼ cⱼ`,
    /// stated as `invariant (C − Σⱼ cⱼ = 0)` (the canonical form the
    /// mechanized proof concludes; the two are equivalent over the finite
    /// domains).
    pub fn system_invariant(&self) -> Property {
        Property::Invariant(eq(self.difference_expr(), int(0)))
    }

    /// The same invariant in the paper's surface form `C = Σⱼ cⱼ`.
    pub fn system_invariant_surface(&self) -> Property {
        Property::Invariant(eq(var(self.shared), self.sum_expr()))
    }

    /// Terminal-progress property: under weak fairness every counter
    /// saturates, so `true ↦ C = N·K` (not stated in the paper, but the
    /// natural liveness companion; exercised in the experiments).
    pub fn saturation_liveness(&self) -> Property {
        Property::LeadsTo(
            tt(),
            eq(var(self.shared), int(self.spec.n as i64 * self.spec.k)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_mc::prelude::*;

    #[test]
    fn builds_and_has_single_initial_state() {
        let toy = toy_system(ToySpec::new(3, 2)).unwrap();
        let inits = toy.system.initial_states();
        assert_eq!(inits.len(), 1);
        assert_eq!(toy.system.composed.commands.len(), 3);
        assert_eq!(toy.system.composed.fair.len(), 3);
    }

    #[test]
    fn component_specs_hold() {
        let toy = toy_system(ToySpec::new(2, 2)).unwrap();
        let cfg = ScanConfig::default();
        for i in 0..2 {
            let comp = &toy.system.components[i];
            check_property(comp, &toy.spec_init(i), Universe::Reachable, &cfg).unwrap();
            check_property(comp, &toy.spec_unchanged(i), Universe::Reachable, &cfg).unwrap();
            for loc in toy.spec_locality(i) {
                check_property(comp, &loc, Universe::Reachable, &cfg).unwrap();
            }
        }
    }

    #[test]
    fn system_invariant_holds() {
        for (n, k) in [(1usize, 1i64), (2, 2), (3, 1), (3, 2)] {
            let toy = toy_system(ToySpec::new(n, k)).unwrap();
            let inv = toy.system_invariant();
            check_property(
                &toy.system.composed,
                &inv,
                Universe::Reachable,
                &ScanConfig::default(),
            )
            .unwrap();
            // Surface form too.
            check_property(
                &toy.system.composed,
                &toy.system_invariant_surface(),
                Universe::Reachable,
                &ScanConfig::default(),
            )
            .unwrap();
        }
    }

    #[test]
    fn asymmetric_variant_also_works() {
        let toy = toy_system_asymmetric(ToySpec::new(3, 1)).unwrap();
        // More initial states (c0 = C free along the diagonal).
        assert!(toy.system.initial_states().len() > 1);
        check_property(
            &toy.system.composed,
            &toy.system_invariant(),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn broken_component_refutes_spec_and_invariant() {
        let toy = toy_system_broken(ToySpec::new(2, 2), 1).unwrap();
        let cfg = ScanConfig::default();
        // The faulty component violates its own (2).
        let bad = check_property(
            &toy.system.components[1],
            &toy.spec_unchanged(1),
            Universe::Reachable,
            &cfg,
        );
        assert!(bad.is_err());
        // And the system invariant is refuted.
        assert!(check_property(
            &toy.system.composed,
            &toy.system_invariant(),
            Universe::Reachable,
            &cfg
        )
        .is_err());
    }

    #[test]
    fn guards_never_rely_on_domain_blocking() {
        // With the c_i < K guards, the implicit domain guard never fires on
        // reachable states: C = Σ c_i < N·K whenever some c_i < K.
        let toy = toy_system(ToySpec::new(2, 2)).unwrap();
        let ts = TransitionSystem::build(
            &toy.system.composed,
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        ts.for_each_state(|_, s| {
            for c in &toy.system.composed.commands {
                let declared = unity_core::expr::eval::eval_bool(&c.guard, s);
                let blocked = unity_core::expr::eval::eval_bool(
                    &c.domain_block_pred(&toy.system.composed.vocab),
                    s,
                );
                assert!(
                    !(declared && blocked),
                    "domain guard engaged on a reachable state"
                );
            }
        });
    }

    #[test]
    fn saturation_liveness_holds() {
        let toy = toy_system(ToySpec::new(2, 2)).unwrap();
        check_property(
            &toy.system.composed,
            &toy.saturation_liveness(),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
    }
}
