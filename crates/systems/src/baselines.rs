//! Baseline mechanisms for the comparison experiments.
//!
//! The paper has no experimental baselines; these provide the natural
//! comparison points for the E4/E7 experiments:
//!
//! * [`static_priority_system`] — orientations that never change
//!   (components violate the paper's (14) `transient Priority(i)`):
//!   safety still holds, liveness starves every non-source node.
//! * [`broken_yield_system`] — a faulty yield that flips only *one* edge
//!   (violating (15)): acyclicity preservation (25) fails, and with it the
//!   liveness argument's foundation.
//! * [`centralized_arbiter`] — a token ring: the trivially fair
//!   centralized alternative the distributed mechanism competes against.

use std::sync::Arc;

use prio_graph::graph::ConflictGraph;
use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::error::CoreError;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::Vocabulary;
use unity_core::program::Program;

use crate::priority::{PrioritySystem, PrioritySystemBuilder};

/// A priority system whose components never yield: each component's fair
/// command is a guarded no-op. Violates the paper's (14); liveness (18)
/// fails for every node that does not start with priority.
pub fn static_priority_system(graph: Arc<ConflictGraph>) -> Result<PrioritySystem, CoreError> {
    let base = PrioritySystemBuilder::new(graph.clone()).build()?;
    let vocab = base.system.vocab().clone();
    let n = graph.node_count();
    let mut components = Vec::with_capacity(n);
    for i in 0..n {
        let program = Program::builder(format!("StaticNode{i}"), vocab.clone())
            .init(base.system.components[i].init.clone())
            .fair_command(format!("work{i}"), base.priority_expr(i), vec![])
            .build()?;
        components.push(program);
    }
    let system = System::compose(components, InitSatCheck::BoundedExhaustive(1 << 22))?;
    Ok(PrioritySystem {
        graph,
        system,
        edge_vars: base.edge_vars,
    })
}

/// A faulty variant violating the paper's (15): the yield flips only the
/// *first* incident edge instead of all of them, so a yielding node can
/// close a directed cycle. Acyclicity (25) is not preserved.
pub fn broken_yield_system(graph: Arc<ConflictGraph>) -> Result<PrioritySystem, CoreError> {
    let base = PrioritySystemBuilder::new(graph.clone()).build()?;
    let vocab = base.system.vocab().clone();
    let n = graph.node_count();
    let mut components = Vec::with_capacity(n);
    for i in 0..n {
        let mut updates = Vec::new();
        if let Some(j) = graph.neighbors(i).iter().next() {
            let e = graph.edge_id(i, j).expect("incident edge");
            let (u, _) = graph.endpoints(e);
            updates.push((base.edge_vars[e as usize], boolean(j == u)));
        }
        let program = Program::builder(format!("BrokenNode{i}"), vocab.clone())
            .init(base.system.components[i].init.clone())
            .fair_command(format!("halfyield{i}"), base.priority_expr(i), updates)
            .build()?;
        components.push(program);
    }
    let system = System::compose(components, InitSatCheck::BoundedExhaustive(1 << 22))?;
    Ok(PrioritySystem {
        graph,
        system,
        edge_vars: base.edge_vars,
    })
}

/// A centralized round-robin arbiter over `n` clients: a single token
/// variable `turn` advanced by one fair command. "Priority" of client `i`
/// is `turn = i`.
pub struct Arbiter {
    /// The composed (single-component) system.
    pub system: System,
    /// Number of clients.
    pub n: usize,
    /// The `turn` variable.
    pub turn: unity_core::ident::VarId,
}

impl Arbiter {
    /// The arbiter's "priority" predicate for client `i`.
    pub fn priority_expr(&self, i: usize) -> Expr {
        eq(var(self.turn), int(i as i64))
    }
}

/// Builds the centralized arbiter baseline.
pub fn centralized_arbiter(n: usize) -> Result<Arbiter, CoreError> {
    assert!(n >= 1);
    let mut vocab = Vocabulary::new();
    let turn = vocab.declare("turn", Domain::int_range(0, n as i64 - 1)?)?;
    let vocab = Arc::new(vocab);
    let program = Program::builder("Arbiter", vocab)
        .init(eq(var(turn), int(0)))
        .fair_command(
            "advance",
            tt(),
            vec![(turn, rem(add(var(turn), int(1)), int(n as i64)))],
        )
        .build()?;
    let system = System::compose(vec![program], InitSatCheck::Exhaustive)?;
    Ok(Arbiter { system, n, turn })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::properties::Property;
    use unity_mc::prelude::*;

    fn ring(n: usize) -> Arc<ConflictGraph> {
        Arc::new(prio_graph::topology::ring(n))
    }

    #[test]
    fn static_system_keeps_safety_but_starves() {
        let sys = static_priority_system(ring(4)).unwrap();
        let cfg = ScanConfig::default();
        check_property(
            &sys.system.composed,
            &sys.safety_invariant(),
            Universe::Reachable,
            &cfg,
        )
        .unwrap();
        // Node 0 has initial priority and keeps it; node 1 starves.
        check_property(
            &sys.system.composed,
            &sys.liveness(0),
            Universe::Reachable,
            &cfg,
        )
        .unwrap();
        assert!(
            check_property(
                &sys.system.composed,
                &sys.liveness(1),
                Universe::Reachable,
                &cfg
            )
            .is_err(),
            "without (14) the mechanism starves non-sources"
        );
    }

    #[test]
    fn broken_yield_loses_acyclicity() {
        let sys = broken_yield_system(ring(3)).unwrap();
        let cfg = ScanConfig::default();
        // Property 5 fails: acyclicity is not stable.
        let r = check_property(
            &sys.system.composed,
            &sys.acyclicity_stable(),
            Universe::Reachable,
            &cfg,
        );
        assert!(r.is_err(), "violating (15) breaks acyclicity preservation");
    }

    #[test]
    fn arbiter_is_fair() {
        let arb = centralized_arbiter(4).unwrap();
        let cfg = ScanConfig::default();
        for i in 0..4 {
            check_property(
                &arb.system.composed,
                &Property::LeadsTo(unity_core::expr::build::tt(), arb.priority_expr(i)),
                Universe::Reachable,
                &cfg,
            )
            .unwrap();
        }
        // Mutual exclusion is structural: turn has one value.
        check_property(
            &arb.system.composed,
            &Property::Invariant(unity_core::expr::build::le(
                unity_core::expr::build::var(arb.turn),
                unity_core::expr::build::int(3),
            )),
            Universe::Reachable,
            &cfg,
        )
        .unwrap();
    }
}
