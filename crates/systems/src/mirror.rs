//! An order-hostile composed workload: two mirrored rings stepping in
//! lockstep.
//!
//! Two rings of `n` boolean cells are declared *en bloc* — all of ring
//! A's cells first, then all of ring B's — exactly how a composed
//! specification naturally lists one component's vocabulary after the
//! other's. The commands, however, couple the rings *across* the
//! blocks: `flip i` toggles cell `i` of **both** rings simultaneously
//! (a shared action in the paper's superposition sense), guarded by the
//! mirror condition on the preceding ring position, which links
//! neighbouring flips around each ring.
//!
//! From the all-false initial state the reachable set is the full
//! mirror diagonal `{ (x, x) : x ∈ 𝔹ⁿ }` — `2ⁿ` states whose BDD is
//! *exponential* (`Θ(2ⁿ)` nodes) under the blocked declaration order
//! but *linear* (`3n + 2` nodes) once each `aᵢ` sits next to its `bᵢ`.
//! This is precisely the regime the ROADMAP's reordering item calls
//! out: the variable-dependency graph (which pairs `aᵢ` with `bᵢ`)
//! crosses the declaration order, so declaration-order BDDs blow up
//! while the static dependency order stays small. The `e18_reorder`
//! bench group and the order-independence proptests are built on this
//! system.

use std::sync::Arc;

use unity_core::domain::Domain;
use unity_core::error::CoreError;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;

/// Two mirrored `n`-cell rings flipping in lockstep (see the module
/// docs for why this is order-hostile).
pub struct MirroredRings {
    /// The composed program (single `Program`; the two rings share
    /// every command).
    pub program: Program,
    /// Ring A's cells, in ring order (declared first, en bloc).
    pub a: Vec<VarId>,
    /// Ring B's cells, in ring order (declared after all of A).
    pub b: Vec<VarId>,
}

/// Builds the mirrored-rings system with `n ≥ 2` cells per ring.
pub fn mirrored_rings(n: usize) -> Result<MirroredRings, CoreError> {
    build_rings(n, false)
}

/// The *opaque* variant: every flip is guarded by the **whole** mirror
/// condition `⋀ⱼ aⱼ = bⱼ` instead of just the preceding position. The
/// reachable set is the same full diagonal, but the variable
/// co-occurrence graph is now complete — every command reads every
/// variable — so the static dependency heuristic degenerates to the
/// declaration order and *dynamic sifting is the only rescue*: the
/// per-command transition relations themselves are `Θ(2ⁿ)` until the
/// build-time watermark sift discovers the pairing. The workload that
/// separates `--order static` from `--order sift`.
pub fn mirrored_rings_opaque(n: usize) -> Result<MirroredRings, CoreError> {
    build_rings(n, true)
}

fn build_rings(n: usize, opaque: bool) -> Result<MirroredRings, CoreError> {
    assert!(n >= 2, "a ring needs at least two cells");
    let mut vocab = Vocabulary::new();
    let a: Vec<VarId> = (0..n)
        .map(|i| vocab.declare(&format!("a{i}"), Domain::Bool))
        .collect::<Result<_, _>>()?;
    let b: Vec<VarId> = (0..n)
        .map(|i| vocab.declare(&format!("b{i}"), Domain::Bool))
        .collect::<Result<_, _>>()?;
    let init = and(a
        .iter()
        .chain(b.iter())
        .map(|&v| not(var(v)))
        .collect::<Vec<_>>());
    let name = if opaque {
        "mirrored_rings_opaque"
    } else {
        "mirrored_rings"
    };
    let mut builder = Program::builder(name, Arc::new(vocab)).init(init);
    for i in 0..n {
        let guard = if opaque {
            // Full mirror condition: semantically equivalent on the
            // reachable diagonal, structurally opaque to the
            // dependency heuristic.
            and(a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| iff(var(x), var(y)))
                .collect::<Vec<_>>())
        } else {
            // The ring coupling: a flip is enabled while the preceding
            // position is still mirrored (always true on the reachable
            // diagonal, so the full diagonal stays reachable).
            let prev = (i + n - 1) % n;
            iff(var(a[prev]), var(b[prev]))
        };
        builder = builder.fair_command(
            format!("flip{i}"),
            guard,
            vec![(a[i], not(var(a[i]))), (b[i], not(var(b[i])))],
        );
    }
    Ok(MirroredRings {
        program: builder.build()?,
        a,
        b,
    })
}

impl MirroredRings {
    /// Number of cells per ring.
    pub fn n(&self) -> usize {
        self.a.len()
    }

    /// The mirror predicate `⋀ᵢ aᵢ = bᵢ` (the reachable diagonal).
    pub fn mirrored(&self) -> Expr {
        and(self
            .a
            .iter()
            .zip(&self.b)
            .map(|(&x, &y)| iff(var(x), var(y)))
            .collect::<Vec<_>>())
    }

    /// `invariant mirrored` — the system safety property (every command
    /// flips both rings together, so the diagonal is inductive).
    pub fn mirror_invariant(&self) -> Property {
        Property::Invariant(self.mirrored())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_mc::prelude::*;

    #[test]
    fn reachable_set_is_the_full_diagonal() {
        let sys = mirrored_rings(4).unwrap();
        // Symbolic count (any order) vs the explicit transition system.
        let sym = reachable_count(&sys.program).unwrap();
        assert_eq!(sym, 1 << 4);
        let ts = TransitionSystem::build(&sys.program, Universe::Reachable, &ScanConfig::default())
            .unwrap();
        assert_eq!(sym, ts.len() as u128);
    }

    #[test]
    fn mirror_invariant_holds_on_all_engines() {
        let sys = mirrored_rings(3).unwrap();
        let inv = sys.mirror_invariant();
        for cfg in [
            ScanConfig::default(),
            ScanConfig::reference(),
            ScanConfig::symbolic(),
        ] {
            check_property(&sys.program, &inv, Universe::AllStates, &cfg).unwrap();
        }
    }

    #[test]
    fn opaque_variant_has_the_same_reachable_set() {
        let plain = mirrored_rings(4).unwrap();
        let opaque = mirrored_rings_opaque(4).unwrap();
        assert_eq!(
            reachable_count(&plain.program).unwrap(),
            reachable_count(&opaque.program).unwrap(),
        );
        check_property(
            &opaque.program,
            &opaque.mirror_invariant(),
            Universe::AllStates,
            &ScanConfig::symbolic(),
        )
        .unwrap();
    }

    #[test]
    fn static_order_interleaves_the_rings() {
        let sys = mirrored_rings(5).unwrap();
        let order = unity_symbolic::order::static_field_order(&sys.program);
        let n = sys.n();
        // Wherever aᵢ is placed, bᵢ is adjacent.
        for i in 0..n {
            let pa = order.iter().position(|&v| v == i).unwrap();
            let pb = order.iter().position(|&v| v == i + n).unwrap();
            assert_eq!(
                pa.abs_diff(pb),
                1,
                "a{i}/b{i} adjacent in static order {order:?}"
            );
        }
    }
}
