//! # unity-systems
//!
//! The paper's case studies, built on the `unity-core` API and verified
//! with `unity-mc`:
//!
//! * [`toy_counter`] — §3: N components sharing a global counter, with the
//!   local specifications (1)–(4) and the compositional §3.3 proof of
//!   `invariant C = Σᵢ cᵢ` encoded as a checkable derivation
//!   ([`toy_proof`]).
//! * [`priority`] — §4: the conflict-resolution priority mechanism over an
//!   arbitrary conflict graph, with the component specifications (13)–(16)
//!   and system specifications (17)–(18); [`priority_proofs`] mechanizes
//!   Properties 1–8.
//! * [`baselines`] — comparison mechanisms for the experiments: a static
//!   (never-yield) priority scheme that starves, and a centralized
//!   round-robin arbiter.
//! * [`dining`] — dining philosophers driven by the priority mechanism.
//! * [`resource`] — the conflict-table resource allocator sketched in the
//!   paper’s conclusion (its reference \[3\]).
//! * [`stabilize`] — Dijkstra's self-stabilizing K-state token ring: the
//!   showcase for the paper's all-states inductive semantics
//!   (convergence from *arbitrary* initial states).
//! * [`mirror`] — two mirrored rings stepping in lockstep: the
//!   order-hostile composed workload behind the `e18_reorder` variable-
//!   ordering experiments (declaration-order BDDs are exponential, the
//!   dependency order is linear).
//! * [`quadrants`] — N disjoint grid walkers whose product space is
//!   `side²ⁿ` while each component lives in `side²` states: the
//!   workload behind the `e23_compose` assume-guarantee experiments
//!   (the default battery discharges without ever building the
//!   product).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod dining;
pub mod drinking;
pub mod mirror;
pub mod priority;
pub mod priority_proofs;
pub mod quadrants;
pub mod resource;
pub mod stabilize;
pub mod toy_counter;
pub mod toy_proof;

/// Commonly used items.
pub mod prelude {
    pub use crate::baselines::{centralized_arbiter, static_priority_system};
    pub use crate::dining::{dining_system, DiningSpec};
    pub use crate::drinking::{drinking_system, DrinkGuard, DrinkingSpec, DrinkingSystem};
    pub use crate::mirror::{mirrored_rings, mirrored_rings_opaque, MirroredRings};
    pub use crate::priority::{PrioritySystem, PrioritySystemBuilder};
    pub use crate::quadrants::{quadrant_grid, QuadrantGrid, QuadrantSpec};
    pub use crate::resource::{resource_allocator, ResourceSpec};
    pub use crate::stabilize::{stabilizing_ring, StabilizeSpec, StabilizingRing};
    pub use crate::toy_counter::{toy_system, ToySpec};
}
