//! Drinking philosophers on the §4 priority substrate.
//!
//! The Chandy–Misra *drinking* philosophers generalize dining: a thirsty
//! philosopher needs only a **subset** of its incident bottles per
//! session, so non-conflicting neighbours may drink simultaneously. This
//! module realizes the problem on the paper's acyclic-orientation
//! substrate with three protocol moves per philosopher `i`:
//!
//! ```text
//! thirst_i^S : phase_i = 0                  -> phase_i := 1, need_i := S
//! drink_i    : phase_i = 1 ∧
//!              ⟨∀e=(i,j) : need_i(e) ⇒ i→j⟩ -> phase_i := 2
//! finish_i   : phase_i = 2                  -> phase_i := 0, need_i := ∅,
//!                                              yield all edges
//! grant_i    : phase_i = 0                  -> yield all edges
//! ```
//!
//! `thirst` is one (non-fair) command per subset `S` of incident edges —
//! the environment chooses the demand; `drink`, `finish` and `grant` are
//! weakly fair.
//!
//! Two points of contact with the paper's theory:
//!
//! * `finish` is exactly the §4 yield (specification (15)): a
//!   Definition-1 derivation through `i`, so Lemma 1 applies.
//! * `grant` — a *tranquil* node relinquishing priority — flips a node's
//!   edges to all-incoming **without** the priority precondition. This is
//!   not a Definition-1 derivation, but it is still acyclicity-safe: a
//!   node with no outgoing edges lies on no directed cycle, so making a
//!   node a sink can close no cycle. The tests check this sharper fact
//!   (`acyclicity_stable` holds even though Property 2's universal shape
//!   does not cover `grant`), an instructive boundary of the paper's
//!   universal property (22).
//!
//! Safety is the *bottle* exclusion — two neighbours never drink while
//! both needing the shared bottle — proved inductively via the
//! strengthening `drinking_i ⇒ ⟨∀e=(i,j) : need_i(e) ⇒ i→j⟩`; liveness
//! is `thirsty_i ↦ drinking_i`. Both are model-checked; the
//! fault-injected variant ([`DrinkGuard::Unguarded`]) demonstrates that
//! the priority conjunct is what carries safety.

use std::sync::Arc;

use prio_graph::graph::ConflictGraph;
use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::error::CoreError;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;

use crate::priority::PrioritySystem;

/// Tranquil phase.
pub const TRANQUIL: i64 = 0;
/// Thirsty phase.
pub const THIRSTY: i64 = 1;
/// Drinking phase.
pub const DRINKING: i64 = 2;

/// Guard discipline for the `drink` move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrinkGuard {
    /// The correct protocol: drink only with priority on every needed
    /// edge.
    Priority,
    /// Fault injection: drink whenever thirsty. Violates bottle
    /// exclusion; exists to demonstrate *why* the priority conjunct is
    /// load-bearing.
    Unguarded,
}

/// Parameters for the drinking system.
#[derive(Debug, Clone)]
pub struct DrinkingSpec {
    /// The conflict graph (bottles = edges).
    pub graph: Arc<ConflictGraph>,
    /// Guard discipline (use [`DrinkGuard::Priority`] unless injecting
    /// faults).
    pub guard: DrinkGuard,
}

impl DrinkingSpec {
    /// The correct protocol over `graph`.
    pub fn new(graph: Arc<ConflictGraph>) -> Self {
        DrinkingSpec {
            graph,
            guard: DrinkGuard::Priority,
        }
    }
}

/// The built drinking-philosophers system.
#[derive(Debug, Clone)]
pub struct DrinkingSystem {
    /// Priority-mechanism view sharing the edge-variable layout.
    pub mechanism: PrioritySystem,
    /// The composed system.
    pub system: System,
    /// Phase variable per philosopher.
    pub phases: Vec<VarId>,
    /// `needs[i]` lists `(edge id, need variable)` for node `i`'s
    /// incident edges.
    pub needs: Vec<Vec<(u32, VarId)>>,
}

/// Builds the drinking system over `spec.graph`.
pub fn drinking_system(spec: &DrinkingSpec) -> Result<DrinkingSystem, CoreError> {
    let graph = spec.graph.clone();
    let n = graph.node_count();

    // Vocabulary: edge orientations first (ids align with edge ids), then
    // phases, then per-(node, incident edge) need bits.
    let mut vocab = Vocabulary::new();
    let mut edge_vars = Vec::with_capacity(graph.edge_count());
    for &(u, v) in graph.edges() {
        edge_vars.push(vocab.declare(&format!("e_{u}_{v}"), Domain::Bool)?);
    }
    let mut phases: Vec<VarId> = Vec::with_capacity(n);
    for i in 0..n {
        phases.push(vocab.declare(&format!("phase{i}"), Domain::int_range(0, 2)?)?);
    }
    let mut needs: Vec<Vec<(u32, VarId)>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::new();
        for e in graph.incident_edges(i) {
            row.push((e, vocab.declare(&format!("need{i}_e{e}"), Domain::Bool)?));
        }
        needs.push(row);
    }
    let vocab = Arc::new(vocab);

    let mechanism_view = PrioritySystem {
        graph: graph.clone(),
        system: System {
            components: Vec::new(),
            composed: Program::builder("view", vocab.clone()).build()?,
            provenance: Vec::new(),
        },
        edge_vars: edge_vars.clone(),
    };

    // Initial orientation: every edge points low→high endpoint (acyclic);
    // edge var true ⇔ u→v for endpoints (u, v) with u < v, so all true.
    let init_edges = and(edge_vars.iter().map(|&e| var(e)).collect::<Vec<_>>());

    // i→j for the edge between i and j.
    let points = |i: usize, e: u32| -> Expr {
        let (u, _) = graph.endpoints(e);
        if i == u {
            var(edge_vars[e as usize])
        } else {
            not(var(edge_vars[e as usize]))
        }
    };
    // Yield all of i's edges: each incident edge points at i.
    let yield_updates = |i: usize| -> Vec<(VarId, Expr)> {
        graph
            .incident_edges(i)
            .into_iter()
            .map(|e| {
                let (u, _) = graph.endpoints(e);
                // After yielding, the *neighbour* has priority: edge var
                // true iff the neighbour is the low endpoint.
                (edge_vars[e as usize], boolean(u != i))
            })
            .collect()
    };

    let mut components = Vec::with_capacity(n);
    for (i, need_row) in needs.iter().enumerate() {
        let mut init = and2(init_edges.clone(), eq(var(phases[i]), int(TRANQUIL)));
        for &(_, nv) in need_row {
            init = and2(init, not(var(nv)));
        }
        let mut b = Program::builder(format!("Drinker{i}"), vocab.clone())
            .local(phases[i])
            .init(init);
        for &(_, nv) in need_row {
            b = b.local(nv);
        }

        // One (non-fair) thirst command per demand subset.
        for mask in 0..(1u32 << need_row.len()) {
            let mut updates = vec![(phases[i], int(THIRSTY))];
            for (k, &(_, nv)) in need_row.iter().enumerate() {
                updates.push((nv, boolean(mask & (1 << k) != 0)));
            }
            b = b.command(
                format!("thirst{i}_s{mask}"),
                eq(var(phases[i]), int(TRANQUIL)),
                updates,
            );
        }

        // drink: thirsty, and (per discipline) priority on needed edges.
        let mut drink_guard = eq(var(phases[i]), int(THIRSTY));
        if spec.guard == DrinkGuard::Priority {
            for &(e, nv) in need_row {
                drink_guard = and2(drink_guard, or2(not(var(nv)), points(i, e)));
            }
        }
        b = b.fair_command(
            format!("drink{i}"),
            drink_guard,
            vec![(phases[i], int(DRINKING))],
        );

        // finish: back to tranquil, clear demand, yield everything.
        let mut finish_updates = yield_updates(i);
        finish_updates.push((phases[i], int(TRANQUIL)));
        for &(_, nv) in need_row {
            finish_updates.push((nv, ff()));
        }
        b = b.fair_command(
            format!("finish{i}"),
            eq(var(phases[i]), int(DRINKING)),
            finish_updates,
        );

        // grant: a tranquil node becomes a sink (acyclicity-safe even
        // without the Definition-1 precondition).
        b = b.fair_command(
            format!("grant{i}"),
            eq(var(phases[i]), int(TRANQUIL)),
            yield_updates(i),
        );

        components.push(b.build()?);
    }
    let system = System::compose(components, InitSatCheck::BoundedExhaustive(1 << 22))?;
    Ok(DrinkingSystem {
        mechanism: mechanism_view,
        system,
        phases,
        needs,
    })
}

impl DrinkingSystem {
    /// Number of philosophers.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether there are no philosophers.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// `phase_i = DRINKING`.
    pub fn drinking_expr(&self, i: usize) -> Expr {
        eq(var(self.phases[i]), int(DRINKING))
    }

    /// `phase_i = THIRSTY`.
    pub fn thirsty_expr(&self, i: usize) -> Expr {
        eq(var(self.phases[i]), int(THIRSTY))
    }

    /// `need_i(e)` for an edge incident to `i`.
    pub fn need_expr(&self, i: usize, e: u32) -> Expr {
        let (_, nv) = self.needs[i]
            .iter()
            .find(|(eid, _)| *eid == e)
            .expect("edge incident to node");
        var(*nv)
    }

    /// Bottle exclusion: for every edge `(u, v)`, never both endpoints
    /// drinking while both need the bottle. Not inductive bare — check
    /// over reachable states, or use the strengthening below.
    pub fn bottle_exclusion(&self) -> Property {
        let mut parts = Vec::new();
        for (e, &(u, v)) in self.mechanism.graph.edges().iter().enumerate() {
            let e = e as u32;
            parts.push(not(and(vec![
                self.drinking_expr(u),
                self.need_expr(u, e),
                self.drinking_expr(v),
                self.need_expr(v, e),
            ])));
        }
        Property::Invariant(and(parts))
    }

    /// The inductive strengthening: a drinking philosopher holds priority
    /// on every needed edge.
    pub fn drinking_holds_needed(&self) -> Property {
        let graph = &self.mechanism.graph;
        let parts = (0..self.len())
            .map(|i| {
                let mut held = Vec::new();
                for &(e, nv) in &self.needs[i] {
                    let (u, _) = graph.endpoints(e);
                    let pts = if i == u {
                        var(self.mechanism.edge_vars[e as usize])
                    } else {
                        not(var(self.mechanism.edge_vars[e as usize]))
                    };
                    held.push(or2(not(var(nv)), pts));
                }
                implies(self.drinking_expr(i), and(held))
            })
            .collect();
        Property::Invariant(and(parts))
    }

    /// Starvation freedom: `thirsty_i ↦ drinking_i`.
    pub fn progress(&self, i: usize) -> Property {
        Property::LeadsTo(self.thirsty_expr(i), self.drinking_expr(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_mc::prelude::*;

    fn ring_drinking(n: usize, guard: DrinkGuard) -> DrinkingSystem {
        drinking_system(&DrinkingSpec {
            graph: Arc::new(prio_graph::topology::ring(n)),
            guard,
        })
        .unwrap()
    }

    #[test]
    fn builds_with_expected_shape() {
        let d = ring_drinking(3, DrinkGuard::Priority);
        assert_eq!(d.len(), 3);
        // Per philosopher: 4 thirst subsets (degree 2) + drink + finish
        // + grant.
        assert_eq!(d.system.composed.commands.len(), 21);
        assert_eq!(d.system.initial_states().len(), 1);
        // Needs rows match degrees.
        for i in 0..3 {
            assert_eq!(d.needs[i].len(), 2);
        }
    }

    #[test]
    fn strengthening_is_inductive_over_reachable() {
        let d = ring_drinking(3, DrinkGuard::Priority);
        let pred = match d.drinking_holds_needed() {
            Property::Invariant(p) => p,
            _ => unreachable!(),
        };
        check_invariant_reachable(&d.system.composed, &pred, &ScanConfig::default()).unwrap();
    }

    #[test]
    fn bottle_exclusion_holds() {
        let d = ring_drinking(3, DrinkGuard::Priority);
        let pred = match d.bottle_exclusion() {
            Property::Invariant(p) => p,
            _ => unreachable!(),
        };
        check_invariant_reachable(&d.system.composed, &pred, &ScanConfig::default()).unwrap();
    }

    #[test]
    fn unguarded_variant_violates_bottle_exclusion() {
        let d = ring_drinking(3, DrinkGuard::Unguarded);
        let pred = match d.bottle_exclusion() {
            Property::Invariant(p) => p,
            _ => unreachable!(),
        };
        let err = check_invariant_reachable(&d.system.composed, &pred, &ScanConfig::default())
            .unwrap_err();
        assert!(matches!(err, McError::Refuted { .. }));
    }

    #[test]
    fn thirsty_philosophers_eventually_drink() {
        let d = ring_drinking(3, DrinkGuard::Priority);
        let cfg = ScanConfig::default();
        for i in 0..3 {
            check_property(
                &d.system.composed,
                &d.progress(i),
                Universe::Reachable,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("progress({i}): {e}"));
        }
    }

    #[test]
    fn acyclicity_survives_grant_moves() {
        // `grant` is not a Definition-1 derivation, yet acyclicity still
        // holds — the become-sink argument.
        let d = ring_drinking(3, DrinkGuard::Priority);
        let pred = match d.mechanism.acyclicity_stable() {
            Property::Stable(p) => p,
            _ => unreachable!(),
        };
        check_invariant_reachable(&d.system.composed, &pred, &ScanConfig::default()).unwrap();
    }

    #[test]
    fn non_conflicting_neighbours_can_drink_together() {
        // The whole point of drinking vs dining: find a reachable state
        // with two adjacent drinkers (with disjoint demands).
        let d = ring_drinking(3, DrinkGuard::Priority);
        let ts = TransitionSystem::build(
            &d.system.composed,
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
        let both = ts.states_where(|s| {
            unity_core::expr::eval::eval_bool(&d.drinking_expr(0), s)
                && unity_core::expr::eval::eval_bool(&d.drinking_expr(1), s)
        });
        assert!(
            !both.is_empty(),
            "adjacent philosophers with disjoint demands should drink together"
        );
    }

    #[test]
    fn path_topology_also_checks() {
        let d =
            drinking_system(&DrinkingSpec::new(Arc::new(prio_graph::topology::path(3)))).unwrap();
        let cfg = ScanConfig::default();
        let pred = match d.bottle_exclusion() {
            Property::Invariant(p) => p,
            _ => unreachable!(),
        };
        check_invariant_reachable(&d.system.composed, &pred, &cfg).unwrap();
        check_property(
            &d.system.composed,
            &d.progress(1),
            Universe::Reachable,
            &cfg,
        )
        .unwrap();
    }
}
