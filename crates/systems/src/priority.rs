//! §4 of the paper: the priority mechanism for conflicting components.
//!
//! The conflict graph `P` is fixed; its edge orientations are the system
//! state (one shared boolean per edge: `e_{u,v} = true ⇔ u → v`, "u has
//! priority over v"). Component `i` owns a single weakly-fair command:
//!
//! ```text
//! yield_i:  Priority(i) -> every incident edge points toward i
//! ```
//!
//! which realizes the paper's component specification:
//!
//! ```text
//! (13) ⟨∀b, j ∈ N(i) :: (i→j) = b ∧ ¬Priority(i) next (i→j) = b⟩
//! (14) transient Priority(i)
//! (15) Priority(i) next Priority(i) ∨ ⟨∀j ∈ N(i) :: j → i⟩
//! (16) ⟨∀b; j, j' ≠ i :: (j→j') = b next (j→j') = b⟩
//! ```
//!
//! System specifications: safety (17) — no two neighbours simultaneously
//! hold priority — and liveness (18) — `true ↦ Priority(i)` for every `i`.
//!
//! Reachability-closure notions (`A*`, acyclicity, `|A*(i)|`) are encoded
//! as *expressions over the edge variables* via simple-path/cycle
//! enumeration ([`prio_graph::paths`]), which is what lets the proof
//! kernel state and check the paper's Properties 1–8 on concrete
//! instances (see [`crate::priority_proofs`]).

use std::sync::Arc;

use prio_graph::graph::ConflictGraph;
use prio_graph::orientation::Orientation;
use prio_graph::paths::{simple_cycles, simple_paths};
use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::error::CoreError;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;
use unity_core::state::State;
use unity_core::value::Value;

/// How the initial orientation is constrained.
#[derive(Debug, Clone)]
pub enum InitialOrientation {
    /// `i → j` iff `i < j` (always acyclic; the default).
    IndexOrder,
    /// A specific orientation.
    Exact(Orientation),
    /// Unconstrained (`init true`) — every orientation is initial. Useful
    /// for checking universal properties; liveness from cyclic initial
    /// states does *not* hold (the paper assumes an acyclic start).
    Any,
}

/// Builder for [`PrioritySystem`].
pub struct PrioritySystemBuilder {
    graph: Arc<ConflictGraph>,
    init: InitialOrientation,
}

impl PrioritySystemBuilder {
    /// Starts a builder over `graph`.
    pub fn new(graph: Arc<ConflictGraph>) -> Self {
        PrioritySystemBuilder {
            graph,
            init: InitialOrientation::IndexOrder,
        }
    }

    /// Sets the initial-orientation constraint.
    pub fn initial(mut self, init: InitialOrientation) -> Self {
        self.init = init;
        self
    }

    /// Builds the system.
    pub fn build(self) -> Result<PrioritySystem, CoreError> {
        let graph = self.graph;
        let mut vocab = Vocabulary::new();
        let mut edge_vars = Vec::with_capacity(graph.edge_count());
        for (id, &(u, v)) in graph.edges().iter().enumerate() {
            let _ = id;
            edge_vars.push(vocab.declare(&format!("e_{u}_{v}"), Domain::Bool)?);
        }
        let vocab = Arc::new(vocab);

        let helper = PrioritySystem {
            graph: graph.clone(),
            system: System {
                components: Vec::new(),
                composed: Program::builder("placeholder", vocab.clone()).build()?,
                provenance: Vec::new(),
            },
            edge_vars: edge_vars.clone(),
        };

        let init_pred = match &self.init {
            InitialOrientation::IndexOrder => {
                and(edge_vars.iter().map(|&e| var(e)).collect::<Vec<_>>())
            }
            InitialOrientation::Exact(o) => {
                assert!(Arc::ptr_eq(o.graph(), &graph) || o.graph().as_ref() == graph.as_ref());
                and(o
                    .direction_bits()
                    .iter()
                    .enumerate()
                    .map(|(e, &d)| {
                        if d {
                            var(edge_vars[e])
                        } else {
                            not(var(edge_vars[e]))
                        }
                    })
                    .collect())
            }
            InitialOrientation::Any => tt(),
        };

        let n = graph.node_count();
        let mut components = Vec::with_capacity(n);
        for i in 0..n {
            let guard = helper.priority_expr(i);
            // Yield: every incident edge flips to point toward i.
            let updates: Vec<(VarId, Expr)> = graph
                .neighbors(i)
                .iter()
                .map(|j| {
                    let e = graph.edge_id(i, j).expect("incident edge");
                    let (u, _v) = graph.endpoints(e);
                    // j → i: direction bit true iff j is the lower endpoint.
                    let bit = j == u;
                    (edge_vars[e as usize], boolean(bit))
                })
                .collect();
            let program = Program::builder(format!("Node{i}"), vocab.clone())
                .init(init_pred.clone())
                .fair_command(format!("yield{i}"), guard, updates)
                .build()?;
            components.push(program);
        }
        let system = System::compose(components, InitSatCheck::BoundedExhaustive(1 << 22))?;
        Ok(PrioritySystem {
            graph,
            system,
            edge_vars,
        })
    }
}

/// The built priority mechanism.
#[derive(Debug, Clone)]
pub struct PrioritySystem {
    /// The conflict graph.
    pub graph: Arc<ConflictGraph>,
    /// The composed system (one component per node).
    pub system: System,
    /// Edge-orientation variables, indexed by edge id
    /// (`true ⇔ u → v` for endpoints `(u, v)` with `u < v`).
    pub edge_vars: Vec<VarId>,
}

impl PrioritySystem {
    /// Builds with default settings (index-order initial orientation).
    pub fn new(graph: Arc<ConflictGraph>) -> Result<Self, CoreError> {
        PrioritySystemBuilder::new(graph).build()
    }

    /// Number of components/nodes.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether the system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    // ----- expression encodings -----------------------------------------

    /// `i → j` as an expression (requires `i ~ j`).
    pub fn edge_points_expr(&self, i: usize, j: usize) -> Expr {
        let e = self.graph.edge_id(i, j).expect("conflict edge required");
        let (u, _) = self.graph.endpoints(e);
        if i == u {
            var(self.edge_vars[e as usize])
        } else {
            not(var(self.edge_vars[e as usize]))
        }
    }

    /// The paper's `Priority(i) ≝ ⟨∀j ∈ N(i) :: i → j⟩`.
    pub fn priority_expr(&self, i: usize) -> Expr {
        and(self
            .graph
            .neighbors(i)
            .iter()
            .map(|j| self.edge_points_expr(i, j))
            .collect())
    }

    /// `R*(i) = ∅` (no outgoing edge — equivalent to the closure being
    /// empty since any outgoing edge puts its head in `R*`).
    pub fn rstar_empty_expr(&self, i: usize) -> Expr {
        and(self
            .graph
            .neighbors(i)
            .iter()
            .map(|j| self.edge_points_expr(j, i))
            .collect())
    }

    /// A directed path `nodes[0] → nodes[1] → …` fully oriented forward.
    fn path_oriented_expr(&self, nodes: &[usize]) -> Expr {
        and(nodes
            .windows(2)
            .map(|w| self.edge_points_expr(w[0], w[1]))
            .collect())
    }

    /// `j ∈ A*(i)` — some simple path from `j` to `i` is fully oriented
    /// (for `j = i`: some simple cycle through `i` is oriented around).
    pub fn above_member_expr(&self, j: usize, i: usize) -> Expr {
        if j == i {
            let mut arms = Vec::new();
            for cycle in simple_cycles(&self.graph) {
                if cycle.contains(&i) {
                    arms.push(self.cycle_forward_expr(&cycle));
                    arms.push(self.cycle_backward_expr(&cycle));
                }
            }
            or(arms)
        } else {
            or(simple_paths(&self.graph, j, i)
                .iter()
                .map(|p| self.path_oriented_expr(p))
                .collect())
        }
    }

    fn cycle_forward_expr(&self, cycle: &[usize]) -> Expr {
        let mut parts: Vec<Expr> = cycle
            .windows(2)
            .map(|w| self.edge_points_expr(w[0], w[1]))
            .collect();
        parts.push(self.edge_points_expr(cycle[cycle.len() - 1], cycle[0]));
        and(parts)
    }

    fn cycle_backward_expr(&self, cycle: &[usize]) -> Expr {
        let mut parts: Vec<Expr> = cycle
            .windows(2)
            .map(|w| self.edge_points_expr(w[1], w[0]))
            .collect();
        parts.push(self.edge_points_expr(cycle[0], cycle[cycle.len() - 1]));
        and(parts)
    }

    /// `|A*(i)|` as an integer expression (counts every node including a
    /// possible self-membership through a cycle, so it is defined over
    /// *all* states, cyclic ones included).
    pub fn above_card_expr(&self, i: usize) -> Expr {
        sum((0..self.len())
            .map(|j| ite(self.above_member_expr(j, i), int(1), int(0)))
            .collect())
    }

    /// `A*(i) ⊆ a` for a concrete node set `a` (with `i ∉ a`): no node
    /// outside `a` (including `i` itself) is a member.
    pub fn above_subset_expr(&self, i: usize, a: &[usize]) -> Expr {
        let mut parts = vec![not(self.above_member_expr(i, i))];
        for k in 0..self.len() {
            if k != i && !a.contains(&k) {
                parts.push(not(self.above_member_expr(k, i)));
            }
        }
        and(parts)
    }

    /// `A*(i) = a` exactly.
    pub fn above_equals_expr(&self, i: usize, a: &[usize]) -> Expr {
        let mut parts = vec![self.above_subset_expr(i, a)];
        for &k in a {
            parts.push(self.above_member_expr(k, i));
        }
        and(parts)
    }

    /// The paper's `Acyclicity ≝ ⟨∀i :: i ∉ R*(i)⟩`: no simple cycle of
    /// the conflict graph is oriented all the way around (either
    /// direction).
    pub fn acyclicity_expr(&self) -> Expr {
        let mut parts = Vec::new();
        for cycle in simple_cycles(&self.graph) {
            parts.push(not(self.cycle_forward_expr(&cycle)));
            parts.push(not(self.cycle_backward_expr(&cycle)));
        }
        and(parts)
    }

    /// Lemma 2 instantiated at `i`: `|A*(i)| ≥ 1 ⇒ ∃j ∈ A*(i)` with
    /// priority. Valid exactly on acyclic orientations.
    pub fn lemma2_expr(&self, i: usize) -> Expr {
        let arms = (0..self.len())
            .filter(|&j| j != i)
            .map(|j| and2(self.above_member_expr(j, i), self.priority_expr(j)))
            .collect();
        implies(ge(self.above_card_expr(i), int(1)), or(arms))
    }

    // ----- the paper's numbered properties -------------------------------

    /// (13) for component `i`: its edges do not change while it lacks
    /// priority (one `next` property per incident edge and polarity).
    pub fn spec_13(&self, i: usize) -> Vec<Property> {
        let mut out = Vec::new();
        for j in self.graph.neighbors(i).iter() {
            for b in [true, false] {
                let lit = if b {
                    self.edge_points_expr(i, j)
                } else {
                    not(self.edge_points_expr(i, j))
                };
                out.push(Property::Next(
                    and2(lit.clone(), not(self.priority_expr(i))),
                    lit,
                ));
            }
        }
        out
    }

    /// (14) for component `i`: `transient Priority(i)`.
    pub fn spec_14(&self, i: usize) -> Property {
        Property::Transient(self.priority_expr(i))
    }

    /// (15) for component `i`: when it moves, it becomes lower-priority
    /// than all its neighbours.
    pub fn spec_15(&self, i: usize) -> Property {
        let all_in = and(self
            .graph
            .neighbors(i)
            .iter()
            .map(|j| self.edge_points_expr(j, i))
            .collect::<Vec<_>>());
        Property::Next(self.priority_expr(i), or2(self.priority_expr(i), all_in))
    }

    /// (16) for component `i`: non-incident edges are untouched
    /// (`unchanged` per foreign edge).
    pub fn spec_16(&self, i: usize) -> Vec<Property> {
        self.graph
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, &(u, v))| u != i && v != i)
            .map(|(e, _)| Property::Unchanged(var(self.edge_vars[e])))
            .collect()
    }

    /// (17): safety — no two neighbours hold priority simultaneously.
    pub fn safety_invariant(&self) -> Property {
        let body = and((0..self.len())
            .map(|i| {
                implies(
                    self.priority_expr(i),
                    and(self
                        .graph
                        .neighbors(i)
                        .iter()
                        .map(|j| not(self.priority_expr(j)))
                        .collect::<Vec<_>>()),
                )
            })
            .collect::<Vec<_>>());
        Property::Invariant(body)
    }

    /// (18): liveness — `true ↦ Priority(i)`.
    pub fn liveness(&self, i: usize) -> Property {
        Property::LeadsTo(tt(), self.priority_expr(i))
    }

    /// (25): `Acyclicity` is stable.
    pub fn acyclicity_stable(&self) -> Property {
        Property::Stable(self.acyclicity_expr())
    }

    /// The paper's Property 4 (24) stated for node `j`:
    /// `Priority(j) next Priority(j) ∨ R*(j) = ∅`.
    pub fn prop_24(&self, j: usize) -> Property {
        Property::Next(
            self.priority_expr(j),
            or2(self.priority_expr(j), self.rstar_empty_expr(j)),
        )
    }

    // ----- state helpers --------------------------------------------------

    /// Decodes a model-checker/simulator state into an [`Orientation`].
    pub fn orientation_of(&self, state: &State) -> Orientation {
        let mut bits = 0u64;
        for (e, &v) in self.edge_vars.iter().enumerate() {
            if state.get(v) == Value::Bool(true) {
                bits |= 1 << e;
            }
        }
        Orientation::from_bits(self.graph.clone(), bits)
    }

    /// Encodes an [`Orientation`] as a state.
    pub fn state_of(&self, o: &Orientation) -> State {
        State::new(o.direction_bits().iter().map(|&b| Value::Bool(b)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::prelude::*;
    use unity_core::expr::eval::eval_bool;
    use unity_mc::prelude::*;

    fn ring(n: usize) -> Arc<ConflictGraph> {
        Arc::new(prio_graph::topology::ring(n))
    }

    #[test]
    fn builds_with_single_initial_state() {
        let sys = PrioritySystem::new(ring(4)).unwrap();
        let inits = sys.system.initial_states();
        assert_eq!(inits.len(), 1);
        let o = sys.orientation_of(&inits[0]);
        assert!(is_acyclic(&o));
        assert!(o.priority(0), "node 0 starts with priority in index order");
    }

    #[test]
    fn expr_encodings_agree_with_graph_functions() {
        let sys = PrioritySystem::new(ring(5)).unwrap();
        // Check every orientation: expression semantics == closure library.
        for o in Orientation::enumerate(&sys.graph) {
            let s = sys.state_of(&o);
            for i in 0..5 {
                assert_eq!(
                    eval_bool(&sys.priority_expr(i), &s),
                    o.priority(i),
                    "priority mismatch"
                );
                let above = above_set(&o, i);
                for j in 0..5 {
                    assert_eq!(
                        eval_bool(&sys.above_member_expr(j, i), &s),
                        above.contains(j),
                        "membership {j} ∈ A*({i}) at bits {:b}",
                        o.to_bits()
                    );
                }
                let card = unity_core::expr::eval::eval_int(&sys.above_card_expr(i), &s) as usize;
                assert_eq!(card, above.len(), "cardinality mismatch");
            }
            assert_eq!(
                eval_bool(&sys.acyclicity_expr(), &s),
                is_acyclic(&o),
                "acyclicity mismatch at bits {:b}",
                o.to_bits()
            );
        }
    }

    #[test]
    fn component_specs_hold() {
        let sys = PrioritySystem::new(ring(4)).unwrap();
        let cfg = ScanConfig::default();
        for i in 0..4 {
            let comp = &sys.system.components[i];
            for p in sys.spec_13(i) {
                check_property(comp, &p, Universe::Reachable, &cfg).unwrap();
            }
            check_property(comp, &sys.spec_14(i), Universe::Reachable, &cfg).unwrap();
            check_property(comp, &sys.spec_15(i), Universe::Reachable, &cfg).unwrap();
            for p in sys.spec_16(i) {
                check_property(comp, &p, Universe::Reachable, &cfg).unwrap();
            }
        }
    }

    #[test]
    fn safety_and_liveness_hold_on_ring4() {
        let sys = PrioritySystem::new(ring(4)).unwrap();
        let cfg = ScanConfig::default();
        check_property(
            &sys.system.composed,
            &sys.safety_invariant(),
            Universe::Reachable,
            &cfg,
        )
        .unwrap();
        for i in 0..4 {
            check_property(
                &sys.system.composed,
                &sys.liveness(i),
                Universe::Reachable,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("liveness({i}): {e}"));
        }
    }

    #[test]
    fn acyclicity_is_stable_per_component_and_system() {
        let sys = PrioritySystem::new(ring(4)).unwrap();
        let cfg = ScanConfig::default();
        for comp in &sys.system.components {
            check_property(comp, &sys.acyclicity_stable(), Universe::Reachable, &cfg).unwrap();
        }
        check_property(
            &sys.system.composed,
            &sys.acyclicity_stable(),
            Universe::Reachable,
            &cfg,
        )
        .unwrap();
    }

    #[test]
    fn liveness_fails_from_cyclic_start() {
        // With an unconstrained (Any) initial orientation, cyclic starts
        // deadlock the ring: nobody has priority, nobody can yield.
        let sys = PrioritySystemBuilder::new(ring(3))
            .initial(InitialOrientation::Any)
            .build()
            .unwrap();
        let err = check_property(
            &sys.system.composed,
            &sys.liveness(0),
            Universe::Reachable,
            &ScanConfig::default(),
        );
        assert!(err.is_err(), "cyclic initial orientations violate liveness");
    }

    #[test]
    fn exact_initial_orientation() {
        let g = ring(3);
        let mut o = Orientation::index_order(g.clone());
        o.yield_node(0);
        let sys = PrioritySystemBuilder::new(g)
            .initial(InitialOrientation::Exact(o.clone()))
            .build()
            .unwrap();
        let inits = sys.system.initial_states();
        assert_eq!(inits.len(), 1);
        assert_eq!(sys.orientation_of(&inits[0]), o);
    }
}
