//! Machine-checked derivations of the paper's §4 properties.
//!
//! | Paper item | Here |
//! |---|---|
//! | Property 1 (21) / Property 2 (22) | [`check_steps_are_derivations`] — every component step is a no-op or a Definition-1 derivation |
//! | Safety (17) | [`safety_proof`] |
//! | Property 5 (25) — acyclicity stable | [`acyclicity_invariant_proof`] (stable half lifted universally) |
//! | Lemma 2 + Property 6 (26) | [`lemma2_invariant_proof`] — the "from graph theory" lemma becomes a validity scan |
//! | Property 7 (27) — escape | [`escape_proof`] (transient ∘ existential-lift ∘ PSP with (24)) |
//! | Property 8 / liveness (18) | [`liveness_proof`] — induction on `|A*(i)|` with per-cardinality disjunction over concrete above-sets, PSP, and invariant elimination |
//!
//! Every premise is a component-scope base fact discharged by the model
//! checker over *all* states (the paper's inductive semantics); every
//! side condition is a full-domain validity scan. The "creative" content —
//! which shared universal property to construct — lives in the *shape* of
//! these trees, exactly as in the paper.

use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::proof::rules::{induction_step_goal, Proof};
use unity_core::proof::{Judgment, Scope};
use unity_core::properties::Property;

use crate::priority::PrioritySystem;

/// Safety (17): `invariant ⟨∀i :: Priority(i) ⇒ no neighbour has it⟩`.
///
/// The paper calls this proof "trivial"; mechanized, it is an `init`
/// premise plus per-component `stable` premises lifted universally (the
/// predicate is in fact *valid* — two neighbours disagree on their shared
/// edge — which is what makes every premise discharge instantly).
pub fn safety_proof(sys: &PrioritySystem) -> (Proof, Judgment) {
    let prop = sys.safety_invariant();
    let pred = match &prop {
        Property::Invariant(p) => p.clone(),
        _ => unreachable!("safety_invariant returns an invariant"),
    };
    let stable = Proof::LiftUniversal {
        prop: Property::Stable(pred.clone()),
        per_component: (0..sys.len())
            .map(|k| Proof::premise(Judgment::component(k, Property::Stable(pred.clone()))))
            .collect(),
    };
    let init = Proof::premise(Judgment::system(Property::Init(pred.clone())));
    let proof = Proof::InvariantIntro {
        init: Box::new(init),
        stable: Box::new(stable),
    };
    (proof, Judgment::system(prop))
}

/// Property 5 (25) upgraded to an invariant: acyclic initially (the
/// builder's index orientation) and stable in every component, hence
/// `invariant Acyclicity` of the system.
pub fn acyclicity_invariant_proof(sys: &PrioritySystem) -> (Proof, Judgment) {
    let acyc = sys.acyclicity_expr();
    let stable = Proof::LiftUniversal {
        prop: Property::Stable(acyc.clone()),
        per_component: (0..sys.len())
            .map(|k| Proof::premise(Judgment::component(k, Property::Stable(acyc.clone()))))
            .collect(),
    };
    let init = Proof::premise(Judgment::system(Property::Init(acyc.clone())));
    let proof = Proof::InvariantIntro {
        init: Box::new(init),
        stable: Box::new(stable),
    };
    (proof, Judgment::system(Property::Invariant(acyc)))
}

/// Lemma 2 + Property 6 (26), instantiated at node `i`:
/// `invariant (Acyclicity ∧ (|A*(i)| ≥ 1 ⇒ ∃j ∈ A*(i) with priority))`.
///
/// The strengthening side condition `Acyclicity ⇒ lemma2(i)` *is* Lemma 2
/// on this conflict graph, discharged by exhaustive scan over all
/// orientations — the executable substitute for the paper's "from graph
/// theory".
pub fn lemma2_invariant_proof(sys: &PrioritySystem, i: usize) -> (Proof, Judgment) {
    let (acyc_proof, _) = acyclicity_invariant_proof(sys);
    let lemma2 = sys.lemma2_expr(i);
    let proof = Proof::InvariantStrengthen {
        sub: Box::new(acyc_proof),
        q: lemma2.clone(),
    };
    let concluded = and2(sys.acyclicity_expr(), lemma2);
    (proof, Judgment::system(Property::Invariant(concluded)))
}

/// Property 7 (27) for the pair `(j, i)`: `Priority(j) ↦ j ∉ A*(i)`.
///
/// Derivation (the paper's): `transient Priority(j)` is existential, so it
/// lifts from component `j`; the Transient rule gives
/// `true ↦ ¬Priority(j)`; PSP against Property 4 (24) — lifted universally
/// — yields `Priority(j) ↦ R*(j) = ∅`, and `R*(j) = ∅ ⇒ j ∉ A*(i)` by
/// duality (19).
///
/// Isolated nodes (no conflicts) hold priority forever; for them the
/// property is a plain implication (`j ∉ A*(i)` is valid).
pub fn escape_proof(sys: &PrioritySystem, j: usize, i: usize) -> Proof {
    let pr_j = sys.priority_expr(j);
    let not_mem = not(sys.above_member_expr(j, i));
    if sys.graph.degree(j) == 0 {
        return Proof::LtImplication {
            p: pr_j,
            q: not_mem,
        };
    }
    let transient_lift = Proof::LiftExistential {
        component: j,
        sub: Box::new(Proof::premise(Judgment::component(
            j,
            Property::Transient(pr_j.clone()),
        ))),
    };
    let lt_true = Proof::LtTransient {
        sub: Box::new(transient_lift),
    };
    let prop24 = sys.prop_24(j);
    let next24 = Proof::LiftUniversal {
        prop: prop24.clone(),
        per_component: (0..sys.len())
            .map(|k| Proof::premise(Judgment::component(k, prop24.clone())))
            .collect(),
    };
    let psp = Proof::LtPsp {
        lt: Box::new(lt_true),
        next: Box::new(next24),
    };
    Proof::LtMono {
        sub: Box::new(psp),
        p_new: pr_j,
        q_new: not_mem,
    }
}

/// All subsets of `0..n` excluding `i` with exactly `m` elements.
fn subsets_excluding(n: usize, i: usize, m: usize) -> Vec<Vec<usize>> {
    let pool: Vec<usize> = (0..n).filter(|&k| k != i).collect();
    let mut out = Vec::new();
    let mut current = Vec::new();
    fn rec(
        pool: &[usize],
        m: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == m {
            out.push(current.clone());
            return;
        }
        for k in start..pool.len() {
            current.push(pool[k]);
            rec(pool, m, k + 1, current, out);
            current.pop();
        }
    }
    rec(&pool, m, 0, &mut current, &mut out);
    out
}

/// Liveness (18) for node `i`: `true ↦ Priority(i)`, by induction on the
/// cardinality of `A*(i)` — the paper's Property 8, in full.
///
/// For each metric value `m ≥ 1` the step goal
/// `(|A*(i)| = m) ↦ (|A*(i)| < m ∨ |A*(i)| = 0)` is proved by a
/// disjunction over every concrete above-set `a` (`|a| = m`, `i ∉ a`) and
/// every candidate maximal node `j ∈ a`:
///
/// * [`escape_proof`] gives `Priority(j) ↦ j ∉ A*(i)`;
/// * the universal "above-sets of non-priority nodes never grow" property
///   (`(A*(i) ⊆ a ∧ ¬Priority(i)) next A*(i) ⊆ a` — the system face of
///   Property 3 (23) and Lemma 1) is lifted from the components;
/// * PSP combines them; monotonicity lands the goal shape;
/// * the Property-6 invariant supplies the existence of the priority node
///   `j` (rule `lt-invariant-lhs` — the paper's "from the invariant (26)").
pub fn liveness_proof(sys: &PrioritySystem, i: usize) -> (Proof, Judgment) {
    let n = sys.len();
    let card = sys.above_card_expr(i);
    let q_goal = eq(card.clone(), int(0));
    let bound = n as i64;
    let inv_pred = and2(sys.acyclicity_expr(), sys.lemma2_expr(i));

    let mut steps = Vec::with_capacity(n + 1);
    for m in 0..=bound {
        let (goal_l, goal_r) = induction_step_goal(&tt(), &q_goal, &card, m);
        if m == 0 {
            steps.push(Proof::LtImplication {
                p: goal_l,
                q: goal_r,
            });
            continue;
        }
        // Disjunction arms over concrete above-sets and witnesses.
        let mut arms = Vec::new();
        for a in subsets_excluding(n, i, m as usize) {
            for &j in &a {
                let lt27 = escape_proof(sys, j, i);
                // s: A*(i) ⊆ a and i lacks priority; t: A*(i) ⊆ a.
                let s = and2(sys.above_subset_expr(i, &a), not(sys.priority_expr(i)));
                let t = sys.above_subset_expr(i, &a);
                let next1_prop = Property::Next(s.clone(), t.clone());
                let next1 = Proof::LiftUniversal {
                    prop: next1_prop.clone(),
                    per_component: (0..n)
                        .map(|k| Proof::premise(Judgment::component(k, next1_prop.clone())))
                        .collect(),
                };
                let psp = Proof::LtPsp {
                    lt: Box::new(lt27),
                    next: Box::new(next1),
                };
                let arm_lhs = and2(sys.above_equals_expr(i, &a), sys.priority_expr(j));
                arms.push(Proof::LtMono {
                    sub: Box::new(psp),
                    p_new: arm_lhs,
                    q_new: goal_r.clone(),
                });
            }
        }
        let with_invariant_lhs = and2(goal_l.clone(), inv_pred.clone());
        let body = if arms.is_empty() {
            // No above-set of this size exists under the invariant (e.g.
            // m = n needs i ∈ A*(i), i.e. a cycle): vacuous implication.
            Proof::LtImplication {
                p: with_invariant_lhs.clone(),
                q: goal_r.clone(),
            }
        } else {
            Proof::LtMono {
                sub: Box::new(Proof::LtDisjunction { subs: arms }),
                p_new: with_invariant_lhs.clone(),
                q_new: goal_r.clone(),
            }
        };
        let (inv_proof, _) = lemma2_invariant_proof(sys, i);
        steps.push(Proof::LtInvariantLhs {
            lt: Box::new(body),
            inv: Box::new(inv_proof),
        });
    }
    let induction = Proof::LtInduction {
        p: tt(),
        q: q_goal,
        metric: card,
        bound,
        steps,
    };
    let final_proof = Proof::LtMono {
        sub: Box::new(induction),
        p_new: tt(),
        q_new: sys.priority_expr(i),
    };
    let conclusion = Judgment::new(Scope::System, sys.liveness(i));
    (final_proof, conclusion)
}

/// Properties 1 (21) and 2 (22), checked semantically: every command of
/// every component, from *every* orientation, either leaves the graph
/// unchanged or performs a Definition-1 derivation through its own node —
/// and hence every system step is legal. Returns the number of
/// (state, command) pairs checked.
pub fn check_steps_are_derivations(sys: &PrioritySystem) -> Result<usize, String> {
    use prio_graph::derive::{derives_through, is_legal_step};
    use prio_graph::orientation::Orientation;

    let mut checked = 0usize;
    for o in Orientation::enumerate(&sys.graph) {
        let state = sys.state_of(&o);
        for (ci, comp) in sys.system.components.iter().enumerate() {
            for cmd in &comp.commands {
                let after = cmd.step(&state, &comp.vocab);
                let o2 = sys.orientation_of(&after);
                checked += 1;
                // Property 1: the only changes component ci can make are
                // derivations through its own node.
                if o2 != o && !derives_through(&o, &o2, ci) {
                    return Err(format!(
                        "component {ci} made an illegal step from bits {:b}",
                        o.to_bits()
                    ));
                }
                // Property 2 (the shared universal property): the step is
                // legal at the system level too.
                if !is_legal_step(&o, &o2) {
                    return Err(format!(
                        "system step from bits {:b} is not identity-or-derivation",
                        o.to_bits()
                    ));
                }
            }
        }
    }
    Ok(checked)
}

/// Helper: the judgment concluded by [`escape_proof`].
pub fn escape_judgment(sys: &PrioritySystem, j: usize, i: usize) -> Judgment {
    Judgment::system(Property::LeadsTo(
        sys.priority_expr(j),
        not(sys.above_member_expr(j, i)),
    ))
}

/// Re-export of the expression `A*(i) = ∅` equivalence face used by (20):
/// `Priority(i) ⇔ |A*(i)| = 0` is validity-checkable on any instance.
pub fn prop20_expr(sys: &PrioritySystem, i: usize) -> Expr {
    iff(sys.priority_expr(i), eq(sys.above_card_expr(i), int(0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::PrioritySystem;
    use std::sync::Arc;
    use unity_core::proof::check::{check_concludes, CheckCtx};
    use unity_core::proof::AssumeAll;
    use unity_mc::prelude::*;

    fn ring_sys(n: usize) -> PrioritySystem {
        PrioritySystem::new(Arc::new(prio_graph::topology::ring(n))).unwrap()
    }

    fn path_sys(n: usize) -> PrioritySystem {
        PrioritySystem::new(Arc::new(prio_graph::topology::path(n))).unwrap()
    }

    #[test]
    fn steps_are_derivations_exhaustively() {
        for sys in [ring_sys(4), path_sys(4)] {
            let checked = check_steps_are_derivations(&sys).unwrap();
            assert!(checked > 0);
        }
    }

    #[test]
    fn safety_proof_discharges() {
        let sys = ring_sys(4);
        let (proof, conclusion) = safety_proof(&sys);
        let mut mc = McDischarger::new(&sys.system);
        let mut ctx = CheckCtx::new(&mut mc).with_components(sys.len());
        check_concludes(&proof, &conclusion, &mut ctx).unwrap();
    }

    #[test]
    fn acyclicity_invariant_proof_discharges() {
        for sys in [ring_sys(4), path_sys(3)] {
            let (proof, conclusion) = acyclicity_invariant_proof(&sys);
            let mut mc = McDischarger::new(&sys.system);
            let mut ctx = CheckCtx::new(&mut mc).with_components(sys.len());
            check_concludes(&proof, &conclusion, &mut ctx).unwrap();
        }
    }

    #[test]
    fn lemma2_invariant_proof_discharges() {
        let sys = ring_sys(4);
        let (proof, conclusion) = lemma2_invariant_proof(&sys, 2);
        let mut mc = McDischarger::new(&sys.system);
        let mut ctx = CheckCtx::new(&mut mc).with_components(sys.len());
        check_concludes(&proof, &conclusion, &mut ctx).unwrap();
    }

    #[test]
    fn escape_proof_discharges() {
        let sys = ring_sys(3);
        for j in 0..3 {
            for i in 0..3 {
                if i == j {
                    continue;
                }
                let proof = escape_proof(&sys, j, i);
                let expected = escape_judgment(&sys, j, i);
                let mut mc = McDischarger::new(&sys.system);
                let mut ctx = CheckCtx::new(&mut mc).with_components(sys.len());
                check_concludes(&proof, &expected, &mut ctx)
                    .unwrap_or_else(|e| panic!("escape({j},{i}): {e}"));
            }
        }
    }

    #[test]
    fn liveness_proof_structure_is_well_formed() {
        let sys = ring_sys(4);
        let (proof, conclusion) = liveness_proof(&sys, 1);
        let mut d = AssumeAll::default();
        let mut ctx = CheckCtx::new(&mut d).with_components(4);
        check_concludes(&proof, &conclusion, &mut ctx).unwrap();
        assert!(proof.node_count() > 50, "the induction has real content");
    }

    #[test]
    fn liveness_proof_discharges_on_ring3() {
        let sys = ring_sys(3);
        for i in 0..3 {
            let (proof, conclusion) = liveness_proof(&sys, i);
            let mut mc = McDischarger::new(&sys.system);
            let mut ctx = CheckCtx::new(&mut mc).with_components(3);
            check_concludes(&proof, &conclusion, &mut ctx)
                .unwrap_or_else(|e| panic!("liveness({i}): {e}"));
        }
    }

    #[test]
    fn liveness_proof_discharges_on_path3() {
        let sys = path_sys(3);
        let (proof, conclusion) = liveness_proof(&sys, 2);
        let mut mc = McDischarger::new(&sys.system);
        let mut ctx = CheckCtx::new(&mut mc).with_components(3);
        check_concludes(&proof, &conclusion, &mut ctx).unwrap();
    }

    #[test]
    fn prop20_is_valid() {
        let sys = ring_sys(4);
        for i in 0..4 {
            check_valid(
                sys.system.vocab(),
                &prop20_expr(&sys, i),
                &ScanConfig::default(),
            )
            .unwrap();
        }
    }

    #[test]
    fn proved_liveness_reverified_by_fair_mc() {
        let sys = ring_sys(3);
        let (_, conclusion) = liveness_proof(&sys, 0);
        check_property(
            &sys.system.composed,
            &conclusion.prop,
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
    }
}
