//! The §3.3 correctness proof, mechanized.
//!
//! The paper derives `invariant C = Σⱼ cⱼ` from the local specifications
//! by *weakening* each component's `stable (C − cᵢ = k)` into the shared
//! universal property `stable (C − Σⱼ cⱼ = k)` and lifting. The derivation
//! below is the same proof as a checkable tree:
//!
//! 1. per component `i`: premises `unchanged (C − cᵢ)` (spec (2)) and
//!    `unchanged cⱼ` for `j ≠ i` (locality (3));
//! 2. `unchanged-compose`: `unchanged ((C − cᵢ) − Σ_{j≠i} cⱼ)`
//!    (the "conjunction of stable properties, removing unused dummies");
//! 3. `unchanged-equiv` to the canonical `C − Σⱼ cⱼ` — the *weakened,
//!    shared* property of the paper;
//! 4. `lift-universal`: all components share it ⇒ the system has it;
//! 5. `init` facts are existential: each component's (1) lifts, their
//!    conjunction pins `C − Σⱼ cⱼ = 0` initially;
//! 6. `invariant-intro` concludes the goal.
//!
//! Every premise is discharged semantically by the model checker on the
//! component programs; side conditions by full-domain validity scans.

use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::proof::rules::Proof;
use unity_core::proof::{Judgment, Scope};
use unity_core::properties::Property;

use crate::toy_counter::ToySystem;

/// Builds the mechanized §3.3 derivation for `toy`. Returns the proof tree
/// and the judgment it concludes
/// (`system ⊨ invariant (C − Σⱼ cⱼ = 0)`).
pub fn toy_invariant_proof(toy: &ToySystem) -> (Proof, Judgment) {
    let n = toy.spec.n;
    let diff_canonical = toy.difference_expr();

    // --- safety half: the shared universal property -------------------
    let per_component: Vec<Proof> = (0..n)
        .map(|i| {
            let ci = toy.counters[i];
            // Spec (2): unchanged (C - c_i).
            let base = sub(var(toy.shared), var(ci));
            let mut parts = vec![Proof::premise(Judgment::component(
                i,
                Property::Unchanged(base.clone()),
            ))];
            // Locality (3): unchanged c_j for j != i.
            let mut foreign = Vec::new();
            for (j, &cj) in toy.counters.iter().enumerate() {
                if j != i {
                    parts.push(Proof::premise(Judgment::component(
                        i,
                        Property::Unchanged(var(cj)),
                    )));
                    foreign.push(var(cj));
                }
            }
            // Compose: (C - c_i) - sum(c_j for j != i), covered by parts.
            let composed: Expr = sub(base, sum(foreign));
            let compose = Proof::UnchangedCompose {
                parts,
                expr: composed,
            };
            // Rewrite to the canonical difference (semantic equivalence).
            Proof::UnchangedEquiv {
                sub: Box::new(compose),
                to: diff_canonical.clone(),
            }
        })
        .collect();
    let shared_unchanged = Proof::LiftUniversal {
        prop: Property::Unchanged(diff_canonical.clone()),
        per_component,
    };
    // unchanged (C - Σc) ⊢ unchanged ((C - Σc) = 0) ⊢ stable (C - Σc = 0).
    let zero_pred = eq(diff_canonical.clone(), int(0));
    let stable = Proof::StableFromUnchanged {
        sub: Box::new(Proof::UnchangedCompose {
            parts: vec![shared_unchanged],
            expr: zero_pred.clone(),
        }),
    };

    // --- init half: existential lifting + conjunction ------------------
    let init_lifts: Vec<Proof> = (0..n)
        .map(|i| {
            let prop = Property::Init(and2(
                eq(var(toy.counters[i]), int(0)),
                eq(var(toy.shared), int(0)),
            ));
            Proof::LiftExistential {
                component: i,
                sub: Box::new(Proof::premise(Judgment::component(i, prop))),
            }
        })
        .collect();
    let init_conj = Proof::InitConj { subs: init_lifts };
    let init_goal = Proof::InitWeaken {
        sub: Box::new(init_conj),
        q: zero_pred.clone(),
    };

    // --- combine --------------------------------------------------------
    let proof = Proof::InvariantIntro {
        init: Box::new(init_goal),
        stable: Box::new(stable),
    };
    let conclusion = Judgment::new(Scope::System, Property::Invariant(zero_pred));
    (proof, conclusion)
}

/// Builds the footnote-1 (asymmetric-init) variant of the proof: component
/// 0 contributes `init C = c₀`, the others `init cᵢ = 0`; the conjunction
/// still implies `C − Σⱼ cⱼ = 0`.
pub fn toy_invariant_proof_asymmetric(toy: &ToySystem) -> (Proof, Judgment) {
    let n = toy.spec.n;
    let diff = toy.difference_expr();
    let zero_pred = eq(diff.clone(), int(0));

    // Safety half is identical to the symmetric proof.
    let (sym_proof, _) = toy_invariant_proof(toy);
    let stable = match sym_proof {
        Proof::InvariantIntro { stable, .. } => *stable,
        _ => unreachable!("toy_invariant_proof returns invariant-intro"),
    };

    let init_lifts: Vec<Proof> = (0..n)
        .map(|i| {
            let prop = if i == 0 {
                Property::Init(eq(var(toy.shared), var(toy.counters[0])))
            } else {
                Property::Init(eq(var(toy.counters[i]), int(0)))
            };
            Proof::LiftExistential {
                component: i,
                sub: Box::new(Proof::premise(Judgment::component(i, prop))),
            }
        })
        .collect();
    let init_goal = Proof::InitWeaken {
        sub: Box::new(Proof::InitConj { subs: init_lifts }),
        q: zero_pred.clone(),
    };
    let proof = Proof::InvariantIntro {
        init: Box::new(init_goal),
        stable: Box::new(stable),
    };
    (
        proof,
        Judgment::new(Scope::System, Property::Invariant(zero_pred)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy_counter::{toy_system, toy_system_asymmetric, toy_system_broken, ToySpec};
    use unity_core::proof::check::{check_concludes, CheckCtx};
    use unity_core::proof::AssumeAll;
    use unity_mc::prelude::*;

    #[test]
    fn proof_structure_checks_with_assumed_premises() {
        let toy = toy_system(ToySpec::new(3, 2)).unwrap();
        let (proof, conclusion) = toy_invariant_proof(&toy);
        let mut d = AssumeAll::default();
        let mut ctx = CheckCtx::new(&mut d).with_components(3);
        check_concludes(&proof, &conclusion, &mut ctx).unwrap();
        // The proof has real content: n unchanged premises + n(n-1)
        // locality premises + n init premises.
        assert!(ctx.stats.premises >= 3 + 6 + 3);
    }

    #[test]
    fn proof_discharges_semantically() {
        for (n, k) in [(1usize, 1i64), (2, 1), (2, 2), (3, 1)] {
            let toy = toy_system(ToySpec::new(n, k)).unwrap();
            let (proof, conclusion) = toy_invariant_proof(&toy);
            let mut mc = McDischarger::new(&toy.system);
            let mut ctx = CheckCtx::new(&mut mc)
                .with_components(n)
                .with_vocab(toy.system.vocab());
            check_concludes(&proof, &conclusion, &mut ctx)
                .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
        }
    }

    #[test]
    fn proved_invariant_reverified_by_model_checker() {
        // Kernel-proved ⇒ semantically true (soundness cross-check).
        let toy = toy_system(ToySpec::new(2, 2)).unwrap();
        let (_, conclusion) = toy_invariant_proof(&toy);
        check_property(
            &toy.system.composed,
            &conclusion.prop,
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn asymmetric_proof_discharges() {
        let toy = toy_system_asymmetric(ToySpec::new(3, 1)).unwrap();
        let (proof, conclusion) = toy_invariant_proof_asymmetric(&toy);
        let mut mc = McDischarger::new(&toy.system);
        let mut ctx = CheckCtx::new(&mut mc)
            .with_components(3)
            .with_vocab(toy.system.vocab());
        check_concludes(&proof, &conclusion, &mut ctx).unwrap();
    }

    #[test]
    fn broken_system_fails_at_the_right_premise() {
        let toy = toy_system_broken(ToySpec::new(2, 1), 0).unwrap();
        let (proof, conclusion) = toy_invariant_proof(&toy);
        let mut mc = McDischarger::new(&toy.system);
        let mut ctx = CheckCtx::new(&mut mc).with_components(2);
        let err = check_concludes(&proof, &conclusion, &mut ctx).unwrap_err();
        // The failure is a discharge failure (the faulty component's
        // unchanged premise), not a proof-shape error.
        let msg = err.to_string();
        assert!(
            msg.contains("discharge") || msg.contains("refuted"),
            "{msg}"
        );
    }
}
