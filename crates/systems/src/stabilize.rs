//! Dijkstra's self-stabilizing K-state token ring, as a composition of
//! local components.
//!
//! Self-stabilization is the sharpest showcase for the paper's
//! **inductive, all-states semantics**: convergence must hold from an
//! *arbitrary* initial state — precisely a `true ↦ legitimate` judgment
//! quantified over the full domain product
//! (`unity_mc::transition::Universe::AllStates`), with no reachability
//! strengthening available (there is nothing to strengthen by: `init` is
//! `true`). The substitution axiom the paper deliberately avoids could
//! not help here even in principle.
//!
//! The protocol (Dijkstra 1974, the K-state machine):
//!
//! * `n` nodes on a unidirectional ring, each holding `xᵢ ∈ 0..K-1`;
//! * the *bottom* node 0 is **privileged** when `x₀ = x_{n−1}` and moves
//!   by `x₀ := (x₀ + 1) mod K`;
//! * every other node `i` is privileged when `xᵢ ≠ x_{i−1}` and moves by
//!   `xᵢ := x_{i−1}`;
//! * a state is **legitimate** when exactly one node is privileged.
//!
//! Three classical facts are machine-checked here (for finite instances):
//! at least one node is always privileged (a *validity*, not just an
//! invariant), legitimacy is closed under every move (a universal
//! `stable`, lifted from per-component judgments exactly as in the
//! paper's §3.3), and for `K ≥ n` the ring converges from **every** state
//! (`true ↦ legitimate` under weak fairness over all states). The
//! composition is locality-respecting: node `i` alone writes `xᵢ`;
//! its successor only *reads* it — which is what makes the component
//! specifications local in the paper's sense.

use std::sync::Arc;

use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::error::CoreError;
use unity_core::expr::build::{add, eq, ge, int, ite, ne, rem, sum, tt, var};
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;

/// Parameters of the ring.
#[derive(Debug, Clone, Copy)]
pub struct StabilizeSpec {
    /// Number of nodes (≥ 2).
    pub n: usize,
    /// Number of machine states per node; Dijkstra's theorem needs
    /// `K ≥ n` for guaranteed stabilization.
    pub k: i64,
}

impl StabilizeSpec {
    /// Builds a spec.
    pub fn new(n: usize, k: i64) -> Self {
        StabilizeSpec { n, k }
    }
}

/// The composed ring plus the variables of each node.
#[derive(Debug, Clone)]
pub struct StabilizingRing {
    /// Parameters.
    pub spec: StabilizeSpec,
    /// The composition (component `i` = node `i`).
    pub system: System,
    /// `xs[i]` is node `i`'s register.
    pub xs: Vec<VarId>,
}

/// Builds the ring as one component per node over a shared vocabulary.
/// Every `initially` is `true`: self-stabilization quantifies over all
/// starting states.
pub fn stabilizing_ring(spec: StabilizeSpec) -> Result<StabilizingRing, CoreError> {
    assert!(spec.n >= 2, "ring needs at least two nodes");
    assert!(spec.k >= 2, "need at least two machine states");
    let mut vocab = Vocabulary::new();
    let xs: Vec<VarId> = (0..spec.n)
        .map(|i| vocab.declare(&format!("x{i}"), Domain::int_range(0, spec.k - 1).unwrap()))
        .collect::<Result<_, _>>()?;
    let vocab = Arc::new(vocab);

    let mut components = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let prev = xs[(i + spec.n - 1) % spec.n];
        let me = xs[i];
        let (guard, update) = if i == 0 {
            (
                eq(var(me), var(prev)),
                rem(add(var(me), int(1)), int(spec.k)),
            )
        } else {
            (ne(var(me), var(prev)), var(prev))
        };
        let component = Program::builder(format!("Node{i}"), vocab.clone())
            .local(me)
            .init(tt())
            .fair_command(format!("move{i}"), guard, vec![(me, update)])
            .build()?;
        components.push(component);
    }
    let system = System::compose(components, InitSatCheck::Skip)?;
    Ok(StabilizingRing { spec, system, xs })
}

impl StabilizingRing {
    /// `Privileged(i)` as a predicate on states.
    pub fn privileged_expr(&self, i: usize) -> Expr {
        let prev = self.xs[(i + self.spec.n - 1) % self.spec.n];
        let me = self.xs[i];
        if i == 0 {
            eq(var(me), var(prev))
        } else {
            ne(var(me), var(prev))
        }
    }

    /// Number of privileged nodes, as an integer expression.
    pub fn privilege_count_expr(&self) -> Expr {
        sum((0..self.spec.n)
            .map(|i| ite(self.privileged_expr(i), int(1), int(0)))
            .collect())
    }

    /// `legitimate ≝ exactly one privilege`.
    pub fn legitimate_expr(&self) -> Expr {
        eq(self.privilege_count_expr(), int(1))
    }

    /// The pigeonhole fact: some node is always privileged. This is a
    /// *validity* (true in every type-consistent state), strictly
    /// stronger than an invariant.
    pub fn at_least_one_expr(&self) -> Expr {
        ge(self.privilege_count_expr(), int(1))
    }

    /// Closure: legitimacy survives every move (a universal property —
    /// it holds of the system because it holds of every component).
    pub fn closure(&self) -> Property {
        Property::Stable(self.legitimate_expr())
    }

    /// Convergence: from **any** state, the ring reaches legitimacy.
    /// Check with `unity_mc::transition::Universe::AllStates`.
    pub fn convergence(&self) -> Property {
        Property::LeadsTo(tt(), self.legitimate_expr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::expr::eval::{eval_bool, eval_int};
    use unity_core::proof::{Judgment, Scope};
    use unity_core::state::StateSpaceIter;
    use unity_mc::prelude::*;

    #[test]
    fn ring_builds_and_is_locality_respecting() {
        let ring = stabilizing_ring(StabilizeSpec::new(3, 3)).unwrap();
        assert_eq!(ring.system.components.len(), 3);
        // Node i writes only x_i.
        for (i, c) in ring.system.components.iter().enumerate() {
            let w = c.write_set();
            assert_eq!(w.len(), 1);
            assert!(w.contains(&ring.xs[i]));
        }
    }

    #[test]
    fn at_least_one_privilege_is_a_validity() {
        for (n, k) in [(2usize, 2i64), (3, 2), (3, 3), (4, 3)] {
            let ring = stabilizing_ring(StabilizeSpec::new(n, k)).unwrap();
            check_valid(
                &ring.system.composed.vocab,
                &ring.at_least_one_expr(),
                &ScanConfig::default(),
            )
            .unwrap_or_else(|e| panic!("pigeonhole fails for n={n}, k={k}: {e}"));
        }
    }

    #[test]
    fn privilege_count_matches_brute_force() {
        let ring = stabilizing_ring(StabilizeSpec::new(3, 3)).unwrap();
        let vocab = &ring.system.composed.vocab;
        for s in StateSpaceIter::new(vocab) {
            let by_expr = eval_int(&ring.privilege_count_expr(), &s);
            let by_hand = (0..3)
                .filter(|&i| eval_bool(&ring.privileged_expr(i), &s))
                .count() as i64;
            assert_eq!(by_expr, by_hand, "at {}", s.display(vocab));
        }
    }

    #[test]
    fn legitimacy_is_closed_per_component_and_lifts() {
        // The §3.3 move: a universal property checked per component,
        // lifted to the system by the kernel's universal-lifting rule.
        let ring = stabilizing_ring(StabilizeSpec::new(3, 3)).unwrap();
        let closure = ring.closure();
        for c in &ring.system.components {
            check_property(c, &closure, Universe::AllStates, &ScanConfig::default())
                .unwrap_or_else(|e| panic!("closure fails for {}: {e}", c.name));
        }
        // Lift through the proof kernel.
        use unity_core::proof::check::{check_concludes, CheckCtx};
        use unity_core::proof::rules::Proof;
        let proof = Proof::LiftUniversal {
            prop: closure.clone(),
            per_component: (0..3)
                .map(|i| Proof::Premise(Judgment::component(i, closure.clone())))
                .collect(),
        };
        let mut mc = McDischarger::new(&ring.system);
        let mut ctx = CheckCtx::new(&mut mc).with_components(3);
        check_concludes(&proof, &Judgment::new(Scope::System, closure), &mut ctx).unwrap();
    }

    #[test]
    fn converges_from_every_state_when_k_at_least_n() {
        for (n, k) in [(2usize, 2i64), (3, 3), (3, 4), (4, 4)] {
            let ring = stabilizing_ring(StabilizeSpec::new(n, k)).unwrap();
            check_property(
                &ring.system.composed,
                &ring.convergence(),
                Universe::AllStates,
                &ScanConfig::default(),
            )
            .unwrap_or_else(|e| panic!("no convergence for n={n}, k={k}: {e}"));
        }
    }

    #[test]
    fn legitimate_states_rotate_the_single_privilege() {
        // In a legitimate state, firing the privileged node keeps
        // legitimacy and passes the privilege around the ring.
        let ring = stabilizing_ring(StabilizeSpec::new(3, 3)).unwrap();
        let vocab = &ring.system.composed.vocab;
        let legit = ring.legitimate_expr();
        for s in StateSpaceIter::new(vocab) {
            if !eval_bool(&legit, &s) {
                continue;
            }
            let holder = (0..3)
                .find(|&i| eval_bool(&ring.privileged_expr(i), &s))
                .expect("legitimate => a privilege exists");
            let t = ring.system.composed.step(holder, &s);
            assert!(
                eval_bool(&legit, &t),
                "closure broken at {}",
                s.display(vocab)
            );
            assert_ne!(s, t, "the privileged move must change the state");
        }
    }

    #[test]
    fn synthesizer_derives_stabilization_automatically() {
        // The ensures-chain synthesizer emits a kernel-checked proof of
        // convergence for the 3-node, 3-state ring (27 states, init=true
        // so reachable = all states).
        let ring = stabilizing_ring(StabilizeSpec::new(3, 3)).unwrap();
        let (synth, stats) = unity_mc::synth::synthesize_and_check(
            &ring.system.composed,
            &tt(),
            &ring.legitimate_expr(),
            &unity_mc::synth::SynthConfig::default(),
            &ScanConfig::default(),
        )
        .expect("stabilization synthesizes");
        assert!(!synth.layers.is_empty());
        assert_eq!(synth.reachable_states, 27);
        assert!(stats.premises > 0);
    }

    #[test]
    fn small_k_large_n_verdict_is_decided_not_assumed() {
        // K = 2, n = 4 is below Dijkstra's bound; the exact checker
        // decides the verdict either way — what we assert is that the
        // all-states and legitimate-closure facts still hold, and that
        // the checker terminates with *some* verdict on convergence.
        let ring = stabilizing_ring(StabilizeSpec::new(4, 2)).unwrap();
        check_valid(
            &ring.system.composed.vocab,
            &ring.at_least_one_expr(),
            &ScanConfig::default(),
        )
        .unwrap();
        let verdict = check_property(
            &ring.system.composed,
            &ring.convergence(),
            Universe::AllStates,
            &ScanConfig::default(),
        );
        // Dijkstra's bound is tight here: with K=2 < n=4 there is a fair
        // cycle that never reaches legitimacy.
        assert!(verdict.is_err(), "K=2, n=4 must not stabilize");
    }
}
