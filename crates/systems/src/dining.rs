//! Dining philosophers on top of the §4 priority mechanism.
//!
//! The paper motivates the priority mechanism with "perpetually
//! conflicting components"; dining philosophers is the canonical instance
//! (conflict graph = the table's adjacency). Each philosopher has a phase
//! (`0` thinking, `1` hungry, `2` eating) layered over the orientation
//! state:
//!
//! ```text
//! hungry_i : phase_i = 0               -> phase_i := 1
//! eat_i    : phase_i = 1 ∧ Priority(i) -> phase_i := 2
//! done_i   : phase_i = 2               -> phase_i := 0, yield all edges
//! ```
//!
//! The priority mechanism's obligations map onto the protocol: (13)/(16)
//! hold because only `done_i` touches edges (and only its own); (15)
//! because `done_i` performs a full Definition-1 derivation; (14) —
//! `transient Priority(i)` — becomes *conditional* on progress through the
//! phases, which is why the liveness here is the classic
//! `hungry ↦ eating` rather than the bare (18).

use std::sync::Arc;

use prio_graph::graph::ConflictGraph;
use unity_core::compose::{InitSatCheck, System};
use unity_core::domain::Domain;
use unity_core::error::CoreError;
use unity_core::expr::build::*;
use unity_core::expr::Expr;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_core::properties::Property;

use crate::priority::PrioritySystem;

/// Phase encoding.
pub const THINKING: i64 = 0;
/// Hungry phase.
pub const HUNGRY: i64 = 1;
/// Eating phase.
pub const EATING: i64 = 2;

/// Parameters for the dining system.
#[derive(Debug, Clone)]
pub struct DiningSpec {
    /// The conflict graph (classically a ring).
    pub graph: Arc<ConflictGraph>,
}

/// The built dining-philosophers system.
#[derive(Debug, Clone)]
pub struct DiningSystem {
    /// The underlying priority-mechanism view (shares vocabulary).
    pub mechanism: PrioritySystem,
    /// The composed dining system.
    pub system: System,
    /// Phase variables per philosopher.
    pub phases: Vec<VarId>,
}

/// Builds the dining system over `spec.graph`.
pub fn dining_system(spec: &DiningSpec) -> Result<DiningSystem, CoreError> {
    let graph = spec.graph.clone();
    let n = graph.node_count();

    // Vocabulary: edge orientations first (ids align with edge ids), then
    // phases.
    let mut vocab = Vocabulary::new();
    let mut edge_vars = Vec::with_capacity(graph.edge_count());
    for &(u, v) in graph.edges() {
        edge_vars.push(vocab.declare(&format!("e_{u}_{v}"), Domain::Bool)?);
    }
    let mut phases: Vec<VarId> = Vec::with_capacity(n);
    for i in 0..n {
        phases.push(vocab.declare(&format!("phase{i}"), Domain::int_range(0, 2)?)?);
    }
    let vocab = Arc::new(vocab);

    // Reuse the priority system's expression helpers through a view that
    // shares the same variable layout for edges.
    let mechanism_view = PrioritySystem {
        graph: graph.clone(),
        system: System {
            components: Vec::new(),
            composed: Program::builder("view", vocab.clone()).build()?,
            provenance: Vec::new(),
        },
        edge_vars: edge_vars.clone(),
    };

    let init_edges = and(edge_vars.iter().map(|&e| var(e)).collect::<Vec<_>>());
    let mut components = Vec::with_capacity(n);
    // `i` is a node id used for adjacency, priority and phase lookups
    // alike; iterating the phase vector alone would obscure that.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let pr = mechanism_view.priority_expr(i);
        let yield_updates: Vec<(VarId, Expr)> = graph
            .neighbors(i)
            .iter()
            .map(|j| {
                let e = graph.edge_id(i, j).expect("incident edge");
                let (u, _) = graph.endpoints(e);
                (edge_vars[e as usize], boolean(j == u))
            })
            .collect();
        let mut done_updates = yield_updates;
        done_updates.push((phases[i], int(THINKING)));

        let program = Program::builder(format!("Philosopher{i}"), vocab.clone())
            .local(phases[i])
            .init(and2(init_edges.clone(), eq(var(phases[i]), int(THINKING))))
            .fair_command(
                format!("hungry{i}"),
                eq(var(phases[i]), int(THINKING)),
                vec![(phases[i], int(HUNGRY))],
            )
            .fair_command(
                format!("eat{i}"),
                and2(eq(var(phases[i]), int(HUNGRY)), pr.clone()),
                vec![(phases[i], int(EATING))],
            )
            .fair_command(
                format!("done{i}"),
                eq(var(phases[i]), int(EATING)),
                done_updates,
            )
            .build()?;
        components.push(program);
    }
    let system = System::compose(components, InitSatCheck::BoundedExhaustive(1 << 22))?;
    Ok(DiningSystem {
        mechanism: mechanism_view,
        system,
        phases,
    })
}

impl DiningSystem {
    /// Number of philosophers.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether there are no philosophers.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// `phase_i = EATING`.
    pub fn eating_expr(&self, i: usize) -> Expr {
        eq(var(self.phases[i]), int(EATING))
    }

    /// `phase_i = HUNGRY`.
    pub fn hungry_expr(&self, i: usize) -> Expr {
        eq(var(self.phases[i]), int(HUNGRY))
    }

    /// Mutual exclusion: no two neighbours eat simultaneously. Proved via
    /// the auxiliary invariant `eating_i ⇒ Priority(i)` (see
    /// [`DiningSystem::eating_implies_priority`]), which is inductive.
    pub fn mutual_exclusion(&self) -> Property {
        let mut parts = Vec::new();
        for &(u, v) in self.mechanism.graph.edges() {
            parts.push(not(and2(self.eating_expr(u), self.eating_expr(v))));
        }
        Property::Invariant(and(parts))
    }

    /// The inductive strengthening `⟨∀i :: eating_i ⇒ Priority(i)⟩`.
    pub fn eating_implies_priority(&self) -> Property {
        let parts = (0..self.len())
            .map(|i| implies(self.eating_expr(i), self.mechanism.priority_expr(i)))
            .collect();
        Property::Invariant(and(parts))
    }

    /// Starvation freedom: `hungry_i ↦ eating_i`.
    pub fn progress(&self, i: usize) -> Property {
        Property::LeadsTo(self.hungry_expr(i), self.eating_expr(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_mc::prelude::*;

    fn ring_dining(n: usize) -> DiningSystem {
        dining_system(&DiningSpec {
            graph: Arc::new(prio_graph::topology::ring(n)),
        })
        .unwrap()
    }

    #[test]
    fn builds_with_expected_shape() {
        let d = ring_dining(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.system.composed.commands.len(), 9);
        assert_eq!(d.system.initial_states().len(), 1);
    }

    #[test]
    fn eating_implies_priority_is_inductive() {
        let d = ring_dining(3);
        check_property(
            &d.system.composed,
            &d.eating_implies_priority(),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn mutual_exclusion_holds_reachably() {
        let d = ring_dining(3);
        // The bare mutual exclusion is not inductive (it needs the
        // eating ⇒ priority strengthening), so check it over reachable
        // states, plus the strengthened version inductively.
        let pred = match d.mutual_exclusion() {
            unity_core::properties::Property::Invariant(p) => p,
            _ => unreachable!(),
        };
        check_invariant_reachable(&d.system.composed, &pred, &ScanConfig::default()).unwrap();
    }

    #[test]
    fn philosophers_make_progress() {
        let d = ring_dining(3);
        let cfg = ScanConfig::default();
        for i in 0..3 {
            check_property(
                &d.system.composed,
                &d.progress(i),
                Universe::Reachable,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("progress({i}): {e}"));
        }
    }

    #[test]
    fn acyclicity_preserved_in_dining() {
        let d = ring_dining(3);
        check_property(
            &d.system.composed,
            &d.mechanism.acyclicity_stable(),
            Universe::Reachable,
            &ScanConfig::default(),
        )
        .unwrap();
    }
}
