//! Threaded executor: one OS thread per node, tokens over real channels.
//!
//! The same protocol as [`crate::run`] but with genuine concurrency —
//! each node is a thread owning an mpsc receiver; yielding a token is an
//! mpsc send to the neighbour's thread. Used to measure hardware-level
//! action throughput and to check token conservation under real
//! interleavings.
//!
//! Shutdown protocol: when every node reaches its action target (or the
//! deadline passes) a stop flag is raised; nodes stop sending, meet at a
//! barrier (so no message is in flight past it), then drain their
//! receivers. The union of held + drained tokens must be exactly one
//! token per edge — [`ThreadedOutcome::conservation_ok`].

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use prio_graph::graph::ConflictGraph;
use prio_graph::orientation::Orientation;

/// Configuration for [`run_threaded`].
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Stop once every node has performed this many actions.
    pub target_actions_per_node: u64,
    /// Hard wall-clock limit.
    pub max_duration: Duration,
    /// Receive poll interval of the node threads (granularity at which
    /// an idle node notices the stop flag).
    pub poll_interval: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            target_actions_per_node: 1_000,
            max_duration: Duration::from_secs(30),
            poll_interval: Duration::from_millis(1),
        }
    }
}

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedOutcome {
    /// Whether every node reached the action target before the deadline.
    pub reached_target: bool,
    /// Total tokens sent across all threads.
    pub tokens_sent: u64,
    /// Final per-node action counts.
    pub actions: Vec<u64>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Tokens recovered at shutdown (held + drained), per edge id.
    token_census: Vec<u64>,
}

impl ThreadedOutcome {
    /// Minimum per-node action count.
    pub fn min_actions(&self) -> u64 {
        self.actions.iter().copied().min().unwrap_or(0)
    }

    /// Total actions per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.actions.iter().sum::<u64>() as f64 / secs
    }

    /// Token conservation: after shutdown, every edge's token was
    /// recovered exactly once across node holdings and channels.
    pub fn conservation_ok(&self, graph: &Arc<ConflictGraph>) -> bool {
        self.token_census.len() == graph.edge_count() && self.token_census.iter().all(|&c| c == 1)
    }
}

enum NodeMsg {
    Token(u32),
}

/// Runs the protocol with one thread per node until every node reaches
/// `cfg.target_actions_per_node` actions or `cfg.max_duration` elapses.
pub fn run_threaded(
    graph: &Arc<ConflictGraph>,
    initial: &Orientation,
    cfg: ThreadedConfig,
) -> ThreadedOutcome {
    let n = graph.node_count();
    let m = graph.edge_count();
    let mut senders: Vec<Sender<NodeMsg>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<NodeMsg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let actions: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let tokens_sent = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let nodes_done = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(n.max(1)));

    let start = Instant::now();
    let census: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let rx = receivers[i].take().expect("receiver taken once");
            let neighbor_senders: Vec<(u32, Sender<NodeMsg>)> = graph
                .incident_edges(i)
                .into_iter()
                .map(|e| {
                    let (u, v) = graph.endpoints(e);
                    let peer = if u == i { v } else { u };
                    (e, senders[peer].clone())
                })
                .collect();
            let initial_tokens: Vec<u32> = graph
                .incident_edges(i)
                .into_iter()
                .filter(|&e| {
                    let (u, v) = graph.endpoints(e);
                    let peer = if u == i { v } else { u };
                    initial.points(i, peer)
                })
                .collect();
            let degree = graph.degree(i);
            let actions = actions.clone();
            let tokens_sent = tokens_sent.clone();
            let stop = stop.clone();
            let nodes_done = nodes_done.clone();
            let barrier = barrier.clone();
            let target = cfg.target_actions_per_node;
            let poll = cfg.poll_interval;
            handles.push(scope.spawn(move || {
                let mut held: Vec<u32> = initial_tokens;
                let mut my_actions: u64 = 0;
                let mut reported_done = false;
                loop {
                    if degree > 0 && held.len() == degree && !stop.load(Ordering::Relaxed) {
                        my_actions += 1;
                        actions[i].store(my_actions, Ordering::Relaxed);
                        if my_actions >= target && !reported_done {
                            reported_done = true;
                            nodes_done.fetch_add(1, Ordering::Relaxed);
                        }
                        let burst = std::mem::take(&mut held);
                        let burst_len = burst.len() as u64;
                        for e in burst {
                            let (_, tx) = neighbor_senders
                                .iter()
                                .find(|(edge, _)| *edge == e)
                                .expect("held token is incident");
                            if tx.send(NodeMsg::Token(e)).is_err() {
                                // Receiver gone (shutdown race): keep it.
                                held.push(e);
                            }
                        }
                        tokens_sent.fetch_add(burst_len, Ordering::Relaxed);
                        continue;
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match rx.recv_timeout(poll) {
                        Ok(NodeMsg::Token(e)) => held.push(e),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // Stop phase: no sends after the barrier, so a final drain
                // observes every in-flight token.
                barrier.wait();
                while let Ok(NodeMsg::Token(e)) = rx.try_recv() {
                    held.push(e);
                }
                held
            }));
        }
        drop(senders);

        // Coordinator: raise the stop flag at target or deadline.
        while nodes_done.load(Ordering::Relaxed) < n && start.elapsed() < cfg.max_duration {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);

        let mut census = vec![0u64; m];
        for h in handles {
            for e in h.join().expect("node thread panicked") {
                census[e as usize] += 1;
            }
        }
        census
    });
    let elapsed = start.elapsed();

    let final_actions: Vec<u64> = actions.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    ThreadedOutcome {
        reached_target: final_actions
            .iter()
            .all(|&a| a >= cfg.target_actions_per_node),
        tokens_sent: tokens_sent.load(Ordering::Relaxed),
        actions: final_actions,
        elapsed,
        token_census: census,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::topology;

    #[test]
    fn threaded_ring_reaches_target_and_conserves_tokens() {
        let graph = Arc::new(topology::ring(6));
        let o = Orientation::index_order(graph.clone());
        let out = run_threaded(
            &graph,
            &o,
            ThreadedConfig {
                target_actions_per_node: 50,
                max_duration: Duration::from_secs(20),
                ..ThreadedConfig::default()
            },
        );
        assert!(out.reached_target, "actions: {:?}", out.actions);
        assert!(out.min_actions() >= 50);
        assert!(out.conservation_ok(&graph));
        assert!(out.tokens_sent > 0);
        assert!(out.throughput() > 0.0);
    }

    #[test]
    fn threaded_grid_conserves_under_deadline_stop() {
        let graph = Arc::new(topology::grid(3, 3));
        let o = Orientation::index_order(graph.clone());
        // Unreachable target: the deadline triggers the stop path.
        let out = run_threaded(
            &graph,
            &o,
            ThreadedConfig {
                target_actions_per_node: u64::MAX,
                max_duration: Duration::from_millis(200),
                ..ThreadedConfig::default()
            },
        );
        assert!(!out.reached_target);
        assert!(
            out.conservation_ok(&graph),
            "census: {:?}",
            out.token_census
        );
    }
}
