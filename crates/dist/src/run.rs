//! Event-driven executor for the token-based edge-reversal protocol.
//!
//! The only events are message deliveries; a [`DeliveryScheduler`] picks
//! which in-flight message is delivered next. Actions (a node holding all
//! of its edge tokens performs its critical step and yields every token)
//! fire *atomically* at the delivery that completes the node's hold — the
//! distributed image of the paper's abstract `yield` command.
//!
//! A **refinement shadow** is maintained: an abstract
//! [`Orientation`] updated by `yield_node` at every action. After each
//! action the shadow is compared against the orientation *derived from
//! token positions* (in-flight tokens attributed to their receiver); any
//! disagreement — or an action by a node without abstract priority — is
//! recorded as a [`RefinementViolation`]. A correct protocol produces
//! none, under any scheduler.

use std::collections::VecDeque;
use std::sync::Arc;

use prio_graph::graph::ConflictGraph;
use prio_graph::orientation::Orientation;

use crate::sched::{DeliveryScheduler, PendingMsg};
use crate::snapshot::{ActiveSnapshot, ChannelRec, Snapshot};

/// A message in a directed FIFO channel.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// The edge's token (the priority over that edge's other endpoint).
    Token { edge: u32, seq: u64 },
    /// A Chandy–Lamport marker for snapshot `snapshot`.
    Marker { snapshot: usize, seq: u64 },
}

impl Msg {
    fn seq(&self) -> u64 {
        match self {
            Msg::Token { seq, .. } | Msg::Marker { seq, .. } => *seq,
        }
    }
}

/// One classified protocol step (delivery events, plus the actions they
/// trigger).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Token of `edge` delivered to node `to`.
    Deliver {
        /// Edge whose token arrived.
        edge: u32,
        /// Receiving node.
        to: usize,
    },
    /// Node performed its action and yielded all its tokens.
    Action {
        /// The acting node.
        node: usize,
    },
    /// Snapshot marker delivered to node `to`.
    Marker {
        /// Snapshot id.
        snapshot: usize,
        /// Receiving node.
        to: usize,
    },
}

/// A detected divergence between the protocol and its abstraction.
#[derive(Debug, Clone)]
pub struct RefinementViolation {
    /// Step at which the divergence was detected.
    pub step: u64,
    /// Node involved.
    pub node: usize,
    /// Human-readable description.
    pub detail: String,
}

/// Cumulative run statistics.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Delivery events processed (tokens and markers).
    pub steps: u64,
    /// Tokens sent (each action sends one per incident edge).
    pub tokens_sent: u64,
    /// Snapshot markers sent.
    pub markers_sent: u64,
    /// Per-node action counts.
    pub actions: Vec<u64>,
}

impl RunStats {
    /// Minimum per-node action count.
    pub fn min_actions(&self) -> u64 {
        self.actions.iter().copied().min().unwrap_or(0)
    }

    /// Total actions across all nodes.
    pub fn total_actions(&self) -> u64 {
        self.actions.iter().sum()
    }

    /// Jain's fairness index over per-node action counts
    /// (`(Σxᵢ)² / (n·Σxᵢ²)`; 1.0 = perfectly balanced).
    pub fn fairness_index(&self) -> f64 {
        if self.actions.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.actions.iter().map(|&a| a as f64).sum();
        let sq: f64 = self.actions.iter().map(|&a| (a as f64) * (a as f64)).sum();
        if sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (self.actions.len() as f64 * sq)
    }

    /// Tokens sent per action (equals the average degree in steady state).
    pub fn messages_per_action(&self) -> f64 {
        let total = self.total_actions();
        if total == 0 {
            return 0.0;
        }
        self.tokens_sent as f64 / total as f64
    }
}

/// Stop condition for [`DistRun::run`].
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Stop once the *cumulative* step counter reaches this value.
    pub max_steps: Option<u64>,
    /// Stop once every node has performed at least this many actions.
    pub min_actions: Option<u64>,
}

impl RunLimits {
    /// Run until the cumulative step counter reaches `n`.
    pub fn steps(n: u64) -> Self {
        RunLimits {
            max_steps: Some(n),
            min_actions: None,
        }
    }

    /// Run until every node has acted at least `k` times.
    pub fn until_actions(k: u64) -> Self {
        RunLimits {
            max_steps: None,
            min_actions: Some(k),
        }
    }
}

/// The event-driven distributed run.
pub struct DistRun {
    graph: Arc<ConflictGraph>,
    /// FIFO channels, indexed `2 * edge + dir` (`dir` 0: low→high
    /// endpoint, 1: high→low).
    channels: Vec<VecDeque<Msg>>,
    /// Tokens held per node (edge ids, sorted).
    held: Vec<Vec<u32>>,
    scheduler: Box<dyn DeliveryScheduler>,
    /// The refinement shadow: abstract orientation advanced by
    /// `yield_node` at every action.
    shadow: Orientation,
    stats: RunStats,
    seq: u64,
    trace: Vec<TraceEvent>,
    violations: Vec<RefinementViolation>,
    active_snapshots: Vec<ActiveSnapshot>,
    completed_snapshots: Vec<Snapshot>,
    next_snapshot_id: usize,
}

impl DistRun {
    /// Sets up the protocol from an initial abstract orientation: each
    /// edge's token starts at its priority-side endpoint, and every node
    /// that initially holds all its tokens acts (and yields) immediately.
    pub fn new(
        graph: Arc<ConflictGraph>,
        initial: &Orientation,
        scheduler: Box<dyn DeliveryScheduler>,
    ) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        let mut held: Vec<Vec<u32>> = vec![Vec::new(); n];
        for e in 0..m as u32 {
            let (u, v) = graph.endpoints(e);
            let holder = if initial.points(u, v) { u } else { v };
            held[holder].push(e);
        }
        let mut run = DistRun {
            shadow: initial.clone(),
            channels: vec![VecDeque::new(); 2 * m],
            held,
            scheduler,
            stats: RunStats {
                steps: 0,
                tokens_sent: 0,
                markers_sent: 0,
                actions: vec![0; n],
            },
            seq: 0,
            trace: Vec::new(),
            violations: Vec::new(),
            active_snapshots: Vec::new(),
            completed_snapshots: Vec::new(),
            next_snapshot_id: 0,
            graph,
        };
        for i in 0..n {
            run.maybe_act(i);
        }
        run
    }

    /// The channel index for messages from `from` to `to`.
    fn channel(&self, from: usize, to: usize) -> usize {
        let e = self
            .graph
            .edge_id(from, to)
            .expect("channel requires a conflict edge");
        let (u, _) = self.graph.endpoints(e);
        2 * e as usize + usize::from(from != u)
    }

    /// The `(from, to)` endpoints of channel `c`.
    fn channel_ends(&self, c: usize) -> (usize, usize) {
        let (u, v) = self.graph.endpoints((c / 2) as u32);
        if c.is_multiple_of(2) {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// If `i` holds every incident token, perform its action: count it,
    /// yield every token to its neighbour, advance the shadow, and check
    /// refinement.
    fn maybe_act(&mut self, i: usize) {
        let degree = self.graph.degree(i);
        if degree == 0 || self.held[i].len() < degree {
            return;
        }
        // Abstract precondition: the shadow must grant `i` priority.
        if !self.shadow.priority(i) {
            self.violations.push(RefinementViolation {
                step: self.stats.steps,
                node: i,
                detail: format!("node {i} acted without abstract priority"),
            });
        }
        self.stats.actions[i] += 1;
        self.trace.push(TraceEvent::Action { node: i });
        let tokens = std::mem::take(&mut self.held[i]);
        for e in tokens {
            let (u, v) = self.graph.endpoints(e);
            let to = if u == i { v } else { u };
            let c = self.channel(i, to);
            self.seq += 1;
            self.channels[c].push_back(Msg::Token {
                edge: e,
                seq: self.seq,
            });
            self.stats.tokens_sent += 1;
        }
        self.shadow.yield_node(i);
        self.check_refinement(i);
    }

    /// Compares the shadow orientation against the orientation derived
    /// from token positions (in-flight tokens attributed to receivers).
    fn check_refinement(&mut self, node: usize) {
        let derived = self.derive_orientation();
        if derived != self.shadow {
            self.violations.push(RefinementViolation {
                step: self.stats.steps,
                node,
                detail: "token-derived orientation diverged from abstract shadow".into(),
            });
        }
    }

    /// The orientation implied by current token positions.
    fn derive_orientation(&self) -> Orientation {
        let mut o = Orientation::index_order(self.graph.clone());
        for (i, tokens) in self.held.iter().enumerate() {
            for &e in tokens {
                let (u, v) = self.graph.endpoints(e);
                let other = if u == i { v } else { u };
                o.set_points(i, other);
            }
        }
        for (c, ch) in self.channels.iter().enumerate() {
            for msg in ch {
                if let Msg::Token { edge, .. } = msg {
                    // A channel carries exactly its own edge's token; the
                    // in-flight token is attributed to the receiver.
                    debug_assert_eq!((c / 2) as u32, *edge);
                    let (from, to) = self.channel_ends(c);
                    o.set_points(to, from);
                }
            }
        }
        o
    }

    /// Runs until `limits` is satisfied; returns the cumulative stats.
    ///
    /// Limits are cumulative: `RunLimits::steps(n)` stops once the total
    /// step counter reaches `n` (so consecutive calls continue the run).
    pub fn run(&mut self, limits: RunLimits) -> RunStats {
        loop {
            if let Some(n) = limits.max_steps {
                if self.stats.steps >= n {
                    break;
                }
            }
            if let Some(k) = limits.min_actions {
                if self.stats.min_actions() >= k {
                    break;
                }
            }
            let pending: Vec<PendingMsg> = self
                .channels
                .iter()
                .enumerate()
                .filter_map(|(c, ch)| {
                    ch.front().map(|m| PendingMsg {
                        channel: c,
                        seq: m.seq(),
                    })
                })
                .collect();
            if pending.is_empty() {
                // Quiescent: every token at rest. With eager actions this
                // only happens on an edgeless graph.
                break;
            }
            let k = self.scheduler.pick(&pending);
            let c = pending[k].channel;
            let msg = self.channels[c]
                .pop_front()
                .expect("picked channel non-empty");
            let (_, to) = self.channel_ends(c);
            self.stats.steps += 1;
            match msg {
                Msg::Token { edge, .. } => {
                    self.trace.push(TraceEvent::Deliver { edge, to });
                    // Snapshot rule: a token crossing a recording channel
                    // belongs to the snapshot's channel state.
                    for snap in &mut self.active_snapshots {
                        if let ChannelRec::Recording(v) = &mut snap.channels[c] {
                            v.push(edge);
                        }
                    }
                    self.held[to].push(edge);
                    self.maybe_act(to);
                }
                Msg::Marker { snapshot, .. } => {
                    self.trace.push(TraceEvent::Marker { snapshot, to });
                    self.deliver_marker(snapshot, c, to);
                }
            }
        }
        self.stats.clone()
    }

    /// Starts a Chandy–Lamport snapshot at `initiator` while the protocol
    /// keeps running. Completed snapshots appear in [`DistRun::snapshots`].
    pub fn initiate_snapshot(&mut self, initiator: usize) {
        let id = self.next_snapshot_id;
        self.next_snapshot_id += 1;
        let mut snap = ActiveSnapshot::new(
            id,
            self.stats.steps,
            self.graph.node_count(),
            2 * self.graph.edge_count(),
        );
        self.record_node(&mut snap, initiator);
        self.active_snapshots.push(snap);
        self.try_complete_snapshots();
    }

    /// Records `node`'s local state into `snap` and floods markers.
    fn record_node(&mut self, snap: &mut ActiveSnapshot, node: usize) {
        debug_assert!(snap.nodes[node].is_none());
        snap.nodes[node] = Some(self.held[node].clone());
        // Start recording every incoming channel (channels on which the
        // marker already arrived are overridden to Done by the caller).
        let neighbors: Vec<usize> = self.graph.neighbors(node).iter().collect();
        for &j in &neighbors {
            let incoming = self.channel(j, node);
            if matches!(snap.channels[incoming], ChannelRec::NotStarted) {
                snap.channels[incoming] = ChannelRec::Recording(Vec::new());
            }
            let outgoing = self.channel(node, j);
            self.seq += 1;
            self.channels[outgoing].push_back(Msg::Marker {
                snapshot: snap.id,
                seq: self.seq,
            });
            self.stats.markers_sent += 1;
        }
    }

    /// Chandy–Lamport marker rule.
    fn deliver_marker(&mut self, snapshot: usize, channel: usize, to: usize) {
        let Some(pos) = self.active_snapshots.iter().position(|s| s.id == snapshot) else {
            return; // late marker of an already-completed snapshot
        };
        let mut snap = self.active_snapshots.swap_remove(pos);
        if snap.nodes[to].is_none() {
            // First marker: record now; this channel's state is empty.
            self.record_node(&mut snap, to);
        }
        let collected = match std::mem::replace(&mut snap.channels[channel], ChannelRec::NotStarted)
        {
            ChannelRec::Recording(v) => v,
            ChannelRec::NotStarted => Vec::new(),
            ChannelRec::Done(v) => v, // duplicate marker: keep first record
        };
        snap.channels[channel] = ChannelRec::Done(collected);
        self.active_snapshots.push(snap);
        self.try_complete_snapshots();
    }

    /// Moves finished snapshots to the completed list.
    fn try_complete_snapshots(&mut self) {
        let steps = self.stats.steps;
        let graph = self.graph.clone();
        let completed = &mut self.completed_snapshots;
        self.active_snapshots.retain_mut(|snap| {
            if !snap.is_complete() {
                return true;
            }
            completed.push(snap.finish(&graph, steps));
            false
        });
        completed.sort_by_key(|s| s.id);
    }

    /// Current cumulative statistics.
    pub fn stats(&self) -> RunStats {
        self.stats.clone()
    }

    /// The abstract orientation the protocol currently refines.
    pub fn abstraction(&self) -> &Orientation {
        &self.shadow
    }

    /// Refinement violations detected so far (empty for a correct run).
    pub fn refinement_violations(&self) -> &[RefinementViolation] {
        &self.violations
    }

    /// The classified event trace.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Completed snapshots, in initiation order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.completed_snapshots
    }

    /// The underlying conflict graph.
    pub fn graph(&self) -> &Arc<ConflictGraph> {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Lifo, OldestFirst, SeededRandom};
    use prio_graph::acyclic::is_acyclic;
    use prio_graph::topology;

    fn ring_run(scheduler: Box<dyn DeliveryScheduler>) -> DistRun {
        let graph = Arc::new(topology::ring(5));
        let o = Orientation::index_order(graph.clone());
        DistRun::new(graph, &o, scheduler)
    }

    #[test]
    fn bootstrap_fires_initial_priority_holders() {
        let run = ring_run(Box::new(OldestFirst::new()));
        // index_order on a ring: only node 0 has initial priority.
        assert_eq!(run.stats().total_actions(), 1);
        assert_eq!(run.stats().tokens_sent, 2);
        assert!(run.refinement_violations().is_empty());
    }

    #[test]
    fn fair_schedule_reaches_action_targets() {
        let mut run = ring_run(Box::new(OldestFirst::new()));
        let stats = run.run(RunLimits::until_actions(4));
        assert!(stats.min_actions() >= 4);
        assert!(run.refinement_violations().is_empty());
        assert!(is_acyclic(run.abstraction()));
        // Every token delivery moves one token: messages per action equals
        // the average degree (2 on a ring).
        assert!((stats.messages_per_action() - 2.0).abs() < 0.5);
    }

    #[test]
    fn random_and_lifo_preserve_safety() {
        for sched in [
            Box::new(SeededRandom::new(9)) as Box<dyn DeliveryScheduler>,
            Box::new(Lifo),
        ] {
            let graph = Arc::new(topology::grid(3, 3));
            let o = Orientation::index_order(graph.clone());
            let mut run = DistRun::new(graph, &o, sched);
            run.run(RunLimits::steps(3_000));
            assert!(run.refinement_violations().is_empty());
            assert!(is_acyclic(run.abstraction()));
            // No two adjacent nodes simultaneously hold priority.
            let holders = run.abstraction().priority_nodes();
            for (a, &i) in holders.iter().enumerate() {
                for &j in &holders[a + 1..] {
                    assert!(!run.graph().is_edge(i, j));
                }
            }
        }
    }

    #[test]
    fn oldest_first_is_fairer_than_lifo() {
        let steps = 4_000;
        let mut fair = ring_run(Box::new(OldestFirst::new()));
        let f = fair.run(RunLimits::steps(steps));
        let mut adv = ring_run(Box::new(Lifo));
        let a = adv.run(RunLimits::steps(steps));
        assert!(f.fairness_index() >= a.fairness_index() - 1e-9);
        assert!(f.fairness_index() > 0.95, "oldest-first balances the ring");
    }

    #[test]
    fn snapshots_complete_and_validate() {
        let graph = Arc::new(topology::torus(3, 3));
        let o = Orientation::index_order(graph.clone());
        let mut run = DistRun::new(graph.clone(), &o, Box::new(SeededRandom::new(3)));
        for i in 0..4 {
            run.run(RunLimits::steps(run.stats().steps + 200));
            run.initiate_snapshot(i % graph.node_count());
        }
        run.run(RunLimits::steps(run.stats().steps + 2_000));
        assert!(
            !run.snapshots().is_empty(),
            "snapshots complete in 2000 steps"
        );
        for snap in run.snapshots() {
            let o = snap.validate(&graph).expect("consistent cut");
            assert!(
                is_acyclic(&o),
                "snapshot #{} cut must stay acyclic",
                snap.id
            );
            assert!(snap.span.0 <= snap.span.1);
        }
    }

    #[test]
    fn trace_classifies_every_step() {
        let mut run = ring_run(Box::new(OldestFirst::new()));
        run.run(RunLimits::steps(500));
        let delivered = run
            .trace()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Deliver { .. } | TraceEvent::Marker { .. }))
            .count() as u64;
        assert_eq!(delivered, run.stats().steps);
    }

    #[test]
    fn quiescent_edgeless_graph_stops() {
        let graph = Arc::new(topology::ring(3));
        let empty = Arc::new(prio_graph::graph::ConflictGraph::new(4));
        let o = Orientation::index_order(empty.clone());
        let mut run = DistRun::new(empty, &o, Box::new(OldestFirst::new()));
        let stats = run.run(RunLimits::steps(100));
        assert_eq!(stats.steps, 0, "no messages exist on an edgeless graph");
        drop(graph);
    }
}
