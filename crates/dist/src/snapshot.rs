//! Chandy–Lamport snapshots of the running protocol.
//!
//! A snapshot is initiated at any node while messages keep flowing; the
//! marker algorithm assembles a **consistent cut**: per-node token
//! holdings plus per-channel in-flight tokens. [`Snapshot::validate`]
//! checks the cut's global invariant — every edge's token exists exactly
//! once — and reconstructs the abstract [`Orientation`] of the cut, which
//! the §4 theory says must be acyclic.

use std::sync::Arc;

use prio_graph::graph::ConflictGraph;
use prio_graph::orientation::Orientation;

/// Recording state of one directed channel within an active snapshot.
#[derive(Debug, Clone)]
pub(crate) enum ChannelRec {
    /// Neither endpoint has recorded yet.
    NotStarted,
    /// The receiver recorded; tokens arriving before the marker belong to
    /// the snapshot.
    Recording(Vec<u32>),
    /// The marker arrived; the channel's snapshot state is final.
    Done(Vec<u32>),
}

/// An in-progress snapshot.
#[derive(Debug, Clone)]
pub(crate) struct ActiveSnapshot {
    pub(crate) id: usize,
    pub(crate) started_at: u64,
    /// Recorded per-node holdings (`None` until the node records).
    pub(crate) nodes: Vec<Option<Vec<u32>>>,
    /// Recording state per directed channel.
    pub(crate) channels: Vec<ChannelRec>,
}

impl ActiveSnapshot {
    pub(crate) fn new(id: usize, started_at: u64, n_nodes: usize, n_channels: usize) -> Self {
        ActiveSnapshot {
            id,
            started_at,
            nodes: vec![None; n_nodes],
            channels: vec![ChannelRec::NotStarted; n_channels],
        }
    }

    /// Complete once every node recorded and every channel's marker
    /// arrived.
    pub(crate) fn is_complete(&self) -> bool {
        self.nodes.iter().all(Option::is_some)
            && self
                .channels
                .iter()
                .all(|c| matches!(c, ChannelRec::Done(_)))
    }

    /// Finalizes into a [`Snapshot`] (requires [`Self::is_complete`]).
    pub(crate) fn finish(&mut self, graph: &Arc<ConflictGraph>, completed_at: u64) -> Snapshot {
        let node_tokens: Vec<Vec<u32>> = self
            .nodes
            .iter_mut()
            .map(|n| n.take().expect("complete snapshot records every node"))
            .collect();
        let channel_tokens: Vec<((usize, usize), Vec<u32>)> = self
            .channels
            .iter()
            .enumerate()
            .map(|(c, rec)| {
                let (u, v) = graph.endpoints((c / 2) as u32);
                let ends = if c.is_multiple_of(2) { (u, v) } else { (v, u) };
                let tokens = match rec {
                    ChannelRec::Done(t) => t.clone(),
                    _ => unreachable!("complete snapshot finished every channel"),
                };
                (ends, tokens)
            })
            .collect();
        Snapshot {
            id: self.id,
            span: (self.started_at, completed_at),
            node_tokens,
            channel_tokens,
        }
    }
}

/// A completed consistent cut of the distributed protocol.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Snapshot id (initiation order).
    pub id: usize,
    /// `(initiated_at, completed_at)` in protocol steps.
    pub span: (u64, u64),
    /// Recorded token holdings per node (edge ids).
    pub node_tokens: Vec<Vec<u32>>,
    /// Recorded in-flight tokens per directed channel `(from, to)`.
    pub channel_tokens: Vec<((usize, usize), Vec<u32>)>,
}

/// Why a snapshot fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// An edge's token appears nowhere in the cut.
    MissingToken {
        /// The tokenless edge.
        edge: u32,
    },
    /// An edge's token appears more than once.
    DuplicateToken {
        /// The duplicated edge.
        edge: u32,
    },
    /// A node holds a token of an edge it is not an endpoint of.
    WrongHolder {
        /// The holding node.
        node: usize,
        /// The misplaced edge.
        edge: u32,
    },
    /// A channel carries another edge's token.
    ForeignToken {
        /// The channel `(from, to)`.
        channel: (usize, usize),
        /// The foreign edge.
        edge: u32,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::MissingToken { edge } => write!(f, "edge {edge} has no token"),
            SnapshotError::DuplicateToken { edge } => {
                write!(f, "edge {edge} has more than one token")
            }
            SnapshotError::WrongHolder { node, edge } => {
                write!(f, "node {node} holds token of non-incident edge {edge}")
            }
            SnapshotError::ForeignToken { channel, edge } => write!(
                f,
                "channel {}→{} carries foreign token {edge}",
                channel.0, channel.1
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl Snapshot {
    /// Checks the cut's token-conservation invariant and reconstructs its
    /// abstract orientation (in-flight tokens attributed to receivers).
    pub fn validate(&self, graph: &Arc<ConflictGraph>) -> Result<Orientation, SnapshotError> {
        let m = graph.edge_count();
        let mut seen = vec![false; m];
        let mut orientation = Orientation::index_order(graph.clone());
        for (node, tokens) in self.node_tokens.iter().enumerate() {
            for &e in tokens {
                let (u, v) = graph.endpoints(e);
                if node != u && node != v {
                    return Err(SnapshotError::WrongHolder { node, edge: e });
                }
                if std::mem::replace(&mut seen[e as usize], true) {
                    return Err(SnapshotError::DuplicateToken { edge: e });
                }
                orientation.set_points(node, if node == u { v } else { u });
            }
        }
        for ((from, to), tokens) in &self.channel_tokens {
            for &e in tokens {
                let (u, v) = graph.endpoints(e);
                if !((u == *from && v == *to) || (v == *from && u == *to)) {
                    return Err(SnapshotError::ForeignToken {
                        channel: (*from, *to),
                        edge: e,
                    });
                }
                if std::mem::replace(&mut seen[e as usize], true) {
                    return Err(SnapshotError::DuplicateToken { edge: e });
                }
                orientation.set_points(*to, *from);
            }
        }
        if let Some(e) = seen.iter().position(|s| !s) {
            return Err(SnapshotError::MissingToken { edge: e as u32 });
        }
        Ok(orientation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::topology;

    fn triangle() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap())
    }

    fn snap(
        node_tokens: Vec<Vec<u32>>,
        channel_tokens: Vec<((usize, usize), Vec<u32>)>,
    ) -> Snapshot {
        Snapshot {
            id: 0,
            span: (0, 1),
            node_tokens,
            channel_tokens,
        }
    }

    #[test]
    fn valid_cut_reconstructs_orientation() {
        let g = triangle();
        // Node 0 holds edges 0 (0-1) and 2 (0-2); edge 1 (1-2) in flight 1→2.
        let s = snap(vec![vec![0, 2], vec![], vec![]], vec![((1, 2), vec![1])]);
        let o = s.validate(&g).unwrap();
        assert!(o.points(0, 1));
        assert!(o.points(0, 2));
        assert!(o.points(2, 1), "in-flight token attributed to receiver");
    }

    #[test]
    fn missing_and_duplicate_tokens_rejected() {
        let g = triangle();
        let s = snap(vec![vec![0], vec![], vec![]], vec![]);
        assert!(matches!(
            s.validate(&g),
            Err(SnapshotError::MissingToken { .. })
        ));
        let s = snap(vec![vec![0, 2], vec![0, 1], vec![]], vec![]);
        assert!(matches!(
            s.validate(&g),
            Err(SnapshotError::DuplicateToken { edge: 0 })
        ));
    }

    #[test]
    fn misplaced_tokens_rejected() {
        let g = Arc::new(topology::path(4)); // edges 0:(0,1) 1:(1,2) 2:(2,3)
        let s = snap(vec![vec![2], vec![0], vec![1], vec![]], vec![]);
        assert!(matches!(
            s.validate(&g),
            Err(SnapshotError::WrongHolder { node: 0, edge: 2 })
        ));
        let s = snap(
            vec![vec![0], vec![1], vec![], vec![]],
            vec![((0, 1), vec![2])],
        );
        assert!(matches!(
            s.validate(&g),
            Err(SnapshotError::ForeignToken { .. })
        ));
    }
}
