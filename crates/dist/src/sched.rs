//! Delivery schedulers: which in-flight message is delivered next.
//!
//! The protocol is safe under *any* delivery order (safety is
//! schedule-independent — the refinement check in [`crate::run`] verifies
//! this empirically); fairness of the schedule decides liveness and
//! per-node throughput balance.

/// What a scheduler sees: for every non-empty channel, its index and the
/// sequence number of the message at its head (FIFO order within a
/// channel is fixed; schedulers only pick *between* channels).
#[derive(Debug)]
pub struct PendingMsg {
    /// Channel index (dense, `2 * edge_count` channels).
    pub channel: usize,
    /// Global send sequence number of the head message.
    pub seq: u64,
}

/// Picks the channel whose head message is delivered next.
pub trait DeliveryScheduler: Send {
    /// Chooses one entry of `pending` (guaranteed non-empty).
    fn pick(&mut self, pending: &[PendingMsg]) -> usize;

    /// A short name for reporting.
    fn name(&self) -> &'static str;
}

/// Delivers the globally oldest in-flight message first. This is the
/// fairest schedule: no message waits behind more than the messages sent
/// before it, so every token keeps moving and every node keeps acting.
#[derive(Debug, Default, Clone)]
pub struct OldestFirst;

impl OldestFirst {
    /// Creates the scheduler.
    pub fn new() -> Self {
        OldestFirst
    }
}

impl DeliveryScheduler for OldestFirst {
    fn pick(&mut self, pending: &[PendingMsg]) -> usize {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.seq)
            .map(|(k, _)| k)
            .expect("pending is non-empty")
    }

    fn name(&self) -> &'static str {
        "oldest-first"
    }
}

/// Uniformly random choice among non-empty channels, deterministic in the
/// seed (SplitMix64). Almost-surely fair.
#[derive(Debug, Clone)]
pub struct SeededRandom {
    state: u64,
}

impl SeededRandom {
    /// Creates the scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl DeliveryScheduler for SeededRandom {
    fn pick(&mut self, pending: &[PendingMsg]) -> usize {
        ((self.next_u64() as u128 * pending.len() as u128) >> 64) as usize
    }

    fn name(&self) -> &'static str {
        "seeded-random"
    }
}

/// Adversarial last-in-first-out: always delivers the *newest* message.
/// Channels stay FIFO internally (required for snapshot correctness);
/// the adversary only maximizes the age of the oldest in-flight message.
/// Safety must survive this; fairness does not.
#[derive(Debug, Default, Clone)]
pub struct Lifo;

impl DeliveryScheduler for Lifo {
    fn pick(&mut self, pending: &[PendingMsg]) -> usize {
        pending
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.seq)
            .map(|(k, _)| k)
            .expect("pending is non-empty")
    }

    fn name(&self) -> &'static str {
        "lifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending() -> Vec<PendingMsg> {
        vec![
            PendingMsg { channel: 4, seq: 9 },
            PendingMsg { channel: 1, seq: 2 },
            PendingMsg {
                channel: 7,
                seq: 30,
            },
        ]
    }

    #[test]
    fn oldest_first_picks_min_seq() {
        assert_eq!(OldestFirst::new().pick(&pending()), 1);
    }

    #[test]
    fn lifo_picks_max_seq() {
        assert_eq!(Lifo.pick(&pending()), 2);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let p = pending();
        let picks_a: Vec<usize> = {
            let mut s = SeededRandom::new(5);
            (0..50).map(|_| s.pick(&p)).collect()
        };
        let picks_b: Vec<usize> = {
            let mut s = SeededRandom::new(5);
            (0..50).map(|_| s.pick(&p)).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&k| k < p.len()));
        assert!(
            (0..p.len()).all(|k| picks_a.contains(&k)),
            "all channels hit"
        );
    }
}
