//! # unity-dist
//!
//! Distributed message-passing realization of the paper's §4 priority
//! mechanism (token-based edge reversal), with:
//!
//! * an **event-driven executor** ([`run::DistRun`]) where the only events
//!   are message deliveries, scheduled by pluggable
//!   [`sched::DeliveryScheduler`]s (fair oldest-first, seeded random,
//!   adversarial LIFO);
//! * **Chandy–Lamport snapshots** ([`snapshot`]) taken while the protocol
//!   runs, validated into consistent abstract orientations;
//! * a per-step **refinement check** back onto the abstract orientation
//!   semantics of `prio-graph` (Definition 1 of the paper): every send
//!   burst must correspond to exactly the abstract `yield` action;
//! * a **threaded executor** ([`threaded`]) with one OS thread per node
//!   exchanging tokens over channels, used to measure real concurrency.
//!
//! ## Protocol
//!
//! Every conflict edge `{i, j}` carries exactly one *token*; holding the
//! token means having priority over that neighbour (`i → j` in the
//! paper's orientation). A node holding the tokens of **all** its edges
//! has `Priority(i)`; it performs its action (the critical step) and then
//! *yields*: it sends every token to the corresponding neighbour in one
//! atomic burst. A token in flight is attributed to its **receiver** —
//! the reversal happened at send time — which makes the send burst the
//! exact image of the paper's abstract `yield_node` and keeps the
//! abstraction acyclic at every step.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod run;
pub mod sched;
pub mod snapshot;
pub mod threaded;

/// Commonly used items.
pub mod prelude {
    pub use crate::run::{DistRun, RefinementViolation, RunLimits, RunStats, TraceEvent};
    pub use crate::sched::{DeliveryScheduler, Lifo, OldestFirst, SeededRandom};
    pub use crate::snapshot::{Snapshot, SnapshotError};
    pub use crate::threaded::{run_threaded, ThreadedConfig, ThreadedOutcome};
}
