//! Lowering expressions to BDDs.
//!
//! Boolean expressions lower to a single BDD over current-state bits.
//! Integer expressions lower to a **value partition**: a finite map
//! `value → BDD` whose classes are pairwise disjoint and cover every
//! type-consistent state. This is a bounded-arithmetic bit-blaster
//! driven by the finite domains: a variable's partition enumerates its
//! field cubes, and every operator combines partitions with the *same
//! scalar arithmetic as the reference evaluator* — saturating `+ − ×
//! neg`, total Euclidean `÷`/`%` with `x/0 = x%0 = 0` — so the symbolic
//! backend cannot drift from the paper's pinned semantics no matter how
//! values overflow or saturate.
//!
//! The partition width is the number of *distinct values* an expression
//! takes, not the state count: `Σᵢ cᵢ` over 16 ternary counters has 33
//! classes (each a compact counting BDD), while the underlying space has
//! 3¹⁶ states. A safety valve ([`MAX_VALUES`]) rejects pathological
//! expressions so callers can fall back to the explicit engine instead
//! of thrashing.

use std::collections::BTreeMap;

use unity_core::expr::{BinOp, Expr, NAryOp};
use unity_core::value::Value;

use crate::bdd::{Bdd, Ref, FALSE, TRUE};
use crate::encode::SymSpace;
use crate::SymbolicError;

/// Maximum number of distinct values in one integer partition before
/// lowering gives up (callers fall back to the explicit engine).
pub const MAX_VALUES: usize = 4096;

/// An integer expression as a disjoint `value → condition` partition,
/// sorted by value.
#[derive(Debug, Clone)]
pub struct ValueMap(pub Vec<(i64, Ref)>);

impl ValueMap {
    fn from_btree(map: BTreeMap<i64, Ref>) -> Result<ValueMap, SymbolicError> {
        if map.len() > MAX_VALUES {
            return Err(SymbolicError::ValueExplosion { count: map.len() });
        }
        Ok(ValueMap(
            map.into_iter().filter(|&(_, c)| c != FALSE).collect(),
        ))
    }
}

/// A lowered expression: a predicate BDD or an integer partition.
#[derive(Debug, Clone)]
pub enum Lowered {
    /// Boolean expression (predicate on states).
    Bool(Ref),
    /// Integer expression (value partition).
    Int(ValueMap),
}

impl Lowered {
    /// The predicate BDD; error if the expression was integer-typed.
    pub fn into_pred(self) -> Result<Ref, SymbolicError> {
        match self {
            Lowered::Bool(r) => Ok(r),
            Lowered::Int(_) => Err(SymbolicError::NotAPredicate),
        }
    }

    /// A value partition view of either type: booleans become
    /// `{0 → ¬b, 1 → b}` — the same 0/1 convention the compiled
    /// bytecode uses (so `unchanged` on boolean expressions agrees).
    pub fn into_values(self, bdd: &mut Bdd) -> ValueMap {
        match self {
            Lowered::Int(m) => m,
            Lowered::Bool(b) => {
                let nb = bdd.not(b);
                let mut out = Vec::new();
                if nb != FALSE {
                    out.push((0, nb));
                }
                if b != FALSE {
                    out.push((1, b));
                }
                ValueMap(out)
            }
        }
    }
}

/// Lowers a boolean predicate to a BDD over current-state bits.
pub fn lower_pred(bdd: &mut Bdd, space: &SymSpace, e: &Expr) -> Result<Ref, SymbolicError> {
    lower(bdd, space, e)?.into_pred()
}

/// Lowers any expression.
pub fn lower(bdd: &mut Bdd, space: &SymSpace, e: &Expr) -> Result<Lowered, SymbolicError> {
    Ok(match e {
        Expr::Lit(Value::Bool(b)) => Lowered::Bool(if *b { TRUE } else { FALSE }),
        Expr::Lit(Value::Int(n)) => Lowered::Int(ValueMap(vec![(*n, TRUE)])),
        Expr::Var(id) => {
            let v = id.index();
            let layout = space.layout();
            if space.is_bool(v) {
                // A boolean variable's single bit *is* the predicate.
                Lowered::Bool(bdd.var(crate::encode::cur(layout.field_shift(v))))
            } else {
                let mut classes = Vec::with_capacity(layout.domain_size(v) as usize);
                for k in 0..layout.domain_size(v) {
                    let cube = space.field_cube(bdd, v, k, false);
                    classes.push((layout.field_base(v) + k as i64, cube));
                }
                Lowered::Int(ValueMap(classes))
            }
        }
        Expr::Not(a) => {
            let a = lower_pred(bdd, space, a)?;
            Lowered::Bool(bdd.not(a))
        }
        Expr::Neg(a) => {
            let a = lower_int(bdd, space, a)?;
            let mut out = BTreeMap::new();
            for (v, c) in a.0 {
                merge(bdd, &mut out, v.saturating_neg(), c);
            }
            Lowered::Int(ValueMap::from_btree(out)?)
        }
        Expr::Bin(op, a, b) => lower_bin(bdd, space, *op, a, b)?,
        Expr::Ite(c, t, f) => {
            let c = lower_pred(bdd, space, c)?;
            let t = lower(bdd, space, t)?;
            let f = lower(bdd, space, f)?;
            match (t, f) {
                (Lowered::Bool(t), Lowered::Bool(f)) => Lowered::Bool(bdd.ite(c, t, f)),
                (t, f) => {
                    let (t, f) = (t.into_values(bdd), f.into_values(bdd));
                    let nc = bdd.not(c);
                    let mut out = BTreeMap::new();
                    for (v, cond) in t.0 {
                        let g = bdd.and(c, cond);
                        merge(bdd, &mut out, v, g);
                    }
                    for (v, cond) in f.0 {
                        let g = bdd.and(nc, cond);
                        merge(bdd, &mut out, v, g);
                    }
                    Lowered::Int(ValueMap::from_btree(out)?)
                }
            }
        }
        Expr::NAry(op, args) => match op {
            NAryOp::And => {
                let mut acc = TRUE;
                for a in args {
                    let p = lower_pred(bdd, space, a)?;
                    acc = bdd.and(acc, p);
                }
                Lowered::Bool(acc)
            }
            NAryOp::Or => {
                let mut acc = FALSE;
                for a in args {
                    let p = lower_pred(bdd, space, a)?;
                    acc = bdd.or(acc, p);
                }
                Lowered::Bool(acc)
            }
            NAryOp::Sum | NAryOp::Min | NAryOp::Max => {
                let mut acc = match args.split_first() {
                    None => ValueMap(vec![(0, TRUE)]),
                    Some((first, _)) => lower_int(bdd, space, first)?,
                };
                for a in &args[1.min(args.len())..] {
                    let b = lower_int(bdd, space, a)?;
                    let f = match op {
                        NAryOp::Sum => |x: i64, y: i64| x.saturating_add(y),
                        NAryOp::Min => |x: i64, y: i64| x.min(y),
                        _ => |x: i64, y: i64| x.max(y),
                    };
                    acc = combine_int(bdd, &acc, &b, f)?;
                }
                Lowered::Int(acc)
            }
        },
    })
}

fn lower_int(bdd: &mut Bdd, space: &SymSpace, e: &Expr) -> Result<ValueMap, SymbolicError> {
    match lower(bdd, space, e)? {
        Lowered::Int(m) => Ok(m),
        Lowered::Bool(_) => Err(SymbolicError::NotAPredicate),
    }
}

fn merge(bdd: &mut Bdd, out: &mut BTreeMap<i64, Ref>, v: i64, c: Ref) {
    if c == FALSE {
        return;
    }
    let slot = out.entry(v).or_insert(FALSE);
    *slot = bdd.or(*slot, c);
}

/// Pairwise combination of two partitions through a scalar function —
/// the single place all symbolic arithmetic funnels through.
fn combine_int(
    bdd: &mut Bdd,
    a: &ValueMap,
    b: &ValueMap,
    f: impl Fn(i64, i64) -> i64,
) -> Result<ValueMap, SymbolicError> {
    let mut out = BTreeMap::new();
    for &(va, ca) in &a.0 {
        for &(vb, cb) in &b.0 {
            let c = bdd.and(ca, cb);
            merge(bdd, &mut out, f(va, vb), c);
        }
    }
    ValueMap::from_btree(out)
}

/// Pairwise comparison of two partitions through a scalar predicate.
fn compare_int(bdd: &mut Bdd, a: &ValueMap, b: &ValueMap, f: impl Fn(i64, i64) -> bool) -> Ref {
    let mut acc = FALSE;
    for &(va, ca) in &a.0 {
        for &(vb, cb) in &b.0 {
            if f(va, vb) {
                let c = bdd.and(ca, cb);
                acc = bdd.or(acc, c);
            }
        }
    }
    acc
}

fn lower_bin(
    bdd: &mut Bdd,
    space: &SymSpace,
    op: BinOp,
    a: &Expr,
    b: &Expr,
) -> Result<Lowered, SymbolicError> {
    use unity_core::expr::eval::{euclid_div, euclid_rem};
    Ok(match op {
        BinOp::And => {
            let (a, b) = (lower_pred(bdd, space, a)?, lower_pred(bdd, space, b)?);
            Lowered::Bool(bdd.and(a, b))
        }
        BinOp::Or => {
            let (a, b) = (lower_pred(bdd, space, a)?, lower_pred(bdd, space, b)?);
            Lowered::Bool(bdd.or(a, b))
        }
        BinOp::Implies => {
            let (a, b) = (lower_pred(bdd, space, a)?, lower_pred(bdd, space, b)?);
            Lowered::Bool(bdd.implies(a, b))
        }
        BinOp::Iff => {
            let (a, b) = (lower_pred(bdd, space, a)?, lower_pred(bdd, space, b)?);
            Lowered::Bool(bdd.iff(a, b))
        }
        BinOp::Eq | BinOp::Ne => {
            // Polymorphic: booleans compare as BDDs, integers pairwise.
            let la = lower(bdd, space, a)?;
            let lb = lower(bdd, space, b)?;
            let eq = match (la, lb) {
                (Lowered::Bool(x), Lowered::Bool(y)) => bdd.iff(x, y),
                (x, y) => {
                    let (x, y) = (x.into_values(bdd), y.into_values(bdd));
                    compare_int(bdd, &x, &y, |p, q| p == q)
                }
            };
            Lowered::Bool(if matches!(op, BinOp::Eq) {
                eq
            } else {
                bdd.not(eq)
            })
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (x, y) = (lower_int(bdd, space, a)?, lower_int(bdd, space, b)?);
            let f: fn(i64, i64) -> bool = match op {
                BinOp::Lt => |p, q| p < q,
                BinOp::Le => |p, q| p <= q,
                BinOp::Gt => |p, q| p > q,
                _ => |p, q| p >= q,
            };
            Lowered::Bool(compare_int(bdd, &x, &y, f))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let (x, y) = (lower_int(bdd, space, a)?, lower_int(bdd, space, b)?);
            let f: fn(i64, i64) -> i64 = match op {
                BinOp::Add => |p, q| p.saturating_add(q),
                BinOp::Sub => |p, q| p.saturating_sub(q),
                BinOp::Mul => |p, q| p.saturating_mul(q),
                BinOp::Div => euclid_div,
                _ => euclid_rem,
            };
            Lowered::Int(combine_int(bdd, &x, &y, f)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::expr::eval::{eval, eval_bool};
    use unity_core::ident::Vocabulary;
    use unity_core::state::StateSpaceIter;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("b", Domain::Bool).unwrap();
        v.declare("n", Domain::int_range(-3, 4).unwrap()).unwrap();
        v.declare("m", Domain::int_range(0, 6).unwrap()).unwrap();
        v
    }

    /// Lowered predicate must agree with the reference evaluator on
    /// every type-consistent state.
    fn assert_pred_agrees(e: &Expr, v: &Vocabulary) {
        let space = SymSpace::new(v).unwrap();
        let mut bdd = Bdd::new();
        let p = lower_pred(&mut bdd, &space, e).unwrap();
        for s in StateSpaceIter::new(v) {
            let word = space.layout().pack(&s);
            let got = bdd.eval(p, |level| {
                assert_eq!(level % 2, 0, "predicates mention only current bits");
                word >> (level / 2) & 1 == 1
            });
            assert_eq!(got, eval_bool(e, &s), "state {}", s.display(v));
        }
    }

    /// Lowered integer partition must classify every state under the
    /// reference value.
    fn assert_int_agrees(e: &Expr, v: &Vocabulary) {
        let space = SymSpace::new(v).unwrap();
        let mut bdd = Bdd::new();
        let lowered = lower(&mut bdd, &space, e).unwrap();
        let m = lowered.into_values(&mut bdd);
        for s in StateSpaceIter::new(v) {
            let word = space.layout().pack(&s);
            let expect = match eval(e, &s) {
                Value::Int(n) => n,
                Value::Bool(b) => i64::from(b),
            };
            let mut hits = 0;
            for &(val, cond) in &m.0 {
                if bdd.eval(cond, |level| word >> (level / 2) & 1 == 1) {
                    assert_eq!(val, expect, "state {}", s.display(v));
                    hits += 1;
                }
            }
            assert_eq!(hits, 1, "partition covers each state exactly once");
        }
    }

    #[test]
    fn predicates_agree_with_eval() {
        let v = vocab();
        let b = v.lookup("b").unwrap();
        let n = v.lookup("n").unwrap();
        let m = v.lookup("m").unwrap();
        for e in [
            tt(),
            ff(),
            var(b),
            not(var(b)),
            lt(var(n), int(2)),
            le(add(var(n), var(m)), int(3)),
            and2(var(b), ge(var(m), int(4))),
            or2(not(var(b)), eq(var(n), var(m))),
            implies(var(b), ne(var(n), int(-3))),
            iff(var(b), gt(var(m), int(2))),
            ite(var(b), lt(var(n), int(0)), ge(var(n), int(0))),
            eq(rem(var(m), int(2)), int(0)),
            and(vec![var(b), le(var(n), int(4)), ge(var(m), int(0))]),
            or(vec![]),
        ] {
            assert_pred_agrees(&e, &v);
        }
    }

    #[test]
    fn arithmetic_agrees_with_eval() {
        let v = vocab();
        let n = v.lookup("n").unwrap();
        let m = v.lookup("m").unwrap();
        for e in [
            add(var(n), var(m)),
            sub(var(n), mul(var(m), int(2))),
            neg(var(n)),
            div(var(m), var(n)), // hits the x/0 = 0 convention at n = 0
            rem(var(m), var(n)),
            sum(vec![var(n), var(m), int(1)]),
            min(vec![var(n), var(m)]),
            max(vec![var(n), var(m), int(0)]),
            ite(lt(var(n), int(0)), neg(var(n)), var(n)),
        ] {
            assert_int_agrees(&e, &v);
        }
    }

    #[test]
    fn saturating_semantics_preserved() {
        let v = vocab();
        let n = v.lookup("n").unwrap();
        // i64::MAX + n saturates for positive n; the partition must carry
        // the saturated value, exactly like the evaluator.
        for e in [
            add(int(i64::MAX), var(n)),
            sub(int(i64::MIN), var(n)),
            mul(int(i64::MAX), var(n)),
        ] {
            assert_int_agrees(&e, &v);
        }
    }

    #[test]
    fn booleans_unify_with_the_01_convention() {
        let v = vocab();
        let b = v.lookup("b").unwrap();
        // `unchanged`-style lowering of a boolean expression.
        assert_int_agrees(&var(b), &v);
        assert_int_agrees(&ite(var(b), int(7), int(0)), &v);
    }
}
