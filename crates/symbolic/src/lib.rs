//! # unity-symbolic
//!
//! Symbolic (BDD) backend for `unity-core` programs: set-based
//! reachability and inductive safety checking beyond explicit
//! enumeration.
//!
//! The paper's universal properties (`init`, `stable`, `invariant`,
//! `p next q`, `unchanged`, `transient`) are quantifications over state
//! *sets*. The explicit engines in `unity-mc` decide them by enumerating
//! every type-consistent state — exact, but capped at a few million
//! states. This crate represents those sets as reduced ordered binary
//! decision diagrams over the **same packed bit layout** the compiled
//! pipeline already fixes ([`unity_core::expr::compile::PackedLayout`]),
//! characterizing fixpoints by the property they satisfy rather than
//! point by point:
//!
//! * [`bdd`] — a self-contained, dependency-free BDD package:
//!   hash-consed node arena with a *mutable variable order* (in-place
//!   adjacent-level swaps, grouped Rudell sifting), memoized
//!   `not`/`and`/`or`/`xor` through a generation-tagged lossy cache,
//!   `restrict`/`exists`/`relprod`/`rename`, exact model counting, cube
//!   extraction, and generational mark-and-sweep over engine-registered
//!   roots;
//! * [`order`] — variable-order optimisation: static orders from the
//!   program's weighted variable-dependency graph (FORCE/min-span style
//!   greedy maximum adjacency), the `SymbolicOptions`/`OrderMode`
//!   configuration surface, and the growth-watermark sift policy;
//! * [`encode`] — each packed state bit `b` becomes the interleaved BDD
//!   variable pair `2b` (current) / `2b+1` (next), so packed `u64` words
//!   and BDD cubes describe identical states;
//! * [`lower`] — expressions lower to predicate BDDs and exact
//!   value-partition "bit-blasted" arithmetic that reuses the reference
//!   evaluator's saturating/Euclidean scalar semantics verbatim;
//! * [`engine`] — per-command partitioned transition relations, symbolic
//!   reachability via image computation with frontier chaining, and the
//!   inductive safety deciders as BDD implications, each returning
//!   concrete packed-word witnesses on refutation.
//!
//! `unity-mc` exposes all of this as `Engine::Symbolic` on its
//! `ScanConfig`, with witnesses decoded back into explicit
//! counterexample states; the differential suite
//! (`crates/mc/tests/prop_symbolic.rs`) pins symbolic ≡ explicit on
//! random programs.
//!
//! ```
//! use std::sync::Arc;
//! use unity_core::prelude::*;
//! use unity_symbolic::SymbolicProgram;
//!
//! let mut v = Vocabulary::new();
//! let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
//! let p = Program::builder("count", Arc::new(v))
//!     .init(eq(var(x), int(0)))
//!     .fair_command("inc", lt(var(x), int(3)), vec![(x, add(var(x), int(1)))])
//!     .build()
//!     .unwrap();
//! let mut sym = SymbolicProgram::build(&p).unwrap();
//! assert_eq!(sym.reachable().count, 4);
//! assert!(sym.check_init(&le(var(x), int(0))).unwrap().is_none());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bdd;
pub mod encode;
pub mod engine;
pub mod lower;
pub mod order;

pub use engine::{ReachReport, SymStats, SymbolicProgram};
pub use order::{OrderMode, SymbolicOptions};

/// Why a program or expression cannot be handled symbolically. Callers
/// treat every variant as "fall back to the explicit engines".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicError {
    /// The vocabulary does not pack into 64 bits (same gate as the
    /// compiled pipeline).
    VocabularyTooWide,
    /// An integer expression's value partition exceeded
    /// [`lower::MAX_VALUES`] distinct values.
    ValueExplosion {
        /// Number of distinct values reached.
        count: usize,
    },
    /// An integer expression appeared where a predicate was required
    /// (cannot happen on type-checked input).
    NotAPredicate,
}

impl std::fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymbolicError::VocabularyTooWide => {
                write!(f, "vocabulary exceeds 64 packed bits")
            }
            SymbolicError::ValueExplosion { count } => {
                write!(f, "value partition exploded to {count} classes")
            }
            SymbolicError::NotAPredicate => write!(f, "expected a boolean predicate"),
        }
    }
}

impl std::error::Error for SymbolicError {}
