//! The symbolic UNITY backend: transition relations, set-based
//! reachability, and the paper's inductive safety checks as BDD
//! implications.
//!
//! Every decision procedure here quantifies over **all type-consistent
//! states** — the paper's inductive semantics, identical to the explicit
//! checkers in `unity-mc` — but represents the quantification domain as
//! one BDD instead of enumerating it. A priority ring with 24 processes
//! has 2²⁴ states; its type-consistency set is the single node `true`
//! and its reachable set a few thousand nodes.
//!
//! The transition relation is kept **partitioned** (one conjunct per
//! command, constraining only the next-state bits that command writes).
//! Image computation is a fused relational product per command, with the
//! frontier *chained* through the commands inside one sweep — command
//! `k+1` sees the states command `k` just produced — which typically
//! halves the number of fixpoint iterations on token-passing systems.

use unity_core::command::Command;
use unity_core::expr::Expr;
use unity_core::program::Program;

use crate::bdd::{Bdd, Ref, FALSE};
use crate::encode::{cur, nxt, SymSpace};
use crate::lower::{lower, lower_pred, ValueMap};
use crate::order::{initial_level_order, OrderMode, SiftPolicy, SymbolicOptions};
use crate::SymbolicError;

/// Interleaved current/next pairs move as one block through sifting.
const SIFT_GROUP: usize = 2;

/// One command lowered to relational form.
#[derive(Debug, Clone)]
pub struct SymCommand {
    /// Command name (diagnostics).
    pub name: String,
    /// Indices of the written program variables.
    written: Vec<usize>,
    /// Current-state BDD variables of the written fields, sorted — the
    /// quantification cube of the image step.
    written_cur: Vec<u32>,
    /// Rename maps for the written fields' bits.
    up: Vec<(u32, u32)>, // cur → nxt
    down: Vec<(u32, u32)>, // nxt → cur
    /// The *effective* guard (declared guard ∧ implicit domain guard)
    /// over current bits: exactly the states where the command fires.
    enabled: Ref,
    /// The transition relation `enabled ∧ ⋀ₜ next(t) = rhsₜ` over current
    /// bits plus the next bits of written fields.
    trans: Ref,
}

/// Outcome of symbolic reachability.
#[derive(Debug, Clone)]
pub struct ReachReport {
    /// The reachable set (over current-state bits), pinned against the
    /// engine's collections until [`SymbolicProgram::release_pins`].
    pub set: Ref,
    /// Exact number of reachable states.
    pub count: u128,
    /// Fixpoint iterations until closure.
    pub iterations: usize,
    /// Live arena size after the fixpoint (node-count pressure metric).
    pub nodes: usize,
}

/// Engine counters surfaced by [`SymbolicProgram::stats`] (and
/// `unity-check --stats`): the current live node count plus the
/// arena's lifetime counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymStats {
    /// Live BDD nodes right now (terminals included).
    pub live_nodes: usize,
    /// The arena's lifetime counters (peak nodes, apply-cache
    /// probes/hits, sift passes, swaps, GC runs/reclaimed).
    pub bdd: crate::bdd::BddStats,
}

impl SymStats {
    /// Apply-cache hit rate in `[0, 1]` (0 without lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        self.bdd.cache_hit_rate()
    }
}

impl std::fmt::Display for SymStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes {} live / {} peak; apply cache {}/{} ({:.1}%); \
             {} sift pass(es), {} swap(s); {} gc run(s), {} reclaimed",
            self.live_nodes,
            self.bdd.peak_nodes,
            self.bdd.cache_hits,
            self.bdd.cache_lookups,
            100.0 * self.cache_hit_rate(),
            self.bdd.sift_passes,
            self.bdd.swaps,
            self.bdd.gc_runs,
            self.bdd.reclaimed_nodes,
        )
    }
}

/// A program lowered to the symbolic backend.
pub struct SymbolicProgram {
    bdd: Bdd,
    space: SymSpace,
    /// Type-consistent states (current bits).
    domain: Ref,
    /// `domain ∧ initially` (current bits).
    init: Ref,
    commands: Vec<SymCommand>,
    fair: Vec<usize>,
    opts: SymbolicOptions,
    policy: SiftPolicy,
    /// Caller-held `Ref`s that must survive collections: results of
    /// [`SymbolicProgram::pred`]/[`SymbolicProgram::intersect`] are
    /// pinned here automatically (see
    /// [`SymbolicProgram::release_pins`]).
    pinned: Vec<Ref>,
    /// Memoized reachability fixpoint: a long-lived engine serving many
    /// checks computes it once. The set is a permanent root (it survives
    /// [`SymbolicProgram::release_pins`] and every collection).
    reach: Option<ReachReport>,
}

impl SymbolicProgram {
    /// Lowers `program` under the default options (static dependency
    /// order plus dynamic sifting). Fails when the vocabulary exceeds
    /// 64 packed bits or an expression's value partition explodes —
    /// callers fall back to the explicit engines.
    pub fn build(program: &Program) -> Result<SymbolicProgram, SymbolicError> {
        Self::build_with(program, &SymbolicOptions::default())
    }

    /// Lowers `program` with explicit ordering options.
    pub fn build_with(
        program: &Program,
        opts: &SymbolicOptions,
    ) -> Result<SymbolicProgram, SymbolicError> {
        let space = SymSpace::new(&program.vocab).ok_or(SymbolicError::VocabularyTooWide)?;
        let mut bdd = Bdd::new();
        if let Some(level2var) = initial_level_order(program, &space, &opts.order) {
            bdd.set_order(&level2var);
        }
        let domain = space.domain(&mut bdd);
        let init_pred = lower_pred(&mut bdd, &space, &program.init)?;
        let init = bdd.and(domain, init_pred);
        let mut policy = SiftPolicy::new(opts.sift_threshold, bdd.len());
        let mut commands: Vec<SymCommand> = Vec::with_capacity(program.commands.len());
        for c in &program.commands {
            commands.push(lower_command(&mut bdd, &space, c)?);
            // Safe point: everything live is rooted in domain/init and
            // the commands lowered so far. Sweep first — lowering
            // garbage usually explains the growth; sift only when the
            // live relations themselves outgrew the watermark.
            if matches!(opts.order, OrderMode::Sifting) && policy.due(bdd.len()) {
                let roots = roots_of(domain, init, &commands);
                bdd.sweep(&roots);
                if policy.due(bdd.len()) {
                    bdd.sift(&roots, SIFT_GROUP);
                }
                policy.rearm(bdd.len());
            }
        }
        // Reclaim lowering intermediates in every mode before first use.
        let roots = roots_of(domain, init, &commands);
        bdd.sweep(&roots);
        let policy = SiftPolicy::new(opts.sift_threshold, bdd.len());
        Ok(SymbolicProgram {
            bdd,
            space,
            domain,
            init,
            commands,
            fair: program.fair.iter().copied().collect(),
            opts: opts.clone(),
            policy,
            pinned: Vec::new(),
            reach: None,
        })
    }

    /// The encoding (for decoding witnesses on the caller's side).
    pub fn space(&self) -> &SymSpace {
        &self.space
    }

    /// Current live arena size in nodes.
    pub fn node_count(&self) -> usize {
        self.bdd.len()
    }

    /// The options this engine was built with.
    pub fn options(&self) -> &SymbolicOptions {
        &self.opts
    }

    /// Engine counters (live/peak nodes, apply-cache hit rate, sift and
    /// GC activity).
    pub fn stats(&self) -> SymStats {
        SymStats {
            live_nodes: self.bdd.len(),
            bdd: self.bdd.stats().clone(),
        }
    }

    /// The BDD variable order currently in effect (`order()[l]` = the
    /// encoding-level variable at level `l`).
    pub fn level_order(&self) -> &[u32] {
        self.bdd.order()
    }

    /// The current order projected onto program variables: fields by
    /// first occurrence in the level order. This is the persistable
    /// summary of a tuned order — re-expanding it through
    /// [`OrderMode::Fields`] recovers the canonical interleaved level
    /// order for that field permutation (sifting moves individual bit
    /// pairs, so the round trip is field-granular, not bit-exact; in
    /// practice the field permutation carries nearly all of the win).
    pub fn field_order(&self) -> Vec<usize> {
        let layout = self.space.layout();
        let n = self.space.n_vars();
        // bit → owning field, by field ranges.
        let mut field_of_bit = vec![usize::MAX; self.space.total_bits() as usize];
        for v in 0..n {
            let shift = layout.field_shift(v);
            for i in 0..layout.field_bits(v) {
                field_of_bit[(shift + i) as usize] = v;
            }
        }
        let mut seen = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for &u in self.bdd.order() {
            let v = field_of_bit[(u / 2) as usize];
            if v != usize::MAX && !seen[v] {
                seen[v] = true;
                order.push(v);
            }
        }
        // Zero-bit fields (singleton domains) never appear at any
        // level; append them so the result is a full permutation.
        for (v, s) in seen.iter().enumerate() {
            if !s {
                order.push(v);
            }
        }
        order
    }

    /// The engine's persistent roots: every `Ref` that must survive a
    /// collection (domain, initial set, per-command relations).
    fn roots(&self) -> Vec<Ref> {
        let mut roots = roots_of(self.domain, self.init, &self.commands);
        roots.extend_from_slice(&self.pinned);
        if let Some(reach) = &self.reach {
            roots.push(reach.set);
        }
        roots
    }

    /// Releases every automatically pinned `Ref` (reachable sets,
    /// `pred`/`intersect` results), letting the next collection reclaim
    /// them. Call between query batches on a long-lived engine.
    pub fn release_pins(&mut self) {
        self.pinned.clear();
    }

    /// Watermark-gated service point: reclaims dead intermediates and,
    /// under [`OrderMode::Sifting`], re-optimises the variable order.
    /// `extra` lists the caller's additional live roots. An unproductive
    /// sift pass backs the watermark off so a converged order stops
    /// paying reorder cost.
    fn service(&mut self, extra: &[Ref]) {
        if !self.policy.due(self.bdd.len()) {
            return;
        }
        let mut roots = self.roots();
        roots.extend_from_slice(extra);
        // Collect first: most watermark hits are transient image/lowering
        // garbage, which a sweep reclaims at a fraction of a sift's cost.
        self.bdd.sweep(&roots);
        let before = self.bdd.len();
        if matches!(self.opts.order, OrderMode::Sifting) && self.policy.due(before) {
            // The *live* structure itself outgrew the watermark: the
            // order is genuinely bad for this fixpoint — re-optimise.
            self.bdd.sift(&roots, SIFT_GROUP);
            let after = self.bdd.len();
            if after * 10 > before * 9 {
                // Saved < 10%: the order has converged — back off hard.
                self.policy.rearm(after * 4);
                return;
            }
        }
        self.policy.rearm(self.bdd.len());
    }

    /// Number of type-consistent states.
    pub fn domain_count(&self) -> u128 {
        self.bdd.sat_count(self.domain, &self.space.all_cur_bits())
    }

    /// Number of initial states.
    pub fn initial_count(&self) -> u128 {
        self.bdd.sat_count(self.init, &self.space.all_cur_bits())
    }

    /// Decodes one state of `set` into a packed word (`None` iff empty).
    pub fn pick_word(&self, set: Ref) -> Option<u64> {
        let lits = self.bdd.pick_one(set)?;
        Some(self.space.word_of_cube(&lits))
    }

    /// Image of `from` under command `k`: the states one firing step
    /// away. States where the command skips are *not* included (the
    /// identity contributes nothing to reachability).
    fn image(&mut self, from: Ref, k: usize) -> Ref {
        let c = &self.commands[k];
        let stepped = self.bdd.relprod(from, c.trans, &c.written_cur);
        self.bdd.rename(stepped, &c.down)
    }

    /// Least fixpoint of the transition relation from the initial
    /// states, by partitioned image computation with frontier chaining.
    /// Between rounds a watermark-gated service pass reclaims dead
    /// image intermediates and (under sifting) re-optimises the
    /// variable order — swaps are in-place, so the running sets stay
    /// valid across a reorder.
    ///
    /// The fixpoint is **memoized**: a long-lived engine answering many
    /// queries (a `unity_mc` verifier session, repeated `--stats`
    /// probes) pays for it once; later calls return the cached report.
    /// The cached set is rooted for the engine's lifetime, surviving
    /// collections, sifting and [`SymbolicProgram::release_pins`].
    pub fn reachable(&mut self) -> ReachReport {
        if let Some(reach) = &self.reach {
            return reach.clone();
        }
        let mut reached = self.init;
        let mut frontier = self.init;
        let mut iterations = 0;
        while frontier != FALSE {
            iterations += 1;
            // Chain: each command's image immediately extends the layer
            // the next command steps from.
            let mut layer = frontier;
            for k in 0..self.commands.len() {
                let img = self.image(layer, k);
                layer = self.bdd.or(layer, img);
            }
            frontier = self.bdd.diff(layer, reached);
            reached = self.bdd.or(reached, frontier);
            self.service(&[reached, frontier]);
        }
        let report = ReachReport {
            set: reached,
            count: self.bdd.sat_count(reached, &self.space.all_cur_bits()),
            iterations,
            nodes: self.bdd.len(),
        };
        self.reach = Some(report.clone());
        report
    }

    /// Lowers a predicate over the current-state bits (for callers
    /// composing their own set algebra on top of the engine). The
    /// result is pinned across collections until
    /// [`SymbolicProgram::release_pins`].
    pub fn pred(&mut self, p: &Expr) -> Result<Ref, SymbolicError> {
        let r = lower_pred(&mut self.bdd, &self.space, p)?;
        self.pinned.push(r);
        Ok(r)
    }

    /// Set intersection/counting helpers over current-state bits.
    pub fn count_states(&self, set: Ref) -> u128 {
        self.bdd.sat_count(set, &self.space.all_cur_bits())
    }

    /// Intersects `a ∧ b` (exposed for reachable ∧ predicate queries).
    /// The result is pinned across collections until
    /// [`SymbolicProgram::release_pins`].
    pub fn intersect(&mut self, a: Ref, b: Ref) -> Ref {
        let r = self.bdd.and(a, b);
        self.pinned.push(r);
        r
    }

    /// `init p`: every initial state satisfies `p`. Returns a violating
    /// packed state word, if any.
    pub fn check_init(&mut self, p: &Expr) -> Result<Option<u64>, SymbolicError> {
        self.service(&[]);
        let p = lower_pred(&mut self.bdd, &self.space, p)?;
        let np = self.bdd.not(p);
        let bad = self.bdd.and(self.init, np);
        Ok(self.pick_word(bad))
    }

    /// `p next q`: from every type-consistent `p`-state, the implicit
    /// skip and every command land in `q`. Returns the violating
    /// pre-state and the offending command index (`None` = skip).
    #[allow(clippy::type_complexity)]
    pub fn check_next(
        &mut self,
        p: &Expr,
        q: &Expr,
    ) -> Result<Option<(Option<usize>, u64)>, SymbolicError> {
        self.service(&[]);
        let p = lower_pred(&mut self.bdd, &self.space, p)?;
        let q = lower_pred(&mut self.bdd, &self.space, q)?;
        let dp = self.bdd.and(self.domain, p);
        // Implicit skip: p-states must already satisfy q.
        let nq = self.bdd.not(q);
        let skip_bad = self.bdd.and(dp, nq);
        if let Some(w) = self.pick_word(skip_bad) {
            return Ok(Some((None, w)));
        }
        for k in 0..self.commands.len() {
            // q over the post-state: written fields read next bits, the
            // frame reads current bits unchanged.
            let q_next = self.bdd.rename(q, &self.commands[k].up);
            let nq_next = self.bdd.not(q_next);
            let fired = self.bdd.and(dp, self.commands[k].trans);
            let bad = self.bdd.and(fired, nq_next);
            if let Some(w) = self.pick_word(bad) {
                return Ok(Some((Some(k), w)));
            }
        }
        Ok(None)
    }

    /// `unchanged e`: no command changes the value of `e`. Returns the
    /// violating pre-state and command index.
    pub fn check_unchanged(&mut self, e: &Expr) -> Result<Option<(usize, u64)>, SymbolicError> {
        self.service(&[]);
        let lowered = lower(&mut self.bdd, &self.space, e)?;
        let values: ValueMap = lowered.into_values(&mut self.bdd);
        for k in 0..self.commands.len() {
            // same = ⋁ᵥ (e = v before ∧ e = v after).
            let mut same = FALSE;
            for &(_, cond) in &values.0 {
                let cond_next = self.bdd.rename(cond, &self.commands[k].up);
                let both = self.bdd.and(cond, cond_next);
                same = self.bdd.or(same, both);
            }
            let changed = self.bdd.not(same);
            let fired = self.bdd.and(self.domain, self.commands[k].trans);
            let bad = self.bdd.and(fired, changed);
            if let Some(w) = self.pick_word(bad) {
                return Ok(Some((k, w)));
            }
        }
        Ok(None)
    }

    /// `transient p`: some weakly-fair command falsifies `p` from
    /// *every* type-consistent `p`-state. Returns `None` when the
    /// property holds, otherwise one stuck witness per fair command
    /// (a `p`-state the command fails to leave `p` from).
    #[allow(clippy::type_complexity)]
    pub fn check_transient(
        &mut self,
        p: &Expr,
    ) -> Result<Option<Vec<(usize, u64)>>, SymbolicError> {
        self.service(&[]);
        let p = lower_pred(&mut self.bdd, &self.space, p)?;
        let dp = self.bdd.and(self.domain, p);
        let mut witnesses = Vec::new();
        for &k in &self.fair.clone() {
            let cmd = &self.commands[k];
            // Stuck either by skipping (effective guard false: the state
            // maps to itself, still in p) or by landing back inside p.
            let p_next = self.bdd.rename(p, &cmd.up);
            let back_in = self.bdd.and(cmd.trans, p_next);
            let not_enabled = self.bdd.not(cmd.enabled);
            let stuck_rel = self.bdd.or(not_enabled, back_in);
            let stuck = self.bdd.and(dp, stuck_rel);
            match self.pick_word(stuck) {
                None => return Ok(None), // this fair command is a witness
                Some(w) => witnesses.push((k, w)),
            }
        }
        // Every fair command got stuck somewhere (or there are none at
        // all — then `transient p` has no possible witness command and is
        // refuted with an empty list, exactly like the explicit checker).
        Ok(Some(witnesses))
    }

    /// Checks `⊨ p` over all type-consistent states; returns a
    /// falsifying packed word, if any.
    pub fn check_valid(&mut self, p: &Expr) -> Result<Option<u64>, SymbolicError> {
        let p = lower_pred(&mut self.bdd, &self.space, p)?;
        let np = self.bdd.not(p);
        let bad = self.bdd.and(self.domain, np);
        Ok(self.pick_word(bad))
    }

    /// Finds a type-consistent state satisfying `p`, if any.
    pub fn find_satisfying(&mut self, p: &Expr) -> Result<Option<u64>, SymbolicError> {
        let p = lower_pred(&mut self.bdd, &self.space, p)?;
        let sat = self.bdd.and(self.domain, p);
        Ok(self.pick_word(sat))
    }

    /// Checks `⊨ a = b` (same value in every type-consistent state)
    /// inside this engine's arena — the session-reuse form of
    /// [`equivalent_witness`]. Returns a distinguishing packed word, if
    /// any.
    pub fn check_equivalent(&mut self, a: &Expr, b: &Expr) -> Result<Option<u64>, SymbolicError> {
        self.service(&[]);
        let la = lower(&mut self.bdd, &self.space, a)?;
        let lb = lower(&mut self.bdd, &self.space, b)?;
        let same = equal_set(&mut self.bdd, la, lb);
        let differ = self.bdd.not(same);
        let bad = self.bdd.and(self.domain, differ);
        Ok(self.pick_word(bad))
    }
}

/// The set of states where two lowered expressions take equal values.
fn equal_set(bdd: &mut Bdd, la: crate::lower::Lowered, lb: crate::lower::Lowered) -> Ref {
    match (la, lb) {
        (crate::lower::Lowered::Bool(x), crate::lower::Lowered::Bool(y)) => bdd.iff(x, y),
        (x, y) => {
            let (x, y) = (x.into_values(bdd), y.into_values(bdd));
            let mut acc = FALSE;
            for &(vx, cx) in &x.0 {
                for &(vy, cy) in &y.0 {
                    if vx == vy {
                        let c = bdd.and(cx, cy);
                        acc = bdd.or(acc, c);
                    }
                }
            }
            acc
        }
    }
}

/// Checks `⊨ p` over all type-consistent states of `vocab` without a
/// program context (kernel side conditions). Returns a falsifying packed
/// word, if any.
pub fn valid_witness(
    vocab: &unity_core::ident::Vocabulary,
    p: &Expr,
) -> Result<Option<u64>, SymbolicError> {
    let space = SymSpace::new(vocab).ok_or(SymbolicError::VocabularyTooWide)?;
    let mut bdd = Bdd::new();
    let dom = space.domain(&mut bdd);
    let lowered = lower_pred(&mut bdd, &space, p)?;
    let np = bdd.not(lowered);
    let bad = bdd.and(dom, np);
    Ok(bdd.pick_one(bad).map(|lits| space.word_of_cube(&lits)))
}

/// Finds a type-consistent state of `vocab` satisfying `p`, if any.
pub fn satisfying_witness(
    vocab: &unity_core::ident::Vocabulary,
    p: &Expr,
) -> Result<Option<u64>, SymbolicError> {
    let space = SymSpace::new(vocab).ok_or(SymbolicError::VocabularyTooWide)?;
    let mut bdd = Bdd::new();
    let dom = space.domain(&mut bdd);
    let lowered = lower_pred(&mut bdd, &space, p)?;
    let sat = bdd.and(dom, lowered);
    Ok(bdd.pick_one(sat).map(|lits| space.word_of_cube(&lits)))
}

/// Checks `⊨ a = b` (same value in every type-consistent state).
/// Returns a distinguishing packed word, if any.
pub fn equivalent_witness(
    vocab: &unity_core::ident::Vocabulary,
    a: &Expr,
    b: &Expr,
) -> Result<Option<u64>, SymbolicError> {
    let space = SymSpace::new(vocab).ok_or(SymbolicError::VocabularyTooWide)?;
    let mut bdd = Bdd::new();
    let dom = space.domain(&mut bdd);
    let la = lower(&mut bdd, &space, a)?;
    let lb = lower(&mut bdd, &space, b)?;
    let same = equal_set(&mut bdd, la, lb);
    let differ = bdd.not(same);
    let bad = bdd.and(dom, differ);
    Ok(bdd.pick_one(bad).map(|lits| space.word_of_cube(&lits)))
}

/// The persistent roots of an engine state: domain, initial set, and
/// every command's effective guard and transition relation.
fn roots_of(domain: Ref, init: Ref, commands: &[SymCommand]) -> Vec<Ref> {
    let mut roots = Vec::with_capacity(2 + 2 * commands.len());
    roots.push(domain);
    roots.push(init);
    for c in commands {
        roots.push(c.enabled);
        roots.push(c.trans);
    }
    roots
}

fn lower_command(
    bdd: &mut Bdd,
    space: &SymSpace,
    command: &Command,
) -> Result<SymCommand, SymbolicError> {
    let layout = space.layout();
    let guard = lower_pred(bdd, space, &command.guard)?;
    let mut enabled = guard;
    let mut trans = guard;
    let mut written: Vec<usize> = Vec::with_capacity(command.updates.len());
    for (x, e) in &command.updates {
        let v = x.index();
        written.push(v);
        let values: ValueMap = lower(bdd, space, e)?.into_values(bdd);
        // Per-target relation: ⋁ᵥ (rhs = v ∧ next(x) encodes v), for the
        // in-domain values only; the residue (rhs out of domain) is the
        // implicit domain guard and excluded from `enabled`.
        let mut rel = FALSE;
        let mut dom_ok = FALSE;
        let base = layout.field_base(v);
        let size = layout.domain_size(v) as i64;
        for &(val, cond) in &values.0 {
            let k = val - base;
            if k < 0 || k >= size {
                continue;
            }
            dom_ok = bdd.or(dom_ok, cond);
            let enc = space.field_cube(bdd, v, k as u64, true);
            let both = bdd.and(cond, enc);
            rel = bdd.or(rel, both);
        }
        enabled = bdd.and(enabled, dom_ok);
        trans = bdd.and(trans, rel);
    }
    written.sort_unstable();
    written.dedup();
    let mut written_cur: Vec<u32> = Vec::new();
    let mut up: Vec<(u32, u32)> = Vec::new();
    for &v in &written {
        let shift = layout.field_shift(v);
        for i in 0..layout.field_bits(v) {
            written_cur.push(cur(shift + i));
            up.push((cur(shift + i), nxt(shift + i)));
        }
    }
    written_cur.sort_unstable();
    up.sort_unstable();
    let mut down: Vec<(u32, u32)> = up.iter().map(|&(c, n)| (n, c)).collect();
    down.sort_unstable();
    Ok(SymCommand {
        name: command.name.clone(),
        written,
        written_cur,
        up,
        down,
        enabled,
        trans,
    })
}

impl SymCommand {
    /// Indices of the written program variables.
    pub fn written_vars(&self) -> &[usize] {
        &self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    /// The §3 toy instance used across the explicit engine's own tests.
    fn counter() -> Program {
        let mut v = Vocabulary::new();
        let c = v.declare("c", Domain::int_range(0, 3).unwrap()).unwrap();
        let big = v.declare("C", Domain::int_range(0, 3).unwrap()).unwrap();
        Program::builder("counter", Arc::new(v))
            .local(c)
            .init(and2(eq(var(c), int(0)), eq(var(big), int(0))))
            .fair_command(
                "a",
                lt(var(c), int(3)),
                vec![(c, add(var(c), int(1))), (big, add(var(big), int(1)))],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn reachability_counts_the_diagonal() {
        // From (0,0), the lockstep increment reaches exactly the diagonal
        // c = C ∈ {0..3}.
        let p = counter();
        let mut sym = SymbolicProgram::build(&p).unwrap();
        assert_eq!(sym.domain_count(), 16);
        assert_eq!(sym.initial_count(), 1);
        let reach = sym.reachable();
        assert_eq!(reach.count, 4);
        assert!(reach.iterations >= 2);
    }

    #[test]
    fn init_and_next_checks() {
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        let big = p.vocab.lookup("C").unwrap();
        let mut sym = SymbolicProgram::build(&p).unwrap();
        assert!(sym.check_init(&eq(var(c), var(big))).unwrap().is_none());
        let w = sym.check_init(&eq(var(c), int(1))).unwrap().unwrap();
        let state = sym.space().layout().unpack(w, &p.vocab);
        assert!(p.satisfies_init(&state), "witness is a real initial state");

        // stable (c >= 1) holds; stable (c <= 1) fails via the command.
        assert!(sym
            .check_next(&ge(var(c), int(1)), &ge(var(c), int(1)))
            .unwrap()
            .is_none());
        let (cmd, w) = sym
            .check_next(&le(var(c), int(1)), &le(var(c), int(1)))
            .unwrap()
            .unwrap();
        assert_eq!(cmd, Some(0));
        let state = sym.space().layout().unpack(w, &p.vocab);
        let after = p.commands[0].step(&state, &p.vocab);
        assert!(unity_core::expr::eval::eval_bool(
            &le(var(c), int(1)),
            &state
        ));
        assert!(!unity_core::expr::eval::eval_bool(
            &le(var(c), int(1)),
            &after
        ));
    }

    #[test]
    fn unchanged_difference_holds_symbolically() {
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        let big = p.vocab.lookup("C").unwrap();
        let mut sym = SymbolicProgram::build(&p).unwrap();
        assert!(sym
            .check_unchanged(&sub(var(big), var(c)))
            .unwrap()
            .is_none());
        let (k, _) = sym.check_unchanged(&var(big)).unwrap().unwrap();
        assert_eq!(k, 0);
    }

    #[test]
    fn transient_respects_domain_blocking() {
        // Same scenario as the explicit engine's
        // `transient_defeated_by_domain_blocking`: c = 1 ∧ C = 3 makes
        // the update leave C's domain, so the command skips and stays in
        // p — `transient (c = 1)` fails under all-states semantics.
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        let stuck = sym_transient(&p, &eq(var(c), int(1)));
        let witnesses = stuck.expect("refuted");
        assert_eq!(witnesses.len(), 1);
        // Wrap-around counter: transient holds.
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let wrap = Program::builder("wrap", Arc::new(v))
            .init(eq(var(x), int(0)))
            .fair_command("step", tt(), vec![(x, rem(add(var(x), int(1)), int(4)))])
            .build()
            .unwrap();
        assert!(sym_transient(&wrap, &eq(var(x), int(1))).is_none());
        assert!(sym_transient(&wrap, &le(var(x), int(1))).is_some());
    }

    fn sym_transient(p: &Program, pred: &Expr) -> Option<Vec<(usize, u64)>> {
        SymbolicProgram::build(p)
            .unwrap()
            .check_transient(pred)
            .unwrap()
    }

    #[test]
    fn field_order_round_trips_through_fields_mode() {
        let p = counter();
        let n = p.vocab.len();
        // A pinned permutation survives export exactly...
        let perm: Vec<usize> = (0..n).rev().collect();
        let opts = SymbolicOptions {
            order: OrderMode::Fields(perm.clone()),
            ..Default::default()
        };
        let sym = SymbolicProgram::build_with(&p, &opts).unwrap();
        assert_eq!(sym.field_order(), perm);
        // ...and any engine's export is a permutation that reproduces
        // its own level structure when re-imported.
        let tuned = SymbolicProgram::build(&p).unwrap();
        let exported = tuned.field_order();
        let mut sorted = exported.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let replayed = SymbolicProgram::build_with(
            &p,
            &SymbolicOptions {
                order: OrderMode::Fields(exported.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(replayed.field_order(), exported);
    }

    #[test]
    fn validity_and_satisfiability() {
        let p = counter();
        let c = p.vocab.lookup("c").unwrap();
        let mut sym = SymbolicProgram::build(&p).unwrap();
        assert!(sym
            .check_valid(&or2(le(var(c), int(1)), gt(var(c), int(1))))
            .unwrap()
            .is_none());
        assert!(sym.check_valid(&le(var(c), int(2))).unwrap().is_some());
        assert!(sym.find_satisfying(&eq(var(c), int(3))).unwrap().is_some());
        assert!(sym.find_satisfying(&lt(var(c), int(0))).unwrap().is_none());
    }
}
