//! A self-contained reduced ordered binary decision diagram (ROBDD)
//! package.
//!
//! Design points, all driven by the model checker's access pattern:
//!
//! * **Hash-consed node arena.** Nodes live in one `Vec`; a unique table
//!   maps `(var, lo, hi)` triples to existing nodes, so structural
//!   equality is pointer (index) equality and every boolean function has
//!   exactly one representation per variable order.
//! * **Terminals first.** Node 0 is `false`, node 1 is `true`; their
//!   `var` is `u32::MAX`, which doubles as the "below every real
//!   variable" sentinel in the ordering logic.
//! * **Operation caches.** `not` and the strict binary connectives
//!   (`and`/`or`/`xor`) memoize on node indices for the lifetime of the
//!   arena. Traversals whose results depend on call-specific context
//!   (quantifier cubes, renamings, counting sets) memoize per call.
//! * **Garbage-free arena with explicit [`Bdd::reset`].** Nothing is
//!   reference-counted and nothing is ever freed piecemeal: a checking
//!   session grows the arena monotonically and throws the whole thing
//!   away (or `reset`s it) when done. This trades peak memory for zero
//!   bookkeeping in the hot ops — the right trade for one-shot
//!   fixpoint computations.
//!
//! Variables are plain `u32` levels; smaller numbers are closer to the
//! root. The encoding layer (`crate::encode`) interleaves current- and
//! next-state bits as `2b` / `2b + 1`, which keeps relational ops local.

use std::collections::HashMap;

/// A reference to a BDD node (an index into the arena).
///
/// Refs are only meaningful relative to the [`Bdd`] that issued them and
/// are invalidated by [`Bdd::reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

/// The constant-false BDD.
pub const FALSE: Ref = Ref(0);
/// The constant-true BDD.
pub const TRUE: Ref = Ref(1);

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

/// Binary operation codes for the shared apply cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BinOp {
    And,
    Or,
    Xor,
}

/// The node arena plus its unique table and operation caches.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    bin_cache: HashMap<(BinOp, u32, u32), u32>,
    not_cache: HashMap<u32, u32>,
}

impl Bdd {
    /// Creates an arena holding only the two terminals.
    pub fn new() -> Self {
        let mut b = Bdd {
            nodes: Vec::with_capacity(1 << 12),
            unique: HashMap::default(),
            bin_cache: HashMap::default(),
            not_cache: HashMap::default(),
        };
        b.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: 0,
            hi: 0,
        });
        b.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: 1,
            hi: 1,
        });
        b
    }

    /// Number of live nodes (terminals included) — a size/pressure metric.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds only the terminals.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Drops every non-terminal node and all caches, invalidating every
    /// outstanding [`Ref`] except [`FALSE`] and [`TRUE`]. The arena's
    /// allocation is kept, so a reset engine rebuilds without paying
    /// allocator traffic again.
    pub fn reset(&mut self) {
        self.nodes.truncate(2);
        self.unique.clear();
        self.bin_cache.clear();
        self.not_cache.clear();
    }

    #[inline]
    fn var_of(&self, u: u32) -> u32 {
        self.nodes[u as usize].var
    }

    /// The `(var, lo, hi)` of a non-terminal node (inspection/tests).
    pub fn node(&self, u: Ref) -> Option<(u32, Ref, Ref)> {
        if u.0 <= 1 {
            return None;
        }
        let n = self.nodes[u.0 as usize];
        Some((n.var, Ref(n.lo), Ref(n.hi)))
    }

    /// Hash-consing constructor: reduced (no redundant test) and unique.
    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        debug_assert!(var < self.var_of(lo) && var < self.var_of(hi), "ordering");
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node { var, lo, hi });
            id
        })
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: u32) -> Ref {
        Ref(self.mk(v, 0, 1))
    }

    /// The negated single-variable function `¬v`.
    pub fn nvar(&mut self, v: u32) -> Ref {
        Ref(self.mk(v, 1, 0))
    }

    /// Boolean negation.
    pub fn not(&mut self, u: Ref) -> Ref {
        Ref(self.not_rec(u.0))
    }

    fn not_rec(&mut self, u: u32) -> u32 {
        if u <= 1 {
            return 1 - u;
        }
        if let Some(&r) = self.not_cache.get(&u) {
            return r;
        }
        let Node { var, lo, hi } = self.nodes[u as usize];
        let nl = self.not_rec(lo);
        let nh = self.not_rec(hi);
        let r = self.mk(var, nl, nh);
        self.not_cache.insert(u, r);
        self.not_cache.insert(r, u);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        Ref(self.apply(BinOp::And, a.0, b.0))
    }

    /// Disjunction.
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        Ref(self.apply(BinOp::Or, a.0, b.0))
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        Ref(self.apply(BinOp::Xor, a.0, b.0))
    }

    /// Bi-implication.
    pub fn iff(&mut self, a: Ref, b: Ref) -> Ref {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// Implication.
    pub fn implies(&mut self, a: Ref, b: Ref) -> Ref {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Difference `a ∧ ¬b`.
    pub fn diff(&mut self, a: Ref, b: Ref) -> Ref {
        let nb = self.not(b);
        self.and(a, nb)
    }

    /// If-then-else `(c ∧ t) ∨ (¬c ∧ e)`.
    pub fn ite(&mut self, c: Ref, t: Ref, e: Ref) -> Ref {
        let ct = self.and(c, t);
        let nc = self.not(c);
        let ce = self.and(nc, e);
        self.or(ct, ce)
    }

    fn apply(&mut self, op: BinOp, a: u32, b: u32) -> u32 {
        // Terminal rules.
        match op {
            BinOp::And => {
                if a == 0 || b == 0 {
                    return 0;
                }
                if a == 1 {
                    return b;
                }
                if b == 1 || a == b {
                    return a;
                }
            }
            BinOp::Or => {
                if a == 1 || b == 1 {
                    return 1;
                }
                if a == 0 {
                    return b;
                }
                if b == 0 || a == b {
                    return a;
                }
            }
            BinOp::Xor => {
                if a == b {
                    return 0;
                }
                if a == 0 {
                    return b;
                }
                if b == 0 {
                    return a;
                }
                if a == 1 {
                    return self.not_rec(b);
                }
                if b == 1 {
                    return self.not_rec(a);
                }
            }
        }
        // All three ops are commutative: normalize the cache key.
        let key = (op, a.min(b), a.max(b));
        if let Some(&r) = self.bin_cache.get(&key) {
            return r;
        }
        let (na, nb) = (self.nodes[a as usize], self.nodes[b as usize]);
        let m = na.var.min(nb.var);
        let (a0, a1) = if na.var == m { (na.lo, na.hi) } else { (a, a) };
        let (b0, b1) = if nb.var == m { (nb.lo, nb.hi) } else { (b, b) };
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let r = self.mk(m, lo, hi);
        self.bin_cache.insert(key, r);
        r
    }

    /// Cofactor: `u` with variable `v` fixed to `val`.
    pub fn restrict(&mut self, u: Ref, v: u32, val: bool) -> Ref {
        let mut memo = HashMap::default();
        Ref(self.restrict_rec(u.0, v, val, &mut memo))
    }

    fn restrict_rec(&mut self, u: u32, v: u32, val: bool, memo: &mut HashMap<u32, u32>) -> u32 {
        let node = self.nodes[u as usize];
        if node.var > v {
            // Terminals and nodes entirely below v: v does not occur.
            return u;
        }
        if node.var == v {
            return if val { node.hi } else { node.lo };
        }
        if let Some(&r) = memo.get(&u) {
            return r;
        }
        let lo = self.restrict_rec(node.lo, v, val, memo);
        let hi = self.restrict_rec(node.hi, v, val, memo);
        let r = self.mk(node.var, lo, hi);
        memo.insert(u, r);
        r
    }

    /// Existential quantification `∃ vars. u`. `vars` must be sorted
    /// ascending.
    pub fn exists(&mut self, u: Ref, vars: &[u32]) -> Ref {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "sorted cube");
        let mut memo = HashMap::default();
        Ref(self.exists_rec(u.0, vars, &mut memo))
    }

    fn exists_rec(&mut self, u: u32, vars: &[u32], memo: &mut HashMap<u32, u32>) -> u32 {
        if u <= 1 {
            return u;
        }
        let node = self.nodes[u as usize];
        // Variables above this node cannot occur in it.
        let vars = &vars[vars.partition_point(|&v| v < node.var)..];
        if vars.is_empty() {
            return u;
        }
        if let Some(&r) = memo.get(&u) {
            return r;
        }
        let lo = self.exists_rec(node.lo, vars, memo);
        let hi = self.exists_rec(node.hi, vars, memo);
        let r = if node.var == vars[0] {
            self.apply(BinOp::Or, lo, hi)
        } else {
            self.mk(node.var, lo, hi)
        };
        memo.insert(u, r);
        r
    }

    /// Relational product `∃ vars. a ∧ b`, fused so the conjunction is
    /// never fully materialized. `vars` must be sorted ascending. This is
    /// the image-computation workhorse.
    pub fn relprod(&mut self, a: Ref, b: Ref, vars: &[u32]) -> Ref {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "sorted cube");
        let mut memo = HashMap::default();
        Ref(self.relprod_rec(a.0, b.0, vars, &mut memo))
    }

    fn relprod_rec(
        &mut self,
        a: u32,
        b: u32,
        vars: &[u32],
        memo: &mut HashMap<(u32, u32), u32>,
    ) -> u32 {
        if a == 0 || b == 0 {
            return 0;
        }
        if a == 1 && b == 1 {
            return 1;
        }
        let m = self.var_of(a).min(self.var_of(b));
        let vars = &vars[vars.partition_point(|&v| v < m)..];
        if vars.is_empty() {
            // No quantified variable occurs in either operand any more.
            return self.apply(BinOp::And, a, b);
        }
        let key = (a, b);
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let (na, nb) = (self.nodes[a as usize], self.nodes[b as usize]);
        let (a0, a1) = if na.var == m { (na.lo, na.hi) } else { (a, a) };
        let (b0, b1) = if nb.var == m { (nb.lo, nb.hi) } else { (b, b) };
        let lo = self.relprod_rec(a0, b0, vars, memo);
        let r = if m == vars[0] {
            if lo == 1 {
                // Early exit: ∃v. f already true on the low branch.
                1
            } else {
                let hi = self.relprod_rec(a1, b1, vars, memo);
                self.apply(BinOp::Or, lo, hi)
            }
        } else {
            let hi = self.relprod_rec(a1, b1, vars, memo);
            self.mk(m, lo, hi)
        };
        memo.insert(key, r);
        r
    }

    /// Renames variables according to `map` (pairs `(from, to)`, sorted by
    /// `from`). The renaming must preserve the variable order on the
    /// support of `u` and must not collide with variables already in `u`
    /// — both hold for the engine's current↔next shifts, where `from`
    /// and `to` are adjacent interleaved levels and the source level was
    /// just quantified away (or never present).
    pub fn rename(&mut self, u: Ref, map: &[(u32, u32)]) -> Ref {
        debug_assert!(map.windows(2).all(|w| w[0].0 < w[1].0), "sorted map");
        let mut memo = HashMap::default();
        Ref(self.rename_rec(u.0, map, &mut memo))
    }

    fn rename_rec(&mut self, u: u32, map: &[(u32, u32)], memo: &mut HashMap<u32, u32>) -> u32 {
        if u <= 1 {
            return u;
        }
        let node = self.nodes[u as usize];
        let map = &map[map.partition_point(|&(from, _)| from < node.var)..];
        if map.is_empty() {
            return u;
        }
        if let Some(&r) = memo.get(&u) {
            return r;
        }
        let lo = self.rename_rec(node.lo, map, memo);
        let hi = self.rename_rec(node.hi, map, memo);
        let var = if map[0].0 == node.var {
            map[0].1
        } else {
            node.var
        };
        let r = self.mk(var, lo, hi);
        memo.insert(u, r);
        r
    }

    /// Number of satisfying assignments of `u` over exactly the variables
    /// in `vars` (sorted ascending). Every variable in `u`'s support must
    /// be listed.
    pub fn sat_count(&self, u: Ref, vars: &[u32]) -> u128 {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "sorted set");
        let mut memo = HashMap::default();
        self.count_rec(u.0, vars, 0, &mut memo)
    }

    fn count_rec(&self, u: u32, vars: &[u32], pos: usize, memo: &mut HashMap<u32, u128>) -> u128 {
        if u == 0 {
            return 0;
        }
        if u == 1 {
            return 1u128 << (vars.len() - pos);
        }
        let node = self.nodes[u as usize];
        let idx = pos
            + vars[pos..]
                .binary_search(&node.var)
                .expect("support must be within the counting set");
        // memo holds the count *from this node's own level*; scale by the
        // variables skipped between `pos` and the node.
        let below = if let Some(&c) = memo.get(&u) {
            c
        } else {
            let lo = self.count_rec(node.lo, vars, idx + 1, memo);
            let hi = self.count_rec(node.hi, vars, idx + 1, memo);
            let c = lo + hi;
            memo.insert(u, c);
            c
        };
        below << (idx - pos)
    }

    /// One satisfying assignment of `u` as `(var, value)` pairs along a
    /// path to `true` (variables missing from the result are don't-cares);
    /// `None` iff `u` is unsatisfiable. Prefers the low branch, so with
    /// all-zero defaults the decoded witness is the canonically smallest.
    pub fn pick_one(&self, u: Ref) -> Option<Vec<(u32, bool)>> {
        if u == FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut at = u.0;
        while at > 1 {
            let node = self.nodes[at as usize];
            if node.lo != 0 {
                path.push((node.var, false));
                at = node.lo;
            } else {
                path.push((node.var, true));
                at = node.hi;
            }
        }
        debug_assert_eq!(at, 1);
        Some(path)
    }

    /// Builds the conjunction of literals `(var, value)`; `vars` need not
    /// be sorted.
    pub fn cube(&mut self, literals: &[(u32, bool)]) -> Ref {
        let mut lits: Vec<(u32, bool)> = literals.to_vec();
        lits.sort_unstable_by_key(|&(v, _)| std::cmp::Reverse(v));
        let mut acc = 1u32;
        for (v, val) in lits {
            acc = if val {
                self.mk(v, 0, acc)
            } else {
                self.mk(v, acc, 0)
            };
        }
        Ref(acc)
    }

    /// Evaluates `u` under a total assignment (`assign(v)` = value of
    /// variable `v`).
    pub fn eval(&self, u: Ref, mut assign: impl FnMut(u32) -> bool) -> bool {
        let mut at = u.0;
        while at > 1 {
            let node = self.nodes[at as usize];
            at = if assign(node.var) { node.hi } else { node.lo };
        }
        at == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive truth-table check of a BDD against a reference closure
    /// over `n` variables.
    fn table_eq(bdd: &Bdd, u: Ref, n: u32, f: impl Fn(&[bool]) -> bool) {
        for bits in 0u32..(1 << n) {
            let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                bdd.eval(u, |v| assign[v as usize]),
                f(&assign),
                "assignment {assign:?}"
            );
        }
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xy = b.and(x, y);
        let u = b.or(xy, z);
        table_eq(&b, u, 3, |a| (a[0] && a[1]) || a[2]);
        let v = b.xor(x, y);
        table_eq(&b, v, 3, |a| a[0] ^ a[1]);
        let w = b.implies(x, y);
        table_eq(&b, w, 3, |a| !a[0] || a[1]);
        let i = b.iff(x, z);
        table_eq(&b, i, 3, |a| a[0] == a[2]);
        let nx = b.not(x);
        table_eq(&b, nx, 3, |a| !a[0]);
    }

    #[test]
    fn hash_consing_makes_equality_structural() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let a1 = b.and(x, y);
        let a2 = b.and(y, x);
        assert_eq!(a1, a2);
        let n1 = b.not(a1);
        let n2 = b.not(n1);
        assert_eq!(n2, a1, "double negation is the identity node");
        let t = b.or(x, TRUE);
        assert_eq!(t, TRUE);
    }

    #[test]
    fn restrict_cofactors() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let u = b.and(x, y);
        assert_eq!(b.restrict(u, 0, true), y);
        assert_eq!(b.restrict(u, 0, false), FALSE);
        assert_eq!(b.restrict(u, 2, true), u, "absent variable is a no-op");
    }

    #[test]
    fn exists_and_relprod_agree() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xz = b.and(x, z);
        let yz = b.not(z);
        let yzn = b.and(y, yz);
        let u = b.or(xz, yzn);
        // ∃z. u  =  x ∨ y
        let q = b.exists(u, &[2]);
        table_eq(&b, q, 3, |a| a[0] || a[1]);
        // relprod(a, b, vars) ≡ exists(and(a, b), vars) on random-ish forms.
        let v = b.or(y, z);
        let anded = b.and(u, v);
        let e1 = b.exists(anded, &[0, 2]);
        let e2 = b.relprod(u, v, &[0, 2]);
        assert_eq!(e1, e2);
    }

    #[test]
    fn rename_shifts_levels() {
        let mut b = Bdd::new();
        // f(x0, x2) = x0 ∧ ¬x2 ; rename 0→1, 2→3.
        let x0 = b.var(0);
        let nx2 = b.nvar(2);
        let f = b.and(x0, nx2);
        let g = b.rename(f, &[(0, 1), (2, 3)]);
        table_eq(&b, g, 4, |a| a[1] && !a[3]);
        // Partial map: only shift 2→3.
        let h = b.rename(f, &[(2, 3)]);
        table_eq(&b, h, 4, |a| a[0] && !a[3]);
    }

    #[test]
    fn sat_count_counts() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(2);
        let u = b.or(x, y);
        // Over {0, 2}: 3 of 4. Over {0, 1, 2}: 6 of 8 (var 1 free).
        assert_eq!(b.sat_count(u, &[0, 2]), 3);
        assert_eq!(b.sat_count(u, &[0, 1, 2]), 6);
        assert_eq!(b.sat_count(TRUE, &[0, 1, 2]), 8);
        assert_eq!(b.sat_count(FALSE, &[0, 1, 2]), 0);
    }

    #[test]
    fn pick_one_satisfies() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let ny = b.nvar(1);
        let u = b.and(x, ny);
        let lits = b.pick_one(u).unwrap();
        let value = |v: u32| lits.iter().find(|&&(w, _)| w == v).map(|&(_, x)| x);
        assert_eq!(value(0), Some(true));
        assert_eq!(value(1), Some(false));
        assert!(b.pick_one(FALSE).is_none());
        assert_eq!(b.pick_one(TRUE).unwrap(), vec![]);
    }

    #[test]
    fn cube_roundtrips_through_pick() {
        let mut b = Bdd::new();
        let c = b.cube(&[(3, true), (1, false), (5, true)]);
        assert_eq!(b.sat_count(c, &[1, 3, 5]), 1);
        let lits = b.pick_one(c).unwrap();
        let rebuilt = b.cube(&lits);
        assert_eq!(rebuilt, c);
    }

    #[test]
    fn reset_clears_arena() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        b.and(x, y);
        assert!(b.len() > 2);
        b.reset();
        assert!(b.is_empty());
        // Rebuilding after reset works from scratch.
        let x2 = b.var(0);
        assert_eq!(x2, Ref(2), "arena restarts at the first free slot");
    }
}
