//! A self-contained reduced ordered binary decision diagram (ROBDD)
//! package with a *mutable variable order*.
//!
//! Design points, all driven by the model checker's access pattern:
//!
//! * **Hash-consed node arena.** Nodes live in one `Vec`; a chained
//!   unique table (bucket heads plus an intrusive `next` link per node)
//!   maps `(var, lo, hi)` triples to existing nodes, so structural
//!   equality is pointer (index) equality and every boolean function has
//!   exactly one representation per variable order.
//! * **Order as data.** Nodes store *variable ids*; the order that makes
//!   the diagram "ordered" is a separate `var ↔ level` permutation
//!   ([`Bdd::set_order`]). All traversals compare **levels**, never raw
//!   ids, so the order is a first-class, optimisable artifact: an
//!   adjacent-level swap ([`Bdd::swap_levels`]) rewrites only the nodes
//!   at the upper level **in place** — every outstanding [`Ref`] keeps
//!   denoting the same boolean function — and Rudell-style grouped
//!   sifting ([`Bdd::sift`]) walks each block of levels to its locally
//!   optimal position.
//! * **Operation cache.** The strict connectives (`and`/`or`/`xor`) and
//!   negation memoize through one lossy direct-mapped cache tagged with
//!   an arena *generation*: invalidation (after a sweep or reset) is a
//!   single counter bump, never a rebuild. Commutative operands are
//!   normalized (`min`/`max`) so `a ∧ b` and `b ∧ a` share an entry.
//!   Traversals whose results depend on call-specific context
//!   (quantifier cubes, renamings, counting sets) memoize per call.
//! * **Generational arena with mark-and-sweep.** [`Bdd::sweep`] marks
//!   from caller-supplied roots and returns every unreachable node to a
//!   free list — *non-moving*, so live `Ref`s stay valid — and bumps the
//!   cache generation. Engines register their long-lived roots and
//!   reclaim dead intermediates mid-run instead of paying the old
//!   all-or-nothing [`Bdd::reset`] (still available for whole-session
//!   teardown).
//!
//! Variables are plain `u32` ids; the encoding layer (`crate::encode`)
//! names each packed state bit `b` as the pair `2b` (current) / `2b + 1`
//! (next) and keeps the two **adjacent in every order** (grouped
//! sifting moves them as one block), which keeps relational ops local
//! and the current↔next renamings order-preserving.

use std::collections::HashMap;

/// A reference to a BDD node (an index into the arena).
///
/// Refs are only meaningful relative to the [`Bdd`] that issued them.
/// They survive [`Bdd::swap_levels`], [`Bdd::sift`] and — for nodes
/// reachable from the sweep roots — [`Bdd::sweep`]; they are
/// invalidated by [`Bdd::reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

/// The constant-false BDD.
pub const FALSE: Ref = Ref(0);
/// The constant-true BDD.
pub const TRUE: Ref = Ref(1);

const TERMINAL_VAR: u32 = u32::MAX;
/// Marks a node slot on the free list.
const FREE_VAR: u32 = u32::MAX - 1;
/// End-of-chain sentinel for the unique table's intrusive links.
const NIL: u32 = u32::MAX;

const INITIAL_BUCKETS: usize = 1 << 12;
const INITIAL_CACHE: usize = 1 << 13;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
    /// Next node in this unique-table bucket.
    next: u32,
}

/// Binary operation codes for the shared apply cache. `Not` shares the
/// cache with code 0 (its key has no second operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BinOp {
    And = 1,
    Or = 2,
    Xor = 3,
}

#[derive(Debug, Clone, Copy, Default)]
struct CacheSlot {
    key: u64,
    result: u32,
    generation: u64,
}

/// Lifetime counters of one arena: node pressure, cache effectiveness,
/// and reorder/GC activity. All monotonically non-decreasing except
/// none; a caller diffs two snapshots to attribute cost to a phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BddStats {
    /// High-water mark of allocated (live + not-yet-swept) nodes,
    /// terminals included.
    pub peak_nodes: usize,
    /// Operation-cache probes (apply + not).
    pub cache_lookups: u64,
    /// Operation-cache hits.
    pub cache_hits: u64,
    /// Adjacent-level swaps performed (by [`Bdd::swap_levels`], directly
    /// or through sifting).
    pub swaps: u64,
    /// Completed [`Bdd::sift`] passes.
    pub sift_passes: u64,
    /// Mark-and-sweep collections run.
    pub gc_runs: u64,
    /// Nodes reclaimed across all sweeps.
    pub reclaimed_nodes: u64,
}

impl BddStats {
    /// Cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// The node arena plus its unique table, operation cache, and variable
/// order.
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    /// Reclaimed node slots available for reuse.
    free: Vec<u32>,
    /// Unique-table bucket heads (power-of-two length).
    heads: Vec<u32>,
    /// `var2level[v]` = level of variable `v` (smaller = closer to root).
    var2level: Vec<u32>,
    /// `level2var[l]` = variable sitting at level `l`.
    level2var: Vec<u32>,
    /// Per-variable candidate node lists for swaps. Lazily maintained:
    /// entries may be stale (node freed or moved to another variable) and
    /// are filtered on use; [`Bdd::sweep`] compacts them.
    var_nodes: Vec<Vec<u32>>,
    /// Lossy direct-mapped operation cache (power-of-two length).
    cache: Vec<CacheSlot>,
    /// Cache generation: entries from older generations are invisible.
    generation: u64,
    stats: BddStats,
}

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[inline]
fn triple_hash(var: u32, lo: u32, hi: u32) -> u64 {
    mix64(
        (var as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((lo as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
            .wrapping_add((hi as u64).wrapping_mul(0x1656_67b1_9e37_79f9)),
    )
}

impl Bdd {
    /// Creates an arena holding only the two terminals, with the
    /// identity variable order.
    pub fn new() -> Self {
        let mut b = Bdd {
            nodes: Vec::with_capacity(1 << 12),
            free: Vec::new(),
            heads: vec![NIL; INITIAL_BUCKETS],
            var2level: Vec::new(),
            level2var: Vec::new(),
            var_nodes: Vec::new(),
            cache: vec![CacheSlot::default(); INITIAL_CACHE],
            generation: 1,
            stats: BddStats::default(),
        };
        b.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: 0,
            hi: 0,
            next: NIL,
        });
        b.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: 1,
            hi: 1,
            next: NIL,
        });
        b.stats.peak_nodes = 2;
        b
    }

    /// Number of allocated nodes (terminals included) — a size/pressure
    /// metric. Nodes on the free list are not counted.
    pub fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Whether the arena holds only the terminals.
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }

    /// Lifetime counters (peak nodes, cache hits, swaps, sweeps).
    pub fn stats(&self) -> &BddStats {
        &self.stats
    }

    /// The current variable order: `order()[l]` is the variable at level
    /// `l` (level 0 is the root).
    pub fn order(&self) -> &[u32] {
        &self.level2var
    }

    /// Drops every non-terminal node and invalidates every outstanding
    /// [`Ref`] except [`FALSE`] and [`TRUE`]. The arena's allocation and
    /// the variable order are kept, so a reset engine rebuilds without
    /// paying allocator traffic again.
    pub fn reset(&mut self) {
        self.nodes.truncate(2);
        self.free.clear();
        for h in &mut self.heads {
            *h = NIL;
        }
        for list in &mut self.var_nodes {
            list.clear();
        }
        self.generation += 1;
    }

    /// Fixes the variable order before any nodes exist: `level2var[l]`
    /// is the variable to place at level `l`. Must be a permutation of
    /// `0..level2var.len()`; variables first seen later are appended at
    /// the bottom.
    ///
    /// # Panics
    /// If the arena already holds non-terminal nodes or the argument is
    /// not a permutation.
    pub fn set_order(&mut self, level2var: &[u32]) {
        assert!(self.is_empty(), "set_order requires an empty arena");
        let n = level2var.len();
        let mut var2level = vec![u32::MAX; n];
        for (l, &v) in level2var.iter().enumerate() {
            assert!(
                (v as usize) < n && var2level[v as usize] == u32::MAX,
                "order must be a permutation of 0..{n}"
            );
            var2level[v as usize] = l as u32;
        }
        self.level2var = level2var.to_vec();
        self.var2level = var2level;
        self.var_nodes = vec![Vec::new(); n];
    }

    /// Registers variables `0..=v` (appended at the bottom of the order
    /// if unseen).
    fn ensure_var(&mut self, v: u32) {
        assert!(
            v < FREE_VAR,
            "variable id {v} collides with the arena sentinels \
             (a freed node was used as an operand?)"
        );
        while (self.var2level.len() as u32) <= v {
            let id = self.var2level.len() as u32;
            self.var2level.push(self.level2var.len() as u32);
            self.level2var.push(id);
            self.var_nodes.push(Vec::new());
        }
    }

    /// Level of variable `v` (terminals and freed slots sort below
    /// everything).
    #[inline]
    fn level_of_var(&self, v: u32) -> u32 {
        if v >= FREE_VAR {
            u32::MAX
        } else {
            self.var2level[v as usize]
        }
    }

    /// Level of the node `u` (its variable's level; `u32::MAX` for
    /// terminals).
    #[inline]
    fn node_level(&self, u: u32) -> u32 {
        self.level_of_var(self.nodes[u as usize].var)
    }

    /// The `(var, lo, hi)` of a non-terminal node (inspection/tests).
    pub fn node(&self, u: Ref) -> Option<(u32, Ref, Ref)> {
        if u.0 <= 1 {
            return None;
        }
        let n = self.nodes[u.0 as usize];
        Some((n.var, Ref(n.lo), Ref(n.hi)))
    }

    #[inline]
    fn bucket_of(&self, var: u32, lo: u32, hi: u32) -> usize {
        (triple_hash(var, lo, hi) as usize) & (self.heads.len() - 1)
    }

    fn unique_insert(&mut self, idx: u32) {
        let n = self.nodes[idx as usize];
        let b = self.bucket_of(n.var, n.lo, n.hi);
        self.nodes[idx as usize].next = self.heads[b];
        self.heads[b] = idx;
    }

    /// Unlinks `idx` from its unique-table bucket (it must be present).
    fn unique_remove(&mut self, idx: u32) {
        let n = self.nodes[idx as usize];
        let b = self.bucket_of(n.var, n.lo, n.hi);
        let mut at = self.heads[b];
        if at == idx {
            self.heads[b] = n.next;
            return;
        }
        while at != NIL {
            let next = self.nodes[at as usize].next;
            if next == idx {
                self.nodes[at as usize].next = n.next;
                return;
            }
            at = next;
        }
        debug_assert!(false, "node {idx} missing from its unique bucket");
    }

    /// Doubles the bucket array and relinks every allocated node.
    fn rehash(&mut self) {
        let new_len = self.heads.len() * 2;
        self.heads = vec![NIL; new_len];
        for i in 2..self.nodes.len() {
            if self.nodes[i].var == FREE_VAR {
                continue;
            }
            self.unique_insert(i as u32);
        }
    }

    fn grow_cache(&mut self) {
        self.cache = vec![CacheSlot::default(); self.cache.len() * 2];
    }

    /// Hash-consing constructor: reduced (no redundant test) and unique.
    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        self.ensure_var(var);
        debug_assert!(
            self.level_of_var(var) < self.node_level(lo)
                && self.level_of_var(var) < self.node_level(hi),
            "ordering"
        );
        let b = self.bucket_of(var, lo, hi);
        let mut at = self.heads[b];
        while at != NIL {
            let n = &self.nodes[at as usize];
            if n.var == var && n.lo == lo && n.hi == hi {
                return at;
            }
            at = n.next;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    var,
                    lo,
                    hi,
                    next: self.heads[b],
                };
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                // The op-cache key packs two indices into 31-bit
                // fields; refuse to alias rather than silently corrupt.
                assert!(i < 1 << 31, "arena exceeds 2³¹ nodes (cache-key limit)");
                self.nodes.push(Node {
                    var,
                    lo,
                    hi,
                    next: self.heads[b],
                });
                i
            }
        };
        self.heads[b] = idx;
        self.var_nodes[var as usize].push(idx);
        let live = self.len();
        if live > self.stats.peak_nodes {
            self.stats.peak_nodes = live;
        }
        if live > self.heads.len() {
            self.rehash();
        }
        if live > self.cache.len() {
            self.grow_cache();
        }
        idx
    }

    /// The single-variable function `v`.
    pub fn var(&mut self, v: u32) -> Ref {
        Ref(self.mk(v, 0, 1))
    }

    /// The negated single-variable function `¬v`.
    pub fn nvar(&mut self, v: u32) -> Ref {
        Ref(self.mk(v, 1, 0))
    }

    #[inline]
    fn cache_probe(&mut self, key: u64) -> Option<u32> {
        self.stats.cache_lookups += 1;
        let slot = self.cache[(mix64(key) as usize) & (self.cache.len() - 1)];
        if slot.generation == self.generation && slot.key == key {
            self.stats.cache_hits += 1;
            Some(slot.result)
        } else {
            None
        }
    }

    #[inline]
    fn cache_store(&mut self, key: u64, result: u32) {
        // Recompute the slot: the cache may have grown during recursion.
        let i = (mix64(key) as usize) & (self.cache.len() - 1);
        self.cache[i] = CacheSlot {
            key,
            result,
            generation: self.generation,
        };
    }

    /// Boolean negation.
    pub fn not(&mut self, u: Ref) -> Ref {
        Ref(self.not_rec(u.0))
    }

    fn not_rec(&mut self, u: u32) -> u32 {
        if u <= 1 {
            return 1 - u;
        }
        let key = (u as u64) << 31;
        if let Some(r) = self.cache_probe(key) {
            return r;
        }
        let Node { var, lo, hi, .. } = self.nodes[u as usize];
        let nl = self.not_rec(lo);
        let nh = self.not_rec(hi);
        let r = self.mk(var, nl, nh);
        self.cache_store(key, r);
        // Negation is an involution: prime the reverse entry too.
        self.cache_store((r as u64) << 31, u);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        Ref(self.apply(BinOp::And, a.0, b.0))
    }

    /// Disjunction.
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        Ref(self.apply(BinOp::Or, a.0, b.0))
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        Ref(self.apply(BinOp::Xor, a.0, b.0))
    }

    /// Bi-implication.
    pub fn iff(&mut self, a: Ref, b: Ref) -> Ref {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// Implication.
    pub fn implies(&mut self, a: Ref, b: Ref) -> Ref {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Difference `a ∧ ¬b`.
    pub fn diff(&mut self, a: Ref, b: Ref) -> Ref {
        let nb = self.not(b);
        self.and(a, nb)
    }

    /// If-then-else `(c ∧ t) ∨ (¬c ∧ e)`.
    pub fn ite(&mut self, c: Ref, t: Ref, e: Ref) -> Ref {
        let ct = self.and(c, t);
        let nc = self.not(c);
        let ce = self.and(nc, e);
        self.or(ct, ce)
    }

    fn apply(&mut self, op: BinOp, a: u32, b: u32) -> u32 {
        // Terminal rules.
        match op {
            BinOp::And => {
                if a == 0 || b == 0 {
                    return 0;
                }
                if a == 1 {
                    return b;
                }
                if b == 1 || a == b {
                    return a;
                }
            }
            BinOp::Or => {
                if a == 1 || b == 1 {
                    return 1;
                }
                if a == 0 {
                    return b;
                }
                if b == 0 || a == b {
                    return a;
                }
            }
            BinOp::Xor => {
                if a == b {
                    return 0;
                }
                if a == 0 {
                    return b;
                }
                if b == 0 {
                    return a;
                }
                if a == 1 {
                    return self.not_rec(b);
                }
                if b == 1 {
                    return self.not_rec(a);
                }
            }
        }
        // All three ops are commutative: normalize the cache key so both
        // operand orders share one entry.
        let key = ((op as u64) << 62) | ((a.min(b) as u64) << 31) | (a.max(b) as u64);
        if let Some(r) = self.cache_probe(key) {
            return r;
        }
        let (na, nb) = (self.nodes[a as usize], self.nodes[b as usize]);
        let (la, lb) = (self.level_of_var(na.var), self.level_of_var(nb.var));
        let m = la.min(lb);
        let (a0, a1) = if la == m { (na.lo, na.hi) } else { (a, a) };
        let (b0, b1) = if lb == m { (nb.lo, nb.hi) } else { (b, b) };
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let split = if la == m { na.var } else { nb.var };
        let r = self.mk(split, lo, hi);
        self.cache_store(key, r);
        r
    }

    /// Cofactor: `u` with variable `v` fixed to `val`.
    pub fn restrict(&mut self, u: Ref, v: u32, val: bool) -> Ref {
        self.ensure_var(v);
        let vl = self.level_of_var(v);
        let mut memo = HashMap::default();
        Ref(self.restrict_rec(u.0, v, vl, val, &mut memo))
    }

    fn restrict_rec(
        &mut self,
        u: u32,
        v: u32,
        vl: u32,
        val: bool,
        memo: &mut HashMap<u32, u32>,
    ) -> u32 {
        let node = self.nodes[u as usize];
        if self.level_of_var(node.var) > vl {
            // Terminals and nodes entirely below v: v does not occur.
            return u;
        }
        if node.var == v {
            return if val { node.hi } else { node.lo };
        }
        if let Some(&r) = memo.get(&u) {
            return r;
        }
        let lo = self.restrict_rec(node.lo, v, vl, val, memo);
        let hi = self.restrict_rec(node.hi, v, vl, val, memo);
        let r = self.mk(node.var, lo, hi);
        memo.insert(u, r);
        r
    }

    /// The levels of `vars` under the current order, sorted ascending.
    /// Variables never registered in the arena (no node tests them) get
    /// distinct virtual levels below every real one, in id order — they
    /// can appear in counting sets.
    fn sorted_levels(&self, vars: &[u32]) -> Vec<u32> {
        let registered = self.var2level.len() as u32;
        let mut levels: Vec<u32> = vars
            .iter()
            .map(|&v| {
                if v < registered {
                    self.var2level[v as usize]
                } else {
                    registered + v
                }
            })
            .collect();
        levels.sort_unstable();
        debug_assert!(
            levels.windows(2).all(|w| w[0] < w[1]) && levels.last().copied() != Some(u32::MAX),
            "vars must be distinct registered variables"
        );
        levels
    }

    /// Existential quantification `∃ vars. u`.
    pub fn exists(&mut self, u: Ref, vars: &[u32]) -> Ref {
        for &v in vars {
            self.ensure_var(v);
        }
        let levels = self.sorted_levels(vars);
        let mut memo = HashMap::default();
        Ref(self.exists_rec(u.0, &levels, &mut memo))
    }

    fn exists_rec(&mut self, u: u32, levels: &[u32], memo: &mut HashMap<u32, u32>) -> u32 {
        if u <= 1 {
            return u;
        }
        let nl = self.node_level(u);
        // Levels above this node cannot occur in it.
        let levels = &levels[levels.partition_point(|&l| l < nl)..];
        if levels.is_empty() {
            return u;
        }
        if let Some(&r) = memo.get(&u) {
            return r;
        }
        let node = self.nodes[u as usize];
        let lo = self.exists_rec(node.lo, levels, memo);
        let hi = self.exists_rec(node.hi, levels, memo);
        let r = if nl == levels[0] {
            self.apply(BinOp::Or, lo, hi)
        } else {
            self.mk(node.var, lo, hi)
        };
        memo.insert(u, r);
        r
    }

    /// Relational product `∃ vars. a ∧ b`, fused so the conjunction is
    /// never fully materialized. This is the image-computation workhorse.
    pub fn relprod(&mut self, a: Ref, b: Ref, vars: &[u32]) -> Ref {
        for &v in vars {
            self.ensure_var(v);
        }
        let levels = self.sorted_levels(vars);
        let mut memo = HashMap::default();
        Ref(self.relprod_rec(a.0, b.0, &levels, &mut memo))
    }

    fn relprod_rec(
        &mut self,
        a: u32,
        b: u32,
        levels: &[u32],
        memo: &mut HashMap<(u32, u32), u32>,
    ) -> u32 {
        if a == 0 || b == 0 {
            return 0;
        }
        if a == 1 && b == 1 {
            return 1;
        }
        let (la, lb) = (self.node_level(a), self.node_level(b));
        let m = la.min(lb);
        let levels = &levels[levels.partition_point(|&l| l < m)..];
        if levels.is_empty() {
            // No quantified variable occurs in either operand any more.
            return self.apply(BinOp::And, a, b);
        }
        let key = (a, b);
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let (na, nb) = (self.nodes[a as usize], self.nodes[b as usize]);
        let (a0, a1) = if la == m { (na.lo, na.hi) } else { (a, a) };
        let (b0, b1) = if lb == m { (nb.lo, nb.hi) } else { (b, b) };
        let lo = self.relprod_rec(a0, b0, levels, memo);
        let r = if m == levels[0] {
            if lo == 1 {
                // Early exit: ∃v. f already true on the low branch.
                1
            } else {
                let hi = self.relprod_rec(a1, b1, levels, memo);
                self.apply(BinOp::Or, lo, hi)
            }
        } else {
            let hi = self.relprod_rec(a1, b1, levels, memo);
            let split = if la == m { na.var } else { nb.var };
            self.mk(split, lo, hi)
        };
        memo.insert(key, r);
        r
    }

    /// Renames variables according to `map` (pairs `(from, to)`). The
    /// renaming must preserve the variable order on the support of `u`
    /// and must not collide with variables already in `u` — both hold
    /// for the engine's current↔next shifts, where `from` and `to` are
    /// adjacent interleaved levels and the source level was just
    /// quantified away (or never present).
    pub fn rename(&mut self, u: Ref, map: &[(u32, u32)]) -> Ref {
        for &(f, t) in map {
            self.ensure_var(f);
            self.ensure_var(t);
        }
        // Work in level space: (level of from, replacement var).
        let mut m: Vec<(u32, u32)> = map
            .iter()
            .map(|&(f, t)| (self.level_of_var(f), t))
            .collect();
        m.sort_unstable_by_key(|&(fl, _)| fl);
        let mut memo = HashMap::default();
        Ref(self.rename_rec(u.0, &m, &mut memo))
    }

    fn rename_rec(&mut self, u: u32, map: &[(u32, u32)], memo: &mut HashMap<u32, u32>) -> u32 {
        if u <= 1 {
            return u;
        }
        let nl = self.node_level(u);
        let map = &map[map.partition_point(|&(fl, _)| fl < nl)..];
        if map.is_empty() {
            return u;
        }
        if let Some(&r) = memo.get(&u) {
            return r;
        }
        let node = self.nodes[u as usize];
        let lo = self.rename_rec(node.lo, map, memo);
        let hi = self.rename_rec(node.hi, map, memo);
        let var = if map[0].0 == nl { map[0].1 } else { node.var };
        let r = self.mk(var, lo, hi);
        memo.insert(u, r);
        r
    }

    /// Number of satisfying assignments of `u` over exactly the
    /// variables in `vars`. Every variable in `u`'s support must be
    /// listed.
    pub fn sat_count(&self, u: Ref, vars: &[u32]) -> u128 {
        let levels = self.sorted_levels(vars);
        let mut memo = HashMap::default();
        self.count_rec(u.0, &levels, 0, &mut memo)
    }

    fn count_rec(&self, u: u32, levels: &[u32], pos: usize, memo: &mut HashMap<u32, u128>) -> u128 {
        if u == 0 {
            return 0;
        }
        if u == 1 {
            return 1u128 << (levels.len() - pos);
        }
        let nl = self.node_level(u);
        let idx = pos
            + levels[pos..]
                .binary_search(&nl)
                .expect("support must be within the counting set");
        // memo holds the count *from this node's own level*; scale by the
        // variables skipped between `pos` and the node.
        let below = if let Some(&c) = memo.get(&u) {
            c
        } else {
            let node = self.nodes[u as usize];
            let lo = self.count_rec(node.lo, levels, idx + 1, memo);
            let hi = self.count_rec(node.hi, levels, idx + 1, memo);
            let c = lo + hi;
            memo.insert(u, c);
            c
        };
        below << (idx - pos)
    }

    /// One satisfying assignment of `u` as `(var, value)` pairs along a
    /// path to `true` (variables missing from the result are don't-cares);
    /// `None` iff `u` is unsatisfiable. Prefers the low branch, so with
    /// all-zero defaults the decoded witness is the canonically smallest.
    pub fn pick_one(&self, u: Ref) -> Option<Vec<(u32, bool)>> {
        if u == FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut at = u.0;
        while at > 1 {
            let node = self.nodes[at as usize];
            if node.lo != 0 {
                path.push((node.var, false));
                at = node.lo;
            } else {
                path.push((node.var, true));
                at = node.hi;
            }
        }
        debug_assert_eq!(at, 1);
        Some(path)
    }

    /// Builds the conjunction of literals `(var, value)`; `vars` need not
    /// be sorted.
    pub fn cube(&mut self, literals: &[(u32, bool)]) -> Ref {
        for &(v, _) in literals {
            self.ensure_var(v);
        }
        let mut lits: Vec<(u32, bool)> = literals.to_vec();
        // Deepest level first keeps `mk` building bottom-up in one pass.
        lits.sort_unstable_by_key(|&(v, _)| std::cmp::Reverse(self.level_of_var(v)));
        let mut acc = 1u32;
        for (v, val) in lits {
            acc = if val {
                self.mk(v, 0, acc)
            } else {
                self.mk(v, acc, 0)
            };
        }
        Ref(acc)
    }

    /// Evaluates `u` under a total assignment (`assign(v)` = value of
    /// variable `v`).
    pub fn eval(&self, u: Ref, mut assign: impl FnMut(u32) -> bool) -> bool {
        let mut at = u.0;
        while at > 1 {
            let node = self.nodes[at as usize];
            at = if assign(node.var) { node.hi } else { node.lo };
        }
        at == 1
    }

    // ------------------------------------------------------------------
    // Generational mark-and-sweep
    // ------------------------------------------------------------------

    /// Reclaims every node unreachable from `roots` (terminals always
    /// survive) and invalidates the operation cache by bumping the
    /// generation. Non-moving: `Ref`s to surviving nodes stay valid,
    /// `Ref`s to reclaimed nodes must no longer be used. Returns the
    /// number of nodes reclaimed.
    ///
    /// Callers must list **every** `Ref` they intend to keep using —
    /// reachability from the listed roots is the sole liveness
    /// criterion.
    pub fn sweep(&mut self, roots: &[Ref]) -> usize {
        let n = self.nodes.len();
        let mut marked = vec![false; n];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<u32> = roots.iter().map(|r| r.0).filter(|&i| i > 1).collect();
        while let Some(i) = stack.pop() {
            if marked[i as usize] {
                continue;
            }
            marked[i as usize] = true;
            let nd = self.nodes[i as usize];
            debug_assert_ne!(nd.var, FREE_VAR, "root reaches a freed node");
            if nd.lo > 1 {
                stack.push(nd.lo);
            }
            if nd.hi > 1 {
                stack.push(nd.hi);
            }
        }
        let mut reclaimed = 0;
        for (i, &live) in marked.iter().enumerate().skip(2) {
            if !live && self.nodes[i].var != FREE_VAR {
                self.nodes[i].var = FREE_VAR;
                self.free.push(i as u32);
                reclaimed += 1;
            }
        }
        // Relink the unique table over the survivors and compact the
        // per-variable lists.
        for h in &mut self.heads {
            *h = NIL;
        }
        for i in 2..n {
            if self.nodes[i].var != FREE_VAR {
                self.unique_insert(i as u32);
            }
        }
        let Bdd {
            nodes, var_nodes, ..
        } = self;
        for (v, list) in var_nodes.iter_mut().enumerate() {
            list.retain(|&i| nodes[i as usize].var == v as u32);
            list.sort_unstable();
            list.dedup();
        }
        self.generation += 1;
        self.stats.gc_runs += 1;
        self.stats.reclaimed_nodes += reclaimed as u64;
        reclaimed as usize
    }

    // ------------------------------------------------------------------
    // Variable reordering
    // ------------------------------------------------------------------

    /// Swaps the variables at levels `i` and `i + 1` by rewriting the
    /// affected upper-level nodes **in place**: every outstanding
    /// [`Ref`] keeps denoting the same boolean function, and the
    /// operation cache stays valid (results are functions of node
    /// identity, which is preserved).
    pub fn swap_levels(&mut self, i: usize) {
        self.swap_levels_impl(i, None);
    }

    fn swap_levels_impl(&mut self, i: usize, mut ctx: Option<&mut SiftCtx>) {
        assert!(i + 1 < self.level2var.len(), "level {i} has no successor");
        let u = self.level2var[i];
        let v = self.level2var[i + 1];
        // Snapshot the upper level's candidate nodes; `mk` during the
        // rewrite pushes *new* u-nodes into the (now empty) list.
        let list = std::mem::take(&mut self.var_nodes[u as usize]);
        // Install the new order first so `mk` sees consistent levels.
        self.level2var.swap(i, i + 1);
        self.var2level[u as usize] = (i + 1) as u32;
        self.var2level[v as usize] = i as u32;
        let mut keep: Vec<u32> = Vec::new();
        for idx in list {
            let n = self.nodes[idx as usize];
            if n.var != u {
                continue; // stale entry (freed or already rewritten)
            }
            let (f0, f1) = (n.lo, n.hi);
            let dep0 = self.nodes[f0 as usize].var == v;
            let dep1 = self.nodes[f1 as usize].var == v;
            if !dep0 && !dep1 {
                // v does not occur: the node migrates with u unchanged.
                keep.push(idx);
                continue;
            }
            self.unique_remove(idx);
            // Detach the node while it is out of the table: the `mk`
            // calls below can trigger a unique-table rehash, which
            // relinks every non-free node — the sentinel keeps the
            // half-rewritten node (whose stored triple is stale) out of
            // the rebuilt chains.
            self.nodes[idx as usize].var = FREE_VAR;
            let (f00, f01) = if dep0 {
                let c = self.nodes[f0 as usize];
                (c.lo, c.hi)
            } else {
                (f0, f0)
            };
            let (f10, f11) = if dep1 {
                let c = self.nodes[f1 as usize];
                (c.lo, c.hi)
            } else {
                (f1, f1)
            };
            let a = self.mk(u, f00, f10);
            let b = self.mk(u, f01, f11);
            // The function depends on v, so the swapped cofactors differ.
            debug_assert_ne!(a, b);
            if let Some(ctx) = ctx.as_deref_mut() {
                // Exact live-size maintenance for sifting: idx's two
                // outgoing edges move from (f0, f1) to (a, b).
                ctx.inc(&self.nodes, a);
                ctx.inc(&self.nodes, b);
                ctx.dec(&self.nodes, f0);
                ctx.dec(&self.nodes, f1);
            }
            self.nodes[idx as usize] = Node {
                var: v,
                lo: a,
                hi: b,
                next: NIL,
            };
            self.unique_insert(idx);
            self.var_nodes[v as usize].push(idx);
        }
        self.var_nodes[u as usize].extend(keep);
        self.stats.swaps += 1;
    }

    /// Exchanges the adjacent level *blocks* `[p·group, (p+1)·group)` and
    /// `[(p+1)·group, (p+2)·group)` by `group²` adjacent swaps.
    fn swap_blocks(&mut self, p: usize, group: usize, ctx: &mut SiftCtx) {
        for k in 0..group {
            let from = (p + 1) * group + k;
            let to = p * group + k;
            for l in (to..from).rev() {
                self.swap_levels_impl(l, Some(ctx));
            }
        }
    }

    /// One pass of Rudell-style sifting over level *blocks* of width
    /// `group` (the symbolic engine uses `group = 2` so each packed
    /// bit's interleaved current/next pair moves as a unit, keeping the
    /// pair adjacent and every rename order-preserving).
    ///
    /// Each block, heaviest first, is walked to both ends of the order
    /// and parked at the position minimizing the allocated node count
    /// (with a 2× growth abort per direction). `roots` must cover every
    /// `Ref` the caller keeps using — the pass sweeps dead nodes so the
    /// size metric tracks live structure.
    pub fn sift(&mut self, roots: &[Ref], group: usize) {
        assert!(group >= 1, "group width must be positive");
        let levels = self.level2var.len();
        if levels < 2 * group {
            return;
        }
        // Trailing unregistered levels (when levels % group != 0) are
        // left parked at the bottom.
        let blocks = levels / group;
        if blocks < 2 {
            return;
        }
        self.sweep(roots);
        let mut ctx = SiftCtx::build(self, roots);
        // Heaviest blocks first: their placement matters most. Identify
        // each block by its variables (positions move during the pass);
        // the representative is the top variable of the block now.
        let mut weighted: Vec<(usize, u32)> = (0..blocks)
            .map(|p| {
                let size: usize = (0..group)
                    .map(|k| {
                        let v = self.level2var[p * group + k] as usize;
                        self.var_nodes[v].len()
                    })
                    .sum();
                (size, self.level2var[p * group])
            })
            .collect();
        weighted.sort_unstable_by_key(|&(size, _)| std::cmp::Reverse(size));
        for (_, rep) in weighted {
            // Sweeping is safe mid-pass: only rc-dead nodes are freed,
            // so the sift context stays consistent. It bounds the
            // garbage the journeys leave behind.
            self.sweep(roots);
            self.sift_block(rep, group, blocks, &mut ctx);
        }
        self.sweep(roots);
        self.stats.sift_passes += 1;
    }

    /// Sifts the block containing variable `rep` to its locally optimal
    /// position, measured by the exact live node count in `ctx`.
    fn sift_block(&mut self, rep: u32, group: usize, blocks: usize, ctx: &mut SiftCtx) {
        let mut pos = (self.var2level[rep as usize] as usize) / group;
        let start_size = ctx.live;
        let limit = start_size.saturating_mul(2).saturating_add(64);
        let mut best_pos = pos;
        let mut best_size = start_size;
        // Explore the nearer end first to minimize total swaps.
        let up_first = pos <= blocks / 2;
        for phase in 0..2 {
            let upward = (phase == 0) == up_first;
            if upward {
                while pos > 0 {
                    self.swap_blocks(pos - 1, group, ctx);
                    pos -= 1;
                    if ctx.live < best_size {
                        best_size = ctx.live;
                        best_pos = pos;
                    }
                    if ctx.live > limit {
                        break;
                    }
                }
            } else {
                while pos + 1 < blocks {
                    self.swap_blocks(pos, group, ctx);
                    pos += 1;
                    if ctx.live < best_size {
                        best_size = ctx.live;
                        best_pos = pos;
                    }
                    if ctx.live > limit {
                        break;
                    }
                }
            }
        }
        while pos > best_pos {
            self.swap_blocks(pos - 1, group, ctx);
            pos -= 1;
        }
        while pos < best_pos {
            self.swap_blocks(pos, group, ctx);
            pos += 1;
        }
    }
}

/// Exact live-size accounting for a sift pass, without permanent
/// reference counts: `rc[x]` is the number of references to `x` from
/// *live* nodes plus the caller's roots, maintained by
/// death/resurrection cascades as swaps rewire edges. A node is live
/// iff `rc > 0` (sound on a DAG), so `live` tracks the true
/// reachable-node count swap by swap — the metric sifting minimizes.
/// Built after a sweep (when allocated = live) and kept consistent
/// across further sweeps (which free exactly the rc-dead nodes).
struct SiftCtx {
    rc: Vec<u32>,
    live: usize,
}

impl SiftCtx {
    fn build(bdd: &Bdd, roots: &[Ref]) -> SiftCtx {
        let mut rc = vec![0u32; bdd.nodes.len()];
        for i in 2..bdd.nodes.len() {
            let n = bdd.nodes[i];
            if n.var == FREE_VAR {
                continue;
            }
            if n.lo > 1 {
                rc[n.lo as usize] += 1;
            }
            if n.hi > 1 {
                rc[n.hi as usize] += 1;
            }
        }
        for r in roots {
            if r.0 > 1 {
                rc[r.0 as usize] += 1;
            }
        }
        SiftCtx {
            rc,
            live: bdd.len(),
        }
    }

    fn inc(&mut self, nodes: &[Node], x: u32) {
        if x <= 1 {
            return;
        }
        if self.rc.len() < nodes.len() {
            self.rc.resize(nodes.len(), 0);
        }
        self.rc[x as usize] += 1;
        if self.rc[x as usize] == 1 {
            // Resurrected (or freshly allocated): it now holds its
            // children again.
            self.live += 1;
            let n = nodes[x as usize];
            self.inc(nodes, n.lo);
            self.inc(nodes, n.hi);
        }
    }

    fn dec(&mut self, nodes: &[Node], x: u32) {
        if x <= 1 {
            return;
        }
        debug_assert!(self.rc[x as usize] > 0, "rc underflow at {x}");
        self.rc[x as usize] -= 1;
        if self.rc[x as usize] == 0 {
            // Died: release its holds on the children.
            self.live -= 1;
            let n = nodes[x as usize];
            self.dec(nodes, n.lo);
            self.dec(nodes, n.hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive truth-table check of a BDD against a reference closure
    /// over `n` variables.
    fn table_eq(bdd: &Bdd, u: Ref, n: u32, f: impl Fn(&[bool]) -> bool) {
        for bits in 0u32..(1 << n) {
            let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                bdd.eval(u, |v| assign[v as usize]),
                f(&assign),
                "assignment {assign:?}"
            );
        }
    }

    /// Structural invariants every reachable node must satisfy: reduced
    /// (`lo != hi`), ordered (children strictly below), and canonical
    /// (no two allocated nodes share a triple).
    fn assert_canonical(bdd: &Bdd) {
        let mut seen = std::collections::HashSet::new();
        for i in 2..bdd.nodes.len() {
            let n = bdd.nodes[i];
            if n.var == FREE_VAR {
                continue;
            }
            assert_ne!(n.lo, n.hi, "node {i} is redundant");
            let l = bdd.level_of_var(n.var);
            assert!(
                l < bdd.node_level(n.lo) && l < bdd.node_level(n.hi),
                "node {i} out of order"
            );
            assert_ne!(
                bdd.nodes[n.lo as usize].var, FREE_VAR,
                "node {i} has a freed lo child"
            );
            assert_ne!(
                bdd.nodes[n.hi as usize].var, FREE_VAR,
                "node {i} has a freed hi child"
            );
            assert!(seen.insert((n.var, n.lo, n.hi)), "duplicate triple at {i}");
        }
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xy = b.and(x, y);
        let u = b.or(xy, z);
        table_eq(&b, u, 3, |a| (a[0] && a[1]) || a[2]);
        let v = b.xor(x, y);
        table_eq(&b, v, 3, |a| a[0] ^ a[1]);
        let w = b.implies(x, y);
        table_eq(&b, w, 3, |a| !a[0] || a[1]);
        let i = b.iff(x, z);
        table_eq(&b, i, 3, |a| a[0] == a[2]);
        let nx = b.not(x);
        table_eq(&b, nx, 3, |a| !a[0]);
    }

    #[test]
    fn hash_consing_makes_equality_structural() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let a1 = b.and(x, y);
        let a2 = b.and(y, x);
        assert_eq!(a1, a2);
        let n1 = b.not(a1);
        let n2 = b.not(n1);
        assert_eq!(n2, a1, "double negation is the identity node");
        let t = b.or(x, TRUE);
        assert_eq!(t, TRUE);
    }

    #[test]
    fn restrict_cofactors() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let u = b.and(x, y);
        assert_eq!(b.restrict(u, 0, true), y);
        assert_eq!(b.restrict(u, 0, false), FALSE);
        assert_eq!(b.restrict(u, 2, true), u, "absent variable is a no-op");
    }

    #[test]
    fn exists_and_relprod_agree() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xz = b.and(x, z);
        let yz = b.not(z);
        let yzn = b.and(y, yz);
        let u = b.or(xz, yzn);
        // ∃z. u  =  x ∨ y
        let q = b.exists(u, &[2]);
        table_eq(&b, q, 3, |a| a[0] || a[1]);
        // relprod(a, b, vars) ≡ exists(and(a, b), vars) on random-ish forms.
        let v = b.or(y, z);
        let anded = b.and(u, v);
        let e1 = b.exists(anded, &[0, 2]);
        let e2 = b.relprod(u, v, &[0, 2]);
        assert_eq!(e1, e2);
    }

    #[test]
    fn rename_shifts_levels() {
        let mut b = Bdd::new();
        // f(x0, x2) = x0 ∧ ¬x2 ; rename 0→1, 2→3.
        let x0 = b.var(0);
        let nx2 = b.nvar(2);
        let f = b.and(x0, nx2);
        let g = b.rename(f, &[(0, 1), (2, 3)]);
        table_eq(&b, g, 4, |a| a[1] && !a[3]);
        // Partial map: only shift 2→3.
        let h = b.rename(f, &[(2, 3)]);
        table_eq(&b, h, 4, |a| a[0] && !a[3]);
    }

    #[test]
    fn sat_count_counts() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(2);
        let u = b.or(x, y);
        // Over {0, 2}: 3 of 4. Over {0, 1, 2}: 6 of 8 (var 1 free).
        assert_eq!(b.sat_count(u, &[0, 2]), 3);
        assert_eq!(b.sat_count(u, &[0, 1, 2]), 6);
        assert_eq!(b.sat_count(TRUE, &[0, 1, 2]), 8);
        assert_eq!(b.sat_count(FALSE, &[0, 1, 2]), 0);
    }

    #[test]
    fn pick_one_satisfies() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let ny = b.nvar(1);
        let u = b.and(x, ny);
        let lits = b.pick_one(u).unwrap();
        let value = |v: u32| lits.iter().find(|&&(w, _)| w == v).map(|&(_, x)| x);
        assert_eq!(value(0), Some(true));
        assert_eq!(value(1), Some(false));
        assert!(b.pick_one(FALSE).is_none());
        assert_eq!(b.pick_one(TRUE).unwrap(), vec![]);
    }

    #[test]
    fn cube_roundtrips_through_pick() {
        let mut b = Bdd::new();
        let c = b.cube(&[(3, true), (1, false), (5, true)]);
        assert_eq!(b.sat_count(c, &[1, 3, 5]), 1);
        let lits = b.pick_one(c).unwrap();
        let rebuilt = b.cube(&lits);
        assert_eq!(rebuilt, c);
    }

    #[test]
    fn reset_clears_arena() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        b.and(x, y);
        assert!(b.len() > 2);
        b.reset();
        assert!(b.is_empty());
        // Rebuilding after reset works from scratch.
        let x2 = b.var(0);
        assert_eq!(x2, Ref(2), "arena restarts at the first free slot");
    }

    /// A deterministic xorshift for the randomized swap/sift tests.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// A random-ish function over `n` vars built from a seed.
    fn random_function(b: &mut Bdd, n: u32, rng: &mut XorShift) -> Ref {
        let mut acc = FALSE;
        for _ in 0..(2 * n) {
            let mut cube = TRUE;
            for v in 0..n {
                match rng.next() % 3 {
                    0 => {
                        let lit = b.var(v);
                        cube = b.and(cube, lit);
                    }
                    1 => {
                        let lit = b.nvar(v);
                        cube = b.and(cube, lit);
                    }
                    _ => {}
                }
            }
            acc = b.or(acc, cube);
        }
        acc
    }

    #[test]
    fn adjacent_swap_preserves_eval_on_random_assignments() {
        let mut rng = XorShift(0x9e3779b97f4a7c15);
        for case in 0..20 {
            let mut b = Bdd::new();
            let n = 6;
            let f = random_function(&mut b, n, &mut rng);
            let g = random_function(&mut b, n, &mut rng);
            // Reference truth tables before any swap.
            let tf: Vec<bool> = (0u32..(1 << n))
                .map(|bits| b.eval(f, |v| bits >> v & 1 == 1))
                .collect();
            let tg: Vec<bool> = (0u32..(1 << n))
                .map(|bits| b.eval(g, |v| bits >> v & 1 == 1))
                .collect();
            let level = (rng.next() % (n as u64 - 1)) as usize;
            b.swap_levels(level);
            assert_canonical(&b);
            for bits in 0u32..(1 << n) {
                assert_eq!(
                    b.eval(f, |v| bits >> v & 1 == 1),
                    tf[bits as usize],
                    "case {case}: f changed at {bits:#b} after swapping level {level}"
                );
                assert_eq!(
                    b.eval(g, |v| bits >> v & 1 == 1),
                    tg[bits as usize],
                    "case {case}: g changed at {bits:#b} after swapping level {level}"
                );
            }
            // Swapping back restores the original order (an involution
            // on the level maps).
            let order_after = b.order().to_vec();
            b.swap_levels(level);
            b.swap_levels(level);
            assert_eq!(b.order(), &order_after[..]);
        }
    }

    #[test]
    fn swap_keeps_ops_consistent_afterwards() {
        // After a swap, fresh operations must still agree with the
        // truth tables (the operation cache stays valid because node
        // identity is preserved).
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xy = b.and(x, y);
        let f = b.or(xy, z);
        b.swap_levels(0);
        b.swap_levels(1);
        assert_canonical(&b);
        let nf = b.not(f);
        table_eq(&b, nf, 3, |a| !((a[0] && a[1]) || a[2]));
        let yz = b.and(y, z);
        let g = b.or(f, yz);
        // y ∧ z is absorbed by the z disjunct: g = (x ∧ y) ∨ z.
        table_eq(&b, g, 3, |a| (a[0] && a[1]) || a[2]);
        let q = b.exists(g, &[1]);
        // ∃y. g  =  x ∨ z
        table_eq(&b, q, 3, |a| a[0] || a[2]);
    }

    #[test]
    fn sweep_reclaims_dead_nodes_and_keeps_roots() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let keepme = b.and(x, y);
        let dead1 = b.and(y, z);
        let dead2 = b.or(dead1, x);
        let before = b.len();
        // Every Ref still in use must be listed as a root — dead1/dead2
        // are not, so they are reclaimed.
        let reclaimed = b.sweep(&[keepme, x, y, z]);
        assert!(reclaimed > 0, "dead nodes {dead2:?} reclaimed");
        assert_eq!(b.len(), before - reclaimed);
        assert_canonical(&b);
        table_eq(&b, keepme, 3, |a| a[0] && a[1]);
        // The arena stays fully usable: rebuilding the dead function
        // reuses freed slots and yields a canonical node again.
        let d1 = b.and(y, z);
        let d2 = b.or(d1, x);
        table_eq(&b, d2, 3, |a| (a[1] && a[2]) || a[0]);
        assert_canonical(&b);
    }

    #[test]
    fn sweep_invalidates_the_op_cache_by_generation() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        b.sweep(&[x, y]); // f is dead; its slot may be reused
        let g = b.and(y, x);
        // The cached (And, x, y) entry is from the old generation; the
        // rebuilt node must be canonical and correct regardless.
        assert_eq!(f.0, g.0, "slot reuse gives the same index back here");
        table_eq(&b, g, 2, |a| a[0] && a[1]);
        assert_canonical(&b);
    }

    #[test]
    fn custom_order_and_sat_count_agree() {
        // Same function under two orders: identical counts and truth
        // tables (Refs differ).
        let check = |order: Option<&[u32]>| {
            let mut b = Bdd::new();
            if let Some(o) = order {
                b.set_order(o);
            }
            let x = b.var(0);
            let y = b.var(1);
            let z = b.var(2);
            let xy = b.and(x, y);
            let u = b.or(xy, z);
            table_eq(&b, u, 3, |a| (a[0] && a[1]) || a[2]);
            b.sat_count(u, &[0, 1, 2])
        };
        let a = check(None);
        let c = check(Some(&[2, 0, 1]));
        assert_eq!(a, c);
        assert_eq!(a, 5);
    }

    #[test]
    fn sifting_shrinks_an_order_hostile_function() {
        // f = ⋀ᵢ (xᵢ ↔ xᵢ₊ₙ) under the blocked order x₀..xₙ₋₁ xₙ..x₂ₙ₋₁
        // needs ~2ⁿ nodes; the interleaved order needs 3n. Sifting must
        // find (something close to) the small order.
        let n = 6u32;
        let mut b = Bdd::new();
        let mut f = TRUE;
        for i in 0..n {
            let x = b.var(i);
            let y = b.var(i + n);
            let eq = b.iff(x, y);
            f = b.and(f, eq);
        }
        b.sweep(&[f]);
        let before = b.len();
        assert!(before > 2u32.pow(n) as usize, "blocked order is hostile");
        b.sift(&[f], 1);
        b.sweep(&[f]);
        let after = b.len();
        assert!(
            after <= 3 * n as usize + 2,
            "sifting found an interleaved-quality order ({before} -> {after})"
        );
        assert_canonical(&b);
        // Semantics preserved on every assignment.
        for bits in 0u32..(1 << (2 * n)) {
            let expect = (0..n).all(|i| (bits >> i & 1) == (bits >> (i + n) & 1));
            assert_eq!(b.eval(f, |v| bits >> v & 1 == 1), expect);
        }
        assert!(b.stats().swaps > 0);
        assert_eq!(b.stats().sift_passes, 1);
    }

    #[test]
    fn sift_survives_unique_table_rehash() {
        // Regression: a sift journey whose allocations cross the bucket
        // boundary triggers a unique-table rehash *while a node is
        // detached mid-rewrite*; the detached node must not be relinked
        // under its stale triple (that orphaned chains and broke
        // canonicity).
        // Build ⋀ᵢ (xᵢ ↔ xᵢ₊ₙ) garbage-free with raw `mk` so the arena
        // stays below the initial bucket count until the sift runs
        // (going through the connectives would rehash during *build*).
        fn bottom(b: &mut Bdd, i: u32, n: u32, pattern: u32) -> u32 {
            if i == n {
                return 1;
            }
            let rest = bottom(b, i + 1, n, pattern);
            if pattern >> i & 1 == 1 {
                b.mk(n + i, 0, rest)
            } else {
                b.mk(n + i, rest, 0)
            }
        }
        fn top(b: &mut Bdd, i: u32, n: u32, pattern: u32) -> u32 {
            if i == n {
                return bottom(b, 0, n, pattern);
            }
            let lo = top(b, i + 1, n, pattern);
            let hi = top(b, i + 1, n, pattern | 1 << i);
            b.mk(i, lo, hi)
        }
        let n = 10u32;
        let mut b = Bdd::new();
        for v in 0..2 * n {
            b.ensure_var(v);
        }
        let f = Ref(top(&mut b, 0, n, 0));
        assert!(
            b.stats().peak_nodes < INITIAL_BUCKETS,
            "the hostile function must start below the bucket boundary"
        );
        b.sift(&[f], 1);
        assert!(
            b.stats().peak_nodes > INITIAL_BUCKETS,
            "the pass must cross the rehash boundary to exercise the bug"
        );
        b.sweep(&[f]);
        assert_canonical(&b);
        let mut rng = XorShift(0x2545f4914f6cdd1d);
        for _ in 0..2000 {
            let bits = (rng.next() % (1 << (2 * n))) as u32;
            let expect = (0..n).all(|i| (bits >> i & 1) == (bits >> (i + n) & 1));
            assert_eq!(b.eval(f, |v| bits >> v & 1 == 1), expect);
        }
    }

    #[test]
    fn grouped_sifting_keeps_pairs_adjacent() {
        // Pairs (2k, 2k+1) must stay adjacent (and in cur-above-next
        // order) through a grouped sift — the engine's interleaving
        // invariant.
        let n_pairs = 4u32;
        let mut b = Bdd::new();
        let mut f = TRUE;
        // Couple pair k with pair (k + 2) % n to give sifting a reason
        // to move blocks.
        for k in 0..n_pairs {
            let j = (k + 2) % n_pairs;
            let x = b.var(2 * k);
            let y = b.var(2 * j + 1);
            let eq = b.iff(x, y);
            f = b.and(f, eq);
        }
        b.sift(&[f], 2);
        let order = b.order();
        for p in 0..n_pairs as usize {
            let top = order[2 * p];
            let bot = order[2 * p + 1];
            assert_eq!(top % 2, 0, "block top is a current bit");
            assert_eq!(bot, top + 1, "pair stays adjacent: {order:?}");
        }
        assert_canonical(&b);
    }

    #[test]
    fn stats_track_cache_and_peak() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f1 = b.and(x, y);
        let f2 = b.and(y, x); // commutative normalization → cache hit
        assert_eq!(f1, f2);
        let s = b.stats();
        assert!(s.cache_lookups >= 2);
        assert!(s.cache_hits >= 1);
        assert!(s.peak_nodes >= b.len());
    }
}
