//! State encoding: packed bit layout → interleaved BDD variables.
//!
//! The compiled pipeline already fixes a canonical bit layout for states
//! ([`PackedLayout`]): variable `v` occupies `field_bits(v)` bits at
//! `field_shift(v)`, storing the canonical index of its value. The
//! symbolic engine reuses **exactly** that layout, so packed `u64` words
//! and BDD assignments describe the same states bit for bit — a witness
//! cube decodes straight into a packed word, and from there into a
//! [`State`](unity_core::state::State) through existing code.
//!
//! Each packed bit `b` becomes *two* BDD variables: level `2b` is the
//! current-state bit, level `2b + 1` the next-state bit. Interleaving
//! keeps each variable's current/next copies adjacent in the order,
//! which keeps transition-relation BDDs small and makes the
//! current↔next renamings order-preserving single-level shifts.

use unity_core::expr::compile::PackedLayout;
use unity_core::ident::Vocabulary;

use crate::bdd::{Bdd, Ref, TRUE};

/// The BDD variable carrying current-state bit `b`.
#[inline]
pub fn cur(b: u32) -> u32 {
    2 * b
}

/// The BDD variable carrying next-state bit `b`.
#[inline]
pub fn nxt(b: u32) -> u32 {
    2 * b + 1
}

/// Per-program encoding metadata: the packed layout plus derived
/// constants the engine needs in its inner loops.
#[derive(Debug, Clone)]
pub struct SymSpace {
    layout: PackedLayout,
    /// Whether each variable is `Bool`-typed (an `int 0..1` variable has
    /// the same one-bit field but different typing, so this cannot be
    /// recovered from the layout).
    bools: Vec<bool>,
    n_vars: usize,
    total_bits: u32,
}

impl SymSpace {
    /// Builds the encoding for `vocab`, or `None` when the vocabulary
    /// does not pack into 64 bits (the symbolic engine then does not
    /// apply, like the compiled fast path).
    pub fn new(vocab: &Vocabulary) -> Option<SymSpace> {
        let layout = PackedLayout::new(vocab)?;
        Some(SymSpace {
            bools: vocab
                .iter()
                .map(|(_, d)| matches!(d.domain, unity_core::domain::Domain::Bool))
                .collect(),
            n_vars: vocab.len(),
            total_bits: layout.total_bits(),
            layout,
        })
    }

    /// Whether program variable `v` is boolean-typed.
    pub fn is_bool(&self, v: usize) -> bool {
        self.bools[v]
    }

    /// The shared packed layout.
    pub fn layout(&self) -> &PackedLayout {
        &self.layout
    }

    /// Number of program variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of packed state bits (the BDD uses twice as many levels).
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// The current-state BDD variables of program variable `v`, lowest
    /// bit first.
    pub fn cur_bits(&self, v: usize) -> impl Iterator<Item = u32> + '_ {
        let shift = self.layout.field_shift(v);
        (0..self.layout.field_bits(v)).map(move |i| cur(shift + i))
    }

    /// All current-state BDD variables, ascending — the counting set for
    /// state-set cardinalities.
    pub fn all_cur_bits(&self) -> Vec<u32> {
        (0..self.total_bits).map(cur).collect()
    }

    /// The cube `field(v) = k` over current (or next) bits: one literal
    /// per bit of the field.
    pub fn field_cube(&self, bdd: &mut Bdd, v: usize, k: u64, next: bool) -> Ref {
        let shift = self.layout.field_shift(v);
        let bits = self.layout.field_bits(v);
        let mut acc = TRUE;
        // Highest bit first keeps `mk` building bottom-up in one pass.
        for i in (0..bits).rev() {
            let level = if next { nxt(shift + i) } else { cur(shift + i) };
            let lit = if k >> i & 1 == 1 {
                bdd.var(level)
            } else {
                bdd.nvar(level)
            };
            acc = bdd.and(acc, lit);
        }
        acc
    }

    /// The set `field(v) < size(v)` over current bits: type-consistency
    /// of one variable (non-trivial only for non-power-of-two domains).
    pub fn field_in_domain(&self, bdd: &mut Bdd, v: usize) -> Ref {
        let size = self.layout.domain_size(v);
        let bits = self.layout.field_bits(v);
        if size == 1u64 << bits {
            return TRUE;
        }
        let mut acc = crate::bdd::FALSE;
        for k in 0..size {
            let c = self.field_cube(bdd, v, k, false);
            acc = bdd.or(acc, c);
        }
        acc
    }

    /// The set of all type-consistent states (over current bits) — the
    /// paper's quantification domain.
    pub fn domain(&self, bdd: &mut Bdd) -> Ref {
        let mut acc = TRUE;
        for v in 0..self.n_vars {
            let d = self.field_in_domain(bdd, v);
            acc = bdd.and(acc, d);
        }
        acc
    }

    /// The identity `next(v) = cur(v)` for one variable (frame condition).
    pub fn frame(&self, bdd: &mut Bdd, v: usize) -> Ref {
        let shift = self.layout.field_shift(v);
        let mut acc = TRUE;
        for i in 0..self.layout.field_bits(v) {
            let c = bdd.var(cur(shift + i));
            let n = bdd.var(nxt(shift + i));
            let eq = bdd.iff(c, n);
            acc = bdd.and(acc, eq);
        }
        acc
    }

    /// Decodes a (possibly partial) satisfying assignment into a packed
    /// word: assigned current bits are copied, don't-cares default to 0
    /// (the canonical minimum — matching [`Bdd::pick_one`]'s low-branch
    /// preference, this yields the canonically smallest witness).
    pub fn word_of_cube(&self, literals: &[(u32, bool)]) -> u64 {
        let mut word = 0u64;
        for &(level, val) in literals {
            if val && level % 2 == 0 {
                let bit = level / 2;
                if bit < self.total_bits {
                    word |= 1u64 << bit;
                }
            }
        }
        word
    }

    /// Lifts a packed word into its current-bits cube.
    pub fn cube_of_word(&self, bdd: &mut Bdd, word: u64) -> Ref {
        let lits: Vec<(u32, bool)> = (0..self.total_bits)
            .map(|b| (cur(b), word >> b & 1 == 1))
            .collect();
        bdd.cube(&lits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::domain::Domain;
    use unity_core::state::StateSpaceIter;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.declare("b", Domain::Bool).unwrap();
        v.declare("n", Domain::int_range(0, 4).unwrap()).unwrap(); // 5 values, 3 bits
        v.declare("m", Domain::int_range(-2, 1).unwrap()).unwrap(); // 4 values, 2 bits
        v
    }

    #[test]
    fn domain_counts_type_consistent_states() {
        let v = vocab();
        let space = SymSpace::new(&v).unwrap();
        let mut bdd = Bdd::new();
        let dom = space.domain(&mut bdd);
        assert_eq!(
            bdd.sat_count(dom, &space.all_cur_bits()),
            v.space_size().unwrap() as u128
        );
    }

    #[test]
    fn field_cubes_partition_the_domain() {
        let v = vocab();
        let space = SymSpace::new(&v).unwrap();
        let mut bdd = Bdd::new();
        let n = 1; // the 5-valued variable
        let mut union = crate::bdd::FALSE;
        for k in 0..5 {
            let c = space.field_cube(&mut bdd, n, k, false);
            assert_eq!(bdd.and(union, c), crate::bdd::FALSE, "disjoint");
            union = bdd.or(union, c);
        }
        let dom_n = space.field_in_domain(&mut bdd, n);
        assert_eq!(union, dom_n);
    }

    #[test]
    fn words_roundtrip_through_cubes() {
        let v = vocab();
        let space = SymSpace::new(&v).unwrap();
        let mut bdd = Bdd::new();
        for s in StateSpaceIter::new(&v) {
            let word = space.layout().pack(&s);
            let cube = space.cube_of_word(&mut bdd, word);
            let lits = bdd.pick_one(cube).unwrap();
            assert_eq!(space.word_of_cube(&lits), word);
        }
    }

    #[test]
    fn frame_is_the_identity_relation() {
        let v = vocab();
        let space = SymSpace::new(&v).unwrap();
        let mut bdd = Bdd::new();
        let fr = space.frame(&mut bdd, 2);
        // For each current value cube, conjoining the frame pins the next
        // bits to the same value.
        for k in 0..4 {
            let c = space.field_cube(&mut bdd, 2, k, false);
            let n = space.field_cube(&mut bdd, 2, k, true);
            let both = bdd.and(c, fr);
            let expect = bdd.and(c, n);
            assert_eq!(both, expect);
        }
    }
}
