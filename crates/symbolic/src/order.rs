//! Variable-order optimisation: static orders from the program's
//! variable-dependency graph, and the options/policy that drive dynamic
//! sifting.
//!
//! ROBDD size is exponentially sensitive to the variable order, and the
//! packed-layout *declaration* order is an accident of how the spec was
//! written: composed specifications routinely declare one component's
//! variables en bloc after another's, while the commands couple
//! variables *across* the blocks (two lockstep rings, a monitor
//! shadowing a plant, …). The paper's characterization-by-properties
//! view makes the cure principled — the properties fix the object, so
//! the engine is free to pick any internal order that decides them
//! fastest.
//!
//! Two mechanisms, layered:
//!
//! 1. **Static order** ([`static_field_order`]): build the weighted
//!    co-occurrence graph of program variables (guard/assignment
//!    read–write coupling per command, plus the `initially` predicate),
//!    then place variables by greedy maximum adjacency — each step
//!    appends the unplaced variable most strongly connected to the
//!    placed prefix (FORCE/min-span style), so variables that interact
//!    in the same command sit adjacently. The derived *level* order
//!    ([`level_order`]) preserves the interleaved current/next pairing
//!    from [`crate::encode`].
//! 2. **Dynamic sifting** ([`crate::bdd::Bdd::sift`], policy in
//!    [`SiftPolicy`]): when the arena grows past a watermark during
//!    lowering or between reachability fixpoint rounds, each
//!    current/next pair block is sifted to its locally optimal level.
//!
//! Both are selected through [`SymbolicOptions`] /
//! [`OrderMode`], threaded from `ScanConfig::symbolic()` and
//! `unity-check --order`.

use prio_graph::bitset::BitSet;
use unity_core::expr::vars;
use unity_core::program::Program;

use crate::encode::{cur, nxt, SymSpace};

/// How the symbolic engine orders its BDD variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum OrderMode {
    /// The packed-layout declaration order (the pre-optimisation
    /// behaviour; kept for comparison and as the differential-test
    /// baseline).
    Declaration,
    /// A static order computed from the variable-dependency graph at
    /// construction, fixed for the run.
    Static,
    /// The static order as a starting point plus dynamic sifting when
    /// the arena grows past a watermark (the default).
    #[default]
    Sifting,
    /// An explicit field order (indices into the vocabulary). Used by
    /// the differential tests to pin order-independence under arbitrary
    /// permutations; available to callers that know better than the
    /// heuristics.
    Fields(Vec<usize>),
}

/// Tuning knobs for the symbolic engine, carried on
/// `unity_mc::ScanConfig` and `unity-check --order`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicOptions {
    /// Variable-order strategy.
    pub order: OrderMode,
    /// Arena size (in nodes) below which sifting never triggers —
    /// small instances never pay reorder overhead.
    pub sift_threshold: usize,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            order: OrderMode::default(),
            sift_threshold: 4096,
        }
    }
}

impl SymbolicOptions {
    /// Options pinned to the declaration order (no reordering at all).
    pub fn declaration() -> Self {
        SymbolicOptions {
            order: OrderMode::Declaration,
            ..Default::default()
        }
    }

    /// Options pinned to the static dependency order, without sifting.
    pub fn static_order() -> Self {
        SymbolicOptions {
            order: OrderMode::Static,
            ..Default::default()
        }
    }

    /// Options with static order plus dynamic sifting (the default).
    pub fn sifting() -> Self {
        SymbolicOptions {
            order: OrderMode::Sifting,
            ..Default::default()
        }
    }
}

/// Growth-watermark trigger for sweeps and sift passes: fires when the
/// arena has grown past `factor ×` its size at the last service point,
/// and re-arms at the new size. Doubling watermarks keep total reorder
/// cost proportional to total allocation.
#[derive(Debug, Clone)]
pub struct SiftPolicy {
    watermark: usize,
    floor: usize,
}

impl SiftPolicy {
    /// A policy armed at `max(floor, 2 × current)` nodes.
    pub fn new(floor: usize, current: usize) -> Self {
        SiftPolicy {
            watermark: floor.max(current * 2),
            floor,
        }
    }

    /// Whether the arena size warrants a service pass now.
    pub fn due(&self, nodes: usize) -> bool {
        nodes > self.watermark
    }

    /// Re-arms after a service pass left the arena at `nodes`.
    pub fn rearm(&mut self, nodes: usize) {
        self.watermark = self.floor.max(nodes * 2);
    }
}

/// The weighted variable co-occurrence graph of a program: vertices are
/// program variables, and two variables are adjacent with weight `w`
/// when they appear together in `w` commands (guard ∪ right-hand sides
/// ∪ targets; the `initially` predicate counts as one more pseudo
/// command). This is the "dependency graph" that static ordering
/// optimises over.
#[derive(Debug)]
pub struct VarDependencyGraph {
    n: usize,
    /// Dense symmetric weight matrix (`n ≤ 64` because the packed
    /// layout caps the vocabulary at 64 bits).
    weight: Vec<u32>,
}

impl VarDependencyGraph {
    /// Builds the co-occurrence graph of `program`.
    pub fn new(program: &Program) -> VarDependencyGraph {
        let n = program.vocab.len();
        let mut g = VarDependencyGraph {
            n,
            weight: vec![0; n * n],
        };
        let mut group = std::collections::BTreeSet::new();
        vars::collect(&program.init, &mut group);
        g.add_clique(&group);
        for c in &program.commands {
            group.clear();
            vars::collect(&c.guard, &mut group);
            for (x, e) in &c.updates {
                group.insert(*x);
                vars::collect(e, &mut group);
            }
            g.add_clique(&group);
        }
        g
    }

    fn add_clique(&mut self, group: &std::collections::BTreeSet<unity_core::ident::VarId>) {
        let ids: Vec<usize> = group.iter().map(|v| v.index()).collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                self.weight[a * self.n + b] += 1;
                self.weight[b * self.n + a] += 1;
            }
        }
    }

    /// Co-occurrence weight between variables `a` and `b`.
    pub fn weight(&self, a: usize, b: usize) -> u32 {
        self.weight[a * self.n + b]
    }

    /// Total connectivity of variable `v`.
    pub fn degree_weight(&self, v: usize) -> u32 {
        (0..self.n).map(|w| self.weight(v, w)).sum()
    }
}

/// Derives a static field order for `program` by greedy maximum
/// adjacency over the variable-dependency graph: start from the most
/// connected variable, then repeatedly append the unplaced variable
/// with the largest total weight into the placed set (ties broken by
/// declaration index, so independent variables keep their declaration
/// order and the result is deterministic). Disconnected components are
/// placed consecutively, each seeded by its most connected member.
pub fn static_field_order(program: &Program) -> Vec<usize> {
    let g = VarDependencyGraph::new(program);
    let n = g.n;
    if n == 0 {
        return Vec::new();
    }
    let mut placed = BitSet::new(n);
    let mut order = Vec::with_capacity(n);
    // Attachment weight of each unplaced variable to the placed set.
    let mut attach = vec![0u32; n];
    while order.len() < n {
        // Pick the next seed / best-attached variable: prefer the
        // highest attachment to the placed prefix, then the highest
        // overall connectivity, then declaration order.
        let mut best: Option<usize> = None;
        for v in 0..n {
            if placed.contains(v) {
                continue;
            }
            match best {
                None => best = Some(v),
                Some(b) => {
                    let key_v = (attach[v], g.degree_weight(v));
                    let key_b = (attach[b], g.degree_weight(b));
                    if key_v > key_b {
                        best = Some(v);
                    }
                }
            }
        }
        let v = best.expect("an unplaced variable exists");
        placed.insert(v);
        order.push(v);
        for (w, slot) in attach.iter_mut().enumerate() {
            if !placed.contains(w) {
                *slot += g.weight(v, w);
            }
        }
    }
    order
}

/// Expands a field order into the BDD *level* order `level2var`:
/// fields in the given order, bits within a field in ascending packed
/// position, each bit as its interleaved current/next pair — so every
/// pair is adjacent (current immediately above next) and grouped
/// sifting (`group = 2`) preserves the invariant.
pub fn level_order(space: &SymSpace, field_order: &[usize]) -> Vec<u32> {
    debug_assert_eq!(field_order.len(), space.n_vars());
    let layout = space.layout();
    let mut level2var = Vec::with_capacity(2 * space.total_bits() as usize);
    for &v in field_order {
        let shift = layout.field_shift(v);
        for i in 0..layout.field_bits(v) {
            level2var.push(cur(shift + i));
            level2var.push(nxt(shift + i));
        }
    }
    level2var
}

/// The level order for `mode`, or `None` when the declaration order
/// (the arena's identity default) should be kept.
pub fn initial_level_order(
    program: &Program,
    space: &SymSpace,
    mode: &OrderMode,
) -> Option<Vec<u32>> {
    match mode {
        OrderMode::Declaration => None,
        OrderMode::Static | OrderMode::Sifting => {
            Some(level_order(space, &static_field_order(program)))
        }
        OrderMode::Fields(perm) => {
            assert_eq!(
                {
                    let mut sorted = perm.clone();
                    sorted.sort_unstable();
                    sorted
                },
                (0..space.n_vars()).collect::<Vec<_>>(),
                "field order must be a permutation of 0..{}",
                space.n_vars()
            );
            Some(level_order(space, perm))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    /// Two mirrored banks declared en bloc: a₀ a₁ a₂ b₀ b₁ b₂, with
    /// commands coupling aᵢ ↔ bᵢ. The static order must pair them.
    fn mirrored(n: usize) -> Program {
        let mut v = Vocabulary::new();
        let a: Vec<_> = (0..n)
            .map(|i| v.declare(&format!("a{i}"), Domain::Bool).unwrap())
            .collect();
        let b: Vec<_> = (0..n)
            .map(|i| v.declare(&format!("b{i}"), Domain::Bool).unwrap())
            .collect();
        let mut builder = Program::builder("mirror", Arc::new(v)).init(tt());
        for i in 0..n {
            builder = builder.fair_command(
                format!("flip{i}"),
                tt(),
                vec![(a[i], not(var(a[i]))), (b[i], not(var(b[i])))],
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn dependency_graph_weights_co_occurrence() {
        let p = mirrored(3);
        let g = VarDependencyGraph::new(&p);
        assert_eq!(g.weight(0, 3), 1, "a0 couples b0");
        assert_eq!(g.weight(0, 1), 0, "a0 independent of a1");
        assert_eq!(g.weight(1, 4), 1);
    }

    #[test]
    fn static_order_pairs_coupled_fields() {
        let p = mirrored(3);
        let order = static_field_order(&p);
        assert_eq!(order.len(), 6);
        // Every aᵢ must sit adjacent to its bᵢ (= index i + 3).
        for pos in (0..6).step_by(2) {
            let (x, y) = (order[pos], order[pos + 1]);
            assert_eq!(x.max(y) - x.min(y), 3, "coupled pair adjacent in {order:?}");
        }
    }

    #[test]
    fn independent_variables_keep_declaration_order() {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        let _y = v.declare("y", Domain::Bool).unwrap();
        let _z = v.declare("z", Domain::Bool).unwrap();
        let p = Program::builder("indep", Arc::new(v))
            .init(tt())
            .fair_command("t", tt(), vec![(x, not(var(x)))])
            .build()
            .unwrap();
        assert_eq!(static_field_order(&p), vec![0, 1, 2]);
    }

    #[test]
    fn level_order_interleaves_pairs() {
        let p = mirrored(2);
        let space = SymSpace::new(&p.vocab).unwrap();
        let order = level_order(&space, &[2, 0, 1, 3]);
        assert_eq!(order.len(), 8);
        // Every even position holds a current bit, followed by its next
        // bit.
        for pos in (0..8).step_by(2) {
            assert_eq!(order[pos] % 2, 0);
            assert_eq!(order[pos + 1], order[pos] + 1);
        }
    }

    #[test]
    fn sift_policy_doubles() {
        let mut p = SiftPolicy::new(100, 30);
        assert!(!p.due(100));
        assert!(p.due(101));
        p.rearm(400);
        assert!(!p.due(800));
        assert!(p.due(801));
    }
}
