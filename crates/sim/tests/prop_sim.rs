//! Property-based tests for the simulator: the in-place executor agrees
//! exactly with the core step semantics, and the aging schedulers honour
//! their fairness bounds on arbitrary programs.

use std::sync::Arc;

use proptest::prelude::*;
use unity_core::domain::Domain;
use unity_core::expr::build::*;
use unity_core::ident::{VarId, Vocabulary};
use unity_core::program::Program;
use unity_sim::prelude::*;

const A: VarId = VarId(0);
const B: VarId = VarId(1);
const F: VarId = VarId(2);

fn vocab() -> Arc<Vocabulary> {
    let mut v = Vocabulary::new();
    v.declare("a", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("b", Domain::int_range(0, 3).unwrap()).unwrap();
    v.declare("f", Domain::Bool).unwrap();
    Arc::new(v)
}

fn arb_program() -> impl Strategy<Value = Program> {
    let cmd = prop_oneof![
        Just((tt(), vec![(A, add(var(A), int(1)))])),
        Just((
            lt(var(A), int(3)),
            vec![(A, add(var(A), int(1))), (F, not(var(F)))]
        )),
        Just((var(F), vec![(B, add(var(B), int(1)))])),
        Just((not(var(F)), vec![(F, tt())])),
        Just((eq(var(B), int(3)), vec![(B, int(0)), (A, int(0))])),
        Just((tt(), vec![(A, rem(add(var(A), int(1)), int(4)))])),
    ];
    prop::collection::vec(cmd, 1..5).prop_map(|cmds| {
        let v = vocab();
        let mut b = Program::builder("rand", v).init(and(vec![
            eq(var(A), int(0)),
            eq(var(B), int(0)),
            not(var(F)),
        ]));
        for (i, (g, ups)) in cmds.into_iter().enumerate() {
            b = b.fair_command(format!("c{i}"), g, ups);
        }
        b.build().expect("pool commands are well-typed")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn executor_agrees_with_core_semantics(
        prog in arb_program(),
        picks in prop::collection::vec(0usize..5, 1..60),
    ) {
        let n = prog.commands.len();
        let schedule: Vec<usize> = picks.into_iter().map(|p| p % n).collect();
        let mut sched = FixedSequence::new(schedule.clone());
        let mut exec = Executor::from_first_initial(&prog);
        let mut reference = exec.state().clone();
        for &cmd in &schedule {
            exec.step(&mut sched, &mut []);
            reference = prog.commands[cmd].step(&reference, &prog.vocab);
        }
        prop_assert_eq!(exec.state(), &reference);
        prop_assert!(reference.in_domains(&prog.vocab), "states stay in domain");
    }

    #[test]
    fn aged_lottery_honours_its_bound(
        prog in arb_program(),
        seed in any::<u64>(),
        bound in 2u64..20,
    ) {
        let steps = 600u64;
        let fair: Vec<usize> = prog.fair.iter().copied().collect();
        let mut sched = AgedLottery::new(seed, bound);
        let mut exec = Executor::from_first_initial(&prog);
        exec.set_log_limit(steps as usize);
        exec.run(steps, &mut sched, &mut []);
        let guarantee = bound + fair.len() as u64 - 1;
        prop_assert!(
            is_weakly_fair_within(exec.log(), &fair, steps, guarantee),
            "a fair command exceeded the aging guarantee {guarantee}"
        );
    }

    #[test]
    fn adversary_is_still_weakly_fair(
        prog in arb_program(),
        seed in any::<u64>(),
        victim_raw in 0usize..5,
        bound in 3u64..25,
    ) {
        let steps = 600u64;
        let victim = victim_raw % prog.commands.len();
        let fair: Vec<usize> = prog.fair.iter().copied().collect();
        let mut sched = AdversarialDelay::new(seed, victim, bound);
        let mut exec = Executor::from_first_initial(&prog);
        exec.set_log_limit(steps as usize);
        exec.run(steps, &mut sched, &mut []);
        let guarantee = bound + fair.len() as u64 - 1;
        prop_assert!(
            is_weakly_fair_within(exec.log(), &fair, steps, guarantee),
            "adversarial schedule broke the fairness guarantee"
        );
    }

    #[test]
    fn round_robin_gap_is_command_count(prog in arb_program()) {
        let steps = 200u64;
        let n = prog.commands.len() as u64;
        let fair: Vec<usize> = prog.fair.iter().copied().collect();
        let mut sched = RoundRobin::default();
        let mut exec = Executor::from_first_initial(&prog);
        exec.set_log_limit(steps as usize);
        exec.run(steps, &mut sched, &mut []);
        prop_assert!(is_weakly_fair_within(exec.log(), &fair, steps, n));
    }

    #[test]
    fn recurrence_monitor_gaps_sum_to_run_length(
        prog in arb_program(),
        seed in any::<u64>(),
    ) {
        // Each recorded gap sequence plus the open tail partitions the run.
        let steps = 400u64;
        let mut monitor = RecurrenceMonitor::new(vec![tt()]); // true every step
        let mut sched = AgedLottery::new(seed, 8);
        let mut exec = Executor::from_first_initial(&prog);
        {
            let mut monitors: Vec<&mut dyn Monitor> = vec![&mut monitor];
            exec.run(steps, &mut sched, &mut monitors);
        }
        // `true` holds at every step, so gaps are all 0 and count == steps.
        prop_assert_eq!(monitor.gaps[0].len() as u64, steps);
        prop_assert!(monitor.gaps[0].iter().all(|&g| g == 0));
    }

    #[test]
    fn record_replay_is_bit_exact(prog in arb_program(), seed in any::<u64>()) {
        // Any randomized run, replayed from its recorded decision
        // sequence, reaches the same state through the same firing log.
        let steps = 300u64;
        let mut rec = Recording::new(AgedLottery::new(seed, 16));
        let mut exec = Executor::from_first_initial(&prog);
        exec.set_log_limit(steps as usize);
        exec.run(steps, &mut rec, &mut []);
        let end = exec.state().clone();
        let log: Vec<_> = exec.log().to_vec();

        let mut replay = FixedSequence::new(rec.into_sequence());
        let mut exec2 = Executor::from_first_initial(&prog);
        exec2.set_log_limit(steps as usize);
        exec2.run(steps, &mut replay, &mut []);
        prop_assert_eq!(exec2.state(), &end);
        prop_assert_eq!(exec2.log(), &log[..]);
    }

    #[test]
    fn trace_export_is_balanced_and_complete(prog in arb_program(), seed in any::<u64>()) {
        // Structural well-formedness of the hand-rolled JSON writer on
        // arbitrary runs: balanced braces/brackets, one step object per
        // executed step, every state row the width of the vocabulary.
        let steps = 50u64;
        let mut recorder = TraceRecorder::new(steps as usize);
        let mut sched = AgedLottery::new(seed, 8);
        let mut exec = Executor::from_first_initial(&prog);
        {
            let mut monitors: Vec<&mut dyn Monitor> = vec![&mut recorder];
            exec.run(steps, &mut sched, &mut monitors);
        }
        let json = recorder.to_json(&prog);
        let braces: i64 = json.chars().map(|c| match c {
            '{' => 1, '}' => -1, _ => 0,
        }).sum();
        let brackets: i64 = json.chars().map(|c| match c {
            '[' => 1, ']' => -1, _ => 0,
        }).sum();
        prop_assert_eq!(braces, 0);
        prop_assert_eq!(brackets, 0);
        prop_assert_eq!(json.matches("\"step\":").count() as u64, steps);
        prop_assert_eq!(
            json.matches("\"fired\":").count() as u64, steps);
        // Every captured state row has the vocabulary's width.
        for (_, state) in recorder.steps() {
            prop_assert_eq!(state.len(), prog.vocab.len());
        }
    }
}
