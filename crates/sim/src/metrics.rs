//! Summary statistics for simulation measurements.

use serde::Serialize;

/// Summary of a sample of non-negative integers (latencies, gaps).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Summary {
    /// Summarizes `samples` (unsorted input is fine). Returns `None` for an
    /// empty sample.
    pub fn of(samples: &[u64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        let pct = |p: f64| -> u64 {
            let rank = ((count as f64 - 1.0) * p).round() as usize;
            sorted[rank.min(count - 1)]
        };
        Some(Summary {
            count,
            mean: sum as f64 / count as f64,
            min: sorted[0],
            max: sorted[count - 1],
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} p50={} p95={} p99={} max={}",
            self.count, self.mean, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Jain's fairness index over per-entity throughput/latency means:
/// `(Σxᵢ)² / (n · Σxᵢ²)`. 1.0 = perfectly fair; `1/n` = maximally unfair.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[5, 1, 3, 2, 4]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.p50, 3);
        assert!((s.mean - 3.0).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentiles_on_large_sample() {
        let samples: Vec<u64> = (0..1000).collect();
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.p50, 500);
        assert_eq!(s.p95, 949);
        assert_eq!(s.p99, 989);
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let unfair = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((unfair - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn display_renders_all_stats() {
        let s = Summary::of(&[1, 2, 3]).unwrap();
        let text = s.to_string();
        for needle in ["n=3", "mean=2.0", "p50=2", "p95", "p99", "max=3"] {
            assert!(text.contains(needle), "missing {needle} in `{text}`");
        }
    }
}
