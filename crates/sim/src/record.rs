//! Record/replay of schedules and fairness fault injection.
//!
//! * [`Recording`] wraps any scheduler and captures its decisions, so a
//!   run can be replayed *bit-for-bit* with
//!   [`FixedSequence`](crate::scheduler::FixedSequence) — the standard
//!   trick for turning a flaky randomized failure into a deterministic
//!   regression test.
//! * [`Unfair`] deliberately **violates weak fairness** by never
//!   scheduling a victim command. Running the paper's systems under it
//!   demonstrates what the fairness hypothesis buys: safety properties
//!   survive (they are scheduler-independent), liveness starves — the
//!   model's `D`-fairness is exactly the assumption carrying (18).

use crate::scheduler::{SchedCtx, Scheduler};

/// Wraps a scheduler and records every decision.
pub struct Recording<S> {
    inner: S,
    picks: Vec<usize>,
}

impl<S: Scheduler> Recording<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        Recording {
            inner,
            picks: Vec::new(),
        }
    }

    /// The decisions made so far.
    pub fn picks(&self) -> &[usize] {
        &self.picks
    }

    /// Consumes the recorder, returning the decision sequence (feed it to
    /// [`FixedSequence`](crate::scheduler::FixedSequence) to replay).
    pub fn into_sequence(self) -> Vec<usize> {
        self.picks
    }
}

impl<S: Scheduler> Scheduler for Recording<S> {
    fn next(&mut self, ctx: &SchedCtx<'_>) -> usize {
        let pick = self.inner.next(ctx);
        self.picks.push(pick);
        pick
    }
    fn name(&self) -> &'static str {
        "recording"
    }
}

/// A scheduler that **breaks weak fairness**: it never schedules `victim`
/// (unless it is the only command), cycling uniformly over the rest. For
/// fault-injection experiments only — the resulting schedules are outside
/// the paper's model.
#[derive(Debug, Clone)]
pub struct Unfair {
    /// The command index never scheduled.
    pub victim: usize,
    cursor: usize,
}

impl Unfair {
    /// Creates the scheduler.
    pub fn new(victim: usize) -> Self {
        Unfair { victim, cursor: 0 }
    }
}

impl Scheduler for Unfair {
    fn next(&mut self, ctx: &SchedCtx<'_>) -> usize {
        let n = ctx.n_commands.max(1);
        if n == 1 {
            return 0;
        }
        loop {
            let pick = self.cursor % n;
            self.cursor = self.cursor.wrapping_add(1);
            if pick != self.victim {
                return pick;
            }
        }
    }
    fn name(&self) -> &'static str {
        "unfair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::monitor::RecurrenceMonitor;
    use crate::scheduler::{AgedLottery, FixedSequence};
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;
    use unity_core::program::Program;

    /// Two independent toggles.
    fn toggles() -> Program {
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::Bool).unwrap();
        let b = v.declare("b", Domain::Bool).unwrap();
        Program::builder("toggles", Arc::new(v))
            .init(and2(not(var(a)), not(var(b))))
            .fair_command("fa", tt(), vec![(a, not(var(a)))])
            .fair_command("fb", tt(), vec![(b, not(var(b)))])
            .build()
            .unwrap()
    }

    #[test]
    fn record_then_replay_reproduces_the_run() {
        let p = toggles();
        let mut rec = Recording::new(AgedLottery::new(99, 16));
        let mut ex = Executor::from_first_initial(&p);
        ex.run(200, &mut rec, &mut []);
        let end_state = ex.state().clone();
        let seq = rec.into_sequence();
        assert_eq!(seq.len(), 200);

        let mut replay = FixedSequence::new(seq);
        let mut ex2 = Executor::from_first_initial(&p);
        ex2.run(200, &mut replay, &mut []);
        assert_eq!(ex2.state(), &end_state, "replay diverged");
    }

    #[test]
    fn recording_reports_inner_picks() {
        let p = toggles();
        let mut rec = Recording::new(FixedSequence::new(vec![1, 0, 1]));
        let mut ex = Executor::from_first_initial(&p);
        ex.run(6, &mut rec, &mut []);
        assert_eq!(rec.picks(), &[1, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn unfair_starves_the_victim() {
        let p = toggles();
        let mut sched = Unfair::new(1);
        // Recurrence of command 1's effect: `b` must flip; under the
        // unfair scheduler it never does.
        let b = p.vocab.lookup("b").unwrap();
        let mut mon = RecurrenceMonitor::new(vec![var(b)]);
        let mut ex = Executor::from_first_initial(&p);
        {
            let mut ms: [&mut dyn crate::monitor::Monitor; 1] = [&mut mon];
            ex.run(500, &mut sched, &mut ms);
        }
        // Command 1 never ran...
        assert_eq!(ex.steps_since()[1], 500);
        // ...so `b` never held: the recurrence gap is the whole run.
        assert_eq!(mon.worst_gap(0, ex.step_count()), 500);
    }

    #[test]
    fn unfair_still_schedules_when_victim_is_only_command() {
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::Bool).unwrap();
        let p = Program::builder("one", Arc::new(v))
            .init(not(var(a)))
            .fair_command("fa", tt(), vec![(a, not(var(a)))])
            .build()
            .unwrap();
        let mut sched = Unfair::new(0);
        let mut ex = Executor::from_first_initial(&p);
        ex.run(3, &mut sched, &mut []);
        assert_eq!(ex.steps_since()[0], 0, "sole command must run");
    }

    #[test]
    fn fairness_audit_flags_unfair_runs() {
        // Cross-check with the fairness auditor: an Unfair run is not
        // weakly fair within any bound smaller than the run.
        let p = toggles();
        let mut sched = Unfair::new(0);
        let mut ex = Executor::from_first_initial(&p);
        ex.set_log_limit(1000);
        ex.run(300, &mut sched, &mut []);
        let fair: Vec<usize> = p.fair.iter().copied().collect();
        assert!(!crate::fairness::is_weakly_fair_within(
            ex.log(),
            &fair,
            300,
            128
        ));
        // While an AgedLottery run is.
        let mut sched = AgedLottery::new(5, 16);
        let mut ex = Executor::from_first_initial(&p);
        ex.set_log_limit(1000);
        ex.run(300, &mut sched, &mut []);
        assert!(crate::fairness::is_weakly_fair_within(
            ex.log(),
            &fair,
            300,
            16 + fair.len() as u64 - 1
        ));
    }
}
