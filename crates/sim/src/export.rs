//! Trace capture and JSON export.
//!
//! [`TraceRecorder`] is a [`Monitor`] that captures post-states alongside
//! step records; [`TraceRecorder::to_json`] serializes the trace in a
//! small, stable JSON shape for external tooling (plotting, diffing,
//! replay in other harnesses):
//!
//! ```json
//! {
//!   "program": "toy",
//!   "vars": ["c0", "C"],
//!   "steps": [
//!     {"step": 0, "command": "a0", "fired": true, "state": [1, 1]}
//!   ]
//! }
//! ```
//!
//! Booleans serialize as JSON booleans, integers as numbers. The writer
//! is hand-rolled (the workspace deliberately carries no JSON dependency)
//! and escapes strings per RFC 8259.

use std::fmt::Write as _;

use unity_core::program::Program;
use unity_core::state::State;
use unity_core::value::Value;

use crate::executor::StepRecord;
use crate::monitor::Monitor;

/// Captures `(record, post-state)` pairs up to a limit.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    steps: Vec<(StepRecord, State)>,
    limit: usize,
}

impl TraceRecorder {
    /// Creates a recorder keeping at most `limit` steps.
    pub fn new(limit: usize) -> Self {
        TraceRecorder {
            steps: Vec::new(),
            limit,
        }
    }

    /// The captured steps.
    pub fn steps(&self) -> &[(StepRecord, State)] {
        &self.steps
    }

    /// Whether the limit cut the capture short.
    pub fn truncated(&self, total_steps: u64) -> bool {
        (self.steps.len() as u64) < total_steps
    }

    /// Serializes the trace as JSON against `program` (for the program
    /// name, variable names and command names).
    pub fn to_json(&self, program: &Program) -> String {
        let mut out = String::with_capacity(64 + self.steps.len() * 48);
        out.push_str("{\"program\":");
        json_string(&mut out, &program.name);
        out.push_str(",\"vars\":[");
        for (k, (_, decl)) in program.vocab.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            json_string(&mut out, &decl.name);
        }
        out.push_str("],\"steps\":[");
        for (k, (rec, state)) in self.steps.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"step\":{},\"command\":", rec.step);
            json_string(&mut out, &program.commands[rec.command].name);
            let _ = write!(out, ",\"fired\":{},\"state\":[", rec.fired);
            for (j, v) in state.values().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match v {
                    Value::Bool(b) => {
                        let _ = write!(out, "{b}");
                    }
                    Value::Int(i) => {
                        let _ = write!(out, "{i}");
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

impl Monitor for TraceRecorder {
    fn on_step(&mut self, record: StepRecord, state: &State) {
        if self.steps.len() < self.limit {
            self.steps.push((record, state.clone()));
        }
    }
}

/// Appends `s` as a JSON string literal (RFC 8259 escaping).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::scheduler::FixedSequence;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    fn counter() -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::int_range(0, 3).unwrap()).unwrap();
        let b = v.declare("flag", Domain::Bool).unwrap();
        Program::builder("counter", Arc::new(v))
            .init(and2(eq(var(x), int(0)), not(var(b))))
            .fair_command("inc", lt(var(x), int(3)), vec![(x, add(var(x), int(1)))])
            .fair_command("mark", tt(), vec![(b, tt())])
            .build()
            .unwrap()
    }

    #[test]
    fn records_and_serializes() {
        let p = counter();
        let mut rec = TraceRecorder::new(16);
        let mut sched = FixedSequence::new(vec![0, 1]);
        let mut ex = Executor::from_first_initial(&p);
        {
            let mut ms: [&mut dyn Monitor; 1] = [&mut rec];
            ex.run(3, &mut sched, &mut ms);
        }
        assert_eq!(rec.steps().len(), 3);
        let json = rec.to_json(&p);
        assert_eq!(
            json,
            "{\"program\":\"counter\",\"vars\":[\"x\",\"flag\"],\"steps\":[\
             {\"step\":0,\"command\":\"inc\",\"fired\":true,\"state\":[1,false]},\
             {\"step\":1,\"command\":\"mark\",\"fired\":true,\"state\":[1,true]},\
             {\"step\":2,\"command\":\"inc\",\"fired\":true,\"state\":[2,true]}]}"
        );
    }

    #[test]
    fn limit_truncates() {
        let p = counter();
        let mut rec = TraceRecorder::new(2);
        let mut sched = FixedSequence::new(vec![0]);
        let mut ex = Executor::from_first_initial(&p);
        {
            let mut ms: [&mut dyn Monitor; 1] = [&mut rec];
            ex.run(10, &mut sched, &mut ms);
        }
        assert_eq!(rec.steps().len(), 2);
        assert!(rec.truncated(10));
        assert!(!rec.truncated(2));
    }

    #[test]
    fn skip_steps_serialize_as_unfired() {
        let p = counter();
        let mut rec = TraceRecorder::new(16);
        // Saturate x, then drive `inc` into skip territory.
        let mut sched = FixedSequence::new(vec![0, 0, 0, 0]);
        let mut ex = Executor::from_first_initial(&p);
        {
            let mut ms: [&mut dyn Monitor; 1] = [&mut rec];
            ex.run(4, &mut sched, &mut ms);
        }
        let json = rec.to_json(&p);
        assert!(json.contains("\"fired\":false"));
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }
}
