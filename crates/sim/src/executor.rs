//! The operational execution engine.
//!
//! Executes a program step by step under a pluggable scheduler, updating
//! the state **in place** (no per-step allocation: right-hand sides are
//! evaluated into a scratch buffer, domains checked, then written back).

use unity_core::expr::compile::{CompiledExpr, Scratch};
use unity_core::expr::eval::{eval, eval_bool};
use unity_core::program::Program;
use unity_core::state::State;
use unity_core::value::{Type, Value};

use crate::monitor::Monitor;
use crate::scheduler::{SchedCtx, Scheduler};

/// A command lowered for in-place stepping: compiled guard and
/// right-hand sides (evaluated against the executor's live [`State`] via
/// the bytecode interpreter — ~an order of magnitude fewer branches than
/// the tree walk on typical guards).
struct LoweredCommand {
    guard: CompiledExpr,
    /// `(var index, rhs, result type)` per update.
    updates: Vec<(usize, CompiledExpr, Type)>,
}

fn lower_commands(program: &Program) -> Option<Vec<LoweredCommand>> {
    program
        .commands
        .iter()
        .map(|c| {
            Some(LoweredCommand {
                guard: CompiledExpr::compile_unpacked(&c.guard).ok()?,
                updates: c
                    .updates
                    .iter()
                    .map(|(x, e)| {
                        Some((
                            x.index(),
                            CompiledExpr::compile_unpacked(e).ok()?,
                            program.vocab.domain(*x).ty(),
                        ))
                    })
                    .collect::<Option<Vec<_>>>()?,
            })
        })
        .collect()
}

/// One executed step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepRecord {
    /// Global step number (0-based).
    pub step: u64,
    /// Command index chosen by the scheduler.
    pub command: usize,
    /// Whether the command fired (guard and domains allowed the update) —
    /// `false` means it behaved as `skip`.
    pub fired: bool,
}

/// The execution engine.
pub struct Executor<'a> {
    program: &'a Program,
    state: State,
    steps_since: Vec<u64>,
    step: u64,
    scratch: Vec<(usize, Value)>,
    /// Compiled commands (None only if an expression fails to lower —
    /// then the tree-walking evaluator runs instead).
    lowered: Option<Vec<LoweredCommand>>,
    regs: Scratch,
    /// Fair indices, materialized once (the scheduler context borrows a
    /// slice per step).
    fair: Vec<usize>,
    /// Executed command log (bounded; see [`Executor::set_log_limit`]).
    log: Vec<StepRecord>,
    log_limit: usize,
}

impl<'a> Executor<'a> {
    /// Creates an executor positioned at `initial`.
    ///
    /// # Panics
    /// Panics if `initial` does not satisfy the program's `initially`
    /// predicate (runs must start in initial states).
    pub fn new(program: &'a Program, initial: State) -> Self {
        assert!(
            program.satisfies_init(&initial),
            "executor must start in an initial state"
        );
        Executor {
            state: initial,
            steps_since: vec![0; program.commands.len()],
            step: 0,
            scratch: Vec::new(),
            lowered: lower_commands(program),
            regs: Scratch::new(),
            fair: program.fair.iter().copied().collect(),
            log: Vec::new(),
            log_limit: 0,
            program,
        }
    }

    /// Creates an executor at the program's first initial state (by
    /// canonical enumeration order).
    pub fn from_first_initial(program: &'a Program) -> Self {
        let init = program
            .initial_states()
            .into_iter()
            .next()
            .expect("program has an initial state");
        Self::new(program, init)
    }

    /// Keeps at most `limit` step records (0 = keep none).
    pub fn set_log_limit(&mut self, limit: usize) {
        self.log_limit = limit;
    }

    /// The current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The global step counter.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Steps since each command last ran.
    pub fn steps_since(&self) -> &[u64] {
        &self.steps_since
    }

    /// The recorded step log.
    pub fn log(&self) -> &[StepRecord] {
        &self.log
    }

    /// Executes one step under `scheduler`, notifying `monitors`.
    pub fn step(
        &mut self,
        scheduler: &mut dyn Scheduler,
        monitors: &mut [&mut dyn Monitor],
    ) -> StepRecord {
        let n = self.program.commands.len();
        assert!(n > 0, "cannot schedule an empty command set");
        let ctx = SchedCtx {
            n_commands: n,
            fair: &self.fair,
            steps_since: &self.steps_since,
            step: self.step,
        };
        let pick = scheduler.next(&ctx);
        assert!(pick < n, "scheduler returned out-of-range command");
        let fired = self.execute_in_place(pick);
        for (c, s) in self.steps_since.iter_mut().enumerate() {
            if c == pick {
                *s = 0;
            } else {
                *s = s.saturating_add(1);
            }
        }
        let record = StepRecord {
            step: self.step,
            command: pick,
            fired,
        };
        self.step += 1;
        for m in monitors.iter_mut() {
            m.on_step(record, &self.state);
        }
        if self.log.len() < self.log_limit {
            self.log.push(record);
        }
        record
    }

    /// Runs `n` steps.
    pub fn run(
        &mut self,
        n: u64,
        scheduler: &mut dyn Scheduler,
        monitors: &mut [&mut dyn Monitor],
    ) {
        for _ in 0..n {
            self.step(scheduler, monitors);
        }
    }

    /// Executes command `idx` in place; returns whether it fired.
    fn execute_in_place(&mut self, idx: usize) -> bool {
        if let Some(lowered) = &self.lowered {
            let cmd = &lowered[idx];
            if cmd.guard.eval_state(&self.state, &mut self.regs) == 0 {
                return false;
            }
            self.scratch.clear();
            for (x, rhs, ty) in &cmd.updates {
                let raw = rhs.eval_state(&self.state, &mut self.regs);
                let v = match ty {
                    Type::Bool => Value::Bool(raw != 0),
                    Type::Int => Value::Int(raw),
                };
                if !self
                    .program
                    .vocab
                    .domain(unity_core::ident::VarId(*x as u32))
                    .contains(v)
                {
                    return false; // domain-guarded skip
                }
                self.scratch.push((*x, v));
            }
            for &(i, v) in &self.scratch {
                self.state.set(unity_core::ident::VarId(i as u32), v);
            }
            return true;
        }
        let cmd = &self.program.commands[idx];
        if !eval_bool(&cmd.guard, &self.state) {
            return false;
        }
        self.scratch.clear();
        for (x, e) in &cmd.updates {
            let v = eval(e, &self.state);
            if !self.program.vocab.domain(*x).contains(v) {
                return false; // domain-guarded skip
            }
            self.scratch.push((x.index(), v));
        }
        let mut changed = false;
        for &(i, v) in &self.scratch {
            let id = unity_core::ident::VarId(i as u32);
            if self.state.get(id) != v {
                changed = true;
            }
            self.state.set(id, v);
        }
        // A command that rewrites variables to identical values still
        // "fired" logically; report true as long as the guard passed.
        let _ = changed;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FixedSequence, RoundRobin};
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    fn two_counters() -> Program {
        let mut v = Vocabulary::new();
        let a = v.declare("a", Domain::int_range(0, 5).unwrap()).unwrap();
        let b = v.declare("b", Domain::int_range(0, 5).unwrap()).unwrap();
        Program::builder("two", Arc::new(v))
            .init(and2(eq(var(a), int(0)), eq(var(b), int(0))))
            .fair_command("ia", lt(var(a), int(5)), vec![(a, add(var(a), int(1)))])
            .fair_command("ib", lt(var(b), int(5)), vec![(b, add(var(b), int(1)))])
            .build()
            .unwrap()
    }

    #[test]
    fn executes_in_place_and_matches_core_step() {
        let p = two_counters();
        let mut ex = Executor::from_first_initial(&p);
        let mut sched = FixedSequence::new(vec![0, 1, 0]);
        let mut reference = ex.state().clone();
        for &cmd in &[0usize, 1, 0] {
            ex.step(&mut sched, &mut []);
            reference = p.commands[cmd].step(&reference, &p.vocab);
        }
        assert_eq!(ex.state(), &reference);
        assert_eq!(ex.step_count(), 3);
    }

    #[test]
    fn guard_blocking_counts_as_skip() {
        let p = two_counters();
        let mut ex = Executor::from_first_initial(&p);
        let mut sched = FixedSequence::new(vec![0]);
        for _ in 0..5 {
            let r = ex.step(&mut sched, &mut []);
            assert!(r.fired);
        }
        let r = ex.step(&mut sched, &mut []);
        assert!(!r.fired, "a reaches its bound; further steps skip");
    }

    #[test]
    fn steps_since_tracks_waits() {
        let p = two_counters();
        let mut ex = Executor::from_first_initial(&p);
        let mut sched = FixedSequence::new(vec![0, 0, 0, 1]);
        ex.run(4, &mut sched, &mut []);
        // Command 1 ran last (0 steps ago); command 0 ran one step before.
        assert_eq!(ex.steps_since()[1], 0);
        assert_eq!(ex.steps_since()[0], 1);
    }

    #[test]
    fn log_respects_limit() {
        let p = two_counters();
        let mut ex = Executor::from_first_initial(&p);
        ex.set_log_limit(2);
        let mut sched = RoundRobin::default();
        ex.run(10, &mut sched, &mut []);
        assert_eq!(ex.log().len(), 2);
    }

    #[test]
    #[should_panic(expected = "initial state")]
    fn rejects_non_initial_start() {
        let p = two_counters();
        let mut bad = p.initial_states().remove(0);
        bad.set(
            unity_core::ident::VarId(0),
            unity_core::value::Value::Int(3),
        );
        let _ = Executor::new(&p, bad);
    }
}
