//! Fairness auditing of executed schedules.
//!
//! Weak fairness is a property of infinite executions; for finite runs we
//! audit the quantitative surrogate: the largest gap between consecutive
//! occurrences of each fair command. Schedulers built from aging bounds
//! (see [`crate::scheduler`]) must pass the audit with their configured
//! bound — enforced by tests.

use crate::executor::StepRecord;

/// Result of auditing one fair command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandAudit {
    /// Command index.
    pub command: usize,
    /// Number of times it was scheduled.
    pub occurrences: u64,
    /// Largest gap between consecutive occurrences (including the leading
    /// gap from step 0 and the trailing gap to the end of the run).
    pub max_gap: u64,
}

/// Audits a step log against the fair set.
pub fn audit(log: &[StepRecord], fair: &[usize], total_steps: u64) -> Vec<CommandAudit> {
    fair.iter()
        .map(|&c| {
            let mut last: i64 = -1;
            let mut max_gap: u64 = 0;
            let mut occurrences = 0;
            for r in log {
                if r.command == c {
                    occurrences += 1;
                    let gap = (r.step as i64 - last) as u64;
                    max_gap = max_gap.max(gap);
                    last = r.step as i64;
                }
            }
            let trailing = (total_steps as i64 - 1 - last).max(0) as u64;
            max_gap = max_gap.max(trailing);
            CommandAudit {
                command: c,
                occurrences,
                max_gap,
            }
        })
        .collect()
}

/// Whether every fair command's max gap is within `bound`.
pub fn is_weakly_fair_within(log: &[StepRecord], fair: &[usize], total: u64, bound: u64) -> bool {
    audit(log, fair, total).iter().all(|a| a.max_gap <= bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_from(commands: &[usize]) -> Vec<StepRecord> {
        commands
            .iter()
            .enumerate()
            .map(|(i, &c)| StepRecord {
                step: i as u64,
                command: c,
                fired: true,
            })
            .collect()
    }

    #[test]
    fn audits_gaps() {
        // Command 0 at steps 0, 3; command 1 at steps 1, 2.
        let log = log_from(&[0, 1, 1, 0]);
        let audits = audit(&log, &[0, 1], 4);
        assert_eq!(audits[0].occurrences, 2);
        assert_eq!(audits[0].max_gap, 3);
        assert_eq!(audits[1].max_gap, 2, "leading gap counts");
    }

    #[test]
    fn never_scheduled_command_has_total_gap() {
        let log = log_from(&[0, 0, 0]);
        let audits = audit(&log, &[1], 3);
        assert_eq!(audits[0].occurrences, 0);
        assert_eq!(audits[0].max_gap, 3, "has been waiting for the whole run");
        assert!(!is_weakly_fair_within(&log, &[1], 3, 1));
    }

    #[test]
    fn round_robin_is_fair() {
        let log = log_from(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert!(is_weakly_fair_within(&log, &[0, 1, 2], 9, 3));
    }
}
