//! Parallel replica execution.
//!
//! Simulation experiments (E7/E8) average over many independent runs with
//! different seeds; replicas share nothing mutable, so they parallelize
//! perfectly across `crossbeam` scoped threads.

use unity_core::program::Program;

/// Runs `replicas` independent simulations of `program` across up to
/// `threads` worker threads. `run` receives `(replica_index, seed)` and
/// must be deterministic given those; results return in replica order.
pub fn run_replicas<T, F>(
    program: &Program,
    replicas: usize,
    base_seed: u64,
    threads: usize,
    run: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&Program, usize, u64) -> T + Sync,
{
    let threads = threads.max(1).min(replicas.max(1));
    if threads == 1 {
        return (0..replicas)
            .map(|r| run(program, r, seed_for(base_seed, r)))
            .collect();
    }
    let mut slots: Vec<Option<T>> = (0..replicas).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots_mutex = parking_lot::Mutex::new(&mut slots);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let run = &run;
            let next = &next;
            let slots_mutex = &slots_mutex;
            scope.spawn(move |_| loop {
                let r = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if r >= replicas {
                    return;
                }
                let out = run(program, r, seed_for(base_seed, r));
                slots_mutex.lock()[r] = Some(out);
            });
        }
    })
    .expect("replica worker panicked");
    slots
        .into_iter()
        .map(|s| s.expect("replica slot filled"))
        .collect()
}

/// Derives a per-replica seed (splitmix64 of the pair).
pub fn seed_for(base: u64, replica: usize) -> u64 {
    let mut z = base.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(replica as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unity_core::domain::Domain;
    use unity_core::expr::build::*;
    use unity_core::ident::Vocabulary;

    fn trivial() -> Program {
        let mut v = Vocabulary::new();
        let x = v.declare("x", Domain::Bool).unwrap();
        Program::builder("t", Arc::new(v))
            .init(not(var(x)))
            .fair_command("flip", tt(), vec![(x, not(var(x)))])
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = trivial();
        let f = |_: &Program, r: usize, seed: u64| (r, seed);
        let seq = run_replicas(&p, 17, 99, 1, f);
        let par = run_replicas(&p, 17, 99, 4, f);
        assert_eq!(seq, par, "results deterministic and ordered");
    }

    #[test]
    fn seeds_differ_across_replicas() {
        let seeds: Vec<u64> = (0..100).map(|r| seed_for(7, r)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn zero_replicas() {
        let p = trivial();
        let out = run_replicas(&p, 0, 1, 4, |_, r, _| r);
        assert!(out.is_empty());
    }
}
