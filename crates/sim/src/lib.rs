//! # unity-sim
//!
//! Operational simulator for `unity-core` programs: pluggable weakly-fair
//! schedulers (round-robin, aged lottery, starvation adversary), an
//! in-place execution engine, runtime monitors (invariants, recurrence
//! gaps, response times), fairness auditing, summary statistics, and
//! parallel replica execution.
//!
//! The simulator complements the model checker: `unity-mc` proves the
//! paper's properties exactly on small instances; `unity-sim` measures
//! their quantitative shape (e.g. time-to-priority distributions for the
//! §4 mechanism) on larger ones, under schedules that are weakly fair *by
//! construction* (aging bounds).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod executor;
pub mod export;
pub mod fairness;
pub mod metrics;
pub mod monitor;
pub mod record;
pub mod replica;
pub mod scheduler;

/// Commonly used items.
pub mod prelude {
    pub use crate::executor::{Executor, StepRecord};
    pub use crate::export::TraceRecorder;
    pub use crate::fairness::{audit, is_weakly_fair_within, CommandAudit};
    pub use crate::metrics::{jain_index, Summary};
    pub use crate::monitor::{InvariantMonitor, Monitor, RecurrenceMonitor, ResponseMonitor};
    pub use crate::record::{Recording, Unfair};
    pub use crate::replica::{run_replicas, seed_for};
    pub use crate::scheduler::{
        AdversarialDelay, AgedLottery, FixedSequence, RoundRobin, SchedCtx, Scheduler,
    };
}
