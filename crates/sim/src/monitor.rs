//! Runtime monitors: online property observation during simulation.

use unity_core::expr::eval::eval_bool;
use unity_core::expr::Expr;
use unity_core::state::State;

use crate::executor::StepRecord;

/// Observes every executed step.
pub trait Monitor {
    /// Called after each step with the post-state.
    fn on_step(&mut self, record: StepRecord, state: &State);
}

/// Records steps at which a supposed invariant was violated.
#[derive(Debug)]
pub struct InvariantMonitor {
    /// The predicate expected to hold in every state.
    pub pred: Expr,
    /// Steps (post-state) where it failed.
    pub violations: Vec<u64>,
    /// Cap on recorded violations.
    pub limit: usize,
    /// The first violating post-state (the replayable witness reports
    /// carry), captured alongside its step.
    witness: Option<(u64, State)>,
}

impl InvariantMonitor {
    /// Creates a monitor for `pred`.
    pub fn new(pred: Expr) -> Self {
        InvariantMonitor {
            pred,
            violations: Vec::new(),
            limit: 64,
            witness: None,
        }
    }

    /// Whether the invariant held throughout.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation as `(step, post-state)`, if any.
    pub fn first_violation(&self) -> Option<&(u64, State)> {
        self.witness.as_ref()
    }
}

impl Monitor for InvariantMonitor {
    fn on_step(&mut self, record: StepRecord, state: &State) {
        if self.violations.len() < self.limit && !eval_bool(&self.pred, state) {
            if self.witness.is_none() {
                self.witness = Some((record.step, state.clone()));
            }
            self.violations.push(record.step);
        }
    }
}

/// Measures recurrence gaps of a family of predicates — e.g. for each
/// component `i`, steps between consecutive `Priority(i)` observations.
/// This is the quantitative face of the paper's liveness property (18):
/// `true ↦ Priority(i)` means every gap is finite; the monitor reports the
/// distribution.
#[derive(Debug)]
pub struct RecurrenceMonitor {
    preds: Vec<Expr>,
    last_true: Vec<Option<u64>>,
    /// `gaps[i]` = observed waits (in steps) between satisfactions of
    /// predicate `i` (and from step 0 to its first satisfaction).
    pub gaps: Vec<Vec<u64>>,
    started: Vec<u64>,
}

impl RecurrenceMonitor {
    /// Creates a monitor over the predicate family.
    pub fn new(preds: Vec<Expr>) -> Self {
        let n = preds.len();
        RecurrenceMonitor {
            preds,
            last_true: vec![None; n],
            gaps: vec![Vec::new(); n],
            started: vec![0; n],
        }
    }

    /// Number of monitored predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The largest gap observed for predicate `i` *including* the
    /// still-open wait at `now` (a starvation detector).
    pub fn worst_gap(&self, i: usize, now: u64) -> u64 {
        let open = now.saturating_sub(self.started[i]);
        self.gaps[i].iter().copied().max().unwrap_or(0).max(open)
    }
}

impl Monitor for RecurrenceMonitor {
    fn on_step(&mut self, record: StepRecord, state: &State) {
        for (i, p) in self.preds.iter().enumerate() {
            if eval_bool(p, state) {
                let gap = record.step.saturating_sub(self.started[i]);
                self.gaps[i].push(gap);
                self.last_true[i] = Some(record.step);
                self.started[i] = record.step + 1;
            }
        }
    }
}

/// Detects first satisfaction of a target predicate (response probe for a
/// single `p ↦ q` query: arm when `p` observed, fire when `q` observed).
#[derive(Debug)]
pub struct ResponseMonitor {
    /// Trigger predicate `p`.
    pub trigger: Expr,
    /// Target predicate `q`.
    pub target: Expr,
    armed_at: Option<u64>,
    /// Collected response times (steps from trigger to target).
    pub responses: Vec<u64>,
}

impl ResponseMonitor {
    /// Creates the monitor.
    pub fn new(trigger: Expr, target: Expr) -> Self {
        ResponseMonitor {
            trigger,
            target,
            armed_at: None,
            responses: Vec::new(),
        }
    }

    /// Whether a trigger is pending without response.
    pub fn pending(&self) -> bool {
        self.armed_at.is_some()
    }
}

impl Monitor for ResponseMonitor {
    fn on_step(&mut self, record: StepRecord, state: &State) {
        if let Some(t0) = self.armed_at {
            if eval_bool(&self.target, state) {
                self.responses.push(record.step - t0);
                self.armed_at = None;
            }
        } else if eval_bool(&self.trigger, state) && !eval_bool(&self.target, state) {
            self.armed_at = Some(record.step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unity_core::state::State;
    use unity_core::value::Value;

    fn rec(step: u64) -> StepRecord {
        StepRecord {
            step,
            command: 0,
            fired: true,
        }
    }

    fn bool_state(b: bool) -> State {
        State::new(vec![Value::Bool(b)])
    }

    #[test]
    fn invariant_monitor_records_violations() {
        use unity_core::expr::build::*;
        let x = unity_core::ident::VarId(0);
        let mut m = InvariantMonitor::new(var(x));
        m.on_step(rec(0), &bool_state(true));
        m.on_step(rec(1), &bool_state(false));
        m.on_step(rec(2), &bool_state(true));
        assert!(!m.clean());
        assert_eq!(m.violations, vec![1]);
    }

    #[test]
    fn recurrence_gaps() {
        use unity_core::expr::build::*;
        let x = unity_core::ident::VarId(0);
        let mut m = RecurrenceMonitor::new(vec![var(x)]);
        // True at steps 2 and 5.
        for (step, val) in [
            (0, false),
            (1, false),
            (2, true),
            (3, false),
            (4, false),
            (5, true),
        ] {
            m.on_step(rec(step), &bool_state(val));
        }
        assert_eq!(m.gaps[0], vec![2, 2]);
        assert_eq!(m.worst_gap(0, 6), 2);
    }

    #[test]
    fn worst_gap_includes_open_wait() {
        use unity_core::expr::build::*;
        let x = unity_core::ident::VarId(0);
        let mut m = RecurrenceMonitor::new(vec![var(x)]);
        m.on_step(rec(0), &bool_state(true));
        for s in 1..=10 {
            m.on_step(rec(s), &bool_state(false));
        }
        assert_eq!(m.worst_gap(0, 11), 10, "open starvation counted");
    }

    #[test]
    fn response_monitor_measures() {
        use unity_core::expr::build::*;
        let x = unity_core::ident::VarId(0);
        // trigger: !x, target: x
        let mut m = ResponseMonitor::new(not(var(x)), var(x));
        m.on_step(rec(0), &bool_state(false)); // armed at 0
        assert!(m.pending());
        m.on_step(rec(1), &bool_state(false));
        m.on_step(rec(2), &bool_state(true)); // response = 2
        assert!(!m.pending());
        assert_eq!(m.responses, vec![2]);
    }
}
