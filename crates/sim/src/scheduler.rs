//! Weakly-fair schedulers.
//!
//! The paper's model demands *weak fairness*: every command of `D` is
//! executed infinitely often. For finite simulations we enforce a
//! quantitative version via *aging*: any scheduler decision is overridden
//! when some fair command becomes overdue. Since only one command runs per
//! step, simultaneous overdues queue up; the resulting hard guarantee is
//!
//! ```text
//! max gap between executions of a fair command ≤ bound + |D| − 1
//! ```
//!
//! Under that override even the adversarial scheduler yields a weakly-fair
//! schedule, which is exactly the regime the paper's liveness proof covers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a scheduler sees when picking the next command.
#[derive(Debug)]
pub struct SchedCtx<'a> {
    /// Number of explicit commands (indices `0..n`).
    pub n_commands: usize,
    /// Indices of the weakly-fair subset `D`.
    pub fair: &'a [usize],
    /// For each command index, steps since it last ran (saturating).
    pub steps_since: &'a [u64],
    /// Global step counter.
    pub step: u64,
}

/// The *most overdue* fair command (largest wait ≥ `bound − 1`), if any.
///
/// Serving by maximum age (not lowest index) is what makes the
/// `bound + |D| − 1` gap guarantee hold: once a command is overdue, every
/// other command can overtake it at most once, because being served resets
/// a command's age below the waiter's.
fn most_overdue(ctx: &SchedCtx<'_>, bound: u64) -> Option<usize> {
    ctx.fair
        .iter()
        .copied()
        .filter(|&c| ctx.steps_since[c] + 1 >= bound)
        .max_by_key(|&c| (ctx.steps_since[c], std::cmp::Reverse(c)))
}

/// Picks the next command to execute.
pub trait Scheduler: Send {
    /// Chooses a command index in `0..ctx.n_commands`.
    fn next(&mut self, ctx: &SchedCtx<'_>) -> usize;

    /// A short name for reporting.
    fn name(&self) -> &'static str;
}

/// Deterministic round-robin over all commands — the simplest weakly-fair
/// scheduler (every command runs every `n` steps).
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    cursor: usize,
}

impl Scheduler for RoundRobin {
    fn next(&mut self, ctx: &SchedCtx<'_>) -> usize {
        let pick = self.cursor % ctx.n_commands.max(1);
        self.cursor = self.cursor.wrapping_add(1);
        pick
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniformly random choice with an aging override: any fair command about
/// to exceed a wait of `bound` steps is scheduled immediately (ties: lowest
/// index), so the gap between consecutive executions of a fair command
/// never exceeds `bound + |D| − 1` (the module docs explain the slack).
/// With the override this is weakly fair *surely*, not just almost-surely.
#[derive(Debug)]
pub struct AgedLottery {
    rng: StdRng,
    /// Maximum tolerated wait for a fair command.
    pub bound: u64,
}

impl AgedLottery {
    /// Creates the scheduler from a seed.
    pub fn new(seed: u64, bound: u64) -> Self {
        AgedLottery {
            rng: StdRng::seed_from_u64(seed),
            bound: bound.max(1),
        }
    }
}

impl Scheduler for AgedLottery {
    fn next(&mut self, ctx: &SchedCtx<'_>) -> usize {
        if let Some(overdue) = most_overdue(ctx, self.bound) {
            return overdue;
        }
        self.rng.gen_range(0..ctx.n_commands.max(1))
    }
    fn name(&self) -> &'static str {
        "aged-lottery"
    }
}

/// An adversary that starves `victim` as long as fairness permits: it never
/// schedules the victim until the aging bound forces it, and otherwise
/// picks uniformly among the other commands. The schedule is still weakly
/// fair — this is the worst case the paper's liveness property must
/// survive.
#[derive(Debug)]
pub struct AdversarialDelay {
    rng: StdRng,
    /// The command index being starved.
    pub victim: usize,
    /// Fairness bound after which the victim must run.
    pub bound: u64,
}

impl AdversarialDelay {
    /// Creates the adversary.
    pub fn new(seed: u64, victim: usize, bound: u64) -> Self {
        AdversarialDelay {
            rng: StdRng::seed_from_u64(seed),
            victim,
            bound: bound.max(1),
        }
    }
}

impl Scheduler for AdversarialDelay {
    fn next(&mut self, ctx: &SchedCtx<'_>) -> usize {
        // Honour aging for every fair command (weak fairness).
        if let Some(overdue) = most_overdue(ctx, self.bound) {
            return overdue;
        }
        if ctx.n_commands <= 1 {
            return 0;
        }
        // Avoid the victim.
        loop {
            let pick = self.rng.gen_range(0..ctx.n_commands);
            if pick != self.victim {
                return pick;
            }
        }
    }
    fn name(&self) -> &'static str {
        "adversarial-delay"
    }
}

/// Replays a fixed command sequence (cycling); for deterministic tests.
#[derive(Debug, Clone)]
pub struct FixedSequence {
    seq: Vec<usize>,
    cursor: usize,
}

impl FixedSequence {
    /// Creates a scheduler replaying `seq` cyclically.
    pub fn new(seq: Vec<usize>) -> Self {
        assert!(!seq.is_empty(), "sequence must be non-empty");
        FixedSequence { seq, cursor: 0 }
    }
}

impl Scheduler for FixedSequence {
    fn next(&mut self, _ctx: &SchedCtx<'_>) -> usize {
        let pick = self.seq[self.cursor % self.seq.len()];
        self.cursor += 1;
        pick
    }
    fn name(&self) -> &'static str {
        "fixed-sequence"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(n: usize, fair: &'a [usize], since: &'a [u64]) -> SchedCtx<'a> {
        SchedCtx {
            n_commands: n,
            fair,
            steps_since: since,
            step: 0,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::default();
        let since = vec![0u64; 3];
        let picks: Vec<usize> = (0..6).map(|_| s.next(&ctx(3, &[], &since))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn lottery_respects_aging() {
        let mut s = AgedLottery::new(1, 10);
        let since = vec![3, 11, 0];
        assert_eq!(
            s.next(&ctx(3, &[0, 1, 2], &since)),
            1,
            "overdue command forced"
        );
    }

    #[test]
    fn lottery_in_range() {
        let mut s = AgedLottery::new(42, 100);
        let since = vec![0u64; 5];
        for _ in 0..100 {
            let pick = s.next(&ctx(5, &[0], &since));
            assert!(pick < 5);
        }
    }

    #[test]
    fn adversary_avoids_victim_until_forced() {
        let mut s = AdversarialDelay::new(7, 2, 50);
        let since = vec![0u64; 4];
        for _ in 0..200 {
            assert_ne!(s.next(&ctx(4, &[2], &since)), 2);
        }
        let overdue = vec![0, 0, 50, 0];
        assert_eq!(s.next(&ctx(4, &[2], &overdue)), 2);
    }

    #[test]
    fn fixed_sequence_replays() {
        let mut s = FixedSequence::new(vec![2, 0]);
        let since = vec![0u64; 3];
        let picks: Vec<usize> = (0..4).map(|_| s.next(&ctx(3, &[], &since))).collect();
        assert_eq!(picks, vec![2, 0, 2, 0]);
    }
}
