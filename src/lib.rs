//! # unity-composition
//!
//! Umbrella crate re-exporting the full workspace: a production-quality
//! reproduction of Charpentier & Chandy, *Examples of Program Composition
//! Illustrating the Use of Universal Properties* (IPPS 1999).
//!
//! See the individual crates:
//!
//! * [`unity_core`] — programming model, properties, composition, proof
//!   kernel, DSL.
//! * [`prio_graph`] — conflict graphs, orientations, closures, the acyclic
//!   priority-graph lemmas.
//! * [`unity_mc`] — explicit-state model checker with exact weak-fairness
//!   `leadsto` checking.
//! * [`unity_sim`] — operational simulator with weakly-fair schedulers and
//!   metrics.
//! * [`unity_systems`] — the paper's systems (§3 toy counter, §4 priority
//!   mechanism), baselines and applications, with machine-checked proofs.
//! * [`unity_dist`] — distributed message-passing realization of §4
//!   (token-based edge reversal) with Chandy–Lamport snapshot monitoring
//!   and a per-step refinement check onto the abstract orientation
//!   semantics.

#![forbid(unsafe_code)]

pub mod spec;

pub use prio_graph;
pub use unity_core;
pub use unity_dist;
pub use unity_mc;
pub use unity_sim;
pub use unity_systems;

pub use unity_core::prelude;
