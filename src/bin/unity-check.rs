//! `unity-check` — check a `.unity` specification file.
//!
//! ```text
//! unity-check FILE [--engine explicit|symbolic|reference]
//!             [--order declaration|static|sift] [--stats]
//!             [--universe reachable|all] [--compositional]
//!             [--threads N] [--sim STEPS] [--seed N]
//!             [--serve HOST:PORT] [--trace FILE] [--json FILE]
//!             [--list] [--quiet] [--conserve] [--synthesize]
//!             [--mutate] [--help] [--version]
//! ```
//!
//! Parses the file's `program` blocks, composes them (vocabularies merged
//! by name, locality and init-consistency enforced), then decides every
//! `spec` check with the exact model checker: safety properties with the
//! paper's inductive all-states semantics, `leadsto` exactly under weak
//! fairness over the chosen universe. Exit code: `0` if all checks pass,
//! `1` if any fails, `2` on usage/parse errors (unknown flags included).
//!
//! All checks run in **one verifier session** (`unity_mc::Verifier`):
//! the compiled pipeline, transition system + reachable set, and
//! symbolic engine are built at most once per run and shared by every
//! check, `--stats`, `--synthesize` and the simulation monitors.
//!
//! `--json FILE` writes the whole run as a machine-readable
//! `unity_mc::Report` (stable schema: per-check verdict, decoded
//! counterexample witness, deciding engine, cost counters, wall times,
//! simulation monitor outcomes). Exit codes are unchanged by `--json`.
//!
//! `--engine` selects the evaluation engine for every check:
//! `explicit` (default — the compiled bytecode/packed-state scans),
//! `symbolic` (the BDD set-based engine; safety checks never enumerate
//! states, `leadsto` falls back to the explicit engine), or `reference`
//! (the tree-walking evaluator, the semantics of record). All engines
//! return identical verdicts — pinned by the differential test suites.
//!
//! `--order` picks the symbolic engine's BDD variable-order strategy:
//! `declaration` (the packed-layout order, an accident of how the spec
//! was written), `static` (derived from the program's variable-
//! dependency graph at construction), or `sift` (static start plus
//! dynamic Rudell sifting when the arena grows — the default). The
//! explicit engines ignore it.
//!
//! `--threads N` sets the worker count for state-space construction and
//! the parallel sweeps. More than one thread runs the sharded
//! work-stealing explorer (hash-partitioned frontier, per-shard
//! mailboxes, quiescence-counter termination); `--threads 1` keeps the
//! exact sequential reference builder. Both produce the same state set,
//! init set, and successor relation — only internal state numbering
//! differs. The default is the machine's available parallelism, or the
//! `UNITY_BUILD_THREADS` environment variable when set.
//!
//! `--stats` prints engine counters after the checks: states visited
//! and transitions computed for the enumerating engines (plus build
//! wall time and shard/steal counters); live/peak BDD nodes,
//! apply-cache hit rate, sift passes/swaps and GC activity for the
//! symbolic engine.
//!
//! `--compositional` verifies assume-guarantee style instead of on the
//! flat product: each obligation discharges in component state spaces
//! (kernel-validated `lift-universal` / `lift-existential`, or the
//! cone-of-influence slice for `leadsto`), with the product space built
//! only for the residue. Verdicts and witnesses are identical to a flat
//! run by construction; each `PASS` line names the rule that closed the
//! obligation, `--json` reports carry the same provenance
//! machine-readably, and `--stats` prints the discharge/certificate
//! counters. Local analyses that require the flat session
//! (`--synthesize`, `--mutate`) do not combine with it. With `--serve`
//! the flag is forwarded: the daemon verifies compositionally and
//! answers component obligations from its persistent certificate cache.
//!
//! `--sim N` additionally runs an `N`-step weakly-fair simulation
//! (aged-lottery scheduler) with every `invariant` check attached as a
//! runtime monitor; `--trace FILE` dumps the simulated trace as JSON.
//!
//! Analysis modes (informational; they do not affect the exit code):
//!
//! * `--conserve` prints the basis of linear combinations conserved by
//!   every command (the mechanical §3.3 bridge) with derived invariants;
//! * `--synthesize` attempts an ensures-chain derivation for every
//!   `leadsto` check and re-verifies it in the proof kernel;
//! * `--mutate` runs a mutation audit of the file's own `spec` checks
//!   and reports the kill ratio and any survivors (spec gaps).
//!
//! `--serve HOST:PORT` delegates the run to a `unity-serve` daemon
//! instead of verifying locally: the file is submitted as-is over
//! `POST /verify` (with `--engine`/`--universe` forwarded), the
//! returned report prints like a local run plus a `CACHE` line showing
//! which session artifacts the daemon served from its store, and the
//! exit code contract is unchanged. Transient failures — connect/read
//! errors and `503` load shedding — are retried a bounded number of
//! times with exponential backoff (honoring the server's `Retry-After`
//! hint); every resubmission carries the same idempotency key, so a
//! request that committed just as its reply was lost replays the
//! recorded verdict instead of re-verifying. The local-analysis flags
//! (`--stats`, `--sim`, `--trace`, `--list`, `--conserve`,
//! `--synthesize`, `--mutate`, `--order`, `--threads`) do not apply to
//! a remote session and are rejected in combination with `--serve`.

use std::process::ExitCode;

use unity_composition::spec::load_spec;
use unity_core::conserve::{conserved_linear_combinations, invariant_from_combo};
use unity_core::properties::Property;
use unity_mc::prelude::*;
use unity_mc::synth::{synthesize_and_check_in, SynthConfig, SynthError};
use unity_mc::verifier::Outcome;
use unity_sim::prelude::*;

struct Options {
    file: String,
    engine: Engine,
    order: OrderMode,
    stats: bool,
    universe: Universe,
    compositional: bool,
    threads: Option<usize>,
    sim_steps: u64,
    seed: u64,
    serve: Option<String>,
    trace: Option<String>,
    json: Option<String>,
    list: bool,
    quiet: bool,
    conserve: bool,
    synthesize: bool,
    mutate: bool,
}

const USAGE: &str = "usage: unity-check FILE [--engine explicit|symbolic|reference] \
                     [--order declaration|static|sift] [--stats] \
                     [--universe reachable|all] [--compositional] \
                     [--threads N] [--sim STEPS] [--seed N] \
                     [--serve HOST:PORT] [--trace FILE] [--json FILE] \
                     [--list] [--quiet] [--conserve] [--synthesize] \
                     [--mutate] [--help] [--version]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut file = None;
    let mut opts = Options {
        file: String::new(),
        engine: Engine::Compiled,
        order: OrderMode::default(),
        stats: false,
        universe: Universe::Reachable,
        compositional: false,
        threads: None,
        sim_steps: 0,
        seed: 1,
        serve: None,
        trace: None,
        json: None,
        list: false,
        quiet: false,
        conserve: false,
        synthesize: false,
        mutate: false,
    };
    let mut it = args.iter();
    let mut order_given = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                opts.engine = match it.next().map(String::as_str) {
                    Some("explicit") | Some("compiled") => Engine::Compiled,
                    Some("symbolic") => Engine::Symbolic,
                    Some("reference") => Engine::Reference,
                    other => return Err(format!("bad --engine {other:?}; {USAGE}")),
                }
            }
            "--order" => {
                order_given = true;
                opts.order = match it.next().map(String::as_str) {
                    Some("declaration") => OrderMode::Declaration,
                    Some("static") => OrderMode::Static,
                    Some("sift") | Some("sifting") => OrderMode::Sifting,
                    other => return Err(format!("bad --order {other:?}; {USAGE}")),
                }
            }
            "--stats" => opts.stats = true,
            "--universe" => {
                opts.universe = match it.next().map(String::as_str) {
                    Some("reachable") => Universe::Reachable,
                    Some("all") => Universe::AllStates,
                    other => return Err(format!("bad --universe {other:?}; {USAGE}")),
                }
            }
            "--compositional" => opts.compositional = true,
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--threads needs a count; {USAGE}"))?;
                if t == 0 {
                    return Err(format!("--threads must be at least 1; {USAGE}"));
                }
                opts.threads = Some(t);
            }
            "--sim" => {
                opts.sim_steps = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--sim needs a step count; {USAGE}"))?;
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--seed needs a number; {USAGE}"))?;
            }
            "--serve" => {
                opts.serve = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("--serve needs HOST:PORT; {USAGE}"))?,
                );
            }
            "--trace" => {
                opts.trace = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("--trace needs a path; {USAGE}"))?,
                );
            }
            "--json" => {
                opts.json = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("--json needs a path; {USAGE}"))?,
                );
            }
            "--list" => opts.list = true,
            "--quiet" => opts.quiet = true,
            "--conserve" => opts.conserve = true,
            "--synthesize" => opts.synthesize = true,
            "--mutate" => opts.mutate = true,
            "--help" | "-h" => {
                // Asked-for help goes to stdout and exits 0 — only
                // *unasked* usage (bad flags, no FILE) is exit 2.
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--version" | "-V" => {
                println!("unity-check {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            // Anything dash-prefixed that is not a known flag is an
            // error (exit 2) — never a FILE candidate, even before FILE
            // is set; and once FILE is set, every stray argument is
            // rejected rather than silently shadowing it.
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`; {USAGE}"))
            }
            other if file.is_none() => {
                file = Some(other.to_string());
            }
            other => {
                return Err(format!(
                    "unexpected argument `{other}` (FILE already given as `{}`); {USAGE}",
                    file.as_deref().unwrap_or("")
                ))
            }
        }
    }
    opts.file = file.ok_or_else(|| USAGE.to_string())?;
    if opts.serve.is_some() {
        // A remote session runs none of the local analysis machinery.
        let local_only = [
            (opts.stats, "--stats"),
            (opts.sim_steps > 0, "--sim"),
            (opts.trace.is_some(), "--trace"),
            (opts.list, "--list"),
            (opts.conserve, "--conserve"),
            (opts.synthesize, "--synthesize"),
            (opts.mutate, "--mutate"),
            (opts.threads.is_some(), "--threads"),
            (order_given, "--order"),
        ];
        if let Some((_, flag)) = local_only.iter().find(|(given, _)| *given) {
            return Err(format!("{flag} does not apply with --serve; {USAGE}"));
        }
    }
    if opts.compositional {
        // These analyses require the flat product session.
        let flat_only = [(opts.synthesize, "--synthesize"), (opts.mutate, "--mutate")];
        if let Some((_, flag)) = flat_only.iter().find(|(given, _)| *given) {
            return Err(format!(
                "{flag} does not apply with --compositional; {USAGE}"
            ));
        }
    }
    Ok(opts)
}

/// Retry policy for `--serve`. Only *transient* failures are retried:
/// transport errors (connect refused/reset, timeouts) and `503` load
/// shedding. Any other reply — a verdict, a `4xx`, a `500` — is final
/// on the first attempt. Both the attempt count and the total wall
/// clock are bounded, so an unreachable daemon stays a fast exit-2
/// infrastructure error rather than a hang.
const RETRY_ATTEMPTS: u32 = 4;
const RETRY_BUDGET: std::time::Duration = std::time::Duration::from_secs(10);
const BACKOFF_BASE_MS: u64 = 100;
const BACKOFF_CAP_MS: u64 = 2_000;

/// Exponential backoff with multiplicative jitter in `[0.5, 1.5)` of
/// the base, raised to the server's `Retry-After` hint when one came
/// back with the `503`, capped so the retry budget stays meaningful.
fn backoff_delay(attempt: u32, hint_secs: Option<u64>, seed: &mut u64) -> std::time::Duration {
    // xorshift64*: cheap, stateful, good enough to decorrelate clients.
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    let base = (BACKOFF_BASE_MS << attempt.min(10)).min(BACKOFF_CAP_MS);
    let jittered = base / 2 + seed.wrapping_mul(0x2545_F491_4F6C_DD1D) % base;
    let hinted = hint_secs.unwrap_or(0).saturating_mul(1_000);
    std::time::Duration::from_millis(jittered.max(hinted).min(BACKOFF_CAP_MS))
}

/// Suffix naming the rule a compositional session closed this verdict
/// with (` [lift-universal]` and friends); empty for flat verdicts.
fn rule_tag(v: &Verdict) -> String {
    v.discharge
        .as_ref()
        .map(|d| format!(" [{}]", d.rule))
        .unwrap_or_default()
}

/// `--serve`: delegate the run to a `unity-serve` daemon. Prints the
/// returned report like a local run (plus the daemon's cache line) and
/// preserves the exit-code contract.
fn run_remote(opts: &Options, addr: &str) -> Result<bool, String> {
    let src = std::fs::read_to_string(&opts.file).map_err(|e| format!("{}: {e}", opts.file))?;
    // The idempotency key is fixed before the first attempt and reused
    // verbatim by every retry: if an earlier attempt committed but its
    // reply was lost, the daemon replays the recorded verdict (same
    // sequence number) instead of verifying twice.
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    let request_id = format!(
        "{}-{}-{nanos:x}",
        unity_serve::spec_hash(&src),
        std::process::id()
    );
    let mut req = unity_serve::VerifyRequest::new(src);
    req.engine = opts.engine;
    req.universe = opts.universe;
    req.compositional = opts.compositional;
    req.request_id = Some(request_id);
    let payload = req.to_json();
    let client = unity_serve::http::ClientOptions::default();

    let started = std::time::Instant::now();
    let mut seed = nanos | 1;
    let mut attempt = 0u32;
    let reply = loop {
        attempt += 1;
        let (why, hint) =
            match unity_serve::http::request_with(addr, "POST", "/verify", Some(&payload), &client)
            {
                Ok(r) if r.status != 503 => break r,
                Ok(r) => ("service at capacity (HTTP 503)".to_string(), r.retry_after),
                Err(e) => (e, None),
            };
        if attempt >= RETRY_ATTEMPTS || started.elapsed() >= RETRY_BUDGET {
            return Err(format!("{addr}: {why} (after {attempt} attempt(s))"));
        }
        let delay = backoff_delay(attempt, hint, &mut seed);
        if !opts.quiet {
            eprintln!(
                "unity-check: {addr}: {why}; retrying in {}ms (attempt {attempt}/{RETRY_ATTEMPTS})",
                delay.as_millis()
            );
        }
        std::thread::sleep(delay);
    };
    let (status, body) = (reply.status, reply.body);
    if status != 200 {
        let msg = unity_serve::proto::error_message(&body)
            .unwrap_or_else(|| format!("HTTP {status} from {addr}"));
        return Err(format!("{addr}: {msg}"));
    }
    let resp = unity_serve::VerifyResponse::from_json(&body)
        .map_err(|e| format!("{addr}: malformed response: {e}"))?;
    if !opts.quiet {
        println!(
            "verified by {addr} as spec {} (verdict #{})",
            resp.spec_hash, resp.seq
        );
        let c = &resp.cache;
        println!(
            "CACHE ts[reachable]={:?} ts[all]={:?} pred[reachable]={:?} pred[all]={:?} order={:?} certs={}h/{}m",
            c.ts_reachable, c.ts_all_states, c.pred_reachable, c.pred_all_states, c.field_order,
            c.cert_hits, c.cert_misses
        );
    }
    for c in &resp.report.checks {
        match &c.verdict.outcome {
            Outcome::Pass => {
                if !opts.quiet {
                    println!(
                        "PASS {}: {}{}",
                        c.name,
                        c.verdict.property,
                        rule_tag(&c.verdict)
                    );
                }
            }
            Outcome::Fail { .. } => {
                println!("FAIL {}: {}", c.name, c.verdict.property);
            }
            Outcome::Error { .. } => {}
        }
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, resp.report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        if !opts.quiet {
            println!("report written to {path}");
        }
    }
    if let Some(errored) = resp.report.first_error() {
        let error = errored.verdict.error().expect("error outcome");
        return Err(format!("check `{}`: {error}", errored.name));
    }
    Ok(resp.report.all_passed())
}

fn run(opts: &Options) -> Result<bool, String> {
    if let Some(addr) = &opts.serve {
        return run_remote(opts, addr);
    }
    let src = std::fs::read_to_string(&opts.file).map_err(|e| format!("{}: {e}", opts.file))?;
    let spec = load_spec(&src).map_err(|e| format!("{}: {e}", opts.file))?;
    let vocab = spec.system.vocab().clone();

    if !opts.quiet {
        println!(
            "composed {} program(s), {} variable(s), {} command(s), {} check(s)",
            spec.system.len(),
            vocab.len(),
            spec.system.composed.commands.len(),
            spec.checks.len()
        );
    }
    if opts.list {
        for c in &spec.checks {
            println!(
                "  {} (line {}): {}",
                c.name,
                c.line,
                c.property.display(&vocab)
            );
        }
        return Ok(true);
    }

    let cfg = ScanConfig {
        engine: opts.engine,
        symbolic: SymbolicOptions {
            order: opts.order.clone(),
            ..Default::default()
        },
        par: match opts.threads {
            // One thread pins the exact sequential reference builder.
            Some(1) => ParConfig::sequential(),
            Some(t) => ParConfig {
                threads: t,
                ..Default::default()
            },
            // Default honors UNITY_BUILD_THREADS, then the machine.
            None => ParConfig::default(),
        },
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    if opts.compositional {
        return run_compositional(opts, &spec, cfg, t0);
    }
    // One session serves every check and every analysis mode below: the
    // compiled pipeline, transition system + reachable set, and symbolic
    // engine are built at most once per run.
    let mut session = Verifier::new(&spec.system.composed, cfg).with_universe(opts.universe);
    let mut report = session.verify_all(&spec.checks);
    for c in &report.checks {
        match &c.verdict.outcome {
            Outcome::Pass => {
                if !opts.quiet {
                    println!("PASS {}: {}", c.name, c.verdict.property);
                }
            }
            Outcome::Fail { cex } => {
                println!("FAIL {}: {}", c.name, c.verdict.property);
                println!("     {}", cex.display(&vocab));
            }
            // Infrastructure errors surface after the other modes (and
            // after --json persists the partial report) as exit code 2.
            Outcome::Error { .. } => {}
        }
    }

    if opts.stats {
        stats_report(opts, &mut session, &spec.checks, &report);
    }
    if opts.sim_steps > 0 {
        report.sim = simulate(opts, &spec)?;
        // The report covers the simulation too; keep its wall time
        // honest (checks + simulation).
        report.elapsed = t0.elapsed();
    }
    if opts.conserve {
        conserve_report(&spec);
    }
    if opts.synthesize {
        synthesize_report(opts, &mut session, &spec);
    }
    if opts.mutate {
        mutate_report(&mut session, &spec);
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        if !opts.quiet {
            println!("report written to {path}");
        }
    }
    if let Some(errored) = report.first_error() {
        let error = errored.verdict.error().expect("error outcome");
        return Err(format!("check `{}`: {error}", errored.name));
    }
    Ok(report.all_passed())
}

/// `--compositional`: verify assume-guarantee style. Obligations
/// discharge in component state spaces (or a cone-of-influence slice);
/// the flat product is built only for the residue, so verdicts and
/// witnesses match a flat run by construction. Every `PASS` line names
/// the kernel rule that closed it.
fn run_compositional(
    opts: &Options,
    spec: &unity_composition::spec::SpecFile,
    cfg: ScanConfig,
    t0: std::time::Instant,
) -> Result<bool, String> {
    let vocab = spec.system.vocab().clone();
    let mut session = CompositionalVerifier::new(&spec.system, cfg).with_universe(opts.universe);
    let mut report = session.verify_all(&spec.checks);
    for c in &report.checks {
        match &c.verdict.outcome {
            Outcome::Pass => {
                if !opts.quiet {
                    println!(
                        "PASS {}: {}{}",
                        c.name,
                        c.verdict.property,
                        rule_tag(&c.verdict)
                    );
                }
            }
            Outcome::Fail { cex } => {
                println!(
                    "FAIL {}: {}{}",
                    c.name,
                    c.verdict.property,
                    rule_tag(&c.verdict)
                );
                println!("     {}", cex.display(&vocab));
            }
            Outcome::Error { .. } => {}
        }
    }
    if opts.stats {
        let s = session.stats();
        println!(
            "STATS compositional: {} obligation(s): {} lift-universal, \
             {} lift-existential, {} cone, {} product fallback(s); \
             {} component check(s), {} cert hit(s), {} cert miss(es)",
            s.obligations,
            s.lift_universal,
            s.lift_existential,
            s.cone,
            s.product_fallbacks,
            s.component_checks,
            s.cert_hits,
            s.cert_misses
        );
    }
    if opts.sim_steps > 0 {
        report.sim = simulate(opts, spec)?;
        report.elapsed = t0.elapsed();
    }
    if opts.conserve {
        conserve_report(spec);
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        if !opts.quiet {
            println!("report written to {path}");
        }
    }
    if let Some(errored) = report.first_error() {
        let error = errored.verdict.error().expect("error outcome");
        return Err(format!("check `{}`: {error}", errored.name));
    }
    Ok(report.all_passed())
}

/// `--stats`: print engine counters for the file's composed program
/// (informational). The symbolic engine reports arena/reorder/cache
/// activity from the session's (memoized) reachability fixpoint; the
/// enumerating engines report the session's transition-system size
/// plus, when the spec has `leadsto` checks, the worklist liveness
/// engine's traversal counters aggregated across them.
fn stats_report(
    opts: &Options,
    session: &mut Verifier<'_>,
    checks: &[NamedCheck],
    report: &Report,
) {
    // Aggregate the liveness traversal counters over every leadsto
    // check — keyed on the property kind (refuted checks carry their
    // counters too), not on any counter being nonzero.
    let mut leadsto_checks = 0u64;
    let (mut scanned, mut edges, mut pushes) = (0u64, 0u64, 0u64);
    for (named, c) in checks.iter().zip(&report.checks) {
        if !matches!(named.property, Property::LeadsTo(..)) {
            continue;
        }
        if let VerdictStats::Explicit {
            scanned_states,
            pred_edges,
            worklist_pushes,
            ..
        } = &c.verdict.stats
        {
            leadsto_checks += 1;
            scanned += scanned_states;
            edges += pred_edges;
            pushes += worklist_pushes;
        }
    }
    if leadsto_checks > 0 {
        println!(
            "STATS leadsto: {leadsto_checks} check(s), {scanned} state(s) scanned, \
             {edges} predecessor edge(s) walked, {pushes} worklist push(es)"
        );
    }
    match opts.engine {
        Engine::Symbolic => match session.symbolic() {
            Some(sym) => {
                let reach = sym.reachable();
                println!(
                    "STATS symbolic: {} reachable state(s) in {} iteration(s); order {:?}; {}",
                    reach.count,
                    reach.iterations,
                    opts.order,
                    sym.stats()
                );
            }
            None => println!("STATS symbolic: not applicable (cannot lower); explicit fallback"),
        },
        Engine::Compiled | Engine::Reference => match session.transition_system(opts.universe) {
            Ok(ts) => {
                println!(
                    "STATS explicit: {} state(s) visited, {} transition(s) computed ({:?} universe)",
                    ts.len(),
                    ts.transition_count(),
                    opts.universe
                );
                println!("STATS build: {}", ts.build_stats());
            }
            Err(e) => println!("STATS explicit: {e}"),
        },
    }
}

/// `--conserve`: print the conserved-combination basis and any derived
/// invariants (informational).
fn conserve_report(spec: &unity_composition::spec::SpecFile) {
    let program = &spec.system.composed;
    let vocab = spec.system.vocab();
    let basis = conserved_linear_combinations(program);
    println!(
        "CONSERVE: basis dimension {} ({} tainted variable(s))",
        basis.dimension(),
        basis.tainted.len()
    );
    for combo in &basis.combos {
        let e = combo.to_expr();
        print!(
            "  unchanged {}",
            unity_core::expr::pretty::Render::new(&e, vocab)
        );
        match invariant_from_combo(program, combo) {
            Some(inv) => println!(
                "   => invariant {}",
                unity_core::expr::pretty::Render::new(&inv, vocab)
            ),
            None => println!("   (initial value not pinned by init)"),
        }
    }
}

/// `--synthesize`: attempt a kernel-checked ensures-chain derivation for
/// every `leadsto` check (informational). The synthesis explores the
/// session's memoized reachable transition system — with several
/// `leadsto` goals in one file it is built once, not per goal.
fn synthesize_report(
    opts: &Options,
    session: &mut Verifier<'_>,
    spec: &unity_composition::spec::SpecFile,
) {
    let vocab = spec.system.vocab();
    let cfg = SynthConfig::default();
    for c in &spec.checks {
        let Property::LeadsTo(p, q) = &c.property else {
            continue;
        };
        match synthesize_and_check_in(session, p, q, &cfg) {
            Ok((synth, stats)) => println!(
                "SYNTH {}: {} ensures layer(s) over {} state(s); kernel: {} rules, {} premises, {} side conditions",
                c.name,
                synth.layers.len(),
                synth.reachable_states,
                stats.rules,
                stats.premises,
                stats.side_conditions
            ),
            Err(SynthError::NotLive { uncovered }) => {
                println!(
                    "SYNTH-FAIL {}: {} state(s) never absorbed (property false or beyond ensures chains)",
                    c.name,
                    uncovered.len()
                );
                if !opts.quiet {
                    if let Some(s) = uncovered.first() {
                        println!("     e.g. {}", s.display(vocab));
                    }
                }
            }
            Err(e) => println!("SYNTH-ERROR {}: {e}", c.name),
        }
    }
}

/// `--mutate`: audit the file's own `spec` checks by mutation
/// (informational). Session-backed: the original-program pass reuses
/// the run's main session, and each mutant's checks share one fresh
/// session over that mutant. The audit runs under the session's engine
/// configuration (`--engine`), where it previously always used the
/// compiled default.
fn mutate_report(session: &mut Verifier<'_>, spec: &unity_composition::spec::SpecFile) {
    match mutation_audit_in(session, &spec.checks) {
        Ok(report) => print!("MUTATE: {}", report.summary()),
        Err(e) => println!("MUTATE-ERROR: {e}"),
    }
}

/// Runs the weakly-fair simulation with invariant monitors and optional
/// trace export. Returns one [`SimCheck`] per monitored invariant for
/// the run's [`Report`].
fn simulate(
    opts: &Options,
    spec: &unity_composition::spec::SpecFile,
) -> Result<Vec<SimCheck>, String> {
    let program = &spec.system.composed;
    let mut invariants: Vec<(String, InvariantMonitor)> = spec
        .checks
        .iter()
        .filter_map(|c| match &c.property {
            Property::Invariant(p) => Some((c.name.clone(), InvariantMonitor::new(p.clone()))),
            _ => None,
        })
        .collect();
    let mut recorder = TraceRecorder::new(if opts.trace.is_some() {
        opts.sim_steps as usize
    } else {
        0
    });

    let mut sched = AgedLottery::new(opts.seed, 64);
    let mut ex = Executor::from_first_initial(program);
    {
        let mut monitors: Vec<&mut dyn Monitor> = Vec::new();
        for (_, m) in invariants.iter_mut() {
            monitors.push(m);
        }
        monitors.push(&mut recorder);
        ex.run(opts.sim_steps, &mut sched, &mut monitors);
    }

    let mut outcomes = Vec::with_capacity(invariants.len());
    for (name, m) in &invariants {
        if m.clean() {
            if !opts.quiet {
                println!("SIM-PASS {name}: no violation in {} steps", opts.sim_steps);
            }
        } else {
            println!("SIM-FAIL {name}: violated during simulation");
        }
        let violation = m.first_violation();
        outcomes.push(SimCheck {
            name: name.clone(),
            steps: opts.sim_steps,
            passed: m.clean(),
            violation_step: violation.map(|(step, _)| *step),
            violation_state: violation.map(|(_, state)| state.clone()),
        });
    }
    if let Some(path) = &opts.trace {
        std::fs::write(path, recorder.to_json(program)).map_err(|e| format!("{path}: {e}"))?;
        if !opts.quiet {
            println!("trace written to {path}");
        }
    }
    Ok(outcomes)
}

fn main() -> ExitCode {
    // Same contract as `--threads 0`: a bad override is a usage error,
    // not a silent fallback to the machine default.
    if let Err(msg) = validate_build_threads_env() {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
