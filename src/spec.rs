//! Specification files — re-exported from [`unity_mc::spec`].
//!
//! The loader moved into the model-checker crate so that `unity-serve`
//! (and any other consumer below the umbrella crate) can parse `.unity`
//! submissions without a dependency cycle. Existing
//! `unity_composition::spec::{load_spec, SpecFile, NamedCheck}` paths
//! keep working through this re-export.

pub use unity_mc::spec::{load_spec, NamedCheck, SpecFile};
