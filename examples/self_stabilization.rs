//! Dijkstra's self-stabilizing K-state token ring, verified under the
//! paper's inductive all-states semantics: the `initially` predicate is
//! `true`, so convergence is checked from *every* type-consistent state —
//! there is no reachable set to hide behind.
//!
//! ```text
//! cargo run --release --example self_stabilization
//! ```

use unity_composition::prelude::*;
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_mc::synth::{synthesize_and_check, SynthConfig};
use unity_composition::unity_systems::stabilize::{stabilizing_ring, StabilizeSpec};

fn main() {
    println!("== Dijkstra's K-state token ring (self-stabilization) ==\n");

    println!(
        "{:<10} {:>8} {:>12} {:>12}",
        "(n, K)", "states", "converges?", "closure?"
    );
    for (n, k) in [(2usize, 2i64), (3, 3), (3, 4), (4, 4), (3, 2), (4, 2)] {
        let ring = stabilizing_ring(StabilizeSpec::new(n, k)).expect("ring builds");
        let program = &ring.system.composed;
        let states: u64 = (k as u64).pow(n as u32);
        let cfg = ScanConfig::default();
        let converges =
            check_property(program, &ring.convergence(), Universe::AllStates, &cfg).is_ok();
        let closed = check_property(program, &ring.closure(), Universe::AllStates, &cfg).is_ok();
        println!(
            "({n}, {k})     {states:>8} {:>12} {:>12}",
            if converges { "yes" } else { "NO (lasso)" },
            if closed { "yes" } else { "no" }
        );
    }
    println!("\nDijkstra's bound K ≥ n separates cleanly: below it the exact fair");
    println!("checker finds a fair cycle that never reaches legitimacy.");

    // The pigeonhole fact is a validity, stronger than an invariant.
    let ring = stabilizing_ring(StabilizeSpec::new(4, 4)).expect("ring builds");
    check_valid(
        &ring.system.composed.vocab,
        &ring.at_least_one_expr(),
        &ScanConfig::default(),
    )
    .expect("some node is always privileged");
    println!("\nvalidity: in every one of the 256 states of (n=4, K=4), ≥1 privilege ✓");

    // And the convergence proof can be synthesized and kernel-checked.
    let ring = stabilizing_ring(StabilizeSpec::new(3, 3)).expect("ring builds");
    let (synth, stats) = synthesize_and_check(
        &ring.system.composed,
        &tt(),
        &ring.legitimate_expr(),
        &SynthConfig::default(),
        &ScanConfig::default(),
    )
    .expect("stabilization synthesizes");
    println!(
        "synthesized convergence proof for (3,3): {} ensures layers over {} states,",
        synth.layers.len(),
        synth.reachable_states
    );
    println!(
        "kernel-checked with {} premises and {} side conditions — a machine-found,",
        stats.premises, stats.side_conditions
    );
    println!("machine-checked self-stabilization argument in the paper's own rule system.");
}
