//! Mechanizing the paper's "creative" steps on finite instances:
//!
//! 1. §3.3's shared universal property `∀k. stable (C − Σcᵢ = k)` is
//!    *discovered* by linear algebra over the commands' update effects
//!    (`unity_core::conserve`), then verified by the model checker.
//! 2. §4's liveness (18) is *derived automatically*: the synthesizer
//!    extracts an ensures chain from the reachable state space and emits
//!    a derivation using only the paper's rules, which the proof kernel
//!    re-checks with every premise model-checked.
//!
//! ```text
//! cargo run --release --example invariant_synthesis
//! ```

use std::sync::Arc;

use unity_composition::prelude::*;
use unity_composition::unity_core::conserve::{
    conserved_linear_combinations, invariant_from_combo,
};
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_mc::synth::{synthesize_and_check, SynthConfig};
use unity_composition::unity_systems::priority::PrioritySystem;
use unity_composition::unity_systems::toy_counter::{toy_system, ToySpec};

fn main() {
    println!("== Part 1: discovering the §3.3 conservation law ==\n");
    let toy = toy_system(ToySpec::new(3, 2)).expect("toy builds");
    let program = &toy.system.composed;
    let vocab = &program.vocab;

    let basis = conserved_linear_combinations(program);
    println!(
        "conserved-combination basis: dimension {} (tainted vars: {})",
        basis.dimension(),
        basis.tainted.len()
    );
    for combo in basis.nontrivial() {
        let e = combo.to_expr();
        println!("  discovered: Unchanged({})", Render::new(&e, vocab));
        check_unchanged(program, &e, &ScanConfig::default()).expect("model checker agrees");
        if let Some(inv) = invariant_from_combo(program, combo) {
            println!("  derived invariant: {}", Render::new(&inv, vocab));
            check_invariant(program, &inv, &ScanConfig::default()).expect("invariant holds");
        }
    }
    println!("  (this is the paper's `invariant C = Σ cᵢ`, found mechanically)");

    println!("\n== Part 2: synthesizing liveness derivations ==\n");

    // Toy saturation: C eventually reaches n·k.
    let target = eq(var(toy.shared), int(toy.spec.n as i64 * toy.spec.k));
    let (synth, stats) = synthesize_and_check(
        program,
        &tt(),
        &target,
        &SynthConfig::default(),
        &ScanConfig::default(),
    )
    .expect("toy liveness synthesizes");
    println!(
        "toy (n=3, k=2): true ↦ C=6 — {} ensures layers over {} reachable states",
        synth.layers.len(),
        synth.reachable_states
    );
    println!(
        "  kernel re-check: {} rules, {} premises, {} side conditions — all discharged",
        stats.rules, stats.premises, stats.side_conditions
    );

    // Priority liveness (18) on a ring.
    let graph = Arc::new(unity_composition::prio_graph::topology::ring(3));
    let ps = PrioritySystem::new(graph).expect("priority system builds");
    for i in 0..3 {
        let goal = ps.priority_expr(i);
        let (synth, stats) = synthesize_and_check(
            &ps.system.composed,
            &tt(),
            &goal,
            &SynthConfig::default(),
            &ScanConfig::default(),
        )
        .expect("liveness (18) synthesizes");
        println!(
            "ring(3), node {i}: true ↦ Priority({i}) — {} layers, {} premises, commands used: {:?}",
            synth.layers.len(),
            stats.premises,
            synth
                .layers
                .iter()
                .map(|l| &ps.system.composed.commands[l.fair_command].name)
                .collect::<Vec<_>>()
        );
    }

    println!("\nThe paper: \"we found no mechanical way of bridging this gap\" (§6).");
    println!("On finite instances, the bridge is mechanical — and checked.");
}
