//! The §4 priority mechanism on a ring: verify safety (17), liveness (18)
//! and acyclicity preservation (25); check the mechanized Property-8
//! proof; then simulate a larger ring and report time-to-priority
//! statistics per node.
//!
//! ```text
//! cargo run --example priority_ring [ring_size_for_simulation]
//! ```

use std::sync::Arc;

use unity_composition::prio_graph::topology;
use unity_composition::unity_core::proof::check::{check_concludes, CheckCtx};
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_sim::prelude::*;
use unity_composition::unity_systems::priority::PrioritySystem;
use unity_composition::unity_systems::priority_proofs::{
    check_steps_are_derivations, liveness_proof, safety_proof,
};

fn main() {
    // ----- exact verification on a small ring ---------------------------
    let n = 4;
    println!("== Priority mechanism on ring({n}) ==");
    let sys = PrioritySystem::new(Arc::new(topology::ring(n))).expect("system builds");
    let cfg = ScanConfig::default();

    check_property(
        &sys.system.composed,
        &sys.safety_invariant(),
        Universe::Reachable,
        &cfg,
    )
    .expect("safety (17)");
    println!("(17) safety: no two neighbours simultaneously have priority ✓");

    for i in 0..n {
        check_property(
            &sys.system.composed,
            &sys.liveness(i),
            Universe::Reachable,
            &cfg,
        )
        .expect("liveness (18)");
    }
    println!("(18) liveness: true leadsto Priority(i) for every i ✓ (exact, weak fairness)");

    check_property(
        &sys.system.composed,
        &sys.acyclicity_stable(),
        Universe::Reachable,
        &cfg,
    )
    .expect("acyclicity (25)");
    println!("(25) acyclicity preserved ✓");

    let checked = check_steps_are_derivations(&sys).expect("Property 1/2");
    println!("(21)/(22) every step is identity-or-derivation ✓ ({checked} steps checked)");

    // Mechanized proofs (safety is cheap everywhere; the full induction on
    // |A*| is checked on a 3-ring to keep the demo snappy).
    let (sp, sj) = safety_proof(&sys);
    let mut mc = McDischarger::new(&sys.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(n);
    check_concludes(&sp, &sj, &mut ctx).expect("safety proof");
    println!("safety derivation checked by the proof kernel ✓");

    let small = PrioritySystem::new(Arc::new(topology::ring(3))).expect("ring3");
    let (lp, lj) = liveness_proof(&small, 0);
    let mut mc = McDischarger::new(&small.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(3);
    let stats = check_concludes(&lp, &lj, &mut ctx).expect("liveness proof");
    println!(
        "Property 8 (induction on |A*(i)|) machine-checked on ring(3): {} rules, {} premises, {} side conditions ✓",
        stats.rules, stats.premises, stats.side_conditions
    );

    // ----- simulation on a larger ring -----------------------------------
    let big = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12usize);
    println!("\n== Simulating ring({big}) under an aged-lottery fair scheduler ==");
    let sim_sys = PrioritySystem::new(Arc::new(topology::ring(big))).expect("big ring");
    let program = &sim_sys.system.composed;
    let steps: u64 = 50_000;

    let mut monitor = RecurrenceMonitor::new((0..big).map(|i| sim_sys.priority_expr(i)).collect());
    let mut safety = InvariantMonitor::new(match sim_sys.safety_invariant() {
        unity_composition::unity_core::properties::Property::Invariant(p) => p,
        _ => unreachable!(),
    });
    let mut scheduler = AgedLottery::new(42, 4 * big as u64);
    let mut exec = Executor::from_first_initial(program);
    {
        let mut monitors: Vec<&mut dyn Monitor> = vec![&mut monitor, &mut safety];
        exec.run(steps, &mut scheduler, &mut monitors);
    }
    assert!(safety.clean(), "safety invariant held throughout");
    println!("{steps} steps executed; safety invariant held at every step");

    let mut means = Vec::new();
    println!("\nper-node time-to-priority (steps between Priority(i) observations):");
    for i in 0..big {
        let summary = Summary::of(&monitor.gaps[i]).expect("node observed priority");
        means.push(summary.mean);
        if i < 4 || i + 1 == big {
            println!("  node {i:>2}: {summary}");
        } else if i == 4 {
            println!("  ...");
        }
    }
    println!(
        "\nJain fairness index over mean gaps: {:.4}",
        jain_index(&means)
    );
}
