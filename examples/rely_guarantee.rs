//! The paper's conclusion relates its universal/existential theory to the
//! "traditional rely-guarantee approach". This example makes the relation
//! concrete on the §3 toy system:
//!
//! * each component's *guarantee* is the two-state action "I bump `C` and
//!   my counter together and leave other counters alone";
//! * each component's *rely* is its siblings' guarantee;
//! * the parallel composition rule + the invariant rule then derive
//!   `invariant C = Σ cᵢ` — the same conclusion §3.3 reaches through the
//!   shared universal property, with interference made explicit.
//!
//! ```text
//! cargo run --example rely_guarantee
//! ```

use unity_composition::prelude::*;
use unity_composition::unity_core::rg::{
    self, locality_rely, preserves, steps_satisfy, ActionPred, ActionVocab, RelyGuarantee,
};
use unity_composition::unity_systems::toy_counter::{toy_system, ToySpec};

fn main() {
    println!("== Rely-guarantee reading of §3 ==\n");
    let toy = toy_system(ToySpec::new(2, 1)).expect("toy builds");
    let av = ActionVocab::new(toy.system.composed.vocab.clone()).expect("doubled vocabulary");

    // Component i's guarantee: ΔC = Δcᵢ ∧ (∀ j≠i. cⱼ' = cⱼ).
    let guar = |i: usize| -> ActionPred {
        let c = toy.counters[i];
        let lockstep = eq(
            sub(var(av.prime(toy.shared)), var(toy.shared)),
            sub(var(av.prime(c)), var(c)),
        );
        let others: Vec<Expr> = toy
            .counters
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, &o)| eq(var(av.prime(o)), var(o)))
            .collect();
        ActionPred::new(and2(lockstep, and(others)), &av).expect("well-typed action")
    };

    println!("guarantee of component 0: ΔC = Δc₀ ∧ c₁' = c₁");
    println!("rely of component 0      : guarantee of component 1 (and dually)\n");

    let rgs: Vec<RelyGuarantee> = (0..2)
        .map(|i| RelyGuarantee {
            rely: guar(1 - i),
            guar: guar(i),
        })
        .collect();
    let pairs: Vec<(&_, &_)> = toy.system.components.iter().zip(rgs.iter()).collect();

    // 1. Each component keeps its own promise; each promise justifies the
    //    sibling's assumption; the composition guarantees the disjunction.
    rg::parallel_rule(&pairs, &toy.system.composed, &av).expect("parallel rule");
    println!("parallel rule: guarantees hold, interference justified ✓");

    // 2. The §3.3 invariant via the rely-guarantee invariant rule.
    let p = eq(var(toy.shared), toy.sum_expr());
    rg::invariant_via_rg(&pairs, &toy.system.composed, &av, &p).expect("invariant rule");
    println!("invariant rule: C = Σ cᵢ is initially true and stable under every guarantee ✓");

    // 3. The bridge to the paper's property types.
    //    `stable p` (universal) == "steps satisfy `preserves p`".
    let vocab = toy.system.composed.vocab.clone();
    let stable_p = le(var(toy.counters[0]), int(1));
    steps_satisfy(&toy.system.composed, &av, &preserves(&av, &stable_p))
        .expect("stable as an action");
    println!(
        "bridge: stable ({}) holds as the action predicate p ⇒ p' ✓",
        Render::new(&stable_p, &vocab)
    );

    //    Locality is a rely: the environment of F never writes F's locals.
    let rely_f = locality_rely(&av, &toy.system.components[0]);
    steps_satisfy(&toy.system.components[1], &av, &rely_f)
        .expect("sibling justifies the locality rely");
    match steps_satisfy(&toy.system.components[0], &av, &rely_f) {
        Err(v) => println!(
            "locality: G satisfies F's rely; F itself of course does not ({})",
            v.display(av.base())
        ),
        Ok(()) => unreachable!("F writes its own counter"),
    }

    // 4. What failure looks like: rely on "nobody touches C".
    let too_strong = rg::unchanged_vars(&av, [toy.shared]);
    match rg::action_implies(&av, &guar(1), &too_strong) {
        Err(v) => println!(
            "\nover-strong rely refuted by a concrete interference step:\n  {}",
            v.display(av.base())
        ),
        Ok(()) => unreachable!("component 1 bumps C"),
    }
}
