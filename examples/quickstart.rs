//! Quickstart: build the paper's §3 toy system, model check the invariant,
//! and run the mechanized compositional proof.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use unity_composition::unity_core::proof::check::{check_concludes, CheckCtx};
use unity_composition::unity_core::proof::pretty::render;
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_systems::toy_counter::{toy_system, ToySpec};
use unity_composition::unity_systems::toy_proof::toy_invariant_proof;

fn main() {
    let spec = ToySpec::new(3, 2);
    println!(
        "== Toy example (§3): {} components, counters 0..={} ==\n",
        spec.n, spec.k
    );
    let toy = toy_system(spec).expect("toy system builds");

    // Show the component programs as the DSL would render them.
    println!("{}", toy.system.components[0].listing());

    // 1. Direct model checking of the target invariant C = Σ cᵢ.
    let invariant = toy.system_invariant();
    let cfg = ScanConfig::default();
    match check_property(&toy.system.composed, &invariant, Universe::Reachable, &cfg) {
        Ok(()) => println!(
            "model checker: {} holds",
            invariant.display(toy.system.vocab())
        ),
        Err(e) => panic!("invariant refuted: {e}"),
    }

    // 2. The paper's compositional proof, machine-checked with every base
    //    fact discharged on the *component* programs only.
    let (proof, conclusion) = toy_invariant_proof(&toy);
    println!("\nderivation tree:\n{}", render(&proof, toy.system.vocab()));
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc)
        .with_components(spec.n)
        .with_vocab(toy.system.vocab());
    let stats = check_concludes(&proof, &conclusion, &mut ctx).expect("proof checks");
    println!(
        "proof kernel: {} rule applications, {} premises, {} side conditions — all discharged",
        stats.rules, stats.premises, stats.side_conditions
    );

    // 3. Liveness bonus: all counters saturate under weak fairness.
    check_property(
        &toy.system.composed,
        &toy.saturation_liveness(),
        Universe::Reachable,
        &cfg,
    )
    .expect("saturation liveness");
    println!(
        "\nliveness: true leadsto C == {} verified under weak fairness",
        spec.n as i64 * spec.k
    );
}
