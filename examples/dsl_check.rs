//! A tiny verification front-end: write UNITY-style programs in the
//! textual DSL, compose them, and check properties from the command line.
//!
//! ```text
//! cargo run --example dsl_check                       # runs the demo below
//! cargo run --example dsl_check -- file.unity "invariant C == sum(c0, c1)"
//! ```

use std::sync::Arc;

use unity_composition::unity_core::compose::{InitSatCheck, System};
use unity_composition::unity_core::dsl::{parse_programs, parse_property};
use unity_composition::unity_mc::prelude::*;

const DEMO: &str = r#"
# The paper's toy example (section 3), N = 2, K = 2, in the DSL.
program Counter0
  var c0 : int 0..2 local
  var C  : int 0..4
  init c0 == 0 && C == 0
  fair cmd a0: c0 < 2 -> c0 := c0 + 1, C := C + 1
end

program Counter1
  var c1 : int 0..2 local
  var C  : int 0..4
  init c1 == 0 && C == 0
  fair cmd a1: c1 < 2 -> c1 := c1 + 1, C := C + 1
end
"#;

const DEMO_PROPERTIES: &[&str] = &[
    "invariant C == sum(c0, c1)",
    "stable c0 >= 1",
    "unchanged C - c0 - c1",
    "true leadsto C == 4",
    "c0 == 0 next c0 <= 1",
    "transient c0 == 1 && c1 == 0 && C < 4",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (source, properties): (String, Vec<String>) = match args.as_slice() {
        [] => (
            DEMO.to_string(),
            DEMO_PROPERTIES.iter().map(|s| s.to_string()).collect(),
        ),
        [file, props @ ..] => (
            std::fs::read_to_string(file).expect("readable program file"),
            props.to_vec(),
        ),
    };

    let programs = parse_programs(&source).expect("programs parse");
    println!("parsed {} program(s):", programs.len());
    for p in &programs {
        println!(
            "  {} ({} commands, {} fair)",
            p.name,
            p.commands.len(),
            p.fair.len()
        );
    }
    let system = System::compose_merging(&programs, InitSatCheck::BoundedExhaustive(1 << 22))
        .expect("programs compose");
    println!(
        "composed: {} over {} variables, {} states\n",
        system.composed.name,
        system.vocab().len(),
        system
            .vocab()
            .space_size()
            .map_or("∞".to_string(), |n| n.to_string())
    );

    let vocab = Arc::clone(system.vocab());
    let cfg = ScanConfig::default();
    let mut failures = 0;
    for text in &properties {
        let prop = match parse_property(text, &vocab) {
            Ok(p) => p,
            Err(e) => {
                println!("✗ `{text}` — parse error: {e}");
                failures += 1;
                continue;
            }
        };
        match check_property(&system.composed, &prop, Universe::Reachable, &cfg) {
            Ok(()) => println!("✓ {text}"),
            Err(McError::Refuted { cex, .. }) => {
                println!("✗ {text}\n    counterexample: {}", cex.display(&vocab));
                failures += 1;
            }
            Err(e) => {
                println!("✗ {text} — {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
