//! Scaling past exact model checking: symmetry reduction and bounded
//! refutation on the §3 toy family.
//!
//! ```text
//! cargo run --release --example symmetry_scaling
//! ```
//!
//! For N interchangeable components the reachable space grows like
//! `(k+1)^N`, but its quotient under component permutation grows only
//! like the number of *multisets*, `C(N+k, k)`. This example checks the
//! conservation invariant three ways as N grows — exact, quotient, and
//! random-walk — and shows the orbit arithmetic adding up exactly.

use unity_composition::unity_core::prelude::*;
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_mc::symmetry::SymmetrySpec;
use unity_composition::unity_systems::toy_counter::{toy_system, toy_system_broken, ToySpec};

fn main() {
    let k = 2i64;
    println!("== conservation invariant C = Σ cᵢ, counters bounded by {k} ==\n");
    println!(
        "{:>3} {:>12} {:>12} {:>10}",
        "N", "reachable", "quotient", "factor"
    );
    for n in [3usize, 5, 7, 9] {
        let toy = toy_system(ToySpec::new(n, k)).expect("toy builds");
        let vocab = toy.system.vocab();
        let pred = match toy.system_invariant() {
            Property::Invariant(p) => p,
            _ => unreachable!(),
        };
        let blocks: Vec<Vec<VarId>> = (0..n)
            .map(|i| vec![vocab.lookup(&format!("c{i}")).unwrap()])
            .collect();
        let spec = SymmetrySpec::new(blocks, vocab).expect("valid blocks");

        // The checked-soundness path: validates command-family closure
        // and predicate symmetry before trusting the quotient.
        let stats = check_invariant_symmetric(&toy.system.composed, &pred, &spec, 1 << 22)
            .expect("invariant holds");
        println!(
            "{:>3} {:>12} {:>12} {:>9.1}x",
            n,
            stats.full_states,
            stats.quotient_states,
            stats.full_states as f64 / stats.quotient_states as f64
        );
    }

    println!("\n== refutation without state spaces: the broken component ==\n");
    let n = 12;
    let broken = toy_system_broken(ToySpec::new(n, k), 0).expect("broken toy builds");
    let pred = match broken.system_invariant() {
        Property::Invariant(p) => p,
        _ => unreachable!(),
    };
    // 3^12 ≈ 531k reachable states — but a random walk refutes in
    // microseconds, with a concrete replayable path.
    let cfg = BmcConfig::default();
    match random_walk_invariant(&broken.system.composed, &pred, &cfg) {
        Err(e) => {
            println!("random walk (N = {n}): {e}");
            if let McError::Refuted {
                cex: Counterexample::Reach { path },
                ..
            } = e
            {
                println!(
                    "violating path of {} steps; final state: {}",
                    path.len() - 1,
                    path.last().unwrap().display(broken.system.vocab())
                );
            }
        }
        Ok(stats) => panic!("walk missed the planted bug: {stats:?}"),
    }
    // Bounded BFS gives the *shortest* such path.
    match bounded_invariant(&broken.system.composed, &pred, &cfg) {
        Err(McError::Refuted {
            cex: Counterexample::Reach { path },
            ..
        }) => println!(
            "bounded BFS: shortest violation has {} step(s)",
            path.len() - 1
        ),
        other => panic!("expected a refutation, got {other:?}"),
    }
}
