//! Dining philosophers built on the §4 priority mechanism: verify mutual
//! exclusion and starvation freedom exactly on a small table, then
//! simulate a bigger one and compare schedulers (including the starvation
//! adversary, which weak fairness defeats).
//!
//! ```text
//! cargo run --example dining_philosophers [table_size_for_simulation]
//! ```

use std::sync::Arc;

use unity_composition::prio_graph::topology;
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_sim::prelude::*;
use unity_composition::unity_systems::dining::{dining_system, DiningSpec};

fn main() {
    // ----- exact verification --------------------------------------------
    let n = 3;
    println!("== Dining philosophers, table of {n} (exact verification) ==");
    let d = dining_system(&DiningSpec {
        graph: Arc::new(topology::ring(n)),
    })
    .expect("dining system builds");
    let cfg = ScanConfig::default();

    check_property(
        &d.system.composed,
        &d.eating_implies_priority(),
        Universe::Reachable,
        &cfg,
    )
    .expect("eating ⇒ priority (inductive)");
    let mutex_pred = match d.mutual_exclusion() {
        unity_composition::unity_core::properties::Property::Invariant(p) => p,
        _ => unreachable!(),
    };
    check_invariant_reachable(&d.system.composed, &mutex_pred, &cfg).expect("mutual exclusion");
    println!("mutual exclusion ✓ (via the inductive eating ⇒ Priority strengthening)");

    for i in 0..n {
        check_property(
            &d.system.composed,
            &d.progress(i),
            Universe::Reachable,
            &cfg,
        )
        .expect("progress");
    }
    println!("starvation freedom: hungry_i leadsto eating_i for every i ✓\n");

    // ----- simulation ------------------------------------------------------
    let big = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9usize);
    println!("== Simulating a table of {big} ==");
    let d = dining_system(&DiningSpec {
        graph: Arc::new(topology::ring(big)),
    })
    .expect("big table");
    let steps = 60_000u64;

    for (name, mut scheduler) in [
        (
            "round-robin ",
            Box::new(RoundRobin::default()) as Box<dyn Scheduler>,
        ),
        (
            "aged-lottery",
            Box::new(AgedLottery::new(7, 6 * big as u64)) as Box<dyn Scheduler>,
        ),
        (
            // Try to starve philosopher 0's eat command; aging defeats it.
            "adversarial ",
            Box::new(AdversarialDelay::new(9, 1, 6 * big as u64)) as Box<dyn Scheduler>,
        ),
    ] {
        let mut meals = RecurrenceMonitor::new((0..big).map(|i| d.eating_expr(i)).collect());
        let mut exec = Executor::from_first_initial(&d.system.composed);
        {
            let mut monitors: Vec<&mut dyn Monitor> = vec![&mut meals];
            exec.run(steps, scheduler.as_mut(), &mut monitors);
        }
        let meal_counts: Vec<f64> = (0..big).map(|i| meals.gaps[i].len() as f64).collect();
        let total: f64 = meal_counts.iter().sum();
        let starving = (0..big).filter(|&i| meals.gaps[i].is_empty()).count();
        println!(
            "  {name}: {total:>6.0} meals in {steps} steps, {} starving, Jain fairness {:.4}",
            starving,
            jain_index(&meal_counts)
        );
        assert_eq!(
            starving, 0,
            "weak fairness guarantees every philosopher eats"
        );
    }
    println!("\nno philosopher starves under any weakly-fair scheduler — the paper's (18) at work");
}
