//! Drinking philosophers: the multi-resource generalization of §4's
//! priority mechanism, exercised end to end.
//!
//! ```text
//! cargo run --release --example drinking_philosophers
//! ```
//!
//! Model checks bottle exclusion (safety) and `thirsty ↦ drinking`
//! (liveness under weak fairness) on a 3-ring, demonstrates that the
//! fault-injected variant (drinking without priority) is refuted with a
//! counterexample, and finishes with a fairness-audited simulation.

use std::sync::Arc;

use unity_composition::prio_graph::topology;
use unity_composition::unity_core::prelude::*;
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_sim::prelude::*;
use unity_composition::unity_systems::drinking::{
    drinking_system, DrinkGuard, DrinkingSpec, DRINKING,
};

fn main() {
    let graph = Arc::new(topology::ring(3));
    println!("== drinking philosophers on a 3-ring ==\n");

    let d = drinking_system(&DrinkingSpec::new(graph.clone())).expect("system builds");
    let cfg = ScanConfig::default();
    let vocab = d.system.vocab().clone();

    // Safety: bottle exclusion, via the inductive strengthening.
    let excl = match d.bottle_exclusion() {
        Property::Invariant(p) => p,
        _ => unreachable!(),
    };
    check_invariant_reachable(&d.system.composed, &excl, &cfg).expect("bottle exclusion");
    println!("safety: bottle exclusion holds (reachable, exact)");

    // Liveness: every thirsty philosopher eventually drinks.
    for i in 0..d.len() {
        check_property(
            &d.system.composed,
            &d.progress(i),
            Universe::Reachable,
            &cfg,
        )
        .unwrap_or_else(|e| panic!("progress({i}): {e}"));
    }
    println!("liveness: thirsty ↦ drinking for all philosophers (weak fairness, exact)");

    // Fault injection: remove the priority conjunct from the drink guard.
    let broken = drinking_system(&DrinkingSpec {
        graph,
        guard: DrinkGuard::Unguarded,
    })
    .expect("broken system builds");
    let excl_b = match broken.bottle_exclusion() {
        Property::Invariant(p) => p,
        _ => unreachable!(),
    };
    match check_invariant_reachable(&broken.system.composed, &excl_b, &cfg) {
        Err(McError::Refuted { cex, .. }) => {
            println!("\nfault injection (unguarded drink): refuted as expected");
            println!("  {}", cex.display(&vocab));
        }
        other => panic!("expected refutation, got {other:?}"),
    }

    // Simulate 20k steps under an adversarially-delayed but weakly-fair
    // scheduler; audit fairness and count drinking sessions.
    println!("\n== simulation: 20,000 steps, adversarial-but-fair scheduler ==\n");
    let program = &d.system.composed;
    let mut sched = AdversarialDelay::new(7, 0, 64);
    let mut monitors: Vec<ResponseMonitor> = (0..d.len())
        .map(|i| ResponseMonitor::new(d.thirsty_expr(i), d.drinking_expr(i)))
        .collect();
    let mut ex = Executor::from_first_initial(program);
    ex.set_log_limit(20_000);
    {
        let mut ms: Vec<&mut dyn Monitor> =
            monitors.iter_mut().map(|m| m as &mut dyn Monitor).collect();
        ex.run(20_000, &mut sched, &mut ms);
    }
    let fair: Vec<usize> = program.fair.iter().copied().collect();
    assert!(
        is_weakly_fair_within(ex.log(), &fair, 20_000, 64 + fair.len() as u64),
        "schedule must be weakly fair"
    );
    for (i, m) in monitors.iter().enumerate() {
        let lat = &m.responses;
        let summary = Summary::of(lat).expect("philosopher drank");
        println!(
            "philosopher {i}: {} sessions, thirsty→drinking latency mean {:.1} p95 {} max {}",
            lat.len(),
            summary.mean,
            summary.p95,
            summary.max
        );
    }
    let _ = DRINKING;
}
