//! The full mechanized proof gallery: every derivation from the paper,
//! checked by the kernel with model-checked premises, with the derivation
//! trees printed.
//!
//! ```text
//! cargo run --example compositional_proof
//! ```

use std::sync::Arc;

use unity_composition::prio_graph::topology;
use unity_composition::unity_core::proof::check::{check_concludes, CheckCtx};
use unity_composition::unity_core::proof::pretty::render;
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_systems::priority::PrioritySystem;
use unity_composition::unity_systems::priority_proofs::{
    acyclicity_invariant_proof, escape_judgment, escape_proof, lemma2_invariant_proof,
    liveness_proof, safety_proof,
};
use unity_composition::unity_systems::toy_counter::{toy_system, ToySpec};
use unity_composition::unity_systems::toy_proof::toy_invariant_proof;

fn main() {
    // ---------- §3: the toy example -------------------------------------
    println!("==================== §3 toy example ====================");
    let toy = toy_system(ToySpec::new(2, 2)).expect("toy builds");
    let (proof, conclusion) = toy_invariant_proof(&toy);
    println!("{}", render(&proof, toy.system.vocab()));
    let mut mc = McDischarger::new(&toy.system);
    let mut ctx = CheckCtx::new(&mut mc)
        .with_components(2)
        .with_vocab(toy.system.vocab());
    let stats = check_concludes(&proof, &conclusion, &mut ctx).expect("§3.3 proof");
    println!("§3.3 checked: {stats:?}\n");

    // ---------- §4: the priority mechanism ------------------------------
    let sys = PrioritySystem::new(Arc::new(topology::ring(3))).expect("ring3");
    println!("==================== §4 safety (17) ====================");
    let (sp, sj) = safety_proof(&sys);
    println!("{}", render(&sp, sys.system.vocab()));
    let mut mc = McDischarger::new(&sys.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(3);
    println!(
        "checked: {:?}\n",
        check_concludes(&sp, &sj, &mut ctx).expect("safety")
    );

    println!("================ §4 Property 5 (25) + 6 (26) ============");
    let (ap, aj) = acyclicity_invariant_proof(&sys);
    println!("{}", render(&ap, sys.system.vocab()));
    let mut mc = McDischarger::new(&sys.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(3);
    println!(
        "checked: {:?}",
        check_concludes(&ap, &aj, &mut ctx).expect("acyclicity")
    );
    let (lp6, lj6) = lemma2_invariant_proof(&sys, 1);
    let mut mc = McDischarger::new(&sys.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(3);
    println!(
        "Lemma 2 / Property 6 checked: {:?}\n",
        check_concludes(&lp6, &lj6, &mut ctx).expect("lemma 2")
    );

    println!("================ §4 Property 7 (27) =====================");
    let ep = escape_proof(&sys, 0, 1);
    println!("{}", render(&ep, sys.system.vocab()));
    let ej = escape_judgment(&sys, 0, 1);
    let mut mc = McDischarger::new(&sys.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(3);
    println!(
        "checked: {:?}\n",
        check_concludes(&ep, &ej, &mut ctx).expect("escape")
    );

    println!("================ §4 Property 8 / liveness (18) ==========");
    let (lp, lj) = liveness_proof(&sys, 0);
    println!(
        "(derivation tree has {} nodes; rendering suppressed)",
        lp.node_count()
    );
    let mut mc = McDischarger::new(&sys.system);
    let mut ctx = CheckCtx::new(&mut mc).with_components(3);
    let stats = check_concludes(&lp, &lj, &mut ctx).expect("liveness");
    println!(
        "true ↦ Priority(0) machine-checked: {} rules, {} premises, {} side conditions",
        stats.rules, stats.premises, stats.side_conditions
    );

    // Cross-check: the kernel-proved liveness is re-verified by the exact
    // fair model checker.
    check_property(
        &sys.system.composed,
        &lj.prop,
        Universe::Reachable,
        &ScanConfig::default(),
    )
    .expect("fair MC agrees");
    println!("fair model checker independently confirms the conclusion ✓");
}
