//! The §4 priority mechanism as a *distributed* protocol: tokens on the
//! conflict edges, asynchronous delivery, Chandy–Lamport snapshots as an
//! online monitor, and a per-step refinement check back onto the paper's
//! abstract orientation semantics (Definition 1).
//!
//! ```text
//! cargo run --release --example distributed_edge_reversal
//! ```

use std::sync::Arc;
use std::time::Duration;

use unity_composition::prio_graph::acyclic::is_acyclic;
use unity_composition::prio_graph::orientation::Orientation;
use unity_composition::prio_graph::topology;
use unity_composition::unity_dist::prelude::*;

fn main() {
    println!("== Distributed edge reversal (the §4 mechanism over messages) ==\n");

    // Deterministic event-driven run on a 4x4 torus.
    let graph = Arc::new(topology::torus(4, 4));
    let o = Orientation::index_order(graph.clone());
    println!(
        "topology: 4x4 torus, {} nodes, {} edges ({} directed channels)",
        graph.node_count(),
        graph.edge_count(),
        2 * graph.edge_count()
    );

    let mut run = DistRun::new(graph.clone(), &o, Box::new(OldestFirst::new()));
    // Fire a snapshot every 400 events while the protocol runs.
    for initiator in 0..6 {
        run.run(RunLimits::steps(run.stats().steps + 400));
        run.initiate_snapshot(initiator);
    }
    let stats = run.run(RunLimits::until_actions(8));

    println!("\nfair (oldest-first) schedule:");
    println!("  events executed     : {}", stats.steps);
    println!(
        "  min/total actions   : {} / {}",
        stats.min_actions(),
        stats.total_actions()
    );
    println!("  Jain fairness index : {:.4}", stats.fairness_index());
    println!("  tokens sent         : {}", stats.tokens_sent);
    println!(
        "  messages per action : {:.2} (= average degree)",
        stats.messages_per_action()
    );
    println!(
        "  refinement          : {} violations over {} classified steps",
        run.refinement_violations().len(),
        run.trace().len()
    );
    assert!(run.refinement_violations().is_empty());
    assert!(is_acyclic(run.abstraction()));

    println!("\nChandy–Lamport snapshots (taken without pausing the protocol):");
    for snap in run.snapshots() {
        let orientation = snap.validate(&graph).expect("consistent cut");
        let in_flight: usize = snap.channel_tokens.iter().map(|(_, t)| t.len()).sum();
        println!(
            "  snapshot #{:<2} span {:>5}..{:<5}  in-flight tokens: {:<2} acyclic: {}",
            snap.id,
            snap.span.0,
            snap.span.1,
            in_flight,
            is_acyclic(&orientation),
        );
    }

    // The adversarial scheduler keeps safety but loses fairness.
    let mut lifo = DistRun::new(graph.clone(), &o, Box::new(Lifo));
    let lifo_stats = lifo.run(RunLimits::steps(stats.steps));
    println!("\nadversarial (LIFO) schedule, same event budget:");
    println!(
        "  min/total actions   : {} / {}",
        lifo_stats.min_actions(),
        lifo_stats.total_actions()
    );
    println!("  Jain fairness index : {:.4}", lifo_stats.fairness_index());
    println!(
        "  refinement          : {} violations (safety is schedule-independent)",
        lifo.refinement_violations().len()
    );
    assert!(lifo.refinement_violations().is_empty());

    // Real threads.
    let cfg = ThreadedConfig {
        target_actions_per_node: 2_000,
        max_duration: Duration::from_secs(10),
        ..ThreadedConfig::default()
    };
    let out = run_threaded(&graph, &o, cfg);
    println!("\nthreaded executor (one OS thread per node):");
    println!("  reached target      : {}", out.reached_target);
    println!("  min actions         : {}", out.min_actions());
    println!("  throughput          : {:.0} actions/s", out.throughput());
    println!("  token conservation  : {}", out.conservation_ok(&graph));
    assert!(out.conservation_ok(&graph));
}
