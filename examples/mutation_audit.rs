//! Mutation audit of the paper's specifications: generate single-point
//! mutants of the composed §3 toy system and measure which specification
//! conjunct kills each one — "testing the tests".
//!
//! ```text
//! cargo run --release --example mutation_audit
//! ```

use unity_composition::unity_core::program::Program;
use unity_composition::unity_mc::prelude::*;
use unity_composition::unity_systems::toy_counter::{toy_system, ToySpec};

fn main() {
    println!("== Mutation audit of the §3 specifications ==\n");
    let toy = toy_system(ToySpec::new(2, 2)).expect("toy builds");
    let program = toy.system.composed.clone();
    println!("{}", program.listing());

    let conservation = toy.system_invariant();
    let saturation = toy.saturation_liveness();
    let cfg = ScanConfig::default();

    let inv_spec = {
        let conservation = conservation.clone();
        let cfg = cfg.clone();
        move |p: &Program| check_property(p, &conservation, Universe::Reachable, &cfg).is_ok()
    };
    let live_spec = {
        let saturation = saturation.clone();
        let cfg = cfg.clone();
        move |p: &Program| check_property(p, &saturation, Universe::Reachable, &cfg).is_ok()
    };

    let report = mutation_audit(
        &program,
        &[
            ("conservation C=Σcᵢ", &inv_spec),
            ("saturation ↦", &live_spec),
        ],
    )
    .expect("specs hold on the original");

    println!("{}", report.summary());
    println!("breakdown:");
    let mut by_kind: std::collections::BTreeMap<&str, (usize, usize, usize)> =
        std::collections::BTreeMap::new();
    for o in &report.outcomes {
        let e = by_kind.entry(o.kind.label()).or_default();
        e.0 += 1;
        if o.equivalent {
            e.1 += 1;
        } else if o.killed_by.is_some() {
            e.2 += 1;
        }
    }
    println!(
        "  {:<14} {:>6} {:>11} {:>7}",
        "kind", "total", "equivalent", "killed"
    );
    for (kind, (total, equiv, killed)) in &by_kind {
        println!("  {kind:<14} {total:>6} {equiv:>11} {killed:>7}");
    }

    println!("\nsample kills:");
    for o in report
        .outcomes
        .iter()
        .filter(|o| o.killed_by.is_some())
        .take(8)
    {
        println!(
            "  {:<45} killed by {}",
            o.description,
            o.killed_by.as_deref().unwrap()
        );
    }
    println!("\nsurvivors (spec gaps the paper's two conjuncts cannot see):");
    for s in report.survivors() {
        println!("  {}", s.description);
    }
    if report.survivors().is_empty() {
        println!("  (none)");
    }
}
