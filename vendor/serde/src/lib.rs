//! Vendored shim of `serde` (offline build).
//!
//! The workspace uses `Serialize` only as a marker on metric structs (all
//! real serialization is hand-rolled JSON in `unity-sim::export`), so the
//! traits carry no methods. The derive macros emit empty marker impls.

#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String, str);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
