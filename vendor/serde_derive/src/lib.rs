//! Vendored shim of `serde_derive` (offline build).
//!
//! The workspace only uses `#[derive(Serialize)]` as a marker (all actual
//! serialization is hand-rolled JSON in `unity-sim`), so the derive simply
//! emits `impl serde::Serialize for <Name> {}`. Written against
//! `proc_macro` directly — `syn`/`quote` are unavailable offline.
//!
//! Limitation (documented, not hit in-tree): generic types are not
//! supported; deriving on one fails to compile with a clear error.

use proc_macro::TokenStream;
use proc_macro::TokenTree;

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Serialize")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Deserialize")
}

fn derive_marker(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter();
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                for tt2 in tokens.by_ref() {
                    if let TokenTree::Ident(id2) = tt2 {
                        name = Some(id2.to_string());
                        break;
                    }
                }
                break;
            }
        }
    }
    let name = name.expect("derive target must be a struct/enum");
    format!("impl serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
