//! Vendored, API-compatible subset of `rand` (offline build).
//!
//! Implements exactly the surface this workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! half-open and inclusive integer ranges, [`Rng::gen_bool`], [`Rng::gen`]
//! for a few primitives, and [`seq::SliceRandom::shuffle`]. The generator
//! is SplitMix64 — statistically fine for simulation scheduling and graph
//! sampling (no cryptographic claims, same as upstream `StdRng`'s
//! contract of "unspecified algorithm").
//!
//! Determinism: a given seed yields the same stream on every platform,
//! which is all the simulators and property tests rely on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the only required method is the 64-bit
/// word source; everything else is provided.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `n` (`n > 0`) via 128-bit multiply-shift.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64, i32);

/// The user-facing RNG trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        f64::sample(self) < p
    }

    /// Uniform sample of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{below, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 hit rate {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_behaviour() {
        let mut r = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let xs = [1, 2, 3];
        assert!(xs.contains(xs.choose(&mut r).unwrap()));
    }
}
