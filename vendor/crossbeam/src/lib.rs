//! Vendored, API-compatible subset of `crossbeam` (offline build).
//!
//! Only the pieces this workspace uses are provided: [`scope`] with
//! [`Scope::spawn`], delegating to `std::thread::scope` (stabilized after
//! the original crossbeam API was designed, which is why the shim is this
//! small). One behavioural difference: a panicking child thread propagates
//! its panic when the scope exits instead of surfacing as `Err` — callers
//! here always `.expect(..)` the result, so either way the process aborts
//! loudly with the worker's panic message.

#![warn(missing_docs)]

use std::thread;

/// Payload of a panicked scoped thread.
pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

/// A scope handle; spawn scoped threads off it. `Copy`, mirroring how
/// crossbeam hands the same scope to nested closures.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread (joined implicitly at scope exit).
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, yielding its result.
    pub fn join(self) -> Result<T, ScopeError> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again (as
    /// crossbeam's does); all users in this workspace ignore it (`|_| ..`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let me = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(me)),
        }
    }
}

/// Creates a scope in which borrowing scoped threads can be spawned;
/// returns `Ok` with the closure's value once every spawned thread joined.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn borrows_locals_mutably_through_handles() {
        let mut values = vec![0u64; 3];
        super::scope(|scope| {
            let mut handles = Vec::new();
            for (i, slot) in values.iter_mut().enumerate() {
                handles.push(scope.spawn(move |_| {
                    *slot = i as u64 + 1;
                    i
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(values, vec![1, 2, 3]);
    }
}
