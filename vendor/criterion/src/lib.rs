//! Vendored, API-compatible subset of `criterion` (offline build).
//!
//! Provides the macro/entry-point surface the `composition-bench` suite
//! uses — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`], [`criterion_main!`],
//! [`black_box`] — backed by a simple but honest wall-clock harness:
//!
//! 1. warm up and estimate the iteration time;
//! 2. pick a per-sample iteration count so one sample takes ≥ ~5 ms;
//! 3. collect `sample_size` samples and report median / mean / min.
//!
//! Machine-readable output: when `CRITERION_SUMMARY_JSON` names a file,
//! one JSON object per finished benchmark is appended to it (used by
//! `scripts/bench.sh` to build the `BENCH_*.json` artifacts).
//!
//! A positional CLI argument acts as a substring filter on
//! `group/benchmark` ids, mirroring `cargo bench -- <filter>`.

#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark (reported, not used in timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Per-iteration timing handle passed to benchmark closures.
pub struct Bencher {
    /// Total time and iteration count of the measured samples.
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it in sized batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up + estimate: run until we have spent ≥ 20 ms or 3 iters.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        // One sample should take ≥ ~5 ms to keep timer noise small.
        let iters = (5_000_000u128 / est.max(1)).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

#[derive(Debug, Clone)]
struct Report {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

impl Report {
    fn elems_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) if self.median_ns > 0.0 => {
                Some(n as f64 * 1e9 / self.median_ns)
            }
            _ => None,
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards arguments after `--`; flags (e.g. `--bench`)
        // are ignored, the first positional is a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            json_path: std::env::var("CRITERION_SUMMARY_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: R,
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group("");
        group.bench_function(id.id.clone(), f);
        group.finish();
        self
    }

    fn run_one(
        &mut self,
        full_id: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 0,
            sample_size: sample_size.max(2),
        };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            return; // routine never called iter()
        }
        let mut ns: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample.max(1) as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let report = Report {
            id: full_id,
            mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
            median_ns: ns[ns.len() / 2],
            min_ns: ns[0],
            samples: ns.len(),
            iters_per_sample: bencher.iters_per_sample,
            throughput,
        };
        let throughput_txt = report
            .elems_per_sec()
            .map(|e| format!("  thrpt: {e:.0} elem/s"))
            .unwrap_or_default();
        println!(
            "{:<60} time: [{} {} {}]{}",
            report.id,
            fmt_ns(report.min_ns),
            fmt_ns(report.median_ns),
            fmt_ns(report.mean_ns),
            throughput_txt
        );
        self.append_json(&report);
    }

    fn append_json(&self, r: &Report) {
        let Some(path) = &self.json_path else {
            return;
        };
        let elems = match r.throughput {
            Some(Throughput::Elements(n)) => n.to_string(),
            _ => "null".into(),
        };
        let line = format!(
            "{{\"id\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{},\"elements\":{}}}\n",
            r.id.replace('"', "'"),
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.samples,
            r.iters_per_sample,
            elems
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement time hint (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.id
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion
            .run_one(full, sample_size, throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: R,
    ) -> &mut Self {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.id
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion.run_one(full, sample_size, throughput, f);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        // Criterion::default() reads process args; build one by hand so the
        // test binary's own arguments don't act as filters.
        let mut c = Criterion {
            filter: None,
            json_path: None,
        };
        tiny_bench(&mut c);
    }

    #[test]
    fn json_lines_are_emitted() {
        let path =
            std::env::temp_dir().join(format!("criterion_shim_test_{}.jsonl", std::process::id()));
        let mut c = Criterion {
            filter: None,
            json_path: Some(path.to_string_lossy().into_owned()),
        };
        tiny_bench(&mut c);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"id\":\"shim_smoke/sum/8\""));
        assert!(text.contains("\"elements\":8"));
        let _ = std::fs::remove_file(&path);
    }
}
